"""E5 -- §6.4 ablation: symbolic optimizations are essential.

Paper: "Disabling symbolic optimizations in the RISC-V verifier causes
the refinement proof to time out (after two hours) for either system
under any optimization level, as symbolic evaluation fails to
terminate.  The verification time of the safety proofs is not
affected, as the proofs are over the specifications."

We reproduce with a bounded budget: without split-pc the evaluation
blows up inside the fuel limit; with each individual optimization
removed we measure the slowdown; safety proofs are untouched by
engine options.
"""

import time

from conftest import banner, emit, run_once

from repro.core.errors import EngineFuelExhausted, UnconstrainedPc
from repro.core.symopt import SymOptConfig

RESULTS = {}


def _baseline(jobs: int = 1, cache_dir: str | None = None):
    from conftest import record_runner_run
    from repro.certikos import CertikosVerifier

    verifier = CertikosVerifier(opt=1, jobs=jobs, cache_dir=cache_dir)
    start = time.perf_counter()
    result = verifier.prove_op("get_quota")
    elapsed = time.perf_counter() - start
    assert result.proved
    if jobs != 1 or cache_dir is not None:
        record_runner_run("ablation.baseline.get_quota", result.stats, wall_time_s=elapsed)
    return elapsed


def test_baseline_all_optimizations(benchmark, runner_opts):
    jobs, cache_dir = runner_opts
    RESULTS["all optimizations"] = run_once(benchmark, _baseline, jobs, cache_dir)


def _no_split_pc():
    from repro.certikos import CertikosVerifier

    verifier = CertikosVerifier(opt=1, symopts=SymOptConfig.none(), fuel=200)
    start = time.perf_counter()
    try:
        verifier.prove_op("get_quota")
        outcome = "completed (unexpected)"
    except (EngineFuelExhausted, UnconstrainedPc, AssertionError) as exc:
        outcome = f"diverged: {type(exc).__name__}"
    return outcome, time.perf_counter() - start


def test_no_split_pc_diverges(benchmark):
    outcome, seconds = run_once(benchmark, _no_split_pc)
    RESULTS["split-pc disabled"] = f"{outcome} (budget hit after {seconds:.1f}s)"
    assert "diverged" in outcome


def _no_offset_concretization():
    from repro.certikos import CertikosVerifier

    opts = SymOptConfig(concretize_offsets=False)
    verifier = CertikosVerifier(opt=1, symopts=opts)
    start = time.perf_counter()
    assert verifier.prove_op("get_quota").proved
    return time.perf_counter() - start


def test_no_offset_concretization_slower(benchmark):
    seconds = run_once(benchmark, _no_offset_concretization)
    RESULTS["offset concretization disabled"] = f"{seconds:.2f}s (sound fan-out fallback)"


def _no_split_cases():
    from repro.certikos import CertikosVerifier

    opts = SymOptConfig(split_cases=False)
    verifier = CertikosVerifier(opt=1, symopts=opts)
    start = time.perf_counter()
    assert verifier.prove_op("get_quota").proved
    return time.perf_counter() - start


def test_no_split_cases_slower(benchmark):
    seconds = run_once(benchmark, _no_split_cases)
    RESULTS["split-cases disabled"] = f"{seconds:.2f}s (dispatch not decomposed)"


def _safety_unaffected():
    """Safety proofs run over the spec only: engine options are moot."""
    from repro.certikos.ni import prove_spawn_targets_owned_child

    start = time.perf_counter()
    assert prove_spawn_targets_owned_child(implicit=False).proved
    return time.perf_counter() - start


def test_safety_proofs_unaffected(benchmark):
    seconds = run_once(benchmark, _safety_unaffected)
    RESULTS["safety proof (no RISC-V verifier involved)"] = f"{seconds:.2f}s"


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    banner("§6.4 ablation: CertiKOS^s get_quota refinement")
    for name, value in RESULTS.items():
        if isinstance(value, float):
            value = f"{value:.2f}s"
        emit(f"  {name:<44} {value}")
    emit("  (paper: disabling symbolic optimizations -> timeout after 2h)")
