"""E6 -- §7: the BPF JIT checker and the 15 Linux bugs.

Paper: "we found a total of 15 bugs in the Linux JIT implementations:
9 for RISC-V and 6 for x86-32 ... caused by emitting incorrect
instructions for handling zero extensions or bit shifts"; the fixed
JITs (the accepted patches) verify clean.

The bench sweeps the bug catalog (each bug found on its witness with a
counterexample) and then verifies the fixed JITs over the full
instruction battery.
"""

from conftest import banner, emit, run_once

from repro.bpf_jit import (
    RV_BUGS,
    RvJit,
    X86Jit,
    X86_BUGS,
    check_rv_insn,
    check_x86_insn,
    rv_alu_test_insns,
    x86_alu_test_insns,
)

RESULTS = {}


def _hunt():
    found = []
    for bug in RV_BUGS:
        result = check_rv_insn(bug.witness, RvJit(bugs={bug.id}))
        assert not result.ok, bug.id
        found.append(("riscv", bug.id))
    for bug in X86_BUGS:
        result = check_x86_insn(bug.witness, X86Jit(bugs={bug.id}))
        assert not result.ok, bug.id
        found.append(("x86-32", bug.id))
    return found


def test_bug_hunt(benchmark):
    found = run_once(benchmark, _hunt)
    RESULTS["bugs found"] = found
    assert len(found) == 15
    assert sum(1 for t, _ in found if t == "riscv") == 9
    assert sum(1 for t, _ in found if t == "x86-32") == 6


def _verify_fixed_rv():
    jit = RvJit()
    checked = 0
    for insn in rv_alu_test_insns():
        assert check_rv_insn(insn, jit).ok, repr(insn)
        checked += 1
    return checked


def test_fixed_rv_jit_verifies(benchmark):
    RESULTS["riscv insns verified"] = run_once(benchmark, _verify_fixed_rv)


def _verify_fixed_x86():
    jit = X86Jit()
    checked = 0
    for insn in x86_alu_test_insns():
        assert check_x86_insn(insn, jit).ok, repr(insn)
        checked += 1
    return checked


def test_fixed_x86_jit_verifies(benchmark):
    RESULTS["x86-32 insns verified"] = run_once(benchmark, _verify_fixed_x86)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    banner("§7: BPF JIT checking")
    found = RESULTS.get("bugs found", [])
    emit(f"  bugs found via verification: {len(found)} "
          f"(riscv {sum(1 for t, _ in found if t == 'riscv')}, "
          f"x86-32 {sum(1 for t, _ in found if t == 'x86-32')}) -- paper: 15 (9 + 6)")
    for target, bug_id in found:
        emit(f"    {target:<7} {bug_id}")
    emit(f"  fixed RISC-V JIT verified on {RESULTS.get('riscv insns verified')} instructions")
    emit(f"  fixed x86-32 JIT verified on {RESULTS.get('x86-32 insns verified')} instructions")
