"""E3 -- Figure 11 (upper half): sizes of the two monitors.

Paper:                     CertiKOS^s   Komodo^s
  implementation               1,988      2,310
  abs. function + rep. inv.      438        439
  functional specification       124        445
  safety properties              297        578

We report implementation size in machine instructions per optimization
level (our mini-C source is an AST, so "lines of C" has no direct
analogue) plus Python line counts for the specification artifacts.
The shape to match: Komodo^s has the larger implementation and a much
larger functional spec (its interface has 12 calls vs 3).
"""

from pathlib import Path

from conftest import banner, emit, run_once

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def loc(path: Path) -> int:
    with open(path) as handle:
        return sum(1 for ln in handle if ln.strip() and not ln.strip().startswith("#"))


def collect():
    from repro.certikos import build_image as certikos_image
    from repro.komodo import build_image as komodo_image

    rows = {}
    for monitor, image_fn in (("certikos", certikos_image), ("komodo", komodo_image)):
        base = SRC / monitor
        rows[monitor] = {
            "impl insns O0": len(image_fn(0).words),
            "impl insns O1": len(image_fn(1).words),
            "impl insns O2": len(image_fn(2).words),
            "impl source (impl.py+layout.py)": loc(base / "impl.py") + loc(base / "layout.py"),
            "AF + RI (invariants.py)": loc(base / "invariants.py"),
            "functional spec (spec.py)": loc(base / "spec.py"),
            "safety/NI properties (ni.py)": loc(base / "ni.py"),
        }
    return rows


def test_fig11_sizes(benchmark):
    rows = run_once(benchmark, collect)
    banner("Figure 11 (sizes): CertiKOS^s vs Komodo^s")
    keys = list(next(iter(rows.values())).keys())
    emit(f"{'':<36} {'CertiKOS^s':>12} {'Komodo^s':>12}")
    for key in keys:
        emit(f"{key:<36} {rows['certikos'][key]:>12} {rows['komodo'][key]:>12}")
    # Shape checks mirroring the paper's table: Komodo's implementation
    # and functional spec are the larger ones.
    assert rows["komodo"]["impl insns O1"] > rows["certikos"]["impl insns O1"]
    assert rows["komodo"]["functional spec (spec.py)"] > rows["certikos"]["functional spec (spec.py)"]
    # O0 produces more code than O1/O2 for both systems.
    for monitor in rows:
        assert rows[monitor]["impl insns O0"] > rows[monitor]["impl insns O1"]
        assert rows[monitor]["impl insns O1"] >= rows[monitor]["impl insns O2"]
