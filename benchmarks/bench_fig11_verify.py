"""E4 -- Figure 11 (lower half): verification times of the monitors.

Paper (seconds, Core i7-7700K + Z3):
                         CertiKOS^s   Komodo^s
  refinement proof -O0         92        275
  refinement proof -O1        138        309
  refinement proof -O2        133        289
  safety proof                 33        477

Ours substitutes a pure-Python solver, so absolute numbers differ; the
reproduced shape: (a) Komodo^s refinement costs more than CertiKOS^s
at every level, (b) -O1/-O2 are in the same ballpark as -O0 once the
full set of symbolic optimizations is on (§6.4: one extra optimization
brought them close), (c) safety proofs are solver-only (no RISC-V
verifier) and Komodo^s safety costs more than CertiKOS^s.

The default measures a representative operation subset per monitor;
REPRO_FULL=1 runs every monitor call.

Runner modes (the scaling axis this bench also exercises):

  pytest benchmarks/bench_fig11_verify.py --jobs 4 --cache
      dispatch proof obligations across 4 worker processes, memoizing
      verdicts in the persistent solver cache;

  python benchmarks/bench_fig11_verify.py --jobs 2 --cache
      standalone CLI (no pytest-benchmark needed): runs the refinement
      obligation set through the shared work-stealing scheduler,
      reports speedup vs. the sequential baseline and the cache hit
      rate, and writes the BENCH_runner.json artifact (including the
      per-obligation verdict map and the scheduler's steal/utilization
      telemetry).  Exits nonzero if parallel and sequential verdicts
      diverge.

The verdict store behind ``--cache`` is shareable between machines:
``python -m repro.core.store export/import`` moves it as a tar.gz
artifact, which is how CI's two-job cache-warm pipeline hands verdicts
from the cold job to the warm job.
"""

import time

from conftest import FULL, banner, emit, guard_divergence, record_runner_run, run_once
import pytest

# Defaults cover each interface proportionally (CertiKOS^s has 3 calls,
# Komodo^s has 12 — which is exactly why the paper's Komodo^s rows cost
# more); REPRO_FULL=1 adds the heavy residual cases (spawn, invalid).
CERTIKOS_OPS = ["get_quota", "yield"] + (["spawn", "invalid"] if FULL else [])
KOMODO_OPS = [
    "init_addrspace", "init_thread", "map_secure", "enter", "exit", "stop", "remove",
] + (
    ["init_l2ptable", "init_l3ptable", "map_insecure", "finalize", "resume", "invalid"]
    if FULL
    else []
)

RESULTS: dict[tuple, float] = {}


def _verifier(monitor: str, opt: int, jobs: int = 1, cache_dir: str | None = None):
    if monitor == "certikos":
        from repro.certikos import CertikosVerifier as Verifier
    else:
        from repro.komodo import KomodoVerifier as Verifier
    return Verifier(opt=opt, jobs=jobs, cache_dir=cache_dir)


def _refine(monitor: str, opt: int, ops, jobs: int = 1, cache_dir: str | None = None):
    verifier = _verifier(monitor, opt, jobs=jobs, cache_dir=cache_dir)
    total = 0.0
    for op in ops:
        start = time.perf_counter()
        result = verifier.prove_op(op)
        elapsed = time.perf_counter() - start
        total += elapsed
        assert result.proved, f"{monitor}.{op} at O{opt}: {result.describe()}"
        if jobs != 1 or cache_dir is not None:
            record_runner_run(f"{monitor}.{op}.O{opt}", result.stats, wall_time_s=elapsed)
    return total


@pytest.mark.parametrize("opt", [0, 1, 2])
def test_certikos_refinement(benchmark, opt, runner_opts):
    jobs, cache_dir = runner_opts
    seconds = run_once(benchmark, _refine, "certikos", opt, CERTIKOS_OPS, jobs, cache_dir)
    RESULTS[("certikos", f"refinement -O{opt}")] = seconds


@pytest.mark.parametrize("opt", [0, 1, 2])
def test_komodo_refinement(benchmark, opt, runner_opts):
    jobs, cache_dir = runner_opts
    seconds = run_once(benchmark, _refine, "komodo", opt, KOMODO_OPS, jobs, cache_dir)
    RESULTS[("komodo", f"refinement -O{opt}")] = seconds


def test_runner_verdicts_match_sequential(benchmark, runner_opts):
    """Regression guard: the parallel/cached runner must produce the
    same verdict as the sequential in-process path.  Skipped unless a
    runner mode was requested (it re-proves one op twice)."""
    jobs, cache_dir = runner_opts
    if jobs == 1 and cache_dir is None:
        pytest.skip("runner mode not requested (--jobs/--cache)")

    def compare():
        op = CERTIKOS_OPS[0]
        seq = _verifier("certikos", 1).prove_op(op)
        par = _verifier("certikos", 1, jobs=jobs, cache_dir=cache_dir).prove_op(op)
        guard_divergence(f"certikos.{op}.O1", seq.proved, par.proved)
        return seq.proved, par.proved

    seq_ok, par_ok = run_once(benchmark, compare)
    assert seq_ok == par_ok


def _certikos_safety():
    from repro.certikos.ni import prove_small_step_properties, prove_spawn_targets_owned_child

    results = prove_small_step_properties()
    assert all(r.proved for r in results.values())
    assert prove_spawn_targets_owned_child(implicit=False).proved


def _komodo_safety():
    from repro.komodo import (
        prove_host_cannot_read_enclave,
        prove_removed_enclave_unobservable,
    )

    assert prove_host_cannot_read_enclave().proved
    assert prove_removed_enclave_unobservable().proved


def test_certikos_safety(benchmark):
    start = time.perf_counter()
    run_once(benchmark, _certikos_safety)
    RESULTS[("certikos", "safety proof")] = time.perf_counter() - start


def test_komodo_safety(benchmark):
    start = time.perf_counter()
    run_once(benchmark, _komodo_safety)
    RESULTS[("komodo", "safety proof")] = time.perf_counter() - start


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    banner("Figure 11 (verification times, seconds)")
    rows = ["refinement -O0", "refinement -O1", "refinement -O2", "safety proof"]
    emit(f"{'':<20} {'CertiKOS^s':>12} {'Komodo^s':>12}   (paper: 92/138/133/33 vs 275/309/289/477)")

    def fmt(v):
        return f"{v:.1f}" if v is not None else "-"

    for row in rows:
        c = RESULTS.get(("certikos", row))
        k = RESULTS.get(("komodo", row))
        emit(f"{row:<20} {fmt(c):>12} {fmt(k):>12}")
    ops = f"certikos ops={CERTIKOS_OPS}, komodo ops={KOMODO_OPS}"
    emit(f"(representative subset; REPRO_FULL=1 for the full grid: {ops})")


# ---------------------------------------------------------------------------
# Standalone CLI — used by the CI cache-warm job; no pytest required.


def _cli_obligation_set(quick: bool):
    ops = [("certikos", op) for op in CERTIKOS_OPS]
    if not quick:
        ops += [("komodo", op) for op in KOMODO_OPS]
    return ops


def main(argv=None) -> int:
    import argparse
    import json
    import os

    from conftest import DEFAULT_CACHE_DIR, TRACE_ARTIFACT, runner_summary

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", type=int, default=1, help="worker processes (0 = all cores)")
    parser.add_argument("--cache", action="store_true", help="use the persistent solver cache")
    parser.add_argument("--cache-dir", default=DEFAULT_CACHE_DIR)
    parser.add_argument("--opt", type=int, default=1, choices=[0, 1, 2])
    parser.add_argument("--quick", action="store_true", help="CertiKOS^s ops only")
    parser.add_argument(
        "--compare-sequential",
        action="store_true",
        help="also run the sequential baseline and report speedup / check verdicts",
    )
    parser.add_argument("--out", default=None, help="write the runner artifact to this path")
    parser.add_argument(
        "--trace",
        action="store_true",
        help="collect a repro.obs trace of the run (spans, counters, §3.2 regions)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        help=f"write the Chrome trace JSON here (implies --trace; default {TRACE_ARTIFACT})",
    )
    args = parser.parse_args(argv)

    cache_dir = args.cache_dir if args.cache else None
    ops = _cli_obligation_set(args.quick)
    divergence = False

    tracing_on = args.trace or args.trace_out is not None
    collector = profiler = None
    if tracing_on:
        from repro.obs import tracing
        from repro.sym.profiler import profile

        trace_ctx = tracing(absorb=False)
        profile_ctx = profile()
        collector = trace_ctx.__enter__()
        profiler = profile_ctx.__enter__()

    verdicts: dict[tuple, bool] = {}
    start = time.perf_counter()
    try:
        for monitor, op in ops:
            verifier = _verifier(monitor, args.opt, jobs=args.jobs, cache_dir=cache_dir)
            result = verifier.prove_op(op)
            verdicts[(monitor, op)] = result.proved
            record_runner_run(f"{monitor}.{op}.O{args.opt}", result.stats)
            print(f"  {monitor}.{op}.O{args.opt}: {'proved' if result.proved else result.describe()}")
    finally:
        if tracing_on:
            profile_ctx.__exit__(None, None, None)
            trace_ctx.__exit__(None, None, None)
    wall = time.perf_counter() - start

    summary = runner_summary()
    summary["wall_time_s"] = wall
    summary["jobs"] = args.jobs
    summary["cache"] = bool(cache_dir)

    obs_section: dict = {}
    if tracing_on:
        from repro.obs import summarize, write_chrome_trace

        obs_section = summarize(collector, profiler=profiler)
        summary["obs"] = obs_section
        trace_out = args.trace_out or TRACE_ARTIFACT
        write_chrome_trace(collector, trace_out)
        print(f"wrote {os.path.abspath(trace_out)}")
    # Per-obligation verdict map: compare_runner_runs.py asserts the
    # warm run (possibly on another machine, against an imported
    # verdict store) reproduces these verdicts exactly.
    summary["verdicts"] = {f"{monitor}.{op}": proved for (monitor, op), proved in verdicts.items()}

    if args.compare_sequential:
        seq_start = time.perf_counter()
        for monitor, op in ops:
            result = _verifier(monitor, args.opt).prove_op(op)
            if result.proved != verdicts[(monitor, op)]:
                divergence = True
                print(f"DIVERGENCE on {monitor}.{op}: sequential={result.proved} "
                      f"runner={verdicts[(monitor, op)]}")
        seq_wall = time.perf_counter() - seq_start
        summary["sequential_wall_time_s"] = seq_wall
        summary["speedup"] = seq_wall / wall if wall else 0.0
        print(f"sequential baseline: {seq_wall:.2f}s; runner: {wall:.2f}s; "
              f"speedup {summary['speedup']:.2f}x")

    print(f"obligations={summary['obligations']} wall={wall:.2f}s "
          f"cache_hit_rate={summary['cache_hit_rate']:.2%} "
          f"(cpus={os.cpu_count()}, jobs={args.jobs})")

    out = args.out or os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_runner.json")
    with open(out, "w") as handle:
        json.dump(summary, handle, indent=2)
    print(f"wrote {os.path.abspath(out)}")

    # The profile-then-optimize artifact: `python -m repro.obs.report
    # BENCH_fig11.json` ranks its obligations by wall time and its
    # regions by the §3.2 score.  Always written; the obs section is
    # only populated when the run was traced.
    fig11 = {
        "wall_s": wall,
        "obligations": summary["obligations"],
        "cache_hits": summary["cache_hits"],
        "cache_hit_rate": summary["cache_hit_rate"],
        "obs": obs_section,
    }
    fig11_path = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "BENCH_fig11.json")
    with open(fig11_path, "w") as handle:
        json.dump(fig11, handle, indent=2)
    print(f"wrote {os.path.abspath(fig11_path)}")

    if divergence:
        return 2
    if not all(verdicts.values()):
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
