"""E4 -- Figure 11 (lower half): verification times of the monitors.

Paper (seconds, Core i7-7700K + Z3):
                         CertiKOS^s   Komodo^s
  refinement proof -O0         92        275
  refinement proof -O1        138        309
  refinement proof -O2        133        289
  safety proof                 33        477

Ours substitutes a pure-Python solver, so absolute numbers differ; the
reproduced shape: (a) Komodo^s refinement costs more than CertiKOS^s
at every level, (b) -O1/-O2 are in the same ballpark as -O0 once the
full set of symbolic optimizations is on (§6.4: one extra optimization
brought them close), (c) safety proofs are solver-only (no RISC-V
verifier) and Komodo^s safety costs more than CertiKOS^s.

The default measures a representative operation subset per monitor;
REPRO_FULL=1 runs every monitor call.
"""

import time

import pytest

from conftest import FULL, banner, emit, run_once

# Defaults cover each interface proportionally (CertiKOS^s has 3 calls,
# Komodo^s has 12 — which is exactly why the paper's Komodo^s rows cost
# more); REPRO_FULL=1 adds the heavy residual cases (spawn, invalid).
CERTIKOS_OPS = ["get_quota", "yield"] + (["spawn", "invalid"] if FULL else [])
KOMODO_OPS = [
    "init_addrspace", "init_thread", "map_secure", "enter", "exit", "stop", "remove",
] + (
    ["init_l2ptable", "init_l3ptable", "map_insecure", "finalize", "resume", "invalid"]
    if FULL
    else []
)

RESULTS: dict[tuple, float] = {}


def _refine(monitor: str, opt: int, ops):
    if monitor == "certikos":
        from repro.certikos import CertikosVerifier as Verifier
    else:
        from repro.komodo import KomodoVerifier as Verifier
    verifier = Verifier(opt=opt)
    total = 0.0
    for op in ops:
        start = time.perf_counter()
        result = verifier.prove_op(op)
        total += time.perf_counter() - start
        assert result.proved, f"{monitor}.{op} at O{opt}: {result.describe()}"
    return total


@pytest.mark.parametrize("opt", [0, 1, 2])
def test_certikos_refinement(benchmark, opt):
    seconds = run_once(benchmark, _refine, "certikos", opt, CERTIKOS_OPS)
    RESULTS[("certikos", f"refinement -O{opt}")] = seconds


@pytest.mark.parametrize("opt", [0, 1, 2])
def test_komodo_refinement(benchmark, opt):
    seconds = run_once(benchmark, _refine, "komodo", opt, KOMODO_OPS)
    RESULTS[("komodo", f"refinement -O{opt}")] = seconds


def _certikos_safety():
    from repro.certikos.ni import prove_small_step_properties, prove_spawn_targets_owned_child

    results = prove_small_step_properties()
    assert all(r.proved for r in results.values())
    assert prove_spawn_targets_owned_child(implicit=False).proved


def _komodo_safety():
    from repro.komodo import (
        prove_host_cannot_read_enclave,
        prove_removed_enclave_unobservable,
    )

    assert prove_host_cannot_read_enclave().proved
    assert prove_removed_enclave_unobservable().proved


def test_certikos_safety(benchmark):
    start = time.perf_counter()
    run_once(benchmark, _certikos_safety)
    RESULTS[("certikos", "safety proof")] = time.perf_counter() - start


def test_komodo_safety(benchmark):
    start = time.perf_counter()
    run_once(benchmark, _komodo_safety)
    RESULTS[("komodo", "safety proof")] = time.perf_counter() - start


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    banner("Figure 11 (verification times, seconds)")
    rows = ["refinement -O0", "refinement -O1", "refinement -O2", "safety proof"]
    emit(f"{'':<20} {'CertiKOS^s':>12} {'Komodo^s':>12}   (paper: 92/138/133/33 vs 275/309/289/477)")
    for row in rows:
        c = RESULTS.get(("certikos", row))
        k = RESULTS.get(("komodo", row))
        fmt = lambda v: f"{v:.1f}" if v is not None else "-"
        emit(f"{row:<20} {fmt(c):>12} {fmt(k):>12}")
    ops = f"certikos ops={CERTIKOS_OPS}, komodo ops={KOMODO_OPS}"
    emit(f"(representative subset; REPRO_FULL=1 for the full grid: {ops})")
