"""E2 -- Figure 7: line counts of the framework and the four verifiers.

Paper (Rosette):      Serval framework 1,244; RISC-V 1,036; x86-32 856;
                      LLVM 789; BPF 472; total 4,397.
Comparison (§5):      prior push-button LLVM verifiers: ~3,000 lines of
                      Python without the optimizations.

This bench counts our Python equivalents and prints the table.  The
absolute numbers differ (different host language and the paper's
framework excludes the solver, which we had to build); the shape —
a small framework plus per-ISA verifiers of a few hundred to ~1,500
lines each — is the claim being reproduced.
"""

from pathlib import Path

from conftest import banner, emit, run_once

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

COMPONENTS = {
    "Serval framework (core+sym)": ["core", "sym"],
    "RISC-V verifier": ["riscv"],
    "x86-32 verifier": ["x86"],
    "LLVM verifier": ["llvm"],
    "BPF verifier": ["bpf"],
}

PAPER = {
    "Serval framework (core+sym)": 1244,
    "RISC-V verifier": 1036,
    "x86-32 verifier": 856,
    "LLVM verifier": 789,
    "BPF verifier": 472,
}


def count_loc(packages: list[str]) -> int:
    total = 0
    for pkg in packages:
        for path in (SRC / pkg).rglob("*.py"):
            with open(path) as handle:
                total += sum(
                    1
                    for line in handle
                    if line.strip() and not line.strip().startswith("#")
                )
    return total


def collect() -> dict[str, int]:
    return {name: count_loc(pkgs) for name, pkgs in COMPONENTS.items()}


def test_fig7_line_counts(benchmark):
    counts = run_once(benchmark, collect)
    banner("Figure 7: lines of code (ours vs paper's Rosette)")
    emit(f"{'component':<32} {'ours (py)':>10} {'paper (rkt)':>12}")
    total = 0
    for name, loc in counts.items():
        total += loc
        emit(f"{name:<32} {loc:>10} {PAPER[name]:>12}")
    emit(f"{'total':<32} {total:>10} {sum(PAPER.values()):>12}")
    substrate = count_loc(["smt"])
    emit(f"(substrate we had to build that the paper gets from Z3: "
         f"repro.smt = {substrate} lines)")
    # Shape check: every verifier is small relative to the systems it
    # verifies; BPF is the smallest, RISC-V the largest ISA verifier.
    assert counts["BPF verifier"] < counts["RISC-V verifier"]
    assert all(loc > 0 for loc in counts.values())
