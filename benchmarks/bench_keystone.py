"""E7 -- §7: Keystone findings.

Paper: two interface findings (enclave-in-enclave creation violating a
proved safety property; page-table checks redundant given PMP) and two
undefined-behaviour bugs (oversized shift, buffer overflow) "both on
the paths of three monitor calls", all confirmed and fixed.
"""

from conftest import banner, emit, run_once

from repro.keystone import (
    KEYSTONE_BUG_IDS,
    prove_enclave_independence,
    prove_pmp_sufficient,
    scan_for_ub,
)

RESULTS = {}


def _interface():
    fixed = prove_enclave_independence(allow_nested_create=False)
    flawed = prove_enclave_independence(allow_nested_create=True)
    pmp = prove_pmp_sufficient()
    assert fixed.proved and not flawed.proved and pmp.proved
    return {
        "independence (fixed spec)": fixed.proved,
        "independence (nested create)": flawed.proved,
        "pmp alone isolates": pmp.proved,
    }


def test_interface_analysis(benchmark):
    RESULTS["interface"] = run_once(benchmark, _interface)


def _ub_scan():
    buggy = scan_for_ub(set(KEYSTONE_BUG_IDS))
    fixed = scan_for_ub()
    assert fixed == []
    return buggy


def test_ub_scan(benchmark):
    findings = run_once(benchmark, _ub_scan)
    RESULTS["ub"] = findings
    functions = {f.function for f in findings}
    assert len(functions) == 3  # both bugs on all three call paths
    assert any("oversized" in f.message for f in findings)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    banner("§7: Keystone")
    for name, value in RESULTS.get("interface", {}).items():
        emit(f"  {name:<32} {value}")
    emit("  UB findings (buggy build):")
    for f in RESULTS.get("ub", []):
        emit(f"    {f.function}: {f.message}")
    emit("  UB findings (fixed build): none")
