"""E9 -- §3.2: symbolic profiling finds the fetch bottleneck.

Paper: "the top two functions suggested by the profiler are execute
within interpret and vector-ref within fetch ... one can conclude that
this function explodes under symbolic evaluation due to a symbolic
pc"; after split-pc, "vector-ref disappears from the profiler's
output".
"""

from conftest import banner, emit, run_once

from repro.core import EngineOptions, run_interpreter
from repro.core.errors import EngineFuelExhausted
from repro.sym import new_context, profile
from repro.toyrisc import ToyCpu, ToyRISC, sign_program

RESULTS = {}


def _profile(split_pc: bool):
    with profile() as prof:
        with new_context():
            cpu = ToyCpu.symbolic(32)
            try:
                run_interpreter(
                    ToyRISC(sign_program()), cpu,
                    EngineOptions(split_pc=split_pc, fuel=3 if not split_pc else 1000,
                                  max_union=2000),
                )
            except EngineFuelExhausted:
                pass
    return prof


def test_profile_without_split_pc(benchmark):
    prof = run_once(benchmark, _profile, False)
    ranking = [s.name for s in prof.ranking()]
    RESULTS["without split-pc"] = prof
    # fetch/execute dominate, and fetch creates instruction unions.
    assert ranking[0] in ("toyrisc.execute", "toyrisc.fetch", "engine.step")
    assert prof.regions["toyrisc.fetch"].max_union > 0 or prof.regions["toyrisc.execute"].merges > 0


def test_profile_with_split_pc(benchmark):
    prof = run_once(benchmark, _profile, True)
    RESULTS["with split-pc"] = prof
    # the union blow-up disappears from fetch.
    assert prof.regions["toyrisc.fetch"].max_union == 0


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    banner("§3.2: symbolic profiler output")
    for name, prof in RESULTS.items():
        emit(f"-- {name}")
        emit(prof.report(top=4))
