"""Substrate microbenchmark: the Z3-substitute's own performance.

Not a paper table — this characterizes the pure-Python CDCL +
bit-blasting solver that replaces Z3 (DESIGN.md substitution 1), so
the absolute times in the other benches can be interpreted.  Shapes
measured: UNSAT equivalence checks (the refinement workload), SAT
model finding (counterexample generation), and a classic pigeonhole
instance (pure search).
"""

from conftest import banner, emit, run_once

from repro.smt import (
    bv_sort,
    check_sat,
    mk_bv,
    mk_bvadd,
    mk_bvmul,
    mk_bvxor,
    mk_eq,
    mk_not,
    mk_ult,
    mk_var,
)
from repro.smt.sat import SatSolver

RESULTS = {}


def _equivalence_unsat(width):
    """(a+b)^b+... chained identity: the refinement-proof shape."""
    a = mk_var(f"sb_a{width}", bv_sort(width))
    b = mk_var(f"sb_b{width}", bv_sort(width))
    lhs = mk_bvadd(mk_bvxor(a, b), b)
    rhs = mk_bvadd(mk_bvxor(b, a), b)
    result = check_sat(mk_not(mk_eq(lhs, rhs)))
    assert result.is_unsat
    return result


def test_equivalence_32(benchmark):
    run_once(benchmark, _equivalence_unsat, 32)
    RESULTS["32-bit equivalence (unsat)"] = "ok"


def test_equivalence_64(benchmark):
    run_once(benchmark, _equivalence_unsat, 64)
    RESULTS["64-bit equivalence (unsat)"] = "ok"


def _factoring(width, product):
    a = mk_var(f"sb_f{width}a", bv_sort(width))
    b = mk_var(f"sb_f{width}b", bv_sort(width))
    result = check_sat(
        mk_eq(mk_bvmul(a, b), mk_bv(product, width)),
        mk_ult(mk_bv(1, width), a),
        mk_ult(mk_bv(1, width), b),
    )
    assert result.is_sat
    va, vb = result.model[f"sb_f{width}a"], result.model[f"sb_f{width}b"]
    assert (va * vb) & ((1 << width) - 1) == product
    return result


def test_factoring_16(benchmark):
    run_once(benchmark, _factoring, 16, 12709)
    RESULTS["16-bit factoring (sat)"] = "ok"


def test_factoring_32(benchmark):
    run_once(benchmark, _factoring, 32, 0x12345678)
    RESULTS["32-bit factoring (sat)"] = "ok"


def _pigeonhole(n):
    solver = SatSolver()
    holes = n - 1
    pigeon = {(i, j): solver.new_var() for i in range(n) for j in range(holes)}
    for i in range(n):
        solver.add_clause([pigeon[(i, j)] for j in range(holes)])
    for j in range(holes):
        for i1 in range(n):
            for i2 in range(i1 + 1, n):
                solver.add_clause([-pigeon[(i1, j)], -pigeon[(i2, j)]])
    assert solver.solve() == "unsat"
    return solver.conflicts


def test_pigeonhole_7(benchmark):
    conflicts = run_once(benchmark, _pigeonhole, 7)
    RESULTS["pigeonhole PHP(7,6) conflicts"] = conflicts


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    banner("solver substrate (Z3 substitute) microbenchmarks")
    for name, value in RESULTS.items():
        emit(f"  {name:<36} {value}")
    emit("  (see the pytest-benchmark table for times)")
