"""E1 -- Figures 3/5: the ToyRISC worked example.

Measures symbolic evaluation and the refinement/NI proofs of the sign
program, plus the no-split-pc blow-up of Figure 5's discussion.
"""

from conftest import banner, emit, run_once
import pytest

from repro.core import EngineOptions, run_interpreter
from repro.core.errors import EngineFuelExhausted, UnconstrainedPc
from repro.sym import new_context
from repro.toyrisc import (
    ToyCpu,
    ToyRISC,
    prove_sign_refinement,
    sign_program,
    step_consistency_holds,
)

RESULTS = {}


def _symbolic_run():
    with new_context():
        cpu = ToyCpu.symbolic(32)
        paths = run_interpreter(ToyRISC(sign_program()), cpu)
        return len(paths.finals), paths.steps


def test_symbolic_evaluation(benchmark):
    finals, steps = run_once(benchmark, _symbolic_run)
    RESULTS["evaluation"] = f"{finals} merged final state(s), {steps} steps"
    assert steps <= 8  # merging keeps it linear in program size


@pytest.mark.parametrize("width", [32, 64])
def test_refinement(benchmark, width):
    result = run_once(benchmark, prove_sign_refinement, width)
    assert result.proved
    RESULTS[f"refinement w{width}"] = "proved"


def test_step_consistency(benchmark):
    result = run_once(benchmark, step_consistency_holds, 32)
    assert result.proved
    RESULTS["step consistency"] = "proved"


def _no_split_pc():
    with new_context():
        cpu = ToyCpu.symbolic(32)
        try:
            run_interpreter(
                ToyRISC(sign_program()), cpu,
                EngineOptions(split_pc=False, fuel=5, max_union=2000),
            )
            return "completed"
        except (EngineFuelExhausted, UnconstrainedPc) as exc:
            return f"blow-up: {type(exc).__name__}"


def test_no_split_pc(benchmark):
    RESULTS["without split-pc"] = run_once(benchmark, _no_split_pc)


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    banner("ToyRISC (Figures 3/5)")
    for name, value in RESULTS.items():
        emit(f"  {name:<22} {value}")
