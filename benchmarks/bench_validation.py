"""E8 -- §6.4 validation: interpreter test batteries and the two U54
hardware bugs.

Paper: interpreter tests (riscv-tests style) surfaced bugs in QEMU,
the Sail RISC-V spec, and two in the U54 core: over-strict PMP
composition with superpages, and ignored performance-counter control.
We run our battery through the lifted interpreter and demonstrate
both hardware quirks as spec-vs-implementation divergences.
"""

from conftest import banner, emit, run_once

from repro.riscv import QuirkConfig, counter_readable, napot_region, pmp_check
from repro.riscv.pmp import PMP_A_NAPOT, PMP_A_SHIFT, PMP_R
from repro.sym import bv_val, new_context, prove

RESULTS = {}


def _run_interpreter_battery():
    """Execute the riscv-tests-style battery (the test-suite cases)."""
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "pytest", "tests/test_riscv_interp.py", "-q", "--no-header"],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout[-2000:]
    return proc.stdout.strip().splitlines()[-1]


def test_interpreter_battery(benchmark):
    RESULTS["riscv battery"] = run_once(benchmark, _run_interpreter_battery)


def _u54_quirks():
    xlen = 64
    csrs = {name: bv_val(0, xlen) for name in
            ["pmpcfg0", "mcounteren"] + [f"pmpaddr{i}" for i in range(8)]}
    csrs["pmpcfg0"] = bv_val((PMP_R | (PMP_A_NAPOT << PMP_A_SHIFT)), xlen)
    csrs["pmpaddr0"] = bv_val(napot_region(0x200000, 4096), xlen)
    addr = bv_val(0x200010, xlen)
    with new_context():
        spec_ok = prove(pmp_check(csrs, addr, "r", QuirkConfig(), page_size=2**21)).proved
        buggy_denies = prove(
            ~pmp_check(csrs, addr, "r", QuirkConfig(u54_pmp_superpage=True), page_size=2**21)
        ).proved
        counter_spec = prove(~counter_readable(csrs, 0, QuirkConfig())).proved
        counter_buggy = prove(counter_readable(csrs, 0, QuirkConfig(u54_counter_leak=True))).proved
    return spec_ok, buggy_denies, counter_spec, counter_buggy


def test_u54_hardware_bugs(benchmark):
    spec_ok, buggy_denies, counter_spec, counter_buggy = run_once(benchmark, _u54_quirks)
    assert spec_ok and buggy_denies and counter_spec and counter_buggy
    RESULTS["u54 pmp/superpage"] = "spec allows, U54 denies (too strict) -- workaround: no superpages"
    RESULTS["u54 counters"] = "spec gates on mcounteren, U54 ignores it (covert channel)"


def test_zz_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    banner("§6.4: validation findings")
    for name, value in RESULTS.items():
        emit(f"  {name}: {value}")
