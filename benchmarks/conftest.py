"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's tables/figures (see
DESIGN.md's experiment index).  Long-running verification benches run
once per measurement (``rounds=1``); set ``REPRO_FULL=1`` to run the
complete Figure 11 grid instead of the representative subset.
"""

import os

import pytest

FULL = os.environ.get("REPRO_FULL") == "1"


def run_once(benchmark, fn, *args, **kwargs):
    """Measure a single execution (verification runs are expensive and
    deterministic; repeated rounds only re-prove the same theorem)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


_REPORT_PATH = os.path.join(os.path.dirname(__file__), "..", "bench_report.txt")


def emit(line: str) -> None:
    """Print (visible with ``pytest -s``) and append to bench_report.txt
    (always, since pytest captures stdout by default)."""
    print(line)
    with open(_REPORT_PATH, "a") as handle:
        handle.write(line + "\n")


def banner(title: str) -> None:
    emit(f"\n===== {title} =====")
