"""Shared helpers for the benchmark harness.

Each bench regenerates one of the paper's tables/figures (see
DESIGN.md's experiment index).  Long-running verification benches run
once per measurement (``rounds=1``); set ``REPRO_FULL=1`` to run the
complete Figure 11 grid instead of the representative subset.

The harness also fronts the proof-obligation scheduler
(``repro.core.scheduler``): ``--jobs N`` feeds obligations to the
process-wide work-stealing pool, ``--cache`` memoizes solver verdicts
in the shared content-addressed verdict store (``repro.core.store``).
Runner activity is accumulated into a ``BENCH_runner.json`` artifact
(obligation count, wall time, cache hit rate, plus the scheduler's
steal/queue-depth/utilization telemetry), and the session exits
nonzero if a sequential-vs-parallel verdict divergence was recorded —
the regression guard for the scheduler's deterministic-reduction
promise.
"""

import json
import os

import pytest

FULL = os.environ.get("REPRO_FULL") == "1"

_REPO_ROOT = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
_REPORT_PATH = os.path.join(_REPO_ROOT, "bench_report.txt")
RUNNER_ARTIFACT = os.path.join(_REPO_ROOT, "BENCH_runner.json")
TRACE_ARTIFACT = os.path.join(_REPO_ROOT, "trace.json")
# The default store directory honors REPRO_CACHE_DIR so CI jobs and
# scripts/ci_local.sh can point every entry point at one shared store.
DEFAULT_CACHE_DIR = os.environ.get("REPRO_CACHE_DIR") or os.path.join(_REPO_ROOT, ".solvercache")

# Accumulated runner activity for the BENCH_runner.json artifact.
_RUNNER_LOG: dict = {"runs": [], "divergences": []}


def pytest_addoption(parser):
    group = parser.getgroup("repro-runner")
    group.addoption(
        "--jobs",
        action="store",
        type=int,
        default=1,
        help="worker processes for the proof-obligation runner (0 = all cores)",
    )
    group.addoption(
        "--cache",
        action="store_true",
        default=False,
        help="memoize solver verdicts in the persistent on-disk cache",
    )
    group.addoption(
        "--cache-dir",
        action="store",
        default=DEFAULT_CACHE_DIR,
        help=f"solver cache directory (default: {DEFAULT_CACHE_DIR})",
    )
    group.addoption(
        # Not --trace: pytest's own --trace (pdb on test start) owns it.
        "--obs-trace",
        action="store_true",
        default=False,
        help="collect a repro.obs trace for the whole session and write "
        f"the Chrome trace to {TRACE_ARTIFACT}",
    )


# Session-wide tracing state, populated by pytest_configure --trace.
_TRACE: dict = {}


def pytest_configure(config):
    if not config.getoption("--obs-trace", default=False):
        return
    from repro.obs import tracing
    from repro.sym.profiler import profile

    trace_ctx = tracing(absorb=False)
    profile_ctx = profile()
    _TRACE["collector"] = trace_ctx.__enter__()
    _TRACE["profiler"] = profile_ctx.__enter__()
    _TRACE["contexts"] = (profile_ctx, trace_ctx)


def _finish_trace() -> dict | None:
    """Close the session tracing context; returns the obs summary."""
    if not _TRACE:
        return None
    from repro.obs import summarize, write_chrome_trace

    profile_ctx, trace_ctx = _TRACE.pop("contexts")
    collector = _TRACE.pop("collector")
    profiler = _TRACE.pop("profiler")
    profile_ctx.__exit__(None, None, None)
    trace_ctx.__exit__(None, None, None)
    write_chrome_trace(collector, TRACE_ARTIFACT)
    return summarize(collector, profiler=profiler)


@pytest.fixture(scope="session")
def runner_opts(request):
    """(jobs, cache_dir) tuple resolved from the command line."""
    jobs = request.config.getoption("--jobs")
    cache = request.config.getoption("--cache")
    cache_dir = request.config.getoption("--cache-dir") if cache else None
    return jobs, cache_dir


def run_once(benchmark, fn, *args, **kwargs):
    """Measure a single execution (verification runs are expensive and
    deterministic; repeated rounds only re-prove the same theorem)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(line: str) -> None:
    """Print (visible with ``pytest -s``) and append to bench_report.txt
    (always, since pytest captures stdout by default)."""
    print(line)
    with open(_REPORT_PATH, "a") as handle:
        handle.write(line + "\n")


def banner(title: str) -> None:
    emit(f"\n===== {title} =====")


# ---------------------------------------------------------------------------
# Runner accounting and the BENCH_runner.json regression guard


# Scheduler telemetry carried per-run into the artifact when present
# (SchedulerStats.as_dict() emits them; the PR 2 pool path does not).
_SCHEDULER_FIELDS = (
    "steals",
    "retries",
    "timeouts",
    "max_queue_depth",
    "worker_restarts",
    "pool_workers",
    "utilization",
)


def record_runner_run(label: str, stats: dict, wall_time_s: float | None = None) -> None:
    """Log one runner invocation (``stats`` from ``ProofResult.stats``
    or ``RunnerStats``/``SchedulerStats`` ``.as_dict()``) into the
    artifact, including work-stealing telemetry when present."""
    entry = {
        "label": label,
        "obligations": stats.get("obligations", stats.get("num_vcs", 0)),
        "jobs": stats.get("jobs", 1),
        "wall_time_s": wall_time_s if wall_time_s is not None else stats.get("wall_time_s", 0.0),
        "cache_queries": stats.get("cache_queries", 0),
        "cache_hits": stats.get("cache_hits", 0),
    }
    for field in _SCHEDULER_FIELDS:
        if field in stats:
            entry[field] = stats[field]
    _RUNNER_LOG["runs"].append(entry)


def record_divergence(label: str, sequential, parallel) -> None:
    """Record a sequential-vs-parallel verdict mismatch (fails the session)."""
    _RUNNER_LOG["divergences"].append(
        {"label": label, "sequential": repr(sequential), "parallel": repr(parallel)}
    )


def guard_divergence(label: str, sequential, parallel) -> None:
    """Assert-and-record: verdicts must match exactly."""
    if sequential != parallel:
        record_divergence(label, sequential, parallel)


def runner_summary() -> dict:
    runs = _RUNNER_LOG["runs"]
    queries = sum(r["cache_queries"] for r in runs)
    hits = sum(r["cache_hits"] for r in runs)
    return {
        "cpu_count": os.cpu_count(),
        "obligations": sum(r["obligations"] for r in runs),
        "wall_time_s": sum(r["wall_time_s"] for r in runs),
        "cache_queries": queries,
        "cache_hits": hits,
        "cache_hit_rate": hits / queries if queries else 0.0,
        "steals": sum(r.get("steals", 0) for r in runs),
        "retries": sum(r.get("retries", 0) for r in runs),
        "timeouts": sum(r.get("timeouts", 0) for r in runs),
        "max_queue_depth": max((r.get("max_queue_depth", 0) for r in runs), default=0),
        "divergences": _RUNNER_LOG["divergences"],
        "runs": runs,
    }


def write_runner_artifact(path: str = RUNNER_ARTIFACT, obs: dict | None = None) -> dict:
    summary = runner_summary()
    if obs is not None:
        summary["obs"] = obs
    with open(path, "w") as handle:
        json.dump(summary, handle, indent=2)
    return summary


def pytest_sessionfinish(session, exitstatus):
    obs = _finish_trace()
    if not _RUNNER_LOG["runs"] and not _RUNNER_LOG["divergences"] and obs is None:
        return
    summary = write_runner_artifact(obs=obs)
    if summary["divergences"] and session.exitstatus == 0:
        session.exitstatus = 1
