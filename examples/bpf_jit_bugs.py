#!/usr/bin/env python3
"""Find the Linux BPF JIT bugs with the checker (§7).

Runs the per-instruction equivalence checker over each of the 15
cataloged historical bug variants (9 RISC-V, 6 x86-32), printing the
counterexample the verification produces — the raw material for the
regression tests the kernel patches added.  Then verifies the fixed
JITs clean over the same witnesses.

Run:  python examples/bpf_jit_bugs.py
"""

import time

from repro.bpf_jit import RV_BUGS, RvJit, X86Jit, X86_BUGS, check_rv_insn, check_x86_insn


def main() -> None:
    found = 0
    print("== hunting the 9 RISC-V JIT bugs")
    for bug in RV_BUGS:
        start = time.perf_counter()
        result = check_rv_insn(bug.witness, RvJit(bugs={bug.id}))
        assert not result.ok, bug.id
        found += 1
        print(f"   [{found:2}] {bug.id:<22} on {bug.witness!r}")
        print(f"        {bug.description[:70]}...")
        print(f"        counterexample: {str(result.counterexample)[:90]}  "
              f"({time.perf_counter() - start:.1f}s)")

    print("\n== hunting the 6 x86-32 JIT bugs")
    for bug in X86_BUGS:
        result = check_x86_insn(bug.witness, X86Jit(bugs={bug.id}))
        assert not result.ok, bug.id
        found += 1
        print(f"   [{found:2}] {bug.id:<22} on {bug.witness!r}")

    print(f"\n{found} bugs found via verification (paper: 15)")

    print("\n== the fixed JITs verify clean on every witness")
    for bug in RV_BUGS:
        assert check_rv_insn(bug.witness, RvJit()).ok, bug.id
    for bug in X86_BUGS:
        assert check_x86_insn(bug.witness, X86Jit()).ok, bug.id
    print("   all witnesses pass with the fixes applied")


if __name__ == "__main__":
    main()
