#!/usr/bin/env python3
"""CertiKOS^s: verify a security monitor from its binary image (§6.2).

Builds the monitor with the mini-C compiler, disassembles-and-
validates it with the RISC-V verifier, proves lock-step refinement for
every monitor call, and demonstrates the PID covert channel the
Nickel-style NI specification caught in the original spawn design.

Run:  python examples/certikos_demo.py   (takes a few minutes)
"""

import time

from repro.certikos import CertikosVerifier
from repro.certikos.ni import prove_small_step_properties, prove_spawn_targets_owned_child


def main() -> None:
    verifier = CertikosVerifier(opt=1)
    print(f"monitor image: {len(verifier.image.words)} instructions at O1")

    print("\n== binary-level refinement, one proof per monitor call")
    for op in ("get_quota", "yield", "spawn", "invalid"):
        start = time.perf_counter()
        result = verifier.prove_op(op)
        status = "proved" if result.proved else f"FAILED: {result.describe()}"
        print(f"   {op:<10} {status}  ({time.perf_counter() - start:.1f}s)")

    print("\n== the three small-step noninterference properties (§6.2)")
    for name, result in prove_small_step_properties().items():
        print(f"   {name:<18} {'proved' if result.proved else 'FAILED'}")

    print("\n== the PID covert channel (§6.2)")
    fixed = prove_spawn_targets_owned_child(implicit=False)
    print(f"   explicit-PID spawn flow-deterministic: {fixed.proved}")
    leaky = prove_spawn_targets_owned_child(implicit=True)
    print(f"   implicit-PID spawn flow-deterministic: {leaky.proved}")
    if not leaky.proved:
        print(f"   counterexample (the covert channel): {leaky.counterexample!r}"[:200])


if __name__ == "__main__":
    main()
