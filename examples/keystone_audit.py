#!/usr/bin/env python3
"""Audit Keystone with Serval (§7).

1. Write a functional spec for the monitor and prove safety properties
   over it; the nested-enclave-creation behaviour violates one — the
   first finding reported to Keystone's developers.
2. Prove that PMP alone guarantees isolation (no page-table checks
   needed) — the second finding.
3. Run the LLVM verifier's UB checks over the implementation, finding
   the oversized-shift and buffer-overflow bugs on the paths of three
   monitor calls.

Run:  python examples/keystone_audit.py
"""

from repro.keystone import (
    KEYSTONE_BUG_IDS,
    prove_enclave_independence,
    prove_pmp_sufficient,
    scan_for_ub,
)


def main() -> None:
    print("== interface analysis over the functional specification")
    fixed = prove_enclave_independence(allow_nested_create=False)
    print(f"   enclave independence (create restricted to host): {fixed.proved}")
    flawed = prove_enclave_independence(allow_nested_create=True)
    print(f"   ... with enclave-in-enclave creation allowed:      {flawed.proved}")
    if not flawed.proved:
        print(f"   counterexample: {str(flawed.counterexample)[:120]}")
        print("   -> finding 1: disallow creation of enclaves inside enclaves")

    pmp = prove_pmp_sufficient()
    print(f"   PMP alone isolates enclaves (any page tables):     {pmp.proved}")
    print("   -> finding 2: the monitor's page-table checks can be removed")

    print("\n== LLVM-verifier UB scan of the implementation")
    findings = scan_for_ub(set(KEYSTONE_BUG_IDS))
    for f in findings:
        print(f"   {f.function}: {f.message}")
    print(f"   {len(findings)} findings across 3 monitor calls "
          "(2 bug classes: oversized shift, buffer overflow)")

    print("\n== after the fixes")
    print(f"   UB findings on the fixed monitor: {scan_for_ub()}")


if __name__ == "__main__":
    main()
