#!/usr/bin/env python3
"""Komodo^s: verify the enclave monitor from its binary (§6.3).

Proves refinement for the enclave lifecycle calls (including the
InitL3PTable call added for RISC-V three-level paging), then the
Nickel-style noninterference properties and the litmus tests the paper
uses to compare NI specifications.

Run:  python examples/komodo_demo.py   (takes a few minutes)
"""

import time

from repro.komodo import (
    KomodoVerifier,
    exit_declassifies,
    prove_host_cannot_read_enclave,
    prove_removed_enclave_unobservable,
)


def main() -> None:
    verifier = KomodoVerifier(opt=1)
    print(f"monitor image: {len(verifier.image.words)} instructions at O1")

    print("\n== binary-level refinement")
    for op in ("init_addrspace", "init_l3ptable", "map_secure", "enter", "exit", "stop", "remove"):
        start = time.perf_counter()
        result = verifier.prove_op(op)
        status = "proved" if result.proved else f"FAILED: {result.describe()}"
        print(f"   {op:<16} {status}  ({time.perf_counter() - start:.1f}s)")

    print("\n== noninterference over the spec (Nickel-style, §6.3)")
    r = prove_host_cannot_read_enclave()
    print(f"   host view closed under management calls: {r.proved}")
    r = prove_removed_enclave_unobservable()
    print(f"   removed enclave's memory unobservable:   {r.proved}")
    print(f"   exit declassifies the exit value:        {exit_declassifies()} "
          "(intentional, per Komodo)")


if __name__ == "__main__":
    main()
