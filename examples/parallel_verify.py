#!/usr/bin/env python3
"""Parallel verification with the proof-obligation runner.

Serval's symbolic optimizations decompose verification into many
small, independent proof obligations (one per path / per handler).
This example shows the three ways to exploit that:

  1. ``check_batch``: hand a list of independent properties to the
     runner and let it fan them out across worker processes;
  2. ``verify_vcs(jobs=..., cache_dir=...)``: discharge the VCs of a
     symbolic evaluation in parallel, with verdicts memoized in the
     persistent solver cache;
  3. a warm re-run: alpha-equivalent queries hit the cache, so
     re-verifying is nearly free.

Run:  python examples/parallel_verify.py
"""

import os
import tempfile
import time

from repro.core import run_interpreter
from repro.sym import bv_val, check_batch, fresh_bv, new_context, verify_vcs
from repro.toyrisc import ToyCpu, ToyRISC, sign_program


def main() -> None:
    jobs = min(os.cpu_count() or 1, 4)
    print(f"== 1. check_batch: independent obligations across {jobs} worker(s)")
    x = fresh_bv("x", 32)
    obligations = [
        ("shift-is-mul", (x << 1) == x * 2, []),
        ("sub-self-zero", (x - x) == 0, []),
        ("and-idempotent", (x & x) == x, []),
        ("xor-self-zero", (x ^ x) == 0, []),
    ]
    start = time.perf_counter()
    results = check_batch(obligations, jobs=jobs)
    for (name, _, _), result in zip(obligations, results):
        print(f"   {name}: {'proved' if result.proved else result.describe()}")
    print(f"   ({time.perf_counter() - start:.2f}s)")

    print("== 2. verify_vcs with jobs + persistent cache")
    cache_dir = os.path.join(tempfile.gettempdir(), "repro-example-cache")
    program = sign_program()
    interp = ToyRISC(program)

    def prove_sign(tag: str) -> None:
        with new_context() as ctx:
            cpu = ToyCpu.symbolic(32)
            final = run_interpreter(interp, cpu).merged()
            a0, out = cpu.regs[0], final.regs[0]
            ctx.assert_prop(
                ((a0 == 0) & (out == 0))
                | ((a0 >> 31 == 1) & (out == bv_val(-1, 32).as_int()))
                | ((a0 != 0) & (a0 >> 31 == 0) & (out == 1)),
                "sign(a0) is -1/0/1 as appropriate",
            )
            start = time.perf_counter()
            result = verify_vcs(ctx, jobs=jobs, cache_dir=cache_dir)
            hits = result.stats.get("cache_hits", 0)
            queries = result.stats.get("cache_queries", 0)
            print(
                f"   {tag}: proved={result.proved} in {time.perf_counter() - start:.2f}s "
                f"({result.stats.get('obligations', 0)} obligations, "
                f"cache {hits}/{queries} hits)"
            )

    prove_sign("cold run")
    print("== 3. warm re-run (verdicts replayed from the cache)")
    prove_sign("warm run")


if __name__ == "__main__":
    main()
