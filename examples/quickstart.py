#!/usr/bin/env python3
"""Quickstart: verify the ToyRISC sign program (paper §3.2-§3.3).

Walks the paper's running example end to end:

  1. run the interpreter concretely (it is an emulator),
  2. lift it by running on symbolic state (Figure 5),
  3. prove state-machine refinement against a functional spec,
  4. prove step-consistency noninterference over the spec,
  5. show the symbolic profiler flagging fetch without split-pc.

Run:  python examples/quickstart.py
"""

import time

from repro.core import EngineOptions, run_interpreter
from repro.core.errors import EngineFuelExhausted
from repro.sym import bv_val, new_context, profile
from repro.toyrisc import (
    ToyCpu,
    ToyRISC,
    prove_sign_refinement,
    sign_program,
    step_consistency_holds,
)


def main() -> None:
    program = sign_program()
    interp = ToyRISC(program)

    print("== 1. concrete execution (the interpreter is an emulator)")
    for a0 in (42, 0, 2**32 - 7):
        cpu = ToyCpu(bv_val(0, 32), [bv_val(a0, 32), bv_val(0, 32)])
        with new_context():
            final = run_interpreter(interp, cpu).merged()
        print(f"   sign({a0:#x}) = {final.regs[0].as_int():#x}")

    print("== 2. symbolic execution (lifting: all behaviours at once)")
    with new_context():
        cpu = ToyCpu.symbolic(32)
        paths = run_interpreter(interp, cpu)
        print(f"   merged paths: {len(paths.finals)} final state(s), {paths.steps} steps")
        print(f"   final a0 = {paths.merged().regs[0]!r}")

    print("== 3. state-machine refinement (§3.3)")
    start = time.perf_counter()
    result = prove_sign_refinement(32)
    print(f"   refinement proved: {result.proved}  ({time.perf_counter() - start:.2f}s)")

    print("== 4. noninterference: step consistency over the spec")
    result = step_consistency_holds(32)
    print(f"   step consistency proved: {result.proved}")

    print("== 5. symbolic profiling without split-pc (§3.2)")
    with profile() as prof:
        with new_context():
            cpu = ToyCpu.symbolic(32)
            try:
                run_interpreter(
                    interp, cpu, EngineOptions(split_pc=False, fuel=3, max_union=1000)
                )
            except EngineFuelExhausted:
                pass
    print(prof.report(top=4))
    print("   (fetch explodes under a symbolic pc — split-pc repairs it)")


if __name__ == "__main__":
    main()
