#!/usr/bin/env python3
"""CI perf-regression gate: compare a fresh grid run to the committed baseline.

Usage: check_bench.py CURRENT.json BASELINE.json
           [--max-wall-regression 0.25] [--max-prop-growth 0.10]
       check_bench.py --serve BENCH_serve.json BENCH_serve_baseline.json
           [--max-throughput-drop 0.25] [--min-speedup 2.0]

Default mode fails (nonzero exit) when the current quick-grid artifact
regresses past the committed ``BENCH_baseline.json``:

  * wall time more than ``--max-wall-regression`` (default 25%) above
    the baseline's — generous enough to absorb CI machine variance,
    tight enough to catch a hot-loop regression;
  * ``sat.propagations`` more than ``--max-prop-growth`` (default 10%)
    above the baseline's — propagation counts are deterministic per
    query set, so this threshold can be much tighter than wall time.

Both artifacts must carry an ``obs.counters`` section (run the
benchmark with ``--trace``); a missing section is a hard failure so a
silently untraced run can never pass the gate.

``--serve`` mode gates the daemon load artifact written by
``scripts/load_serve.py``:

  * warm-phase obligations/sec must not drop more than
    ``--max-throughput-drop`` (default 25%) below the committed
    ``BENCH_serve_baseline.json``;
  * the warm/cold speedup must stay above ``--min-speedup`` (default
    2.0) — the shared-cache contract, machine-independent.
"""

import argparse
import json
import sys


def _load(path: str) -> dict:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def check_serve(current: dict, baseline: dict, args) -> int:
    """Gate the daemon load artifact (see module docstring)."""
    failures = []
    for name, doc in (("current", current), ("baseline", baseline)):
        for phase in ("cold", "warm"):
            if not isinstance(doc.get(phase), dict) or "obligations_per_s" not in doc[phase]:
                print(
                    f"FAIL: {name} artifact has no {phase}.obligations_per_s — "
                    "generate it with scripts/load_serve.py",
                    file=sys.stderr,
                )
                return 3

    cur_tput = current["warm"]["obligations_per_s"]
    base_tput = baseline["warm"]["obligations_per_s"]
    floor = base_tput * (1.0 - args.max_throughput_drop)
    print(
        f"warm obligations/sec: {cur_tput:.1f} vs baseline {base_tput:.1f} "
        f"(floor {floor:.1f})"
    )
    if base_tput and cur_tput < floor:
        failures.append(
            f"warm obligations/sec dropped: {cur_tput:.1f} < {floor:.1f} "
            f"(baseline {base_tput:.1f} - {args.max_throughput_drop:.0%})"
        )

    speedup = current.get("speedup", 0.0)
    print(f"warm/cold speedup: {speedup:.2f}x (need >= {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        failures.append(
            f"warm/cold speedup {speedup:.2f}x below {args.min_speedup:.2f}x — "
            "concurrent clients are not sharing the verdict cache"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve perf gate holds")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh BENCH_fig11.json from this run")
    parser.add_argument("baseline", help="committed BENCH_baseline.json")
    parser.add_argument("--max-wall-regression", type=float, default=0.25)
    parser.add_argument("--max-prop-growth", type=float, default=0.10)
    parser.add_argument(
        "--serve",
        action="store_true",
        help="gate a BENCH_serve.json load artifact instead of the grid benchmark",
    )
    parser.add_argument("--max-throughput-drop", type=float, default=0.25)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    args = parser.parse_args()

    current = _load(args.current)
    baseline = _load(args.baseline)

    if args.serve:
        return check_serve(current, baseline, args)

    failures = []
    for name, path, doc in (
        ("current", args.current, current),
        ("baseline", args.baseline, baseline),
    ):
        if not (doc.get("obs") or {}).get("counters"):
            print(
                f"FAIL: {name} artifact {path} has no obs.counters section — "
                "run the benchmark with --trace so the gate can compare "
                "propagation counts",
                file=sys.stderr,
            )
            return 3

    cur_wall = current.get("wall_s", 0.0)
    base_wall = baseline.get("wall_s", 0.0)
    wall_ceiling = base_wall * (1.0 + args.max_wall_regression)
    if base_wall and cur_wall > wall_ceiling:
        failures.append(
            f"wall time regressed: {cur_wall:.2f}s > {wall_ceiling:.2f}s "
            f"(baseline {base_wall:.2f}s + {args.max_wall_regression:.0%})"
        )

    cur_props = current["obs"]["counters"].get("sat.propagations", 0)
    base_props = baseline["obs"]["counters"].get("sat.propagations", 0)
    prop_ceiling = base_props * (1.0 + args.max_prop_growth)
    if base_props and cur_props > prop_ceiling:
        failures.append(
            f"sat.propagations grew: {cur_props} > {prop_ceiling:.0f} "
            f"(baseline {base_props} + {args.max_prop_growth:.0%})"
        )

    print(
        f"wall: {cur_wall:.2f}s vs baseline {base_wall:.2f}s "
        f"({base_wall / cur_wall:.2f}x)" if cur_wall else "wall: n/a"
    )
    if cur_props and base_props:
        print(
            f"sat.propagations: {cur_props} vs baseline {base_props} "
            f"({base_props / cur_props:.2f}x)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf gate holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
