#!/usr/bin/env python3
"""CI perf-regression gate: compare a fresh grid run to the committed baseline.

Usage: check_bench.py CURRENT.json BASELINE.json
           [--max-wall-regression 0.25] [--max-prop-growth 0.10]
       check_bench.py --serve BENCH_serve.json BENCH_serve_baseline.json
           [--max-throughput-drop 0.25] [--min-speedup 2.0]
       check_bench.py --certs BENCH_with_certs.json BENCH_no_certs.json
           [--max-cert-overhead 0.10]
       check_bench.py --remote BENCH_remote.json [--min-hit-rate 0.9]

Default mode fails (nonzero exit) when the current quick-grid artifact
regresses past the committed ``BENCH_baseline.json``:

  * wall time more than ``--max-wall-regression`` (default 25%) above
    the baseline's — generous enough to absorb CI machine variance,
    tight enough to catch a hot-loop regression;
  * ``sat.propagations`` more than ``--max-prop-growth`` (default 10%)
    above the baseline's — propagation counts are deterministic per
    query set, so this threshold can be much tighter than wall time.

Both artifacts must carry an ``obs.counters`` section (run the
benchmark with ``--trace``); a missing section is a hard failure so a
silently untraced run can never pass the gate.

``--serve`` mode gates the daemon load artifact written by
``scripts/load_serve.py``:

  * warm-phase obligations/sec must not drop more than
    ``--max-throughput-drop`` (default 25%) below the committed
    ``BENCH_serve_baseline.json``;
  * the warm/cold speedup must stay above ``--min-speedup`` (default
    2.0) — the shared-cache contract, machine-independent.

``--certs`` mode gates proof-certificate emission cost: the first
artifact is a cold quick-grid run with certificates on, the second the
same grid with ``REPRO_NO_CERTS=1``.  Wall time with certificates must
stay within ``--max-cert-overhead`` (default 10%) of the cert-less
run, so "every verdict ships a checkable proof" never becomes a tax
anyone is tempted to switch off (the escape hatch exists regardless:
``REPRO_NO_CERTS=1``, documented in docs/CERTIFICATES.md).

``--remote`` mode gates the two-process shared-store artifact written
by ``scripts/load_serve.py --remote`` — no committed baseline, the
thresholds are absolute:

  * the cold client fleet (empty local store, warm remote) must reach
    ``--min-hit-rate`` (default 90%) combined cache hit rate, with
    ``store.remote.hits > 0`` proving the hits actually crossed the
    wire and ``rejected_certs == 0`` proving every adopted verdict
    carried a checkable certificate;
  * the degraded phase (store server killed) must still finish
    ``done`` with the same verdict map and ``store.remote.errors > 0``
    — the outage was real and it never escaped into a solve.
"""

import argparse
import json
import sys


def _load(path: str) -> dict:
    try:
        with open(path) as handle:
            return json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read {path}: {exc}", file=sys.stderr)
        raise SystemExit(2)


def check_serve(current: dict, baseline: dict, args) -> int:
    """Gate the daemon load artifact (see module docstring)."""
    failures = []
    for name, doc in (("current", current), ("baseline", baseline)):
        for phase in ("cold", "warm"):
            if not isinstance(doc.get(phase), dict) or "obligations_per_s" not in doc[phase]:
                print(
                    f"FAIL: {name} artifact has no {phase}.obligations_per_s — "
                    "generate it with scripts/load_serve.py",
                    file=sys.stderr,
                )
                return 3

    cur_tput = current["warm"]["obligations_per_s"]
    base_tput = baseline["warm"]["obligations_per_s"]
    floor = base_tput * (1.0 - args.max_throughput_drop)
    print(
        f"warm obligations/sec: {cur_tput:.1f} vs baseline {base_tput:.1f} "
        f"(floor {floor:.1f})"
    )
    if base_tput and cur_tput < floor:
        failures.append(
            f"warm obligations/sec dropped: {cur_tput:.1f} < {floor:.1f} "
            f"(baseline {base_tput:.1f} - {args.max_throughput_drop:.0%})"
        )

    speedup = current.get("speedup", 0.0)
    print(f"warm/cold speedup: {speedup:.2f}x (need >= {args.min_speedup:.2f}x)")
    if speedup < args.min_speedup:
        failures.append(
            f"warm/cold speedup {speedup:.2f}x below {args.min_speedup:.2f}x — "
            "concurrent clients are not sharing the verdict cache"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("serve perf gate holds")
    return 0


def check_certs(current: dict, baseline: dict, args) -> int:
    """Gate certificate-emission overhead: ``current`` ran with certs
    on, ``baseline`` is the same grid with ``REPRO_NO_CERTS=1``."""
    cur_wall = current.get("wall_s")
    base_wall = baseline.get("wall_s")
    for name, wall, path in (
        ("with-certs", cur_wall, args.current),
        ("no-certs", base_wall, args.baseline),
    ):
        if not isinstance(wall, (int, float)) or wall <= 0:
            print(
                f"FAIL: {name} artifact {path} has no positive wall_s — "
                "generate both artifacts with bench_fig11_verify.py --quick",
                file=sys.stderr,
            )
            return 3
    counters = ((current.get("obs") or {}).get("counters") or {})
    certs = counters.get("solver.certs", 0)
    if not certs:
        print(
            "FAIL: with-certs run emitted no certificates — the overhead "
            "gate would be vacuous (was REPRO_NO_CERTS set, or --cache missing?)",
            file=sys.stderr,
        )
        return 1
    cert_s = counters.get("solver.cert_build_s")
    if isinstance(cert_s, (int, float)) and cert_s >= 0:
        # Preferred: the solver accumulates actual emission seconds in a
        # counter, so the ratio is measured within one run instead of
        # differencing two walls (which flakes on noisy CI machines —
        # quick-grid walls vary more than the 10% being gated).
        overhead = cert_s / cur_wall
        print(
            f"cert overhead: {cert_s * 1000:.0f}ms emitting {certs} certificates "
            f"in a {cur_wall:.2f}s run = {overhead:.1%} of wall "
            f"(cap {args.max_cert_overhead:.0%}; no-certs wall {base_wall:.2f}s)"
        )
    else:
        overhead = cur_wall / base_wall - 1.0
        print(
            f"cert overhead: {cur_wall:.2f}s with certs ({certs} emitted) vs "
            f"{base_wall:.2f}s without = {overhead:+.1%} (cap {args.max_cert_overhead:.0%})"
        )
    if overhead > args.max_cert_overhead:
        print(
            f"FAIL: certificate emission costs {overhead:.1%} wall, above the "
            f"{args.max_cert_overhead:.0%} cap",
            file=sys.stderr,
        )
        return 1
    print("cert overhead gate holds")
    return 0


def check_remote(current: dict, args) -> int:
    """Gate the two-process shared-store artifact (see module
    docstring).  Absolute thresholds, no baseline artifact."""
    failures = []
    for phase in ("warm", "cold", "degraded"):
        if not isinstance(current.get(phase), dict):
            print(
                f"FAIL: artifact has no {phase} phase — generate it with "
                "scripts/load_serve.py --remote",
                file=sys.stderr,
            )
            return 3

    cold = current["cold"]
    hit_rate = cold.get("hit_rate", 0.0)
    print(
        f"cold fleet hit rate: {hit_rate:.1%} "
        f"({cold.get('cache_hits', 0)}/{cold.get('cache_queries', 0)}, "
        f"need >= {args.min_hit_rate:.0%})"
    )
    if hit_rate < args.min_hit_rate:
        failures.append(
            f"cold fleet hit rate {hit_rate:.1%} below {args.min_hit_rate:.0%} — "
            "the shared store is not answering the fleet's queries"
        )
    remote_hits = cold.get("remote_hits", 0)
    print(f"cold store.remote.hits: {remote_hits} (need > 0)")
    if remote_hits <= 0:
        failures.append(
            "cold phase counted no store.remote.hits — the 'hits' never "
            "crossed the wire, so the topology gate is vacuous"
        )
    rejected = cold.get("rejected_certs", 0)
    if rejected:
        failures.append(
            f"cold phase rejected {rejected} remote certificates — the warm "
            "fleet pushed verdicts whose proofs do not check"
        )

    degraded = current["degraded"]
    print(
        f"degraded phase: state={degraded.get('state')} "
        f"verdicts_equal={degraded.get('verdicts_equal')} "
        f"remote_errors={degraded.get('remote_errors', 0)}"
    )
    if degraded.get("state") != "done":
        failures.append(
            f"degraded job finished {degraded.get('state')!r}, expected done — "
            "a dead store server must not take the fleet down"
        )
    if not degraded.get("verdicts_equal"):
        failures.append("degraded phase verdicts diverged from the warm phase")
    if degraded.get("remote_errors", 0) <= 0:
        failures.append(
            "degraded phase counted no store.remote.errors — the outage was "
            "never exercised"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("remote store gate holds")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="fresh BENCH_fig11.json from this run")
    parser.add_argument(
        "baseline",
        nargs="?",
        help="committed BENCH_baseline.json (not used by --remote)",
    )
    parser.add_argument("--max-wall-regression", type=float, default=0.25)
    parser.add_argument("--max-prop-growth", type=float, default=0.10)
    parser.add_argument(
        "--serve",
        action="store_true",
        help="gate a BENCH_serve.json load artifact instead of the grid benchmark",
    )
    parser.add_argument("--max-throughput-drop", type=float, default=0.25)
    parser.add_argument("--min-speedup", type=float, default=2.0)
    parser.add_argument(
        "--certs",
        action="store_true",
        help="gate certificate-emission overhead: CURRENT ran with certs, "
        "BASELINE with REPRO_NO_CERTS=1",
    )
    parser.add_argument("--max-cert-overhead", type=float, default=0.10)
    parser.add_argument(
        "--remote",
        action="store_true",
        help="gate a BENCH_remote.json shared-store artifact (absolute "
        "thresholds, no baseline argument)",
    )
    parser.add_argument("--min-hit-rate", type=float, default=0.90)
    args = parser.parse_args()

    current = _load(args.current)
    if args.remote:
        return check_remote(current, args)

    if args.baseline is None:
        parser.error("baseline artifact is required outside --remote mode")
    baseline = _load(args.baseline)

    if args.serve:
        return check_serve(current, baseline, args)
    if args.certs:
        return check_certs(current, baseline, args)

    failures = []
    for name, path, doc in (
        ("current", args.current, current),
        ("baseline", args.baseline, baseline),
    ):
        if not (doc.get("obs") or {}).get("counters"):
            print(
                f"FAIL: {name} artifact {path} has no obs.counters section — "
                "run the benchmark with --trace so the gate can compare "
                "propagation counts",
                file=sys.stderr,
            )
            return 3

    cur_wall = current.get("wall_s", 0.0)
    base_wall = baseline.get("wall_s", 0.0)
    wall_ceiling = base_wall * (1.0 + args.max_wall_regression)
    if base_wall and cur_wall > wall_ceiling:
        failures.append(
            f"wall time regressed: {cur_wall:.2f}s > {wall_ceiling:.2f}s "
            f"(baseline {base_wall:.2f}s + {args.max_wall_regression:.0%})"
        )

    cur_props = current["obs"]["counters"].get("sat.propagations", 0)
    base_props = baseline["obs"]["counters"].get("sat.propagations", 0)
    prop_ceiling = base_props * (1.0 + args.max_prop_growth)
    if base_props and cur_props > prop_ceiling:
        failures.append(
            f"sat.propagations grew: {cur_props} > {prop_ceiling:.0f} "
            f"(baseline {base_props} + {args.max_prop_growth:.0%})"
        )

    print(
        f"wall: {cur_wall:.2f}s vs baseline {base_wall:.2f}s "
        f"({base_wall / cur_wall:.2f}x)" if cur_wall else "wall: n/a"
    )
    if cur_props and base_props:
        print(
            f"sat.propagations: {cur_props} vs baseline {base_props} "
            f"({base_props / cur_props:.2f}x)"
        )

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("perf gate holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
