#!/usr/bin/env python3
"""CI trace smoke: assert an exported Chrome trace is well-formed and
actually covers the instrumented stack.

Usage: check_trace.py trace.json [--require-layers sym,bitblast,...]

Checks:

  * the document passes ``repro.obs.validate_chrome_trace`` (required
    keys, event shape, microsecond timestamps, non-negative durations);
  * every required layer category contributed at least one span — by
    default all five Figure-1 layers (``sym``, ``bitblast``, ``sat``,
    ``solver-cache``, ``scheduler``), so a refactor that silently
    disconnects one layer's instrumentation fails CI here rather than
    shipping empty traces.

Exits nonzero on any violation.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"))

from repro.obs import LAYER_CATEGORIES, validate_chrome_trace  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", help="Chrome trace JSON (trace.json)")
    parser.add_argument(
        "--require-layers",
        default=",".join(LAYER_CATEGORIES),
        help="comma-separated span categories that must be present",
    )
    args = parser.parse_args()

    try:
        with open(args.trace) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        print(f"FAIL: cannot read {args.trace}: {exc}", file=sys.stderr)
        return 2

    failures = list(validate_chrome_trace(doc))

    events = doc.get("traceEvents", []) if isinstance(doc, dict) else []
    present: dict[str, int] = {}
    for event in events:
        if isinstance(event, dict):
            cat = event.get("cat")
            if isinstance(cat, str):
                present[cat] = present.get(cat, 0) + 1

    required = [layer for layer in args.require_layers.split(",") if layer]
    for layer in required:
        if not present.get(layer):
            failures.append(f"no spans from layer {layer!r}")

    print(f"{args.trace}: {len(events)} events")
    for cat in sorted(present):
        print(f"  {cat:<14} {present[cat]:>8} spans")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"trace OK ({', '.join(required)} all present)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
