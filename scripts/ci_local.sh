#!/usr/bin/env bash
# Local dry-run of .github/workflows/ci.yml: same jobs, same commands,
# on whatever Python is installed.  Run from the repository root:
#
#     bash scripts/ci_local.sh [--skip-slow]
#
# The lint job needs ruff; when it is not installed the job is skipped
# with a warning instead of failing (CI always runs it).
set -u

cd "$(dirname "$0")/.."
export PYTHONPATH=src

skip_slow=0
for arg in "$@"; do
    case "$arg" in
        --skip-slow) skip_slow=1 ;;
        *) echo "unknown option: $arg" >&2; exit 2 ;;
    esac
done

failures=0
run_job() {
    local name="$1"; shift
    echo
    echo "=== job: $name ==="
    if "$@"; then
        echo "=== job: $name OK ==="
    else
        echo "=== job: $name FAILED ==="
        failures=$((failures + 1))
    fi
}

# -- lint ------------------------------------------------------------
if command -v ruff >/dev/null 2>&1; then
    run_job lint ruff check .
else
    echo "=== job: lint SKIPPED (ruff not installed; CI runs it) ==="
fi

# -- test-fast -------------------------------------------------------
run_job test-fast python -m pytest -x -q -m "not slow"

# -- test-slow -------------------------------------------------------
if [ "$skip_slow" -eq 1 ]; then
    echo "=== job: test-slow SKIPPED (--skip-slow) ==="
else
    run_job test-slow python -m pytest -x -q -m slow
fi

# -- sat-stress ------------------------------------------------------
# DIMACS corpus agreement (arena / arena-nochrono / legacy) plus
# incremental-vs-fresh obligation verdict equality.
run_job sat-stress python scripts/sat_stress.py

# -- grid-cold / grid-warm -------------------------------------------
# Mirrors CI's two-job shared-store pipeline: the cold "machine" runs
# the Figure 11 quick grid and exports its verdict store as a tar.gz;
# the warm "machine" (a separate empty store directory) imports it and
# must hit >= 90% without re-proving anything.
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT
run_job grid-cold python benchmarks/bench_fig11_verify.py \
    --jobs 2 --cache --cache-dir "$tmp/store-cold" \
    --quick --compare-sequential --out "$tmp/cold.json" \
    --trace --trace-out "$tmp/trace.json"
run_job grid-perf-gate python scripts/check_bench.py \
    BENCH_fig11.json BENCH_baseline.json
run_job grid-trace-smoke python scripts/check_trace.py "$tmp/trace.json"
run_job grid-profile-report python -m repro.obs.report BENCH_fig11.json
run_job grid-cold-export python -m repro.core.store \
    --store "$tmp/store-cold" export "$tmp/verdicts.tar.gz"
run_job grid-warm-import python -m repro.core.store \
    --store "$tmp/store-warm" import "$tmp/verdicts.tar.gz"
run_job grid-warm python benchmarks/bench_fig11_verify.py \
    --jobs 2 --cache --cache-dir "$tmp/store-warm" \
    --quick --out "$tmp/warm.json" \
    --trace --trace-out "$tmp/warm_trace.json"
run_job grid-assert python scripts/compare_runner_runs.py \
    "$tmp/cold.json" "$tmp/warm.json" --allow-slower

# -- serve-load ------------------------------------------------------
# Boots the repro.serve daemon on a fresh store, drives 8 concurrent
# clients through the quick grid (cold then warm), checks verdict maps
# against the sequential run, and gates warm throughput + the >= 2x
# shared-cache speedup against the committed baseline.  Mid-load it
# scrapes /metrics as Prometheus text (every sample must parse) and
# finishes with an obs.top --once --json snapshot (non-zero ob/s,
# p50 <= p99) — both checks live inside load_serve.py.
run_job serve-load python scripts/load_serve.py \
    --clients 8 --out "$tmp/BENCH_serve.json" \
    --prom-out "$tmp/metrics.prom" --top-out "$tmp/top.json"
run_job serve-perf-gate python scripts/check_bench.py --serve \
    "$tmp/BENCH_serve.json" BENCH_serve_baseline.json

# -- store-remote ----------------------------------------------------
# Distributed store: fault-injection suite, then the two-process
# topology (store server + cold client daemons) gated on >= 90% cold
# hit rate and clean degradation when the server is killed.
run_job store-remote-tests python -m pytest -x -q tests/test_remote_store.py
run_job store-remote-topology python scripts/load_serve.py \
    --remote --out "$tmp/BENCH_remote.json"
run_job store-remote-gate python scripts/check_bench.py \
    --remote "$tmp/BENCH_remote.json"

echo
if [ "$failures" -gt 0 ]; then
    echo "ci_local: $failures job(s) failed"
    exit 1
fi
echo "ci_local: all jobs passed"
