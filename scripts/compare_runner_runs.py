#!/usr/bin/env python3
"""CI cache-warm assertion: compare two BENCH_runner.json artifacts.

Usage: compare_runner_runs.py COLD.json WARM.json
           [--min-hit-rate 0.9] [--allow-slower]

Asserts the shared-verdict-store contract between a cold run and a
warm run against the same (possibly exported/imported) store:

  * neither run recorded a sequential-vs-parallel verdict divergence;
  * both runs report identical per-obligation verdicts (the scheduler's
    determinism promise, across work-stealing, machines, and the store);
  * the warm run's solver-cache hit rate clears the floor;
  * the warm run was faster than the cold run — skipped with
    ``--allow-slower``, which CI uses when the two runs execute on
    different machines (a hit rate comparison stays honest across
    hosts; a wall-clock comparison does not).

Exits nonzero on any violation.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("cold")
    parser.add_argument("warm")
    parser.add_argument("--min-hit-rate", type=float, default=0.9)
    parser.add_argument(
        "--allow-slower",
        action="store_true",
        help="skip the warm-faster-than-cold check (runs on different machines)",
    )
    args = parser.parse_args()

    with open(args.cold) as handle:
        cold = json.load(handle)
    with open(args.warm) as handle:
        warm = json.load(handle)

    failures = []
    for name, run in (("cold", cold), ("warm", warm)):
        if run.get("divergences"):
            failures.append(f"{name} run recorded verdict divergences: {run['divergences']}")

    cold_verdicts = cold.get("verdicts")
    warm_verdicts = warm.get("verdicts")
    if cold_verdicts is not None and warm_verdicts is not None:
        if set(cold_verdicts) != set(warm_verdicts):
            failures.append(
                "verdict maps cover different obligations: "
                f"{sorted(set(cold_verdicts) ^ set(warm_verdicts))}"
            )
        else:
            mismatched = [k for k in cold_verdicts if cold_verdicts[k] != warm_verdicts[k]]
            if mismatched:
                failures.append(f"verdicts diverged between runs: {mismatched}")

    cold_wall = cold.get("wall_time_s", 0.0)
    warm_wall = warm.get("wall_time_s", 0.0)
    if not args.allow_slower and (not warm_wall or warm_wall >= cold_wall):
        failures.append(f"warm run not faster: cold={cold_wall:.2f}s warm={warm_wall:.2f}s")

    hit_rate = warm.get("cache_hit_rate", 0.0)
    if hit_rate < args.min_hit_rate:
        failures.append(f"warm hit rate {hit_rate:.2%} below floor {args.min_hit_rate:.0%}")

    def describe(name, run):
        line = (
            f"{name}: {run.get('wall_time_s', 0.0):.2f}s "
            f"({run.get('obligations', 0)} obligations, "
            f"hit rate {run.get('cache_hit_rate', 0.0):.2%}"
        )
        if "steals" in run:
            line += f", steals {run['steals']}, max queue depth {run.get('max_queue_depth', 0)}"
        return line + ")"

    print(describe("cold", cold))
    print(describe("warm", warm))
    if warm_wall and cold_wall:
        print(f"speedup {cold_wall / warm_wall:.2f}x")
    for name, path, run in (("cold", args.cold, cold), ("warm", args.warm, warm)):
        if not (run.get("obs") or {}).get("counters"):
            print(
                f"FAIL: {name} artifact {path} has no obs section — "
                "re-run with --trace so the counter diff can be checked",
                file=sys.stderr,
            )
            return 4
    diff_obs(cold, warm)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("cache-warm contract holds")
    return 0


def diff_obs(cold: dict, warm: dict) -> None:
    """Informational diff of the two runs' ``obs`` counter sections.

    A warm run re-solves nothing, so its SAT-layer work (conflicts,
    decisions, learned clauses) should drop to ~zero while the
    solver-cache hit counters rise — this prints the counters whose
    values moved so that regression is visible in the CI log.  Purely
    informational: timings and absolute counts legitimately differ
    between machines, so nothing here fails the comparison.
    """
    cold_counters = (cold.get("obs") or {}).get("counters") or {}
    warm_counters = (warm.get("obs") or {}).get("counters") or {}
    print("obs counter deltas (cold -> warm):")
    for name in sorted(set(cold_counters) | set(warm_counters)):
        before = cold_counters.get(name, 0)
        after = warm_counters.get(name, 0)
        if before != after:
            print(f"  {name:<40} {before:>12} -> {after:<12}")


if __name__ == "__main__":
    sys.exit(main())
