#!/usr/bin/env python3
"""CI cache-warm assertion: compare two BENCH_runner.json artifacts.

Usage: compare_runner_runs.py COLD.json WARM.json [--min-hit-rate 0.9]

Asserts that the warm (second) run was faster than the cold run and
that its solver-cache hit rate clears the floor — the contract the
persistent cache exists to uphold.  Exits nonzero on violation or on
any recorded sequential-vs-parallel divergence.
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("cold")
    parser.add_argument("warm")
    parser.add_argument("--min-hit-rate", type=float, default=0.9)
    args = parser.parse_args()

    with open(args.cold) as handle:
        cold = json.load(handle)
    with open(args.warm) as handle:
        warm = json.load(handle)

    failures = []
    for name, run in (("cold", cold), ("warm", warm)):
        if run.get("divergences"):
            failures.append(f"{name} run recorded verdict divergences: {run['divergences']}")

    cold_wall = cold.get("wall_time_s", 0.0)
    warm_wall = warm.get("wall_time_s", 0.0)
    if not warm_wall or warm_wall >= cold_wall:
        failures.append(f"warm run not faster: cold={cold_wall:.2f}s warm={warm_wall:.2f}s")

    hit_rate = warm.get("cache_hit_rate", 0.0)
    if hit_rate < args.min_hit_rate:
        failures.append(f"warm hit rate {hit_rate:.2%} below floor {args.min_hit_rate:.0%}")

    print(
        f"cold: {cold_wall:.2f}s ({cold.get('obligations', 0)} obligations, "
        f"hit rate {cold.get('cache_hit_rate', 0.0):.2%})"
    )
    print(
        f"warm: {warm_wall:.2f}s ({warm.get('obligations', 0)} obligations, "
        f"hit rate {hit_rate:.2%}); speedup {cold_wall / warm_wall if warm_wall else 0:.2f}x"
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("cache-warm contract holds")
    return 0


if __name__ == "__main__":
    sys.exit(main())
