#!/usr/bin/env python3
"""Load/soak driver for the verification daemon (``repro.serve``).

Boots a daemon on a fresh store (or targets ``--url``), then drives it
through two phases and writes the ``BENCH_serve.json`` artifact CI
gates on:

  * **cold** — one client submits one grid job against the empty
    store: the baseline cost of actually proving everything;
  * **warm** — ``--clients`` concurrent clients (CI uses 8) each
    submit ``--rounds`` grid jobs: every job re-verifies the same
    grid, so the shared content-addressed store should answer almost
    every solver query.

Checks, all hard failures:

  * every job (cold, warm, and the in-process sequential reference)
    reports the *identical* verdict map — the daemon's determinism
    contract;
  * every job finishes ``done``;
  * warm obligations/sec must beat cold by ``--require-speedup``
    (default 2.0; the shared-cache contract.  0 disables);
  * ``/metrics`` scraped as Prometheus text *during* the warm phase
    must parse cleanly on every sample and include the
    ``repro_obligation_wall_seconds`` histogram (the last scrape is
    kept as the ``--prom-out`` artifact);
  * ``python -m repro.obs.top --once --json`` against the loaded
    daemon must report non-zero ob/s with p50 <= p99 (saved as the
    ``--top-out`` artifact).

Artifact shape::

    {"clients": 8, "rounds": 2, "grid": "fig11-quick", "opt": 1,
     "cold": {"wall_s": ..., "obligations": ..., "obligations_per_s": ...},
     "warm": {"wall_s": ..., "obligations": ..., "obligations_per_s": ...,
              "jobs": 16, "p50_ms": ..., "p99_ms": ...,
              "cache_queries": ..., "cache_hits": ...},
     "speedup": ..., "verdicts": {"certikos.get_quota": true, ...}}

``scripts/check_bench.py --serve`` compares the artifact against the
committed ``BENCH_serve_baseline.json`` (warm throughput must not drop
more than 25%).
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def _percentile(values, q):
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


class _AnnouncingProcess:
    """A child process that announces its URL on stdout."""

    ANNOUNCE = "serving on "

    @staticmethod
    def argv(store_dir: str) -> list:
        raise NotImplementedError

    def __init__(self, store_dir: str, extra_env: dict | None = None):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(REPO_ROOT, "src"), env.get("PYTHONPATH")) if p
        )
        if extra_env:
            env.update(extra_env)
        self.process = subprocess.Popen(
            [sys.executable, *self.argv(store_dir)],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        self.url = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = self.process.stdout.readline()
            if not line:
                break
            if line.startswith(self.ANNOUNCE):
                self.url = line.split(self.ANNOUNCE, 1)[1].strip()
                break
        if self.url is None:
            self.stop()
            raise RuntimeError(
                f"{type(self).__name__} did not announce its address within 60s"
            )
        # Drain further output so the child never blocks on a full pipe.
        threading.Thread(
            target=lambda: [None for _ in self.process.stdout], daemon=True
        ).start()

    def stop(self):
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                self.process.kill()
                self.process.wait()


class DaemonProcess(_AnnouncingProcess):
    """A ``python -m repro.serve`` child on an ephemeral port."""

    ANNOUNCE = "serving on "

    @staticmethod
    def argv(store_dir: str) -> list:
        return ["-m", "repro.serve", "--port", "0", "--store", store_dir]


class StoreServerProcess(_AnnouncingProcess):
    """A ``python -m repro.core.store serve`` child (the shared store
    in the two-process topology)."""

    ANNOUNCE = "store serving on "

    @staticmethod
    def argv(store_dir: str) -> list:
        return ["-m", "repro.core.store", "--store", store_dir, "serve", "--port", "0"]


def _drive_job(client, grid, opt, timeout_s):
    """Submit one grid job and wait it out; returns (latency_s, final)."""
    start = time.perf_counter()
    job = client.submit_grid(grid, opt=opt)
    final = client.wait(job["id"], timeout_s=timeout_s)
    return time.perf_counter() - start, final


def _phase_summary(wall_s, finals, latencies):
    obligations = sum(f["stats"].get("obligations", 0) for f in finals)
    return {
        "wall_s": wall_s,
        "jobs": len(finals),
        "obligations": obligations,
        "obligations_per_s": obligations / wall_s if wall_s > 0 else 0.0,
        "p50_ms": _percentile(latencies, 0.50) * 1000.0,
        "p99_ms": _percentile(latencies, 0.99) * 1000.0,
        "cache_queries": sum(f["stats"].get("cache_queries", 0) for f in finals),
        "cache_hits": sum(f["stats"].get("cache_hits", 0) for f in finals),
    }


def _sequential_reference(grid, opt):
    """The grid's verdict map from a plain in-process sequential run
    (jobs=1, no cache) — the baseline the daemon must reproduce."""
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.serve.grids import run_grid

    verdicts, _ = run_grid(grid, opt=opt, jobs=1, cache_dir=None)
    return verdicts


def run_remote(args) -> int:
    """Two-process shared-store topology (``--remote``).

    One store server process holds the fleet's verdicts; daemon
    processes (with ``REPRO_REMOTE_STORE`` pointing at it) play the
    fleet.  Three phases:

      1. **warm** — a daemon on an empty local store proves the grid
         and writes back through the spool (any backlog is pushed with
         the ``store flush`` CLI after the daemon exits);
      2. **cold** — a fresh daemon on an *empty* local store re-proves
         the grid: nearly every query should be answered by the remote
         (the ≥90% combined hit-rate gate), every adopted verdict
         carrying a certificate that passes an independent
         ``checkproof --require-certs`` audit;
      3. **degraded** — the store server is killed and another cold
         daemon runs the grid: it must finish ``done`` with identical
         verdicts, remote errors counted, never raised.

    Writes ``BENCH_remote.json`` for ``check_bench.py --remote``.
    """
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.serve.client import ServeClient

    failures = []
    tmp = tempfile.TemporaryDirectory(prefix="repro-remote-load-")
    server_store = os.path.join(tmp.name, "server-store")
    print(f"booting store server (store: {server_store}) ...")
    store_server = StoreServerProcess(server_store)
    print(f"store server: {store_server.url}")
    remote_env = {
        "REPRO_REMOTE_STORE": store_server.url,
        "REPRO_REMOTE_TIMEOUT_S": "10",
        "REPRO_REMOTE_BACKOFF_S": "0.5",
    }
    artifact = {"grid": args.grid, "opt": args.opt, "store_server": store_server.url}

    def grid_phase(label, local_store, extra_env):
        daemon = DaemonProcess(local_store, extra_env=extra_env)
        try:
            client = ServeClient(daemon.url, timeout_s=args.job_timeout)
            start = time.perf_counter()
            latency, final = _drive_job(client, args.grid, args.opt, args.job_timeout)
            wall = time.perf_counter() - start
            phase = _phase_summary(wall, [final], [latency])
            phase["state"] = final["state"]
            verdicts = client.verdict_map(final["id"])
            counters = ((client.metrics().get("obs") or {}).get("counters") or {})
            phase["remote_hits"] = counters.get("store.remote.hits", 0)
            phase["remote_errors"] = counters.get("store.remote.errors", 0)
            phase["rejected_certs"] = counters.get("store.remote.rejected_certs", 0)
            queries, hits = phase["cache_queries"], phase["cache_hits"]
            phase["hit_rate"] = hits / queries if queries else 0.0
            print(
                f"{label}: state={phase['state']} "
                f"cache {hits}/{queries} ({phase['hit_rate']:.0%}), "
                f"remote hits={phase['remote_hits']} "
                f"errors={phase['remote_errors']} "
                f"rejected={phase['rejected_certs']}"
            )
            return phase, verdicts
        finally:
            daemon.stop()

    def run_cli(label, argv):
        proc = subprocess.run(
            [sys.executable, *argv],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={
                **os.environ,
                "PYTHONPATH": os.pathsep.join(
                    p
                    for p in (os.path.join(REPO_ROOT, "src"), os.environ.get("PYTHONPATH"))
                    if p
                ),
            },
        )
        if proc.stdout.strip():
            print(proc.stdout.strip())
        if proc.returncode != 0:
            failures.append(
                f"{label} exited {proc.returncode}: {proc.stderr.strip()[-500:]}"
            )
        return proc.returncode

    try:
        # -- phase 1: warm the shared store ------------------------------
        warm_store = os.path.join(tmp.name, "warm-store")
        warm, warm_verdicts = grid_phase("warm", warm_store, remote_env)
        if warm["state"] != "done":
            failures.append(f"warm job finished {warm['state']}, expected done")
        # Push whatever the background flusher had not drained when the
        # daemon exited, then confirm the server actually holds verdicts.
        run_cli(
            "store flush",
            ["-m", "repro.core.store", "--store", warm_store, "flush",
             "--remote", store_server.url],
        )
        import urllib.request

        with urllib.request.urlopen(
            f"{store_server.url}/store/index", timeout=10
        ) as reply:
            server_entries = json.load(reply).get("entries", 0)
        warm["server_entries"] = server_entries
        print(f"store server holds {server_entries} entries after warm+flush")
        if server_entries == 0:
            failures.append("store server is empty after the warm phase + flush")
        artifact["warm"] = warm

        # -- phase 2: cold client fleet against the warm store -----------
        cold_store = os.path.join(tmp.name, "cold-store")
        cold, cold_verdicts = grid_phase("cold", cold_store, remote_env)
        if cold["state"] != "done":
            failures.append(f"cold job finished {cold['state']}, expected done")
        if cold_verdicts != warm_verdicts:
            failures.append(
                f"verdict divergence cold vs warm: {cold_verdicts} != {warm_verdicts}"
            )
        artifact["cold"] = cold
        # Every remotely adopted verdict must carry a checkable proof.
        run_cli(
            "checkproof audit",
            ["-m", "repro.smt.checkproof", "--store", cold_store, "--require-certs"],
        )

        # -- phase 3: kill the store server mid-fleet --------------------
        store_server.stop()
        print("store server killed; degraded phase ...")
        degraded_store = os.path.join(tmp.name, "degraded-store")
        degraded, degraded_verdicts = grid_phase("degraded", degraded_store, remote_env)
        degraded["verdicts_equal"] = degraded_verdicts == warm_verdicts
        if degraded["state"] != "done":
            failures.append(f"degraded job finished {degraded['state']}, expected done")
        if not degraded["verdicts_equal"]:
            failures.append(
                f"verdict divergence degraded vs warm: "
                f"{degraded_verdicts} != {warm_verdicts}"
            )
        if degraded["remote_errors"] == 0:
            failures.append(
                "degraded phase counted no store.remote.errors — the dead "
                "remote was never consulted, so degradation went untested"
            )
        artifact["degraded"] = degraded
        artifact["verdicts"] = warm_verdicts

        with open(args.out, "w") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"wrote {os.path.abspath(args.out)}")
    finally:
        store_server.stop()
        tmp.cleanup()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("load_serve --remote: all checks passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8, help="concurrent clients (default 8)")
    parser.add_argument("--rounds", type=int, default=2, help="grid jobs per client in the warm phase")
    parser.add_argument("--grid", default="fig11-quick")
    parser.add_argument("--opt", type=int, default=1, choices=[0, 1, 2])
    parser.add_argument("--url", default=None, help="target a running daemon instead of booting one")
    parser.add_argument("--store", default=None, help="store dir for the booted daemon (default: fresh tmpdir)")
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument(
        "--prom-out",
        default="metrics.prom",
        help="file for the last mid-load Prometheus scrape ('' disables)",
    )
    parser.add_argument(
        "--top-out",
        default="top.json",
        help="file for the obs.top --once --json snapshot ('' disables)",
    )
    parser.add_argument("--job-timeout", type=float, default=300.0)
    parser.add_argument(
        "--require-speedup",
        type=float,
        default=2.0,
        help="fail unless warm obligations/sec >= this multiple of cold (0 disables)",
    )
    parser.add_argument(
        "--skip-sequential",
        action="store_true",
        help="skip the in-process sequential verdict reference (faster)",
    )
    parser.add_argument(
        "--remote",
        action="store_true",
        help="two-process topology: a store server plus cold client "
        "daemons reading through it (writes BENCH_remote.json shape)",
    )
    args = parser.parse_args()

    if args.remote:
        return run_remote(args)

    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    from repro.serve.client import ServeClient

    daemon = None
    tmp = None
    if args.url is None:
        store = args.store
        if store is None:
            tmp = tempfile.TemporaryDirectory(prefix="repro-serve-load-")
            store = os.path.join(tmp.name, "store")
        print(f"booting daemon (store: {store}) ...")
        daemon = DaemonProcess(store)
        url = daemon.url
    else:
        url = args.url
    print(f"daemon: {url}")

    failures = []
    try:
        client = ServeClient(url, timeout_s=args.job_timeout)
        health = client.healthz()
        print(
            f"healthz: ok={health['ok']} version={health.get('version', '?')} "
            f"uptime={health.get('uptime_s', 0.0):.1f}s jobs={health['jobs']}"
        )

        # -- cold phase --------------------------------------------------
        start = time.perf_counter()
        latency, final = _drive_job(client, args.grid, args.opt, args.job_timeout)
        cold_wall = time.perf_counter() - start
        cold = _phase_summary(cold_wall, [final], [latency])
        verdict_maps = {"cold[0]": client.verdict_map(final["id"])}
        states = {"cold[0]": final["state"]}
        print(
            f"cold: {cold['obligations']} obligations in {cold_wall:.2f}s "
            f"({cold['obligations_per_s']:.1f} ob/s)"
        )

        # -- warm phase: N concurrent clients ----------------------------
        warm_finals = []
        warm_latencies = []
        lock = threading.Lock()
        errors = []

        def one_client(cid):
            worker = ServeClient(url, timeout_s=args.job_timeout)
            for round_no in range(args.rounds):
                try:
                    latency, final = _drive_job(worker, args.grid, args.opt, args.job_timeout)
                except Exception as exc:
                    with lock:
                        errors.append(f"client {cid} round {round_no}: {exc}")
                    return
                with lock:
                    warm_finals.append(final)
                    warm_latencies.append(latency)
                    verdict_maps[f"warm[{cid}.{round_no}]"] = {
                        r["name"]: r["proved"]
                        for r in sorted(
                            worker.verdicts(final["id"])["verdicts"],
                            key=lambda r: r["index"],
                        )
                    }
                    states[f"warm[{cid}.{round_no}]"] = final["state"]

        # Mid-load observability scrape: while the warm fleet hammers
        # the daemon, keep pulling /metrics as Prometheus text and
        # validating every sample with the stdlib parser — concurrent
        # scrapes must never see a torn exposition.
        from repro.obs.prom import parse_prometheus

        scrape_stop = threading.Event()
        scrapes = {"count": 0, "last": None}

        def scraper():
            reader = ServeClient(url, timeout_s=30.0)
            while not scrape_stop.is_set():
                try:
                    text = reader.metrics_text()
                    parse_prometheus(text)
                except Exception as exc:
                    with lock:
                        errors.append(f"mid-load /metrics scrape: {exc}")
                    return
                with lock:
                    scrapes["count"] += 1
                    scrapes["last"] = text
                scrape_stop.wait(0.2)

        scrape_thread = threading.Thread(target=scraper, daemon=True)
        start = time.perf_counter()
        scrape_thread.start()
        threads = [
            threading.Thread(target=one_client, args=(cid,)) for cid in range(args.clients)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        warm_wall = time.perf_counter() - start
        scrape_stop.set()
        scrape_thread.join(timeout=30)
        failures.extend(errors)
        warm = _phase_summary(warm_wall, warm_finals, warm_latencies)
        print(
            f"warm: {warm['jobs']} jobs, {warm['obligations']} obligations in "
            f"{warm_wall:.2f}s ({warm['obligations_per_s']:.1f} ob/s, "
            f"p50 {warm['p50_ms']:.0f}ms, p99 {warm['p99_ms']:.0f}ms, "
            f"cache {warm['cache_hits']}/{warm['cache_queries']})"
        )

        # -- observability artifacts -------------------------------------
        if scrapes["count"] == 0:
            failures.append("no /metrics scrape completed during the warm phase")
        else:
            parsed = parse_prometheus(scrapes["last"])
            hist = parsed["histograms"].get("repro_obligation_wall_seconds")
            if hist is None:
                failures.append(
                    "mid-load scrape lacks the repro_obligation_wall_seconds histogram"
                )
            elif sum(hist["buckets"]) != hist["count"]:
                failures.append(
                    "repro_obligation_wall_seconds bucket sum != count (torn read)"
                )
            if "repro_serve_uptime_seconds" not in parsed["gauges"]:
                failures.append("mid-load scrape lacks the repro_serve_uptime_seconds gauge")
            print(f"scraped /metrics {scrapes['count']}x mid-load; every sample parsed")
            if args.prom_out:
                with open(args.prom_out, "w") as handle:
                    handle.write(scrapes["last"])
                print(f"wrote {os.path.abspath(args.prom_out)}")

        top_env = dict(os.environ)
        top_env["PYTHONPATH"] = os.pathsep.join(
            p for p in (os.path.join(REPO_ROOT, "src"), os.environ.get("PYTHONPATH")) if p
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro.obs.top", url, "--once", "--json"],
            capture_output=True, text=True, cwd=REPO_ROOT, env=top_env,
        )
        if proc.returncode != 0:
            failures.append(
                f"obs.top --once --json exited {proc.returncode}: "
                f"{proc.stderr.strip()[-300:]}"
            )
        else:
            entry = json.loads(proc.stdout)["endpoints"][0]
            if not entry.get("ok"):
                failures.append(f"obs.top reports the endpoint down: {entry.get('error')}")
            elif entry.get("ob_per_s", 0) <= 0:
                failures.append("obs.top reports zero obligations/sec after the load phases")
            elif entry["p50_ms"] > entry["p99_ms"]:
                failures.append(
                    f"obs.top p50 {entry['p50_ms']:.2f}ms > p99 {entry['p99_ms']:.2f}ms"
                )
            else:
                print(
                    f"obs.top: {entry['ob_per_s']:.1f} ob/s, "
                    f"p50 {entry['p50_ms']:.1f}ms, p99 {entry['p99_ms']:.1f}ms, "
                    f"workers {entry['pool_workers']}"
                )
            if args.top_out:
                with open(args.top_out, "w") as handle:
                    handle.write(proc.stdout)
                print(f"wrote {os.path.abspath(args.top_out)}")

        # -- checks ------------------------------------------------------
        for label, state in states.items():
            if state != "done":
                failures.append(f"job {label} finished {state}, expected done")
        reference = verdict_maps["cold[0]"]
        if not args.skip_sequential:
            print("sequential reference (in-process, jobs=1, no cache) ...")
            verdict_maps["sequential"] = _sequential_reference(args.grid, args.opt)
        for label, verdicts in verdict_maps.items():
            if verdicts != reference:
                failures.append(
                    f"verdict divergence in {label}: {verdicts} != {reference}"
                )

        speedup = (
            warm["obligations_per_s"] / cold["obligations_per_s"]
            if cold["obligations_per_s"]
            else 0.0
        )
        print(f"warm/cold throughput: {speedup:.2f}x")
        if args.require_speedup and speedup < args.require_speedup:
            failures.append(
                f"warm obligations/sec only {speedup:.2f}x cold "
                f"(need >= {args.require_speedup:.2f}x): the shared cache is not working"
            )

        artifact = {
            "clients": args.clients,
            "rounds": args.rounds,
            "grid": args.grid,
            "opt": args.opt,
            "cold": cold,
            "warm": warm,
            "speedup": speedup,
            "metrics_scrapes": scrapes["count"],
            "verdicts": reference,
        }
        try:
            artifact["metrics"] = {
                key: client.metrics().get(key) for key in ("jobs", "scheduler", "store")
            }
        except Exception as exc:
            failures.append(f"metrics endpoint failed: {exc}")
        with open(args.out, "w") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"wrote {os.path.abspath(args.out)}")
    finally:
        if daemon is not None:
            daemon.stop()
        if tmp is not None:
            tmp.cleanup()

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("load_serve: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
