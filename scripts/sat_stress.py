#!/usr/bin/env python3
"""SAT stress gate: corpus agreement across solver implementations and modes.

Usage: sat_stress.py [--corpus-only] [--obligations]

Two layers of checking, mirroring the ``sat-stress`` CI job:

  * **DIMACS corpus** (``tests/data/*.cnf``): every instance is solved
    by the arena solver (chronological backtracking on and off) and the
    legacy reference solver; all verdicts must agree with each other
    and with the ``c expect`` header, and every SAT model is checked
    against the clauses.
  * **Obligation modes**: a small verification grid runs in two child
    processes — one with ``REPRO_NO_INCREMENTAL=1`` (fresh solver per
    check), one in the default incremental mode — and the per-
    obligation verdict lists must be identical.

Exits nonzero on any disagreement.  ``--obligations`` is the child-
process entry point (prints a verdict JSON line; not for direct use).
"""

import argparse
import glob
import json
import os
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))


def load_dimacs(path):
    """Parse a DIMACS file -> (num_vars, clauses, expected verdict)."""
    num_vars, clauses, expect = 0, [], None
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line.startswith("c expect"):
                expect = line.split()[2]
            elif line.startswith("c") or not line:
                continue
            elif line.startswith("p cnf"):
                num_vars = int(line.split()[2])
            else:
                lits = [int(tok) for tok in line.split()]
                assert lits[-1] == 0, f"{path}: clause not 0-terminated"
                clauses.append(lits[:-1])
    return num_vars, clauses, expect


def check_corpus() -> int:
    from repro.smt.sat import SAT, ArenaSolver, SatSolver, UNSAT

    paths = sorted(glob.glob(os.path.join(REPO, "tests", "data", "*.cnf")))
    if not paths:
        print("FAIL: no .cnf files under tests/data/", file=sys.stderr)
        return 1

    failures = 0
    variants = [
        ("arena", lambda: ArenaSolver()),
        ("arena-nochrono", lambda: _no_chrono()),
        ("legacy", lambda: SatSolver()),
    ]

    def _no_chrono():
        solver = ArenaSolver()
        solver.chrono_threshold = None
        return solver

    for path in paths:
        num_vars, clauses, expect = load_dimacs(path)
        verdicts = {}
        for label, make in variants:
            solver = make()
            solver.ensure_vars(num_vars)
            ok = True
            for clause in clauses:
                ok = solver.add_clause(list(clause)) and ok
            result = solver.solve() if ok else UNSAT
            verdicts[label] = result
            if result == SAT:
                for clause in clauses:
                    if not any(solver.value(lit) for lit in clause):
                        print(
                            f"FAIL: {os.path.basename(path)} [{label}]: "
                            f"model falsifies clause {clause}",
                            file=sys.stderr,
                        )
                        failures += 1
        agreed = len(set(verdicts.values())) == 1
        expected_ok = expect is None or all(v == expect for v in verdicts.values())
        status = "ok" if agreed and expected_ok else "FAIL"
        print(f"{status}: {os.path.basename(path):24s} {verdicts}")
        if not agreed:
            print(
                f"FAIL: {os.path.basename(path)}: implementations disagree: {verdicts}",
                file=sys.stderr,
            )
            failures += 1
        elif not expected_ok:
            print(
                f"FAIL: {os.path.basename(path)}: expected {expect}, got {verdicts}",
                file=sys.stderr,
            )
            failures += 1
    return 1 if failures else 0


def obligation_verdicts() -> list[str]:
    """The child-process payload: solve a small grid, return verdicts."""
    from repro.core.runner import Obligation, run_obligations
    from repro.smt import bv_sort, fresh_var, mk_bv, mk_bvand, mk_bvmul, mk_bvxor, mk_eq, mk_ule

    obligations = []
    for i in range(10):
        x = fresh_var("sx", bv_sort(8))
        y = fresh_var("sy", bv_sort(8))
        if i % 4 == 3:
            goal = mk_eq(mk_bvmul(x, y), mk_bv(91, 8))  # not valid
        elif i % 2:
            goal = mk_ule(mk_bvand(x, mk_bv(0x3F, 8)), mk_bv(0x3F, 8))
        else:
            goal = mk_eq(mk_bvxor(mk_bvxor(x, y), y), mk_bvand(x, mk_bv(0xFF, 8)))
        obligations.append(Obligation.from_terms(f"stress{i}", [goal]))
    results, _ = run_obligations(obligations, jobs=1)
    return [r.status for r in results]


def check_modes() -> int:
    verdicts = {}
    for mode, env_val in (("incremental", "0"), ("fresh", "1")):
        env = dict(os.environ)
        env["REPRO_NO_INCREMENTAL"] = env_val
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.run(
            [sys.executable, os.path.abspath(__file__), "--obligations"],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
        )
        if proc.returncode != 0:
            print(f"FAIL: {mode} child exited {proc.returncode}:\n{proc.stderr}", file=sys.stderr)
            return 1
        verdicts[mode] = json.loads(proc.stdout.strip().splitlines()[-1])
        print(f"{mode:12s} {verdicts[mode]}")
    if verdicts["incremental"] != verdicts["fresh"]:
        print(
            "FAIL: incremental and fresh-solver verdicts differ:\n"
            f"  incremental: {verdicts['incremental']}\n"
            f"  fresh:       {verdicts['fresh']}",
            file=sys.stderr,
        )
        return 1
    print("mode agreement holds")
    return 0


def check_certificates() -> int:
    """Run the stress grid cache-backed in both solver modes, then audit
    every stored verdict with the independent proof checker.

    The audit runs ``python -m repro.smt.checkproof --store`` in a child
    process, exactly as a third party would — nothing from this
    process's solver state can leak into the check.
    """
    import tempfile

    from repro.core.runner import run_obligations

    with tempfile.TemporaryDirectory(prefix="stress_certs_") as store:
        for mode, env_val in (("incremental", "0"), ("fresh", "1")):
            os.environ["REPRO_NO_INCREMENTAL"] = env_val
            try:
                from repro.core.runner import Obligation
                from repro.smt import bv_sort, fresh_var, mk_bv, mk_bvand, mk_bvmul, mk_bvxor, mk_eq, mk_ule

                obligations = []
                for i in range(10):
                    x = fresh_var(f"c{mode}x", bv_sort(8))
                    y = fresh_var(f"c{mode}y", bv_sort(8))
                    if i % 4 == 3:
                        goal = mk_eq(mk_bvmul(x, y), mk_bv(91, 8))
                    elif i % 2:
                        goal = mk_ule(mk_bvand(x, mk_bv(0x3F, 8)), mk_bv(0x3F, 8))
                    else:
                        goal = mk_eq(mk_bvxor(mk_bvxor(x, y), y), mk_bvand(x, mk_bv(0xFF, 8)))
                    obligations.append(Obligation.from_terms(f"cert-{mode}-{i}", [goal]))
                run_obligations(obligations, jobs=1, cache_dir=store)
            finally:
                os.environ.pop("REPRO_NO_INCREMENTAL", None)

        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO, "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.smt.checkproof", "--store", store, "--require-certs"],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO,
        )
        sys.stdout.write(proc.stdout)
        sys.stderr.write(proc.stderr)
        if proc.returncode != 0:
            print(f"FAIL: checkproof audit exited {proc.returncode}", file=sys.stderr)
            return 1
    print("certificate audit holds")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--corpus-only", action="store_true")
    parser.add_argument("--obligations", action="store_true", help=argparse.SUPPRESS)
    args = parser.parse_args()

    if args.obligations:
        print(json.dumps(obligation_verdicts()))
        return 0

    rc = check_corpus()
    if not args.corpus_only:
        rc = check_modes() or rc
        rc = check_certificates() or rc
    return rc


if __name__ == "__main__":
    sys.exit(main())
