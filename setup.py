"""Shim for editable installs (``python setup.py develop``) in offline
environments where ``pip install -e .`` is unavailable; all metadata
lives in pyproject.toml."""

from setuptools import setup

setup()
