"""repro: a Python reproduction of Serval (SOSP 2019).

Layers, bottom-up (paper Figure 1):

  repro.smt     -- SMT solver substitute (CDCL SAT + bit-blasting)
  repro.sym     -- Rosette substitute (symbolic evaluation, profiling,
                   reflection)
  repro.core    -- the Serval framework (spec library, symbolic
                   optimizations, systems-code support)
  repro.toyrisc / repro.riscv / repro.x86 / repro.llvm / repro.bpf
                -- automated verifiers built by lifting interpreters
  repro.cc      -- mini-C compiler + assembler toolchain (gcc/binutils
                   substitute)
  repro.certikos / repro.komodo / repro.keystone / repro.bpf_jit
                -- verified systems and bug-finding case studies
"""

__version__ = "0.1.0"
