"""The BPF verifier (§5): extended BPF interpreter, lifted."""

from .encoding import BpfDecodeError, decode_program, decode_validated, encode_program
from .insn import (
    ALU_OPS,
    BpfInsn,
    CLASS_ALU,
    CLASS_ALU64,
    CLASS_JMP,
    CLASS_JMP32,
    JMP_OPS,
    alu,
    exit_,
    jmp,
)
from .interp import BpfInterp, BpfState, run_insn

__all__ = [name for name in dir() if not name.startswith("_")]
