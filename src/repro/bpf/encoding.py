"""The kernel's 8-byte eBPF instruction encoding.

``struct bpf_insn`` layout (little-endian):

    u8  opcode;       // class | source | op
    u8  dst_reg:4, src_reg:4;
    s16 off;
    s32 imm;

The JIT checker operates on decoded instructions; this module gives
the verifier a validated path from raw program bytes (as a loader
would pass them to the kernel) to :class:`BpfInsn`, with the same
encode-and-compare validation discipline as the RISC-V decoder (§3.4).
"""

from __future__ import annotations

import struct

from .insn import ALU_OPS, BpfInsn, CLASS_ALU, CLASS_ALU64, CLASS_JMP, CLASS_JMP32, JMP_OPS

__all__ = ["encode", "decode", "decode_validated", "encode_program", "decode_program", "BpfDecodeError"]

_KNOWN_CLASSES = {CLASS_ALU, CLASS_ALU64, CLASS_JMP, CLASS_JMP32}


class BpfDecodeError(Exception):
    pass


def encode(insn: BpfInsn) -> bytes:
    """Encode one instruction into its 8 bytes."""
    opcode = insn.klass | insn.op | (0x08 if insn.src_is_reg else 0x00)
    if not 0 <= insn.dst < 16 or not 0 <= insn.src < 16:
        raise BpfDecodeError(f"register out of range in {insn!r}")
    regs = (insn.src << 4) | insn.dst
    return struct.pack("<BBhi", opcode, regs, insn.off, insn.imm)


def decode(raw: bytes) -> BpfInsn:
    """Decode 8 bytes into an instruction."""
    if len(raw) != 8:
        raise BpfDecodeError(f"instruction must be 8 bytes, got {len(raw)}")
    opcode, regs, off, imm = struct.unpack("<BBhi", raw)
    klass = opcode & 0x07
    if klass not in _KNOWN_CLASSES:
        raise BpfDecodeError(f"unsupported class {klass:#x}")
    src_is_reg = bool(opcode & 0x08)
    op = opcode & 0xF0
    table = ALU_OPS if klass in (CLASS_ALU, CLASS_ALU64) else JMP_OPS
    if op not in table.values():
        raise BpfDecodeError(f"unknown op {op:#x} for class {klass:#x}")
    return BpfInsn(klass, op, src_is_reg, regs & 0x0F, regs >> 4, off=off, imm=imm)


def decode_validated(raw: bytes) -> BpfInsn:
    """Decode and validate by re-encoding (§3.4's validation trick)."""
    insn = decode(raw)
    reencoded = encode(insn)
    if reencoded != raw:
        raise BpfDecodeError(
            f"decoder validation failed: {raw.hex()} -> {insn!r} -> {reencoded.hex()}"
        )
    return insn


def encode_program(insns: list[BpfInsn]) -> bytes:
    return b"".join(encode(i) for i in insns)


def decode_program(raw: bytes) -> list[BpfInsn]:
    if len(raw) % 8:
        raise BpfDecodeError("program length must be a multiple of 8")
    return [decode_validated(raw[i : i + 8]) for i in range(0, len(raw), 8)]
