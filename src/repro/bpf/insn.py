"""Extended BPF (eBPF) instruction definitions (§5, §7).

Covers the ALU/ALU64 and JMP/JMP32 classes that the JIT-compiler
checker exercises (the Linux bugs the paper found are all in ALU and
shift handling), plus EXIT and register moves.  Encoding follows the
kernel's ``struct bpf_insn``: opcode = class | op | source.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BpfInsn", "CLASS_ALU", "CLASS_ALU64", "CLASS_JMP", "CLASS_JMP32", "ALU_OPS", "JMP_OPS"]

# Instruction classes (low 3 bits of the opcode).
CLASS_LD = 0x00
CLASS_LDX = 0x01
CLASS_ST = 0x02
CLASS_STX = 0x03
CLASS_ALU = 0x04  # 32-bit
CLASS_JMP = 0x05
CLASS_JMP32 = 0x06
CLASS_ALU64 = 0x07

# Source bit.
BPF_K = 0x00  # immediate
BPF_X = 0x08  # register

# ALU operations (high 4 bits).
ALU_OPS = {
    "add": 0x00,
    "sub": 0x10,
    "mul": 0x20,
    "div": 0x30,
    "or": 0x40,
    "and": 0x50,
    "lsh": 0x60,
    "rsh": 0x70,
    "neg": 0x80,
    "mod": 0x90,
    "xor": 0xA0,
    "mov": 0xB0,
    "arsh": 0xC0,
    "end": 0xD0,
}

JMP_OPS = {
    "ja": 0x00,
    "jeq": 0x10,
    "jgt": 0x20,
    "jge": 0x30,
    "jset": 0x40,
    "jne": 0x50,
    "jsgt": 0x60,
    "jsge": 0x70,
    "call": 0x80,
    "exit": 0x90,
    "jlt": 0xA0,
    "jle": 0xB0,
    "jslt": 0xC0,
    "jsle": 0xD0,
}

_ALU_NAMES = {v: k for k, v in ALU_OPS.items()}
_JMP_NAMES = {v: k for k, v in JMP_OPS.items()}


@dataclass(frozen=True)
class BpfInsn:
    """One eBPF instruction (class/op/source + registers + imm/off)."""

    klass: int
    op: int
    src_is_reg: bool
    dst: int
    src: int
    off: int = 0
    imm: int = 0

    @property
    def op_name(self) -> str:
        if self.klass in (CLASS_ALU, CLASS_ALU64):
            return _ALU_NAMES[self.op]
        return _JMP_NAMES[self.op]

    @property
    def is_alu64(self) -> bool:
        return self.klass == CLASS_ALU64

    def __repr__(self) -> str:
        width = "64" if self.klass in (CLASS_ALU64, CLASS_JMP) else "32"
        src = f"r{self.src}" if self.src_is_reg else f"#{self.imm}"
        return f"{self.op_name}{width} r{self.dst}, {src}"


def alu(op: str, dst: int, src_or_imm, alu64: bool = True) -> BpfInsn:
    """Build an ALU instruction; ``src_or_imm`` is ``('r', n)`` or int."""
    klass = CLASS_ALU64 if alu64 else CLASS_ALU
    if isinstance(src_or_imm, tuple):
        return BpfInsn(klass, ALU_OPS[op], True, dst, src_or_imm[1])
    return BpfInsn(klass, ALU_OPS[op], False, dst, 0, imm=src_or_imm)


def jmp(op: str, dst: int, src_or_imm, off: int, jmp32: bool = False) -> BpfInsn:
    klass = CLASS_JMP32 if jmp32 else CLASS_JMP
    if isinstance(src_or_imm, tuple):
        return BpfInsn(klass, JMP_OPS[op], True, dst, src_or_imm[1], off=off)
    return BpfInsn(klass, JMP_OPS[op], False, dst, 0, off=off, imm=src_or_imm)


def exit_() -> BpfInsn:
    return BpfInsn(CLASS_JMP, JMP_OPS["exit"], False, 0, 0)
