"""The eBPF interpreter/verifier (§5).

Semantics follow the kernel's interpreter: eleven 64-bit registers;
ALU (32-bit) operations compute on the low word and **zero-extend**
the result; shifts mask their amount to the operand width.  The
zero-extension and shift-masking rules are exactly what the buggy
Linux JITs got wrong (§7), so this interpreter is the ground truth
the JIT checker compares against.
"""

from __future__ import annotations

from ..core.engine import Interpreter
from ..sym import SymBV, SymBool, bug_on, bv_val, fresh_bv, ite, merge
from .insn import BpfInsn, CLASS_ALU, CLASS_ALU64, CLASS_JMP, CLASS_JMP32

__all__ = ["BpfState", "BpfInterp", "run_insn"]

NREGS = 11


class BpfState:
    """R0-R10 (64-bit) plus a program counter over the insn list."""

    __slots__ = ("pc", "regs", "exited")

    def __init__(self, pc: SymBV, regs: list[SymBV]):
        self.pc = pc
        self.regs = regs
        self.exited = False

    @classmethod
    def symbolic(cls, prefix: str = "bpf") -> "BpfState":
        return cls(bv_val(0, 64), [fresh_bv(f"{prefix}.r{i}", 64) for i in range(NREGS)])

    def copy(self) -> "BpfState":
        out = BpfState(self.pc, list(self.regs))
        out.exited = self.exited
        return out

    def __sym_merge__(self, guard: SymBool, other: "BpfState") -> "BpfState":
        if self.exited != other.exited:
            raise ValueError("cannot merge exited with running state")
        out = BpfState(
            merge(guard, self.pc, other.pc),
            [merge(guard, a, b) for a, b in zip(self.regs, other.regs)],
        )
        out.exited = self.exited
        return out


def _alu_result(op: str, dst: SymBV, src: SymBV, width: int) -> SymBV:
    """Compute one ALU op at the given width (operands pre-truncated)."""
    shift_mask = width - 1
    if op == "add":
        return dst + src
    if op == "sub":
        return dst - src
    if op == "mul":
        return dst * src
    if op == "div":
        # The in-kernel verifier guarantees non-zero divisors (or
        # patches in a runtime check); semantics here: x/0 = 0.
        return ite(src == 0, bv_val(0, width), dst.udiv(src))
    if op == "mod":
        return ite(src == 0, dst, dst.urem(src))
    if op == "or":
        return dst | src
    if op == "and":
        return dst & src
    if op == "xor":
        return dst ^ src
    if op == "lsh":
        return dst << (src & shift_mask)
    if op == "rsh":
        return dst >> (src & shift_mask)
    if op == "arsh":
        return dst.ashr(src & shift_mask)
    if op == "neg":
        return -dst
    if op == "mov":
        return src
    raise NotImplementedError(f"ALU op {op!r}")


class BpfInterp(Interpreter):
    """Liftable eBPF interpreter over an instruction list."""

    def __init__(self, program: list[BpfInsn]):
        self.program = program

    def pc_of(self, state: BpfState) -> SymBV:
        return state.pc

    def set_pc(self, state: BpfState, pc_val: int) -> None:
        state.pc = bv_val(pc_val, 64)

    def is_halted(self, state: BpfState) -> bool:
        return state.exited

    def copy_state(self, state: BpfState) -> BpfState:
        return state.copy()

    def merge_key(self, state: BpfState):
        return state.exited

    def fetch(self, state: BpfState) -> BpfInsn:
        pc = state.pc.as_int()
        bug_on(state.pc >= len(self.program), "bpf pc out of range")
        return self.program[pc]

    def execute(self, state: BpfState, insn: BpfInsn) -> None:
        if insn.klass in (CLASS_ALU, CLASS_ALU64):
            self._exec_alu(state, insn)
            state.pc = state.pc + 1
            return
        if insn.klass in (CLASS_JMP, CLASS_JMP32):
            self._exec_jmp(state, insn)
            return
        raise NotImplementedError(f"bpf class {insn.klass:#x}")

    def _exec_alu(self, state: BpfState, insn: BpfInsn) -> None:
        op = insn.op_name
        width = 64 if insn.is_alu64 else 32
        dst = state.regs[insn.dst]
        src = state.regs[insn.src] if insn.src_is_reg else bv_val(insn.imm, 64)
        if width == 32:
            result = _alu_result(op, dst.trunc(32), src.trunc(32), 32)
            # ALU32 results are zero-extended into the full register —
            # the rule the buggy JITs miss (§7).
            state.regs[insn.dst] = result.zext(64)
        else:
            if not insn.src_is_reg:
                # Immediates are sign-extended to 64 bits.
                src = bv_val(insn.imm, 32).sext(64) if insn.imm < 0 else bv_val(insn.imm, 64)
            state.regs[insn.dst] = _alu_result(op, dst, src, 64)

    def _exec_jmp(self, state: BpfState, insn: BpfInsn) -> None:
        op = insn.op_name
        if op == "exit":
            state.exited = True
            return
        if op == "ja":
            state.pc = state.pc + (insn.off + 1)
            return
        width = 32 if insn.klass == CLASS_JMP32 else 64
        dst = state.regs[insn.dst]
        src = state.regs[insn.src] if insn.src_is_reg else bv_val(insn.imm, 64)
        if width == 32:
            dst, src = dst.trunc(32), src.trunc(32)
        conds = {
            "jeq": lambda: dst == src,
            "jne": lambda: dst != src,
            "jgt": lambda: dst > src,
            "jge": lambda: dst >= src,
            "jlt": lambda: dst < src,
            "jle": lambda: dst <= src,
            "jsgt": lambda: dst.sgt(src),
            "jsge": lambda: dst.sge(src),
            "jslt": lambda: dst.slt(src),
            "jsle": lambda: dst.sle(src),
            "jset": lambda: (dst & src) != 0,
        }
        cond = conds[op]()
        state.pc = ite(cond, state.pc + (insn.off + 1), state.pc + 1)


def run_insn(insn: BpfInsn, state: BpfState) -> BpfState:
    """Execute a single instruction (the JIT checker's BPF side)."""
    out = state.copy()
    BpfInterp([insn]).execute(out, insn)
    return out
