"""BPF JIT-compiler checking (§7): JIT translations, the equivalence
checker, and the 15-bug catalog."""

from .bugs import ALL_BUGS, JitBug, RV_BUGS, X86_BUGS
from .checker import (
    BOUNDARY_IMMS,
    CheckResult,
    check_rv_insn,
    check_x86_insn,
    rv_alu_test_insns,
    sweep,
    x86_alu_test_insns,
)
from .rv_jit import BPF2RV, RvJit
from .x86_jit import X86Jit, slot_hi, slot_lo

__all__ = [name for name in dir() if not name.startswith("_")]
