"""Catalog of the 15 Linux BPF JIT bugs (§7).

"Using the checker, we found a total of 15 bugs in the Linux JIT
implementations: 9 for RISC-V and 6 for x86-32.  These bugs are
caused by emitting incorrect instructions for handling zero
extensions or bit shifts."

Each entry reproduces one historical bug *class* as a switchable
variant of our JIT translations, together with a witness instruction
on which the checker produces a counterexample.  The fixed JITs
(no bugs enabled) verify clean over the same battery — mirroring the
patches accepted into the kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bpf.insn import BpfInsn, alu, jmp

__all__ = ["JitBug", "RV_BUGS", "X86_BUGS", "ALL_BUGS"]


@dataclass(frozen=True)
class JitBug:
    id: str
    target: str  # "riscv" | "x86-32"
    description: str
    witness: BpfInsn  # an instruction on which the bug is observable


RV_BUGS = [
    JitBug(
        "alu32-add-no-zext",
        "riscv",
        "ALU32 ADD emits addw but omits the zero-extension of the result "
        "(addw sign-extends bit 31 into the upper word)",
        alu("add", 1, ("r", 2), alu64=False),
    ),
    JitBug(
        "alu32-sub-no-zext",
        "riscv",
        "ALU32 SUB emits subw without zero-extending the result",
        alu("sub", 1, ("r", 2), alu64=False),
    ),
    JitBug(
        "alu32-logic-no-zext",
        "riscv",
        "ALU32 AND/OR/XOR operate on the full 64-bit registers and keep "
        "whatever upper bits the operands had",
        alu("xor", 1, ("r", 2), alu64=False),
    ),
    JitBug(
        "alu32-mov-sext",
        "riscv",
        "ALU32 MOV emits addiw, sign-extending instead of zero-extending",
        alu("mov", 1, ("r", 2), alu64=False),
    ),
    JitBug(
        "alu32-shift-64",
        "riscv",
        "ALU32 LSH/RSH emit 64-bit shifts: the shift amount is masked to "
        "6 bits and bits cross the 32-bit boundary",
        alu("rsh", 1, ("r", 2), alu64=False),
    ),
    JitBug(
        "alu32-arsh-no-w",
        "riscv",
        "ALU32 ARSH emits sra instead of sraw, using bit 63 rather than "
        "bit 31 as the sign",
        alu("arsh", 1, ("r", 2), alu64=False),
    ),
    JitBug(
        "alu32-neg-no-zext",
        "riscv",
        "ALU32 NEG emits a 64-bit negate with no truncation or extension",
        alu("neg", 1, 0, alu64=False),
    ),
    JitBug(
        "alu64-shift-imm-w",
        "riscv",
        "ALU64 shift-by-immediate emits the W-form shift, truncating the "
        "64-bit operand to 32 bits",
        alu("lsh", 1, 7, alu64=True),
    ),
    JitBug(
        "jmp32-no-zext",
        "riscv",
        "JMP32 comparisons compare the full 64-bit registers instead of "
        "the low 32 bits",
        jmp("jlt", 1, ("r", 2), off=3, jmp32=True),
    ),
]

X86_BUGS = [
    JitBug(
        "lsh64-imm-ge32",
        "x86-32",
        "64-bit LSH by immediate >= 32 moves the low word up but fails "
        "to zero the low word",
        alu("lsh", 1, 40, alu64=True),
    ),
    JitBug(
        "rsh64-imm-ge32",
        "x86-32",
        "64-bit RSH by immediate >= 32 moves the high word down but "
        "fails to zero the high word",
        alu("rsh", 1, 40, alu64=True),
    ),
    JitBug(
        "arsh64-imm-ge32",
        "x86-32",
        "64-bit ARSH by immediate >= 32 fills the high word with zeros "
        "instead of the sign",
        alu("arsh", 1, 40, alu64=True),
    ),
    JitBug(
        "lsh64-imm-32-boundary",
        "x86-32",
        "64-bit LSH treats an immediate of exactly 32 via the < 32 path "
        "(x86 shifts mask their count to 5 bits, so shl by 32 is a no-op)",
        alu("lsh", 1, 32, alu64=True),
    ),
    JitBug(
        "alu32-no-hi-clear",
        "x86-32",
        "ALU32 operations store the 32-bit result without clearing the "
        "high word of the destination pair",
        alu("add", 1, ("r", 2), alu64=False),
    ),
    JitBug(
        "mov32-imm-no-hi-clear",
        "x86-32",
        "ALU32 MOV with an immediate leaves the destination's high word "
        "unchanged",
        alu("mov", 1, 5, alu64=False),
    ),
]

ALL_BUGS = RV_BUGS + X86_BUGS
