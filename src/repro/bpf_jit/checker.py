"""The BPF JIT-compiler checker (§7).

"The checker verifies a simple property: starting from a BPF state
and an equivalent machine state, the result of executing a single BPF
instruction on the BPF state should be equivalent to the machine
state resulting from executing the machine instructions produced by
the JIT for that BPF instruction."

Two instantiations: RISC-V (combining the BPF and RISC-V verifiers)
and x86-32 (combining the BPF and x86-32 verifiers).  Violations come
back as counterexamples, which is how the kernel patches' regression
tests were constructed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bpf.insn import BpfInsn
from ..bpf.interp import BpfState, run_insn
from ..core import EngineOptions, run_interpreter
from ..core.image import Image
from ..core.memory import Memory
from ..riscv import CpuState, RiscvInterp
from ..riscv.encode import encode as rv_encode
from ..sym import new_context, prove, sym_true
from ..x86.interp import X86State, run_insns
from .rv_jit import BPF2RV, RvJit
from .x86_jit import X86Jit, slot_hi, slot_lo

__all__ = ["CheckResult", "check_rv_insn", "check_x86_insn", "BOUNDARY_IMMS"]

# Immediate values covering the boundaries where the historical bugs
# bite: shift-amount edges, sign edges, and encoding edges.  The JIT
# compilers branch on the immediate, so each concrete value exercises
# one emission path (§7's manual translation is per-instruction too).
BOUNDARY_IMMS = [0, 1, 2, 31, 32, 33, 63, -1, -2048, 2047, 0x7FFFFFFF, -0x80000000]

SHIFT_IMMS = [0, 1, 31, 32, 33, 63]


@dataclass
class CheckResult:
    ok: bool
    insn: BpfInsn | None = None
    counterexample: object = None
    detail: str = ""

    def __repr__(self) -> str:
        status = "ok" if self.ok else f"VIOLATION ({self.detail})"
        return f"CheckResult({self.insn!r}: {status})"


def _rv_image(insns) -> Image:
    words = {0x1000 + 4 * i: rv_encode(insn, 64) for i, insn in enumerate(insns)}
    # Terminate with mret so the engine halts.
    from ..riscv.insn import Insn

    words[0x1000 + 4 * len(insns)] = rv_encode(Insn("mret"), 64)
    return Image(base=0x1000, word_size=4, words=words, symbols=[], entry=0x1000)


def check_rv_insn(insn: BpfInsn, jit: RvJit, max_conflicts: int | None = 200_000) -> CheckResult:
    """Check one BPF instruction against the RISC-V JIT's output."""
    with new_context() as ctx:
        bpf0 = BpfState.symbolic("chk")
        # Machine state equivalent to the BPF state: mapped registers
        # hold the same 64-bit values.
        image = _rv_image(jit.emit_insn(insn))
        cpu = CpuState.symbolic(64, 0x1000, Memory([], addr_width=64), prefix="chkrv")
        for bpf_reg, rv_reg in BPF2RV.items():
            cpu.regs[rv_reg] = bpf0.regs[bpf_reg]

        bpf1 = run_insn(insn, bpf0)
        cpu1 = run_interpreter(RiscvInterp(image, xlen=64), cpu, EngineOptions(fuel=500)).merged()

        if insn.klass == 0x06:  # JMP32: compare the branch decision

            decision_bpf = bpf1.pc  # off+1 if taken else 1 (from pc=0)
            decision_rv = cpu1.regs[6]  # TMP1 holds the 0/1 decision
            taken = decision_bpf == (insn.off + 1)
            prop = taken == (decision_rv == 1)
        else:
            prop = sym_true()
            for bpf_reg, rv_reg in BPF2RV.items():
                prop = prop & (bpf1.regs[bpf_reg] == cpu1.regs[rv_reg])

        result = prove(prop, max_conflicts=max_conflicts)
    if result.proved:
        return CheckResult(True, insn)
    return CheckResult(
        False, insn, result.counterexample, detail="BPF/RISC-V state divergence"
    )


def check_x86_insn(insn: BpfInsn, jit: X86Jit, max_conflicts: int | None = 200_000) -> CheckResult:
    """Check one BPF instruction against the x86-32 JIT's output."""
    with new_context() as ctx:
        bpf0 = BpfState.symbolic("chk86")
        x86 = X86State.symbolic("chk86m")
        # Equivalence: BPF reg r lives in stack slots (lo, hi).
        for r in range(11):
            x86.stack[slot_lo(r) // 4] = bpf0.regs[r].trunc(32)
            x86.stack[slot_hi(r) // 4] = bpf0.regs[r].extract(63, 32)

        bpf1 = run_insn(insn, bpf0)
        x86_1 = run_insns(jit.emit_insn(insn), x86)

        prop = sym_true()
        for r in range(11):
            lo = x86_1.stack[slot_lo(r) // 4]
            hi = x86_1.stack[slot_hi(r) // 4]
            prop = prop & (bpf1.regs[r] == hi.concat(lo))

        result = prove(prop, max_conflicts=max_conflicts)
    if result.proved:
        return CheckResult(True, insn)
    return CheckResult(
        False, insn, result.counterexample, detail="BPF/x86-32 state divergence"
    )


def rv_alu_test_insns() -> list[BpfInsn]:
    """The instruction battery the RISC-V checker sweeps."""
    from ..bpf.insn import alu, jmp

    insns = []
    for alu64 in (True, False):
        for op in ("add", "sub", "and", "or", "xor", "mov", "neg"):
            insns.append(alu(op, 1, ("r", 2), alu64=alu64))
        for op in ("lsh", "rsh", "arsh"):
            insns.append(alu(op, 1, ("r", 2), alu64=alu64))
            for imm in SHIFT_IMMS:
                if not alu64 and imm > 31:
                    continue
                insns.append(alu(op, 1, imm, alu64=alu64))
        for op in ("add", "and", "mov"):
            for imm in (-1, 2047, -2048):
                insns.append(alu(op, 1, imm, alu64=alu64))
    for op in ("jeq", "jlt", "jge"):
        insns.append(jmp(op, 1, ("r", 2), off=3, jmp32=True))
    return insns


def x86_alu_test_insns() -> list[BpfInsn]:
    from ..bpf.insn import alu

    insns = []
    for op in ("add", "sub", "and", "or", "xor", "mov", "neg"):
        insns.append(alu(op, 1, ("r", 2), alu64=True))
        if op != "neg":
            insns.append(alu(op, 1, ("r", 2), alu64=False))
    for op in ("lsh", "rsh", "arsh"):
        for imm in SHIFT_IMMS:
            insns.append(alu(op, 1, imm, alu64=True))
        for imm in (0, 1, 31):
            insns.append(alu(op, 1, imm, alu64=False))
    for imm in (-1, 0, 0x7FFFFFFF):
        insns.append(alu("mov", 1, imm, alu64=False))
    return insns


def _sweep_one(job) -> CheckResult:
    """Worker entry for parallel sweeps (top-level for pickling)."""
    checker, jit, insn = job
    return checker(insn, jit)


def sweep(checker, jit, insns, jobs: int = 1, trace: bool | str = False) -> list[CheckResult]:
    """Run the checker over an instruction battery.

    Each instruction check is an independent proof obligation — the
    whole symbolic evaluation, not just the solve — so the sweep
    parallelizes across worker processes with ``jobs > 1`` (order of
    results matches ``insns`` either way).  The items ride the shared
    work-stealing pool (``repro.core.scheduler``), so a JIT sweep and
    a monitor refinement proof submitted by the same process interleave
    on the same workers instead of fighting over separate pools.

    ``trace`` opens a ``repro.obs`` tracing session around the sweep (a
    path string writes a Chrome trace there); with scheduler dispatch
    the per-instruction checks come back as ``scheduler``-layer spans
    on their worker's track.
    """
    from ..obs import maybe_tracing

    with maybe_tracing(trace):
        if jobs != 1 and len(insns) > 1:
            from ..core.runner import parallel_map

            return parallel_map(
                _sweep_one, [(checker, jit, insn) for insn in insns], jobs=jobs
            )
        return [checker(insn, jit) for insn in insns]
