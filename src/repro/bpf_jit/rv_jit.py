"""The Linux RISC-V (RV64) BPF JIT, translated to Python (§7).

"As the JIT compilers in the Linux kernel are written in C, we
manually translated them into Rosette" — here, into Python emitting
our ``repro.riscv`` instructions.  The translation covers the ALU and
ALU64 arithmetic/logic instructions plus JMP32 comparisons, i.e. the
code paths where the paper's 9 RISC-V JIT bugs live.

``RvJit(bugs={...})`` re-introduces historical bug classes (incorrect
zero-extension and shift handling); the default is the *fixed* JIT.
See ``bugs.py`` for the catalog.
"""

from __future__ import annotations

from ..bpf.insn import BpfInsn, CLASS_ALU, CLASS_ALU64, CLASS_JMP32
from ..riscv.insn import Insn

__all__ = ["RvJit", "BPF2RV", "TMP1", "TMP2"]

# BPF register -> RISC-V register (mirrors the kernel's map: arguments
# in a-registers, callee-saved for the rest, a5 for R0).
BPF2RV = {
    0: 15,  # a5
    1: 10,  # a0
    2: 11,  # a1
    3: 12,  # a2
    4: 13,  # a3
    5: 14,  # a4
    6: 9,   # s1
    7: 18,  # s2
    8: 19,  # s3
    9: 20,  # s4
    10: 21, # s5 (frame pointer)
}
TMP1 = 6  # t1
TMP2 = 7  # t2


class JitError(Exception):
    pass


class RvJit:
    """Per-instruction translator, one BPF insn -> list of RV insns."""

    def __init__(self, bugs: set[str] | frozenset[str] = frozenset()):
        self.bugs = set(bugs)

    # -- helpers --------------------------------------------------------------

    def _emit_imm(self, reg: int, imm: int) -> list[Insn]:
        """Load a sign-extended 32-bit immediate (lui+addi(w) shape)."""
        if -2048 <= imm <= 2047:
            return [Insn("addi", rd=reg, rs1=0, imm=imm)]
        low = imm & 0xFFF
        if low >= 0x800:
            low -= 0x1000
        high = (imm - low) & 0xFFFFFFFF
        out = [Insn("lui", rd=reg, imm=high)]
        if low:
            out.append(Insn("addiw", rd=reg, rs1=reg, imm=low))
        return out

    def _zext32(self, reg: int) -> list[Insn]:
        """Zero the upper 32 bits (the fix for most of the 9 bugs)."""
        return [
            Insn("slli", rd=reg, rs1=reg, imm=32),
            Insn("srli", rd=reg, rs1=reg, imm=32),
        ]

    # -- translation -----------------------------------------------------------

    def emit_insn(self, insn: BpfInsn) -> list[Insn]:
        if insn.klass in (CLASS_ALU, CLASS_ALU64):
            return self._emit_alu(insn)
        if insn.klass == CLASS_JMP32:
            return self._emit_jmp32(insn)
        raise JitError(f"unsupported class {insn.klass:#x}")

    def _emit_alu(self, insn: BpfInsn) -> list[Insn]:
        op = insn.op_name
        is64 = insn.is_alu64
        rd = BPF2RV[insn.dst]
        out: list[Insn] = []
        if insn.src_is_reg:
            rs = BPF2RV[insn.src]
        else:
            out += self._emit_imm(TMP1, insn.imm)
            rs = TMP1

        def zext_fixup():
            """ALU32 results must be zero-extended; the buggy JITs
            skipped this for several opcodes."""
            return [] if is64 else self._zext32(rd)

        if op == "mov":
            if is64:
                out.append(Insn("addi", rd=rd, rs1=rs, imm=0))
            elif "alu32-mov-sext" in self.bugs:
                # BUG: addiw sign-extends bit 31 into the high word.
                out.append(Insn("addiw", rd=rd, rs1=rs, imm=0))
            else:
                out.append(Insn("addi", rd=rd, rs1=rs, imm=0))
                out += self._zext32(rd)
            return out

        if op in ("add", "sub"):
            wide = op if is64 else op + "w"
            if not is64 and f"alu32-{op}-no-zext" in self.bugs:
                # BUG: emit the W-form but skip the zero-extension.
                out.append(Insn(wide, rd=rd, rs1=rd, rs2=rs))
                return out
            out.append(Insn(wide, rd=rd, rs1=rd, rs2=rs))
            out += zext_fixup()
            return out

        if op in ("and", "or", "xor"):
            out.append(Insn(op, rd=rd, rs1=rd, rs2=rs))
            if not is64 and "alu32-logic-no-zext" in self.bugs:
                # BUG: rely on operands having clean upper bits.
                return out
            out += zext_fixup()
            return out

        if op == "mul":
            out.append(Insn("mul" if is64 else "mulw", rd=rd, rs1=rd, rs2=rs))
            out += zext_fixup()
            return out

        if op == "div":
            out.append(Insn("divu" if is64 else "divuw", rd=rd, rs1=rd, rs2=rs))
            out += zext_fixup()
            return out

        if op == "mod":
            out.append(Insn("remu" if is64 else "remuw", rd=rd, rs1=rd, rs2=rs))
            out += zext_fixup()
            return out

        if op in ("lsh", "rsh", "arsh"):
            name64 = {"lsh": "sll", "rsh": "srl", "arsh": "sra"}[op]
            if is64:
                if insn.src_is_reg:
                    out = [Insn(name64, rd=rd, rs1=rd, rs2=rs)]
                else:
                    shift = {"lsh": "slli", "rsh": "srli", "arsh": "srai"}[op]
                    if "alu64-shift-imm-w" in self.bugs:
                        # BUG: W-form shift truncates a 64-bit operand.
                        shift += "w"
                        out = [Insn(shift, rd=rd, rs1=rd, imm=insn.imm & 31)]
                    else:
                        out = [Insn(shift, rd=rd, rs1=rd, imm=insn.imm & 63)]
                return out
            # ALU32 shifts.
            if "alu32-shift-64" in self.bugs and op in ("lsh", "rsh"):
                # BUG: 64-bit shift on a 32-bit subregister.
                if insn.src_is_reg:
                    out.append(Insn(name64, rd=rd, rs1=rd, rs2=rs))
                else:
                    shift = {"lsh": "slli", "rsh": "srli"}[op]
                    out.append(Insn(shift, rd=rd, rs1=rd, imm=insn.imm & 63))
                return out
            if "alu32-arsh-no-w" in self.bugs and op == "arsh":
                # BUG: sra instead of sraw (wrong sign bit).
                if insn.src_is_reg:
                    out.append(Insn("sra", rd=rd, rs1=rd, rs2=rs))
                else:
                    out.append(Insn("srai", rd=rd, rs1=rd, imm=insn.imm & 31))
                return out
            namew = name64 + "w"
            if insn.src_is_reg:
                out.append(Insn(namew, rd=rd, rs1=rd, rs2=rs))
            else:
                shift = {"lsh": "slliw", "rsh": "srliw", "arsh": "sraiw"}[op]
                out.append(Insn(shift, rd=rd, rs1=rd, imm=insn.imm & 31))
            out += self._zext32(rd)
            return out

        if op == "neg":
            if is64:
                return out + [Insn("sub", rd=rd, rs1=0, rs2=rd)]
            if "alu32-neg-no-zext" in self.bugs:
                # BUG: 64-bit negate without truncation/extension.
                return out + [Insn("sub", rd=rd, rs1=0, rs2=rd)]
            return out + [Insn("subw", rd=rd, rs1=0, rs2=rd)] + self._zext32(rd)

        raise JitError(f"unsupported ALU op {op!r}")

    def _emit_jmp32(self, insn: BpfInsn) -> list[Insn]:
        """JMP32 compare: set TMP1 to the branch decision (0/1).

        The checker compares decisions rather than branch targets, so
        the translation materializes the condition with slt/sltu.
        """
        op = insn.op_name
        rd = BPF2RV[insn.dst]
        out: list[Insn] = []
        if insn.src_is_reg:
            rs = BPF2RV[insn.src]
        else:
            out += self._emit_imm(TMP1, insn.imm)
            rs = TMP1

        if "jmp32-no-zext" in self.bugs:
            # BUG: compare the full 64-bit registers.
            a, b = rd, rs
        else:
            # Fixed JIT: zero-extend both operands into temporaries.
            out += [Insn("addi", rd=TMP2, rs1=rd, imm=0)] + self._zext32(TMP2)
            out += [Insn("addi", rd=TMP1, rs1=rs, imm=0)] + self._zext32(TMP1)
            a, b = TMP2, TMP1

        if op == "jeq":
            out += [
                Insn("xor", rd=TMP1, rs1=a, rs2=b),
                Insn("sltiu", rd=TMP1, rs1=TMP1, imm=1),
            ]
        elif op == "jlt":
            out += [Insn("sltu", rd=TMP1, rs1=a, rs2=b)]
        elif op == "jge":
            out += [
                Insn("sltu", rd=TMP1, rs1=a, rs2=b),
                Insn("xori", rd=TMP1, rs1=TMP1, imm=1),
            ]
        else:
            raise JitError(f"unsupported JMP32 op {op!r}")
        return out
