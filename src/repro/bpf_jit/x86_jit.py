"""The Linux x86-32 BPF JIT, translated to Python (§7).

The x86-32 JIT stores each 64-bit BPF register as a lo/hi pair of
32-bit stack slots off EBP, staging values through EAX/EDX/ECX.  This
translation covers 64-bit ALU ops (with carry chains), 32-bit ALU ops
(which must clear the high word), moves, and the 64-bit shift-by-
immediate helpers whose >=32 cases held several of the paper's 6
x86-32 bugs.

``X86Jit(bugs={...})`` re-introduces the historical bug classes; the
default is the fixed JIT.
"""

from __future__ import annotations

from ..bpf.insn import BpfInsn, CLASS_ALU, CLASS_ALU64
from ..x86.insn import X86Insn, mk

__all__ = ["X86Jit", "slot_lo", "slot_hi"]

EAX, ECX, EDX, EBX = 0, 1, 2, 3
EBP = 5


def slot_lo(bpf_reg: int) -> int:
    """Stack displacement of the low word of a BPF register."""
    return bpf_reg * 8


def slot_hi(bpf_reg: int) -> int:
    return bpf_reg * 8 + 4


class JitError(Exception):
    pass


class X86Jit:
    """Per-instruction translator, one BPF insn -> list of x86 insns."""

    def __init__(self, bugs: set[str] | frozenset[str] = frozenset()):
        self.bugs = set(bugs)

    # -- helpers -------------------------------------------------------------

    def _load_pair(self, dst_lo: int, dst_hi: int, bpf_reg: int) -> list[X86Insn]:
        return [
            mk("mov", dst=dst_lo, mem=(EBP, slot_lo(bpf_reg))),
            mk("mov", dst=dst_hi, mem=(EBP, slot_hi(bpf_reg))),
        ]

    def _store_pair(self, bpf_reg: int, src_lo: int, src_hi: int) -> list[X86Insn]:
        return [
            mk("mov_to_mem", mem=(EBP, slot_lo(bpf_reg)), src=src_lo),
            mk("mov_to_mem", mem=(EBP, slot_hi(bpf_reg)), src=src_hi),
        ]

    def _clear_hi(self, bpf_reg: int) -> list[X86Insn]:
        return [mk("mov_to_mem", mem=(EBP, slot_hi(bpf_reg)), imm=0)]

    # -- translation -----------------------------------------------------------

    def emit_insn(self, insn: BpfInsn) -> list[X86Insn]:
        if insn.klass == CLASS_ALU64:
            return self._emit_alu64(insn)
        if insn.klass == CLASS_ALU:
            return self._emit_alu32(insn)
        raise JitError(f"unsupported class {insn.klass:#x}")

    def _src_pair_into(self, insn: BpfInsn, lo: int, hi: int) -> list[X86Insn]:
        if insn.src_is_reg:
            return self._load_pair(lo, hi, insn.src)
        sign = -1 if insn.imm < 0 else 0
        return [
            mk("mov", dst=lo, imm=insn.imm & 0xFFFFFFFF),
            mk("mov", dst=hi, imm=sign & 0xFFFFFFFF),
        ]

    def _emit_alu64(self, insn: BpfInsn) -> list[X86Insn]:
        op = insn.op_name
        dst = insn.dst
        out = self._load_pair(EAX, EDX, dst)

        if op == "mov":
            out = self._src_pair_into(insn, EAX, EDX)
            return out + self._store_pair(dst, EAX, EDX)

        if op in ("add", "sub"):
            out += self._src_pair_into(insn, EBX, ECX)
            lo_op, hi_op = ("add", "adc") if op == "add" else ("sub", "sbb")
            out += [mk(lo_op, dst=EAX, src=EBX), mk(hi_op, dst=EDX, src=ECX)]
            return out + self._store_pair(dst, EAX, EDX)

        if op in ("and", "or", "xor"):
            out += self._src_pair_into(insn, EBX, ECX)
            out += [mk(op, dst=EAX, src=EBX), mk(op, dst=EDX, src=ECX)]
            return out + self._store_pair(dst, EAX, EDX)

        if op == "neg":
            # -(x) = ~x + 1 over the pair: neg lo; adc-style fixup on hi.
            out += [
                mk("not", dst=EAX),
                mk("not", dst=EDX),
                mk("add", dst=EAX, imm=1),
                mk("adc", dst=EDX, imm=0),
            ]
            return out + self._store_pair(dst, EAX, EDX)

        if op in ("lsh", "rsh", "arsh") and not insn.src_is_reg:
            return self._emit_shift64_imm(insn, out)

        raise JitError(f"unsupported ALU64 op {op!r} (src_is_reg={insn.src_is_reg})")

    def _emit_shift64_imm(self, insn: BpfInsn, out: list[X86Insn]) -> list[X86Insn]:
        """64-bit shift by immediate over the EDX:EAX pair.

        The historically buggy cases are the value >= 32 branches.
        """
        op = insn.op_name
        dst = insn.dst
        amt = insn.imm & 63

        boundary_buggy = f"{op}64-imm-32-boundary" in self.bugs
        small_cutoff = 32 if not boundary_buggy else 33  # BUG: 32 takes the <32 path

        if op == "lsh":
            if amt == 0:
                pass
            elif amt < small_cutoff:
                out += [
                    mk("shld", dst=EDX, src=EAX, imm=amt),
                    mk("shl", dst=EAX, imm=amt),
                ]
            else:
                out += [
                    mk("mov", dst=EDX, src=EAX),
                    mk("shl", dst=EDX, imm=amt - 32),
                ]
                if "lsh64-imm-ge32" not in self.bugs:
                    # Fixed JIT zeroes the low word; the bug left it.
                    out += [mk("mov", dst=EAX, imm=0)]
        elif op == "rsh":
            if amt == 0:
                pass
            elif amt < small_cutoff:
                out += [
                    mk("shrd", dst=EAX, src=EDX, imm=amt),
                    mk("shr", dst=EDX, imm=amt),
                ]
            else:
                out += [
                    mk("mov", dst=EAX, src=EDX),
                    mk("shr", dst=EAX, imm=amt - 32),
                ]
                if "rsh64-imm-ge32" not in self.bugs:
                    out += [mk("mov", dst=EDX, imm=0)]
        elif op == "arsh":
            if amt == 0:
                pass
            elif amt < small_cutoff:
                out += [
                    mk("shrd", dst=EAX, src=EDX, imm=amt),
                    mk("sar", dst=EDX, imm=amt),
                ]
            else:
                out += [mk("mov", dst=EAX, src=EDX)]
                out += [mk("sar", dst=EAX, imm=amt - 32)]
                if "arsh64-imm-ge32" in self.bugs:
                    # BUG: shr leaves zero fill instead of sign fill.
                    out += [mk("shr", dst=EDX, imm=31)]
                    out += [mk("mov", dst=EDX, imm=0)]
                else:
                    out += [mk("sar", dst=EDX, imm=31)]
        return out + self._store_pair(dst, EAX, EDX)

    def _emit_alu32(self, insn: BpfInsn) -> list[X86Insn]:
        op = insn.op_name
        dst = insn.dst
        out = [mk("mov", dst=EAX, mem=(EBP, slot_lo(dst)))]

        if insn.src_is_reg:
            out += [mk("mov", dst=EBX, mem=(EBP, slot_lo(insn.src)))]
            src_operand = {"src": EBX}
        else:
            src_operand = {"imm": insn.imm & 0xFFFFFFFF}

        if op == "mov":
            if insn.src_is_reg:
                out = [mk("mov", dst=EAX, mem=(EBP, slot_lo(insn.src)))]
            else:
                out = [mk("mov", dst=EAX, imm=insn.imm & 0xFFFFFFFF)]
            out += [mk("mov_to_mem", mem=(EBP, slot_lo(dst)), src=EAX)]
            if "mov32-imm-no-hi-clear" in self.bugs:
                return out  # BUG: high word keeps its old value
            return out + self._clear_hi(dst)

        if op in ("add", "sub", "and", "or", "xor"):
            out += [mk(op, dst=EAX, **src_operand)]
        elif op in ("lsh", "rsh", "arsh"):
            if insn.src_is_reg:
                raise JitError("ALU32 register shifts not in this subset")
            mn = {"lsh": "shl", "rsh": "shr", "arsh": "sar"}[op]
            out += [mk(mn, dst=EAX, imm=insn.imm & 31)]
        elif op == "neg":
            out += [mk("neg", dst=EAX)]
        else:
            raise JitError(f"unsupported ALU32 op {op!r}")

        out += [mk("mov_to_mem", mem=(EBP, slot_lo(dst)), src=EAX)]
        if "alu32-no-hi-clear" in self.bugs:
            return out  # BUG: result high word not zeroed
        return out + self._clear_hi(dst)
