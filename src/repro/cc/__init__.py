"""Mini-C compiler: the gcc substitute (DESIGN.md substitution 4).

Builds the monitors' C parts from Python-constructed ASTs and compiles
them to RISC-V at -O0/-O1/-O2, feeding Figure 11's optimization-level
axis.
"""

from .ast import (
    Arg,
    Assign,
    BinOp,
    Call,
    Cmp,
    Const,
    CsrRead,
    CsrWrite,
    Expr,
    ExprStmt,
    Func,
    GlobalAddr,
    If,
    Load,
    Program,
    Return,
    Stmt,
    Store,
    Var,
    While,
)
from .codegen import CompileError, compile_program

__all__ = [name for name in dir() if not name.startswith("_")]
