"""Mini-C abstract syntax (the gcc substitute's source language).

The monitors' C parts are written as ASTs built in Python — there is
no parser because there is no text: this mirrors how CertiKOS keeps
the Clight AST in Coq and deletes the original C source (§6.2).

The language is deliberately the subset the paper's systems need:
word-sized integers, globals with array/struct layout, pointer
arithmetic with constant strides, bounded loops, CSR access, and
straight calls.  No unbounded loops — Serval requires finite
interfaces (§3.5) and the compiler enforces the loop bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Expr",
    "Const",
    "Var",
    "Arg",
    "GlobalAddr",
    "Load",
    "BinOp",
    "Cmp",
    "CsrRead",
    "Call",
    "Stmt",
    "Assign",
    "Store",
    "If",
    "While",
    "Return",
    "CsrWrite",
    "ExprStmt",
    "Func",
    "Program",
]


class Expr:
    """Base class for expressions."""


@dataclass(frozen=True)
class Const(Expr):
    value: int


@dataclass(frozen=True)
class Var(Expr):
    """A local variable."""

    name: str


@dataclass(frozen=True)
class Arg(Expr):
    """The i-th function argument (a0..a7)."""

    index: int


@dataclass(frozen=True)
class GlobalAddr(Expr):
    """The address of a data symbol (plus a constant byte offset)."""

    name: str
    offset: int = 0


@dataclass(frozen=True)
class Load(Expr):
    """Word load from a computed address."""

    addr: Expr
    nbytes: int = 0  # 0 = natural word size
    signed: bool = False


@dataclass(frozen=True)
class BinOp(Expr):
    """op in +, -, *, &, |, ^, <<, >>, >>a, /u, %u"""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Cmp(Expr):
    """Comparison producing 0/1.  op in ==, !=, <u, <=u, <s, <=s."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class CsrRead(Expr):
    csr: str


@dataclass(frozen=True)
class Call(Expr):
    func: str
    args: tuple[Expr, ...] = ()


class Stmt:
    """Base class for statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    var: str
    value: Expr


@dataclass(frozen=True)
class Store(Stmt):
    addr: Expr
    value: Expr
    nbytes: int = 0


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: tuple[Stmt, ...]
    els: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    """A loop with a static unroll bound (finite interfaces, §3.5)."""

    cond: Expr
    body: tuple[Stmt, ...]
    bound: int = 16


@dataclass(frozen=True)
class Return(Stmt):
    value: Expr | None = None


@dataclass(frozen=True)
class CsrWrite(Stmt):
    csr: str
    value: Expr


@dataclass(frozen=True)
class ExprStmt(Stmt):
    expr: Expr


@dataclass
class Func:
    name: str
    num_args: int
    body: tuple[Stmt, ...]
    locals: tuple[str, ...] = ()


@dataclass
class Program:
    funcs: list[Func]
    # data symbols: (name, addr, size, shape) for the image/linker
    data: list[tuple[str, int, int, tuple]] = field(default_factory=list)
