"""Mini-C code generator targeting RISC-V, with -O0/-O1/-O2 levels.

The three levels model what gcc's levels do to verification load
(§6.4: verifying a -O1/-O2 Komodo binary initially took five times as
long as -O0):

  * ``O0`` -- every local and argument lives in a stack slot; every
    use reloads it; no constant folding.  More instructions, more
    memory traffic, more constraints.
  * ``O1`` -- locals in callee-saved registers, constant folding,
    register-resident expression evaluation.
  * ``O2`` -- O1 plus a peephole pass (immediate fusion, redundant
    move elimination) and if-conversion of small diamonds into
    branchless compare/mask sequences, which is the pattern the §6.4
    "one new optimization" targets.

Functions follow a simplified standard ABI: args in a0..a7, result in
a0, ra/callee-saved registers preserved via the stack frame.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..riscv.asm import Assembler
from .ast import (
    Arg,
    Assign,
    BinOp,
    Call,
    Cmp,
    Const,
    CsrRead,
    CsrWrite,
    Expr,
    ExprStmt,
    Func,
    GlobalAddr,
    If,
    Load,
    Program,
    Return,
    Stmt,
    Store,
    Var,
    While,
)

__all__ = ["compile_program", "CompileError"]


class CompileError(Exception):
    pass


TEMP_REGS = ["t0", "t1", "t2", "t3", "t4", "t5"]
LOCAL_REGS = ["s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11"]


@dataclass
class _FuncCtx:
    func: Func
    opt: int
    frame: int = 0
    slot_of: dict = None  # local/arg name -> stack offset (O0)
    reg_of: dict = None  # local name -> s-register (O1+)
    used_sregs: list = None
    label_counter: int = 0
    has_call: bool = False

    def new_label(self, hint: str) -> str:
        self.label_counter += 1
        return f".{self.func.name}.{hint}.{self.label_counter}"


def _scan_calls(stmts) -> bool:
    for s in stmts:
        if isinstance(s, (Assign, ExprStmt)) and isinstance(getattr(s, "value", getattr(s, "expr", None)), Call):
            return True
        if isinstance(s, If) and (_scan_calls(s.then) or _scan_calls(s.els)):
            return True
        if isinstance(s, While) and _scan_calls(s.body):
            return True
        if isinstance(s, Return) and isinstance(s.value, Call):
            return True
    return False


class _Compiler:
    def __init__(self, asm: Assembler, opt: int, xlen: int):
        self.asm = asm
        self.opt = opt
        self.xlen = xlen
        self.word = xlen // 8
        self._pending_peephole: list = []

    # -- word-sized memory helpers ------------------------------------------------

    def _load_word(self, rd, off, rs1):
        if self.word == 8:
            self.asm.ld(rd, off, rs1)
        else:
            self.asm.lw(rd, off, rs1)

    def _store_word(self, rs2, off, rs1):
        if self.word == 8:
            self.asm.sd(rs2, off, rs1)
        else:
            self.asm.sw(rs2, off, rs1)

    # -- function compilation -------------------------------------------------------

    def compile_func(self, func: Func) -> None:
        ctx = _FuncCtx(func, self.opt, slot_of={}, reg_of={}, used_sregs=[])
        ctx.has_call = _scan_calls(func.body)

        if self.opt == 0:
            # Everything in stack slots: ra, args, locals.
            names = [f"$a{i}" for i in range(func.num_args)] + list(func.locals)
            offset = self.word  # slot 0 reserved for ra
            for name in names:
                ctx.slot_of[name] = offset
                offset += self.word
            ctx.frame = _align16(offset)
        else:
            for i, name in enumerate(func.locals):
                if i >= len(LOCAL_REGS):
                    raise CompileError(f"{func.name}: too many locals for O1 allocation")
                ctx.reg_of[name] = LOCAL_REGS[i]
                ctx.used_sregs.append(LOCAL_REGS[i])
            ctx.frame = _align16(self.word * (1 + len(ctx.used_sregs)))

        asm = self.asm
        asm.label(func.name)
        # Prologue.
        asm.addi("sp", "sp", -ctx.frame)
        self._store_word("ra", 0, "sp")
        if self.opt == 0:
            for i in range(func.num_args):
                self._store_word(f"a{i}", ctx.slot_of[f"$a{i}"], "sp")
        else:
            for i, reg in enumerate(ctx.used_sregs):
                self._store_word(reg, self.word * (1 + i), "sp")

        self._stmts(ctx, func.body)

        asm.label(ctx.new_label("epilogue"))
        self._epilogue(ctx)

    def _epilogue(self, ctx: _FuncCtx) -> None:
        asm = self.asm
        if self.opt != 0:
            for i, reg in enumerate(ctx.used_sregs):
                self._load_word(reg, self.word * (1 + i), "sp")
        self._load_word("ra", 0, "sp")
        asm.addi("sp", "sp", ctx.frame)
        asm.ret()

    # -- statements --------------------------------------------------------------------

    def _stmts(self, ctx: _FuncCtx, stmts) -> None:
        for s in stmts:
            self._stmt(ctx, s)

    def _stmt(self, ctx: _FuncCtx, s: Stmt) -> None:
        asm = self.asm
        if isinstance(s, Assign):
            reg = self._expr(ctx, s.value, TEMP_REGS)
            self._write_local(ctx, s.var, reg)
        elif isinstance(s, Store):
            nbytes = s.nbytes or self.word
            value = self._expr(ctx, s.value, TEMP_REGS)
            addr = self._expr(ctx, s.addr, _after(TEMP_REGS, value))
            {1: asm.sb, 2: asm.sh, 4: asm.sw, 8: asm.sd}[nbytes](value, 0, addr)
        elif isinstance(s, If):
            self._if(ctx, s)
        elif isinstance(s, While):
            self._while(ctx, s)
        elif isinstance(s, Return):
            if s.value is not None:
                reg = self._expr(ctx, s.value, TEMP_REGS)
                if reg != "a0":
                    asm.mv("a0", reg)
            self._epilogue(ctx)
        elif isinstance(s, CsrWrite):
            reg = self._expr(ctx, s.value, TEMP_REGS)
            asm.csrrw("zero", s.csr, reg)
        elif isinstance(s, ExprStmt):
            self._expr(ctx, s.expr, TEMP_REGS)
        else:
            raise CompileError(f"unknown statement {s!r}")

    def _if(self, ctx: _FuncCtx, s: If) -> None:
        asm = self.asm
        folded = self._try_const(ctx, s.cond)
        if folded is not None and self.opt >= 1:
            self._stmts(ctx, s.then if folded else s.els)
            return
        else_label = ctx.new_label("else")
        end_label = ctx.new_label("endif")
        cond = self._expr(ctx, s.cond, TEMP_REGS)
        asm.beqz(cond, else_label)
        self._stmts(ctx, s.then)
        if s.els:
            asm.j(end_label)
        asm.label(else_label)
        if s.els:
            self._stmts(ctx, s.els)
            asm.label(end_label)

    def _while(self, ctx: _FuncCtx, s: While) -> None:
        asm = self.asm
        head = ctx.new_label("loop")
        done = ctx.new_label("done")
        asm.label(head)
        cond = self._expr(ctx, s.cond, TEMP_REGS)
        asm.beqz(cond, done)
        self._stmts(ctx, s.body)
        asm.j(head)
        asm.label(done)

    def _write_local(self, ctx: _FuncCtx, name: str, reg: str) -> None:
        if self.opt == 0:
            if name not in ctx.slot_of:
                raise CompileError(f"{ctx.func.name}: unknown local {name!r}")
            self._store_word(reg, ctx.slot_of[name], "sp")
        else:
            target = ctx.reg_of.get(name)
            if target is None:
                raise CompileError(f"{ctx.func.name}: unknown local {name!r}")
            if target != reg:
                self.asm.mv(target, reg)

    # -- expressions --------------------------------------------------------------------

    def _try_const(self, ctx: _FuncCtx, e: Expr) -> int | None:
        """Constant folding (O1+)."""
        if self.opt == 0:
            return None
        if isinstance(e, Const):
            return e.value
        if isinstance(e, BinOp):
            left = self._try_const(ctx, e.left)
            right = self._try_const(ctx, e.right)
            if left is None or right is None:
                return None
            mask = (1 << self.xlen) - 1
            ops = {
                "+": lambda a, b: a + b,
                "-": lambda a, b: a - b,
                "*": lambda a, b: a * b,
                "&": lambda a, b: a & b,
                "|": lambda a, b: a | b,
                "^": lambda a, b: a ^ b,
                "<<": lambda a, b: a << (b % self.xlen),
                ">>": lambda a, b: (a & mask) >> (b % self.xlen),
            }
            if e.op in ops:
                return ops[e.op](left, right) & mask
        return None

    def _expr(self, ctx: _FuncCtx, e: Expr, avail: list[str]) -> str:
        """Evaluate ``e`` into a register drawn from ``avail``."""
        asm = self.asm
        if not avail:
            raise CompileError("expression too deep: out of temporaries")
        dest = avail[0]

        folded = self._try_const(ctx, e)
        if folded is not None:
            signed = folded - (1 << self.xlen) if folded >> (self.xlen - 1) else folded
            asm.li(dest, signed)
            return dest

        if isinstance(e, Const):
            asm.li(dest, e.value)
            return dest
        if isinstance(e, Arg):
            if self.opt == 0:
                self._load_word(dest, ctx.slot_of[f"$a{e.index}"], "sp")
                return dest
            return f"a{e.index}"
        if isinstance(e, Var):
            if self.opt == 0:
                self._load_word(dest, ctx.slot_of[e.name], "sp")
                return dest
            reg = ctx.reg_of.get(e.name)
            if reg is None:
                raise CompileError(f"{ctx.func.name}: unknown local {e.name!r}")
            return reg
        if isinstance(e, GlobalAddr):
            self.asm.la(dest, e.name)
            if e.offset:
                asm.addi(dest, dest, e.offset)
            return dest
        if isinstance(e, Load):
            nbytes = e.nbytes or self.word
            addr = self._expr(ctx, e.addr, avail)
            op = {
                (1, False): asm.lbu, (1, True): asm.lb,
                (2, False): asm.lhu, (2, True): asm.lh,
                (4, False): asm.lwu if self.xlen == 64 else asm.lw, (4, True): asm.lw,
                (8, False): asm.ld, (8, True): asm.ld,
            }[(nbytes, e.signed)]
            op(dest, 0, addr)
            return dest
        if isinstance(e, BinOp):
            return self._binop(ctx, e, avail)
        if isinstance(e, Cmp):
            return self._cmp(ctx, e, avail)
        if isinstance(e, CsrRead):
            asm.csrrs(dest, e.csr, "zero")
            return dest
        if isinstance(e, Call):
            return self._call(ctx, e, dest)
        raise CompileError(f"unknown expression {e!r}")

    def _binop(self, ctx: _FuncCtx, e: BinOp, avail: list[str]) -> str:
        asm = self.asm
        dest = avail[0]
        left = self._expr(ctx, e.left, avail)
        rest = _after(avail, left)
        # Immediate fusion at O2.
        rconst = self._try_const(ctx, e.right) if self.opt >= 2 else None
        if rconst is not None and e.op in ("+", "&", "|", "^") and -2048 <= _signed(rconst, self.xlen) <= 2047:
            op = {"+": asm.addi, "&": asm.andi, "|": asm.ori, "^": asm.xori}[e.op]
            op(dest, left, _signed(rconst, self.xlen))
            return dest
        if rconst is not None and e.op in ("<<", ">>", ">>a") and 0 <= rconst < self.xlen:
            op = {"<<": asm.slli, ">>": asm.srli, ">>a": asm.srai}[e.op]
            op(dest, left, rconst)
            return dest
        right = self._expr(ctx, e.right, rest)
        op = {
            "+": asm.add, "-": asm.sub, "*": asm.mul,
            "&": getattr(asm, "and"), "|": getattr(asm, "or"), "^": asm.xor,
            "<<": asm.sll, ">>": asm.srl, ">>a": asm.sra,
            "/u": asm.divu, "%u": asm.remu,
        }.get(e.op)
        if op is None:
            raise CompileError(f"unknown binop {e.op!r}")
        op(dest, left, right)
        return dest

    def _cmp(self, ctx: _FuncCtx, e: Cmp, avail: list[str]) -> str:
        asm = self.asm
        dest = avail[0]
        left = self._expr(ctx, e.left, avail)
        right = self._expr(ctx, e.right, _after(avail, left))
        if e.op == "==":
            asm.sub(dest, left, right)
            asm.seqz(dest, dest)
        elif e.op == "!=":
            asm.sub(dest, left, right)
            asm.snez(dest, dest)
        elif e.op == "<u":
            asm.sltu(dest, left, right)
        elif e.op == "<s":
            asm.slt(dest, left, right)
        elif e.op == "<=u":
            asm.sltu(dest, right, left)
            asm.xori(dest, dest, 1)
        elif e.op == "<=s":
            asm.slt(dest, right, left)
            asm.xori(dest, dest, 1)
        else:
            raise CompileError(f"unknown comparison {e.op!r}")
        return dest

    def _call(self, ctx: _FuncCtx, e: Call, dest: str) -> str:
        asm = self.asm
        for arg in e.args:
            if not isinstance(arg, (Const, Arg, Var, GlobalAddr)):
                raise CompileError("call arguments must be simple (const/arg/var/global)")
        # Evaluate into a0.. in order; simple exprs cannot clobber each
        # other as long as sources are read before writes to the same
        # register -- enforce by staging through temps when needed.
        for i, arg in enumerate(e.args):
            target = f"a{i}"
            if isinstance(arg, Arg) and self.opt != 0:
                src = f"a{arg.index}"
                if src != target:
                    if arg.index > i:
                        asm.mv(target, src)
                    else:
                        # Earlier a-registers were already overwritten;
                        # re-evaluating is unsound. Require staging.
                        raise CompileError("call shuffles argument registers; use locals")
            else:
                reg = self._expr(ctx, arg, [target] + TEMP_REGS)
                if reg != target:
                    asm.mv(target, reg)
        asm.call(e.func)
        if dest != "a0":
            asm.mv(dest, "a0")
        return dest


def _after(avail: list[str], used: str) -> list[str]:
    if used in avail:
        idx = avail.index(used)
        return avail[idx + 1 :]
    return avail


def _align16(n: int) -> int:
    return (n + 15) & ~15


def _signed(value: int, xlen: int) -> int:
    return value - (1 << xlen) if value >> (xlen - 1) else value


def compile_program(
    program: Program,
    asm: Assembler,
    opt: int = 1,
) -> None:
    """Compile every function into the given assembler.

    Data symbols are declared on the assembler first so ``la`` works;
    callers typically emit boot/trap assembly around the compiled
    functions before calling ``asm.assemble()``.
    """
    if opt not in (0, 1, 2):
        raise CompileError(f"unknown optimization level O{opt}")
    declared = {sym.name for sym in asm._symbols}
    for name, addr, size, shape in program.data:
        if name not in declared:
            asm.data_symbol(name, addr, size, shape)
    compiler = _Compiler(asm, opt, asm.xlen)
    for func in program.funcs:
        compiler.compile_func(func)
