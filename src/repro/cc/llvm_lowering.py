"""Lower mini-C to the LLVM-like IR (the §6.4 incremental strategy).

"We therefore take an incremental approach, using LLVM as an
intermediate step.  First, we compile the core subset of a monitor
(trap handlers written in C) to LLVM ... and prove refinement using
the LLVM verifier ... Next, we reuse and augment the specification
from the previous step, and prove refinement for the binary image."

This lowering lets the monitors' handlers be verified twice against
the *same* functional specification: once at the LLVM level (cheap,
structured, easier to debug) and once from the RISC-V binary (the
final theorem, no compiler in the TCB).
"""

from __future__ import annotations

from ..llvm.ir import (
    Bin,
    Block,
    Br,
    CondBr,
    Const,
    Function as LFunction,
    Gep,
    GlobalRef,
    Icmp,
    Load as LLoad,
    Local,
    Module,
    Param,
    Ret,
    Store as LStore,
)
from .ast import (
    Arg,
    Assign,
    BinOp,
    Call,
    Cmp,
    Const as CConst,
    CsrRead,
    CsrWrite,
    Expr,
    ExprStmt,
    Func,
    GlobalAddr,
    If,
    Load,
    Program,
    Return,
    Stmt,
    Store,
    Var,
    While,
)
from .codegen import CompileError

__all__ = ["lower_program", "lower_function"]

W = 32


class _Lowering:
    def __init__(self, func: Func):
        self.func = func
        self.blocks: list[Block] = []
        self.current: list = []  # instructions of the open block
        self.current_label = "entry"
        self.counter = 0
        self.tmp = 0

    def new_label(self, hint: str) -> str:
        self.counter += 1
        return f"{hint}{self.counter}"

    def new_tmp(self) -> str:
        self.tmp += 1
        return f"t{self.tmp}"

    def seal(self, terminator) -> None:
        self.blocks.append(Block(self.current_label, self.current, terminator))
        self.current = []

    def open_block(self, label: str) -> None:
        self.current_label = label

    # -- expressions ---------------------------------------------------------

    def expr(self, e: Expr):
        """Lower an expression; returns an operand (Value)."""
        if isinstance(e, CConst):
            return Const(e.value & 0xFFFFFFFF, W)
        if isinstance(e, Arg):
            return Param(e.index)
        if isinstance(e, Var):
            # Mini-C locals are mutable; the non-SSA IR's locals match.
            return Local(f"v_{e.name}")
        if isinstance(e, GlobalAddr):
            if e.offset:
                dst = self.new_tmp()
                self.current.append(
                    Gep(dst, GlobalRef(e.name), Const(0, W), 0, offset=e.offset)
                )
                return Local(dst)
            return GlobalRef(e.name)
        if isinstance(e, Load):
            addr = self.expr(e.addr)
            dst = self.new_tmp()
            nbytes = e.nbytes or W // 8
            self.current.append(LLoad(dst, addr, nbytes, signed=e.signed, width=W))
            return Local(dst)
        if isinstance(e, BinOp):
            ops = {
                "+": "add", "-": "sub", "*": "mul", "&": "and", "|": "or", "^": "xor",
                "<<": "shl", ">>": "lshr", ">>a": "ashr", "/u": "udiv", "%u": "urem",
            }
            if e.op not in ops:
                raise CompileError(f"cannot lower binop {e.op!r}")
            a, b = self.expr(e.left), self.expr(e.right)
            dst = self.new_tmp()
            self.current.append(Bin(dst, ops[e.op], a, b))
            return Local(dst)
        if isinstance(e, Cmp):
            preds = {"==": "eq", "!=": "ne", "<u": "ult", "<=u": "ule", "<s": "slt", "<=s": "sle"}
            a, b = self.expr(e.left), self.expr(e.right)
            bit = self.new_tmp()
            self.current.append(Icmp(bit, preds[e.op], a, b))
            wide = self.new_tmp()
            from ..llvm.ir import Cast

            self.current.append(Cast(wide, "zext", Local(bit), W))
            return Local(wide)
        if isinstance(e, (CsrRead, Call)):
            raise CompileError(f"{type(e).__name__} has no LLVM-level lowering (machine-only)")
        raise CompileError(f"cannot lower expression {e!r}")

    # -- statements ---------------------------------------------------------

    def stmts(self, body) -> bool:
        """Lower statements; returns True if the flow fell through."""
        for s in body:
            if not self.stmt(s):
                return False
        return True

    def stmt(self, s: Stmt) -> bool:
        if isinstance(s, Assign):
            value = self.expr(s.value)
            # Bind the mutable local by re-assigning the IR local.
            self.current.append(Bin(f"v_{s.var}", "add", value, Const(0, W)))
            return True
        if isinstance(s, Store):
            value = self.expr(s.value)
            addr = self.expr(s.addr)
            self.current.append(LStore(addr, value, s.nbytes or W // 8))
            return True
        if isinstance(s, Return):
            value = self.expr(s.value) if s.value is not None else None
            self.seal(Ret(value))
            self.open_block(self.new_label("dead"))
            return False
        if isinstance(s, If):
            cond = self.expr(s.cond)
            bit = self.new_tmp()
            self.current.append(Icmp(bit, "ne", cond, Const(0, W)))
            then_label = self.new_label("then")
            else_label = self.new_label("else") if s.els else None
            join_label = self.new_label("join")
            self.seal(CondBr(Local(bit), then_label, else_label or join_label))

            self.open_block(then_label)
            if self.stmts(s.then):
                self.seal(Br(join_label))
            if s.els:
                self.open_block(else_label)
                if self.stmts(s.els):
                    self.seal(Br(join_label))
            self.open_block(join_label)
            return True
        if isinstance(s, While):
            head = self.new_label("loop")
            body_label = self.new_label("body")
            done = self.new_label("done")
            self.seal(Br(head))
            self.open_block(head)
            cond = self.expr(s.cond)
            bit = self.new_tmp()
            self.current.append(Icmp(bit, "ne", cond, Const(0, W)))
            self.seal(CondBr(Local(bit), body_label, done))
            self.open_block(body_label)
            if self.stmts(s.body):
                self.seal(Br(head))
            self.open_block(done)
            return True
        if isinstance(s, ExprStmt):
            self.expr(s.expr)
            return True
        if isinstance(s, CsrWrite):
            raise CompileError("CSR access has no LLVM-level lowering (machine-only)")
        raise CompileError(f"cannot lower statement {s!r}")


def lower_function(func: Func) -> LFunction:
    """Lower one mini-C function to an LLVM-level function."""
    lowering = _Lowering(func)
    if lowering.stmts(func.body):
        lowering.seal(Ret(Const(0, W)))
    else:
        # seal() already closed the last real block; drop the dead one.
        pass
    blocks = {b.label: b for b in lowering.blocks}
    return LFunction(func.name, func.num_args, blocks, entry="entry")


def lower_program(program: Program) -> Module:
    """Lower every lowerable function (CSR/call-using ones are machine
    code's business) into an LLVM module sharing the data layout."""
    functions = {}
    for func in program.funcs:
        try:
            functions[func.name] = lower_function(func)
        except CompileError:
            continue  # machine-only constructs: binary-level proof only
    return Module(functions=functions, data=list(program.data))
