"""CertiKOS^s: the CertiKOS security monitor retrofitted to automated
verification on RISC-V (§6.2)."""

from .impl import build_image
from .invariants import abstract, rep_invariant
from .layout import CALL_GET_QUOTA, CALL_SPAWN, CALL_YIELD, NCHILD, NPROC, children_of
from .spec import (
    CertiState,
    spec_get_quota,
    spec_spawn,
    spec_spawn_implicit,
    spec_yield,
    state_invariant,
)
from .verify import CertikosVerifier, prove_boot, verify_all

__all__ = [name for name in dir() if not name.startswith("_")]
