"""CertiKOS^s implementation: trap entry/exit in assembly, monitor-call
handlers in mini-C (§6.2).

Execution model (Figure 6): a trap from S-mode arrives at ``entry``
with the caller's registers live.  The monitor

  1. saves the caller's saved-register set into ``pcb[current]``,
  2. switches to its own stack,
  3. dispatches on a7 to a compiled handler,
  4. writes the handler's return value into ``pcb[current].a0``
     (current may have changed across yield),
  5. restores the (possibly new) current process's registers,
     zeroes every other register, and ``mret``s.

The handlers are built as mini-C ASTs and compiled at the requested
optimization level, giving Figure 11 its -O0/-O1/-O2 axis.
"""

from __future__ import annotations

from ..cc import (
    Arg,
    Assign,
    BinOp,
    Cmp,
    Const,
    Func,
    GlobalAddr,
    If,
    Load,
    Program,
    Return,
    Store,
    Var,
    compile_program,
)
from ..core.image import Image
from ..riscv import Assembler
from .layout import (
    CALL_GET_QUOTA,
    CALL_SPAWN,
    CALL_YIELD,
    DATA_SYMBOLS,
    NCHILD,
    NPROC,
    NSAVED,
    PCB_STRIDE,
    PROC_FREE,
    PROC_RUN,
    SAVED_REGS,
    STACK_TOP,
    TEXT_BASE,
    WORD,
    XLEN,
)

__all__ = ["build_image", "boot_address"]


def _proc_field(pid_expr, field_offset: int):
    """&procs[pid].field  (stride 8)."""
    return BinOp("+", BinOp("+", GlobalAddr("procs"), BinOp("*", pid_expr, Const(8))), Const(field_offset))


def _handlers() -> Program:
    """The mini-C bodies of the three monitor calls."""
    current = Load(GlobalAddr("current"))

    # int c_get_quota(void) { return procs[current].quota; }
    get_quota = Func(
        "c_get_quota",
        0,
        (Return(Load(_proc_field(Load(GlobalAddr("current")), 4))),),
        locals=(),
    )

    # int c_spawn(int child, int quota).  Ownership is validated
    # *before* procs[child] is ever dereferenced; the memory model's
    # bounds side conditions enforce this ordering.
    spawn_body = (
        Assign("cur", Load(GlobalAddr("current"))),
        Assign("base", BinOp("+", BinOp("*", Var("cur"), Const(NCHILD)), Const(1))),
        Assign(
            "ok",
            BinOp(
                "&",
                BinOp(
                    "&",
                    Cmp("<=u", Var("base"), Arg(0)),
                    Cmp("<u", Arg(0), BinOp("+", Var("base"), Const(NCHILD))),
                ),
                Cmp("<u", Arg(0), Const(NPROC)),
            ),
        ),
        If(
            Cmp("!=", Var("ok"), Const(0)),
            (
                If(
                    Cmp("==", Load(_proc_field(Arg(0), 0)), Const(PROC_FREE)),
                    (
                        If(
                            Cmp("<=u", Arg(1), Load(_proc_field(Var("cur"), 4))),
                            (
                                Store(_proc_field(Arg(0), 0), Const(PROC_RUN)),
                                Store(_proc_field(Arg(0), 4), Arg(1)),
                                Store(
                                    _proc_field(Var("cur"), 4),
                                    BinOp("-", Load(_proc_field(Var("cur"), 4)), Arg(1)),
                                ),
                                # the child starts with minimum state
                                *[
                                    Store(
                                        BinOp(
                                            "+",
                                            BinOp(
                                                "+",
                                                GlobalAddr("pcb"),
                                                BinOp("*", Arg(0), Const(PCB_STRIDE)),
                                            ),
                                            Const(WORD * j),
                                        ),
                                        Const(0),
                                    )
                                    for j in range(NSAVED)
                                ],
                                Return(Arg(0)),
                            ),
                        ),
                    ),
                ),
            ),
        ),
        Return(Const(-1)),
    )
    spawn = Func("c_spawn", 2, spawn_body, locals=("cur", "base", "ok"))

    # void c_yield(void): current = next runnable (round robin)
    yield_body = [Assign("cur", Load(GlobalAddr("current"))), Assign("next", Load(GlobalAddr("current")))]
    for off in range(NPROC - 1, 0, -1):
        yield_body += [
            Assign("cand", BinOp("+", Var("cur"), Const(off))),
            If(
                Cmp("<=u", Const(NPROC), Var("cand")),
                (Assign("cand", BinOp("-", Var("cand"), Const(NPROC))),),
            ),
            If(
                Cmp("==", Load(_proc_field(Var("cand"), 0)), Const(PROC_RUN)),
                (Assign("next", Var("cand")),),
            ),
        ]
    yield_body.append(Store(GlobalAddr("current"), Var("next")))
    yield_body.append(Return(Const(0)))
    yield_ = Func("c_yield", 0, tuple(yield_body), locals=("cur", "next", "cand"))

    return Program(funcs=[get_quota, spawn, yield_], data=list(DATA_SYMBOLS))


# Registers to zero on trap exit: everything outside the saved set and
# x0.  (gp, tp, t0-t6, a3-a7, s2-s11)
_SAVED_NUMS = {num for _, num in SAVED_REGS}
CLEARED_REGS = [i for i in range(1, 32) if i not in _SAVED_NUMS]


def _emit_pcb_addr(asm: Assembler, dest: str, scratch: str) -> None:
    """dest = &pcb[current] using dest/scratch as temporaries."""
    asm.la(dest, "current")
    asm.lw(scratch, 0, dest)
    asm.slli(scratch, scratch, PCB_STRIDE.bit_length() - 1)  # * 32
    asm.la(dest, "pcb")
    asm.add(dest, dest, scratch)


def build_image(opt: int = 1) -> Image:
    """Assemble the complete monitor at the given optimization level."""
    return _build_asm(opt).assemble()


def _build_asm(opt: int) -> Assembler:
    asm = Assembler(base=TEXT_BASE, xlen=XLEN)
    for name, addr, size, shape in DATA_SYMBOLS:
        asm.data_symbol(name, addr, size, shape)

    asm.label("entry")
    # (1) save the caller's registers into pcb[current]; t-registers
    # are clobberable by the monitor ABI.
    _emit_pcb_addr(asm, "t0", "t1")
    for j, (_, num) in enumerate(SAVED_REGS):
        asm.sw(num, WORD * j, "t0")
    # (2) the monitor's own stack.
    asm.li("sp", STACK_TOP)
    # (3) dispatch on a7.
    asm.li("t1", CALL_GET_QUOTA)
    asm.beq("a7", "t1", "do_get_quota")
    asm.li("t1", CALL_SPAWN)
    asm.beq("a7", "t1", "do_spawn")
    asm.li("t1", CALL_YIELD)
    asm.beq("a7", "t1", "do_yield")
    asm.li("a0", -1)
    asm.j("save_ret")

    asm.label("do_get_quota")
    asm.call("c_get_quota")
    asm.j("save_ret")
    asm.label("do_spawn")
    asm.call("c_spawn")
    asm.j("save_ret")
    asm.label("do_yield")
    asm.call("c_yield")
    asm.j("restore")  # yield's "return value" is the next proc's saved a0

    # (4) a0 -> pcb[current].a0 (current unchanged for non-yield calls).
    asm.label("save_ret")
    _emit_pcb_addr(asm, "t0", "t1")
    asm.sw("a0", WORD * 2, "t0")  # slot 2 = a0

    # (5) restore the current process and clear everything else.
    asm.label("restore")
    _emit_pcb_addr(asm, "t0", "t1")
    for j, (_, num) in enumerate(SAVED_REGS):
        asm.lw(num, WORD * j, "t0")
    for num in CLEARED_REGS:
        asm.li(num, 0)
    asm.mret()

    compile_program(_handlers(), asm, opt)
    _emit_boot(asm)
    return asm


# Initial memory quota granted to the root process at boot.
INIT_QUOTA = 16

_BOOT_ADDR_CACHE: dict[int, int] = {}


def boot_address(opt: int = 1) -> int:
    """Address of the boot entry point in the built image."""
    if opt not in _BOOT_ADDR_CACHE:
        asm = _build_asm(opt)
        _BOOT_ADDR_CACHE[opt] = asm.addr_of("boot")
    return _BOOT_ADDR_CACHE[opt]
# Where the (untrusted) S-mode loader starts after boot.
S_MODE_START = 0x0010_0000


def _emit_boot(asm: Assembler) -> None:
    """Boot code (§3.4): establish the representation invariant from
    the architectural reset state, then drop to S-mode.

    Initializes the scheduler state (process 0 runnable with the whole
    quota), zeroes the register banks, points mtvec at the trap
    entry, and clears every register before mret — so AF of the
    post-boot state is exactly the initial specification state.
    """
    asm.label("boot")
    asm.la("t0", "current")
    asm.sw("zero", 0, "t0")
    asm.la("t0", "procs")
    asm.li("t1", PROC_RUN)
    asm.sw("t1", 0, "t0")
    asm.li("t1", INIT_QUOTA)
    asm.sw("t1", WORD, "t0")
    for pid in range(1, NPROC):
        asm.sw("zero", pid * 8, "t0")
        asm.sw("zero", pid * 8 + WORD, "t0")
    asm.la("t0", "pcb")
    for off in range(0, NPROC * PCB_STRIDE, WORD):
        asm.sw("zero", off, "t0")
    asm.li("t0", asm.addr_of("entry"))
    asm.csrrw("zero", "mtvec", "t0")
    asm.li("t0", S_MODE_START)
    asm.csrrw("zero", "mepc", "t0")
    for num in range(1, 32):
        asm.li(num, 0)
    asm.mret()
