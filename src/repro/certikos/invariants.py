"""CertiKOS^s abstraction function and representation invariant (§3.3).

``abstract`` maps an implementation machine state (registers + the
monitor's data structures in physical memory) to a specification
state; ``rep_invariant`` pins down the well-formedness facts the
refinement proof may assume — and must re-establish.
"""

from __future__ import annotations

from ..riscv import CpuState
from ..sym import SymBV, SymBool, bv_val, ite
from .layout import NPROC, PCB_STRIDE, PROC_FREE, PROC_RUN, SAVED_REGS, WORD, XLEN
from .spec import CertiState

__all__ = ["abstract", "rep_invariant", "read_current", "read_proc_field", "read_pcb_reg"]


def read_current(cpu: CpuState) -> SymBV:
    return cpu.mem.region("current").block.load(bv_val(0, XLEN), WORD, cpu.mem.opts)


def read_proc_field(cpu: CpuState, pid: int, field: str) -> SymBV:
    offset = pid * 8 + (0 if field == "state" else WORD)
    return cpu.mem.region("procs").block.load(bv_val(offset, XLEN), WORD, cpu.mem.opts)


def read_pcb_reg(cpu: CpuState, pid: int, j: int) -> SymBV:
    offset = pid * PCB_STRIDE + WORD * j
    return cpu.mem.region("pcb").block.load(bv_val(offset, XLEN), WORD, cpu.mem.opts)


def abstract(cpu: CpuState) -> CertiState:
    """AF: the current process's registers live in the CPU; everyone
    else's live in their PCB (§6.2 execution model)."""
    current = read_current(cpu)
    out = CertiState.__new__(CertiState)
    out.current = current
    out.state = [read_proc_field(cpu, p, "state") for p in range(NPROC)]
    out.quota = [read_proc_field(cpu, p, "quota") for p in range(NPROC)]
    # nr_children exists only for the legacy implicit-spawn spec; the
    # explicit-PID system neither stores nor depends on it.
    out.nr_children = [bv_val(0, XLEN) for _ in range(NPROC)]
    regs = []
    for p in range(NPROC):
        for j, (_, num) in enumerate(SAVED_REGS):
            live = cpu.reg(num)
            saved = read_pcb_reg(cpu, p, j)
            regs.append(ite(current == p, live, saved))
    out.regs = regs
    return out


def rep_invariant(cpu: CpuState) -> SymBool:
    """RI over the implementation state."""
    current = read_current(cpu)
    inv = current < NPROC
    # The running process is marked RUN, and the root process exists.
    running_state = read_proc_field(cpu, NPROC - 1, "state")
    for p in range(NPROC - 2, -1, -1):
        running_state = ite(current == p, read_proc_field(cpu, p, "state"), running_state)
    inv = inv & (running_state == PROC_RUN)
    inv = inv & (read_proc_field(cpu, 0, "state") == PROC_RUN)
    for p in range(NPROC):
        st = read_proc_field(cpu, p, "state")
        inv = inv & ((st == PROC_FREE) | (st == PROC_RUN))
    return inv
