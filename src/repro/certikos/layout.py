"""CertiKOS^s configuration and physical memory layout (§6.2).

Scaled-down parameters (documented in DESIGN.md): XLEN=32, four
processes, two children per process.  The PID space is statically
partitioned as in the paper: process ``pid`` owns child PIDs in
``[N*pid + 1, N*pid + N]``.

The monitor's saved-register set is {ra, sp, a0, a1, a2, s0, s1}; all
other user registers are zeroed on trap return (a hardening choice
that also keeps the specification small — the real system saves the
full file; the ABI here declares the rest clobbered-to-zero).
"""

from __future__ import annotations

XLEN = 32
WORD = XLEN // 8
NPROC = 4
NCHILD = 2

# Monitor call numbers (passed in a7).
CALL_GET_QUOTA = 0
CALL_SPAWN = 1
CALL_YIELD = 2

# Process states.
PROC_FREE = 0
PROC_RUN = 1

# Saved user-register set: (spec index, riscv register number).
SAVED_REGS = [("ra", 1), ("sp", 2), ("a0", 10), ("a1", 11), ("a2", 12), ("s0", 8), ("s1", 9)]
NSAVED = len(SAVED_REGS)
PCB_STRIDE = 32  # 7 words + pad, power of two for cheap addressing

# Physical layout.
TEXT_BASE = 0x0000_1000
CURRENT_ADDR = 0x0001_0000
PROCS_ADDR = 0x0001_1000  # array of {state, quota}, stride 8
PCB_ADDR = 0x0001_2000  # array of {7 regs + pad}, stride 32
STACK_ADDR = 0x0001_3000
STACK_SIZE = 256
STACK_TOP = STACK_ADDR + STACK_SIZE

DATA_SYMBOLS = [
    ("current", CURRENT_ADDR, WORD, ("cell", WORD)),
    (
        "procs",
        PROCS_ADDR,
        NPROC * 8,
        ("array", NPROC, ("struct", [("state", ("cell", WORD)), ("quota", ("cell", WORD))])),
    ),
    (
        "pcb",
        PCB_ADDR,
        NPROC * PCB_STRIDE,
        (
            "array",
            NPROC,
            ("struct", [("regs", ("array", NSAVED, ("cell", WORD))), ("pad", ("cell", WORD))]),
        ),
    ),
    ("stack", STACK_ADDR, STACK_SIZE, ("array", STACK_SIZE // WORD, ("cell", WORD))),
]


def children_of(pid: int) -> list[int]:
    """Statically-owned child PIDs of ``pid`` that exist."""
    return [c for c in range(NCHILD * pid + 1, NCHILD * pid + NCHILD + 1) if c < NPROC]
