"""CertiKOS^s noninterference (§6.2).

Two specifications, both over the functional spec:

1. **CertiKOS's three small-step properties**, which together imply
   step consistency for big-step actions (we reuse and prove them):

   * a small-step action by p from indistinguishable states yields
     indistinguishable states;
   * a small-step action by another process leaves p's view unchanged;
   * being yielded to from indistinguishable states yields
     indistinguishable states.

2. **Nickel-style intransitive noninterference**, "which enabled us
   to catch the PID covert channel in spawn": the original implicit-
   PID spawn targets a child determined by the parent's *private*
   ``nr_children`` counter, so no state-independent policy covers its
   effects; the explicit-PID spawn's effects are covered by the
   static ownership policy.
"""

from __future__ import annotations

from ..core.noninterference import Action, NIPolicy, prove_nickel_ni
from ..sym import ProofResult, SymBool, fresh_bv, new_context, sym_true, verify_vcs
from .layout import NPROC, NSAVED, XLEN, children_of
from .spec import (
    CertiState,
    spec_get_quota,
    spec_spawn,
    spec_spawn_implicit,
    spec_yield,
    state_invariant,
)

__all__ = [
    "observer_equiv",
    "prove_small_step_properties",
    "nickel_policy",
    "prove_nickel",
    "prove_spawn_targets_owned_child",
]


def observer_equiv(u: int, s1, s2) -> SymBool:
    """s1 ~u s2: process u's quota, state flag, registers, children
    counter, and the existence of its statically-owned children.

    Owned children's existence is u's information (only u can spawn
    them), which is what makes the explicit-PID spawn's success
    condition a function of the caller's view.
    """
    eq = (
        (s1.quota[u] == s2.quota[u])
        & (s1.state[u] == s2.state[u])
        & (s1.nr_children[u] == s2.nr_children[u])
    )
    for j in range(NSAVED):
        eq = eq & (s1.regs[u * NSAVED + j] == s2.regs[u * NSAVED + j])
    for c in children_of(u):
        eq = eq & (s1.state[c] == s2.state[c])
    return eq


def _assume(s1, s2) -> SymBool:
    return state_invariant(s1) & state_invariant(s2)


def prove_small_step_properties(max_conflicts: int | None = None) -> dict[str, ProofResult]:
    """The three CertiKOS properties, finitized per action/observer."""
    results: dict[str, ProofResult] = {}

    actions = {
        "get_quota": lambda s, args: spec_get_quota(s),
        "spawn": lambda s, args: spec_spawn(s, args[0], args[1]),
        "yield": lambda s, args: spec_yield(s),
    }

    for name, apply in actions.items():
        # (1) same-process step consistency: if the actor's view (and
        # its action arguments) agree, the actor's view agrees after.
        with new_context() as ctx:
            s1 = CertiState.fresh(f"css.{name}.s1")
            s2 = CertiState.fresh(f"css.{name}.s2")
            args = (fresh_bv(f"css.{name}.a0", XLEN), fresh_bv(f"css.{name}.a1", XLEN))
            t1, t2 = apply(s1, args), apply(s2, args)
            for u in range(NPROC):
                acting = (s1.current == u) & (s2.current == u)
                pre = _assume(s1, s2) & acting & observer_equiv(u, s1, s2)
                ctx.assert_prop(
                    pre.implies(observer_equiv(u, t1, t2)),
                    f"{name}: actor view determines actor view (p{u})",
                )
            results[f"{name}.actor"] = verify_vcs(ctx, max_conflicts=max_conflicts)

        # (2) another process's action leaves my view unchanged —
        # except for flows the policy allows (spawn into my slot).
        with new_context() as ctx:
            s = CertiState.fresh(f"css2.{name}.s")
            args = (fresh_bv(f"css2.{name}.a0", XLEN), fresh_bv(f"css2.{name}.a1", XLEN))
            t = apply(s, args)
            for u in range(NPROC):
                not_me = state_invariant(s) & (s.current != u)
                if name == "spawn":
                    # u may be the spawned child; exclude owned targets.
                    for parent in range(NPROC):
                        if u in children_of(parent):
                            not_me = not_me & ((s.current != parent) | (args[0] != u))
                ctx.assert_prop(
                    not_me.implies(observer_equiv(u, s, t)),
                    f"{name}: other's action invisible to p{u}",
                )
            results[f"{name}.frame"] = verify_vcs(ctx, max_conflicts=max_conflicts)

    # (3) yield-to consistency: yielding preserves every observer's view
    # (register banks travel with their processes).
    with new_context() as ctx:
        s1 = CertiState.fresh("css3.s1")
        s2 = CertiState.fresh("css3.s2")
        t1, t2 = spec_yield(s1), spec_yield(s2)
        for u in range(NPROC):
            pre = _assume(s1, s2) & observer_equiv(u, s1, s2)
            ctx.assert_prop(
                pre.implies(observer_equiv(u, t1, t2)), f"yield-to consistency (p{u})"
            )
        results["yield.to"] = verify_vcs(ctx, max_conflicts=max_conflicts)
    return results


SCHED = "scheduler"


def nickel_equiv(u, s1, s2) -> SymBool:
    """Per-domain view for the Nickel instantiation.

    Process observers see their own slot *plus* whether it is their
    turn; the scheduler domain sees the schedule-relevant state (all
    runnable flags and the current PID).  Making "am I current" part
    of the view is what forces yield to be a scheduler-domain action.
    """
    if u is SCHED:
        eq = s1.current == s2.current
        for i in range(NPROC):
            eq = eq & (s1.state[i] == s2.state[i])
        return eq
    if isinstance(u, int):
        bit = (s1.current == u) == (s2.current == u)
        return observer_equiv(u, s1, s2) & bit
    # Symbolic observer (the acting domain in weak step consistency):
    # finitize over the PID space.
    out = sym_true()
    for p in range(NPROC):
        out = out & ((u != p) | nickel_equiv(p, s1, s2))
    return out


def nickel_policy() -> NIPolicy:
    """Intransitive policy: a process may flow to itself and to its
    statically-owned children (spawn); the scheduler (which performs
    yield) may flow to everyone — the standard Nickel treatment of
    scheduling."""
    from ..sym import sym_eq

    def flows_to(d1, d2, s) -> SymBool:
        if d1 is SCHED:
            return sym_true()
        allowed = sym_eq(d1, d2) if not isinstance(d1, int) else (
            sym_true() if d1 == d2 else ~sym_true()
        )
        for parent in range(NPROC):
            if d2 in children_of(parent):
                allowed = allowed | (
                    sym_eq(d1, parent)
                    if not isinstance(d1, int)
                    else (sym_true() if d1 == parent else ~sym_true())
                )
        return allowed

    def dom(action_name, s, args):
        return SCHED if action_name == "yield" else s.current

    def equiv(u, s1, s2) -> SymBool:
        return nickel_equiv(u, s1, s2)

    return NIPolicy(
        domains=list(range(NPROC)),
        flows_to=flows_to,
        dom=dom,
        equiv=equiv,
        state_invariant=state_invariant,
    )


def prove_nickel(max_conflicts: int | None = None) -> dict[str, ProofResult]:
    """Nickel unwinding over the explicit-PID spec."""
    policy = nickel_policy()

    def wrap2(fn):
        return lambda s, a, b: fn(s, a, b)

    actions = [
        Action(
            "get_quota",
            lambda s: spec_get_quota(s),
            make_args=lambda p: (),
        ),
        Action(
            "spawn",
            lambda s, child, quota: spec_spawn(s, child, quota),
            make_args=lambda p: (fresh_bv(f"{p}.child", XLEN), fresh_bv(f"{p}.quota", XLEN)),
        ),
        Action(
            "yield",
            lambda s: spec_yield(s),
            make_args=lambda p: (),
        ),
    ]
    results = prove_nickel_ni(policy, actions, CertiState, max_conflicts=max_conflicts)
    return results


def prove_spawn_targets_owned_child(implicit: bool) -> ProofResult:
    """Flow determinism for spawn: which slot a spawn can touch must be
    derivable from the call's *arguments* and the static ownership map.

    For the explicit-PID spawn, the touched child is the ``child``
    argument (when owned) — provable.  For the original implicit spawn
    the touched child is ``N*pid + nr_children + 1``, a function of the
    parent's private counter: the property fails, and the
    counterexample exhibits the PID covert channel (§6.2).
    """
    with new_context() as ctx:
        s = CertiState.fresh("fd.s")
        quota_arg = fresh_bv("fd.quota", XLEN)
        if implicit:
            t = spec_spawn_implicit(s, quota_arg)
            named = None
        else:
            child_arg = fresh_bv("fd.child", XLEN)
            t = spec_spawn(s, child_arg, quota_arg)
            named = child_arg
        inv = state_invariant(s)
        for c in range(1, NPROC):
            untouched = (
                (t.state[c] == s.state[c])
                & (t.quota[c] == s.quota[c])
                & (t.regs[c * NSAVED] == s.regs[c * NSAVED])
            )
            if named is not None:
                # Only the named child (and the paying parent) change.
                ctx.assert_prop(
                    (inv & (named != c) & (s.current != c)).implies(untouched),
                    f"spawn touches only the named child (c{c})",
                )
            else:
                # The implicit spawn claims to touch the caller's
                # "next" child; the natural public approximation is the
                # first owned slot — which is wrong once nr_children>0.
                first_owned = {p: children_of(p)[0] for p in range(NPROC) if children_of(p)}
                cond = inv & (s.current != c)
                for p, first in first_owned.items():
                    if first == c:
                        cond = cond & (s.current != p)
                ctx.assert_prop(
                    cond.implies(untouched),
                    f"spawn touches only the statically-first child (c{c})",
                )
        return verify_vcs(ctx)
