"""CertiKOS^s abstract specification (§6.2).

Specification state: the current PID, per-process state flags and
quotas, and each process's saved-register view.  Three monitor calls:

  * ``get_quota``            -- returns the caller's remaining quota;
  * ``spawn(child, quota)``  -- creates child with an explicit PID the
    caller owns (the paper's covert-channel fix) and a quota carved
    out of the caller's;
  * ``yield``                -- cooperative round-robin switch.

The spec also provides the *original* CertiKOS spawn (child PID
derived from a private ``nr_children`` counter) so the NI proofs can
demonstrate the PID covert channel the Nickel specification caught.
"""

from __future__ import annotations

from ..core import spec_struct
from ..sym import SymBV, SymBool, bv_val, ite
from .layout import NCHILD, NPROC, NSAVED, PROC_FREE, PROC_RUN, XLEN

__all__ = [
    "CertiState",
    "spec_get_quota",
    "spec_spawn",
    "spec_spawn_implicit",
    "spec_yield",
    "state_invariant",
]

# regs is a flat vector: proc p's register j lives at index p*NSAVED+j.
CertiState = spec_struct(
    "certikos",
    current=XLEN,
    state=(XLEN, NPROC),
    quota=(XLEN, NPROC),
    nr_children=(XLEN, NPROC),
    regs=(XLEN, NPROC * NSAVED),
)

A0 = 2  # index of a0 within the saved-register vector (ra, sp, a0, ...)


def reg_of(s, pid_concrete: int, j: int) -> SymBV:
    return s.regs[pid_concrete * NSAVED + j]


def _select(vec, idx: SymBV, count: int) -> SymBV:
    """vec[idx] for a symbolic idx over a concrete list."""
    out = vec[count - 1]
    for i in range(count - 2, -1, -1):
        out = ite(idx == i, vec[i], out)
    return out


def _update(vec, idx: SymBV, value, count: int, guard=None):
    """Functional vec[idx] := value (guarded)."""
    out = list(vec)
    for i in range(count):
        cond = idx == i if guard is None else (idx == i) & guard
        out[i] = ite(cond, value, vec[i])
    return out


def _set_reg(regs, pid: SymBV, j: int, value, guard=None):
    out = list(regs)
    for p in range(NPROC):
        cond = pid == p if guard is None else (pid == p) & guard
        out[p * NSAVED + j] = ite(cond, value, regs[p * NSAVED + j])
    return out


def state_invariant(s) -> SymBool:
    """RI at the specification level: well-formed scheduler state."""
    inv = s.current < NPROC
    inv = inv & (_select(s.state, s.current, NPROC) == PROC_RUN)
    inv = inv & (s.state[0] == PROC_RUN)  # the root process always runs
    for i in range(NPROC):
        inv = inv & ((s.state[i] == PROC_FREE) | (s.state[i] == PROC_RUN))
    return inv


def spec_get_quota(s):
    """a0' := quota[current]; everything else preserved."""
    out = s.copy()
    out.regs = _set_reg(s.regs, s.current, A0, _select(s.quota, s.current, NPROC))
    return out


def _spawn_common(s, child: SymBV, quota_arg: SymBV, ok: SymBool):
    out = s.copy()
    zero = bv_val(0, XLEN)
    out.state = _update(s.state, child, bv_val(PROC_RUN, XLEN), NPROC, guard=ok)
    out.quota = _update(s.quota, child, quota_arg, NPROC, guard=ok)
    # Parent pays the child's quota.
    cur_quota = _select(s.quota, s.current, NPROC)
    out.quota = _update(out.quota, s.current, cur_quota - quota_arg, NPROC, guard=ok)
    # The child starts with minimum state: all saved registers zero
    # (ELF loading is delegated to untrusted S-mode, §6.2).
    regs = list(out.regs)
    for j in range(NSAVED):
        regs = _set_reg(regs, child, j, zero, guard=ok)
    # Return value: child PID on success, -1 on failure.
    regs = _set_reg(regs, s.current, A0, ite(ok, child, bv_val(-1, XLEN)))
    out.regs = regs
    return out


def _owned(current: SymBV, child: SymBV) -> SymBool:
    """Static PID ownership: child in [N*cur+1, N*cur+N] (and exists)."""
    base = current * NCHILD + 1
    return (child >= base) & (child < base + NCHILD) & (child < NPROC)


def spec_spawn(s, child: SymBV, quota_arg: SymBV):
    """CertiKOS^s spawn: the caller *chooses* an owned child PID.

    This closes the covert channel: success depends only on statically
    public information (PID ownership) plus the caller's own state.
    """
    ok = (
        _owned(s.current, child)
        & (_select(s.state, child, NPROC) == PROC_FREE)
        & (quota_arg <= _select(s.quota, s.current, NPROC))
    )
    return _spawn_common(s, child, quota_arg, ok)


def spec_spawn_implicit(s, quota_arg: SymBV):
    """The *original* CertiKOS spawn: child = N*pid + nr_children + 1.

    The allocated PID discloses the caller's number of children to the
    child — the covert channel that the Nickel-style NI specification
    catches (§6.2).  Kept for the bug-reproduction tests.
    """
    child = s.current * NCHILD + _select(s.nr_children, s.current, NPROC) + 1
    ok = (
        (_select(s.nr_children, s.current, NPROC) < NCHILD)
        & (child < NPROC)
        & (_select(s.state, child, NPROC) == PROC_FREE)
        & (quota_arg <= _select(s.quota, s.current, NPROC))
    )
    out = _spawn_common(s, child, quota_arg, ok)
    # The private children counter is what makes the allocated PID a
    # covert channel; the explicit-PID variant never reads or writes it.
    out.nr_children = _update(
        out.nr_children, s.current, _select(s.nr_children, s.current, NPROC) + 1, NPROC, guard=ok
    )
    return out


def spec_next_runnable(s) -> SymBV:
    """Round-robin: the first RUN process after ``current`` (cyclic)."""
    current = s.current
    next_pid = current  # fallback: self
    # Scan offsets NPROC-1 .. 1 so nearer candidates override.
    for off in range(NPROC - 1, 0, -1):
        cand = current + off
        cand = ite(cand >= NPROC, cand - NPROC, cand)
        runnable = _select(s.state, cand, NPROC) == PROC_RUN
        next_pid = ite(runnable, cand, next_pid)
    return next_pid


def spec_yield(s):
    """Switch to the next runnable process (registers travel with the
    per-process banks; nothing else changes)."""
    out = s.copy()
    out.current = spec_next_runnable(s)
    return out


def spec_invalid(s):
    """Unknown monitor call: a0' := -1."""
    out = s.copy()
    out.regs = _set_reg(s.regs, s.current, A0, bv_val(-1, XLEN))
    return out
