"""CertiKOS^s verification driver (§6.2, §6.4).

Builds the monitor binary at a chosen optimization level, runs the
RISC-V verifier over each trap path, and proves lock-step refinement
against the functional specification.  Engine and memory-model
symbolic optimizations are switchable for the E5 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time

from ..core import EngineOptions, Refinement, run_interpreter
from ..core.image import build_memory
from ..core.memory import MemoryOptions
from ..core.symopt import SymOptConfig
from ..riscv import CpuState, RiscvInterp
from ..sym import ProofResult, bv_val
from .impl import build_image
from .invariants import abstract, rep_invariant
from .layout import CALL_GET_QUOTA, CALL_SPAWN, CALL_YIELD, XLEN
from .spec import spec_get_quota, spec_invalid, spec_spawn, spec_yield

__all__ = ["CertikosVerifier", "verify_all", "prove_boot", "OPERATIONS"]

A7 = 17
A0 = 10
A1 = 11


@dataclass
class CertikosVerifier:
    """Verification harness for one build of the monitor."""

    opt: int = 1
    symopts: SymOptConfig = field(default_factory=SymOptConfig)
    fuel: int = 5000
    max_conflicts: int | None = None
    timeout_s: float | None = None
    # Proof-obligation scheduling knobs: with jobs > 1 the refinement
    # VCs feed the process-wide work-stealing pool, and cache_dir names
    # the shared content-addressed verdict store (repro.core.scheduler,
    # repro.core.store).
    jobs: int = 1
    cache_dir: str | None = None
    # Observability knob (repro.obs): False = off, True = collect and
    # attach the snapshot as result.stats["obs"], a path string = also
    # write a Chrome trace there.
    trace: bool | str = False

    def __post_init__(self):
        self.image = build_image(self.opt)
        self.interp = RiscvInterp(self.image, xlen=XLEN)
        self.entry = self.image.base  # 'entry' is the first label

    def make_cpu(self) -> CpuState:
        mem_opts = MemoryOptions(concretize_offsets=self.symopts.concretize_offsets)
        mem = build_memory(self.image, opts=mem_opts, addr_width=XLEN)
        return CpuState.symbolic(XLEN, self.entry, mem, prefix="certikos")

    def engine_options(self) -> EngineOptions:
        return EngineOptions(split_pc=self.symopts.split_pc, fuel=self.fuel)

    def _impl_step(self, cpu: CpuState) -> CpuState:
        return run_interpreter(self.interp, cpu, self.engine_options()).merged()

    def refinement(self, op: str) -> Refinement:
        """The refinement obligation for one monitor call."""
        call_no, spec_fn = OPERATIONS[op]

        def spec_step(s):
            cpu = self._current_cpu
            if op == "get_quota":
                return spec_get_quota(s)
            if op == "spawn":
                return spec_spawn(s, cpu.reg(A0), cpu.reg(A1))
            if op == "yield":
                return spec_yield(s)
            return spec_invalid(s)

        def make_impl():
            cpu = self.make_cpu()
            if call_no is not None and self.symopts.split_cases:
                # split-cases at the harness level (§4, "Monolithic
                # dispatching"): each monitor call is verified with a
                # concrete call number, decomposing the dispatch into
                # one manageable proof per handler.
                cpu.set_reg(A7, bv_val(call_no, XLEN))
            self._current_cpu = cpu
            return cpu

        def extra(cpu):
            a7 = cpu.reg(A7)
            if op == "invalid":
                cond = (a7 != CALL_GET_QUOTA) & (a7 != CALL_SPAWN) & (a7 != CALL_YIELD)
            else:
                cond = a7 == call_no
            return cond

        return Refinement(
            name=f"certikos.{op}.O{self.opt}",
            make_impl=make_impl,
            impl_step=self._impl_step,
            spec_step=spec_step,
            abstract=abstract,
            rep_invariant=rep_invariant,
            extra_assumptions=extra,
        )

    def prove_op(self, op: str) -> ProofResult:
        from ..obs import maybe_tracing

        with maybe_tracing(self.trace) as col:
            result = self.refinement(op).prove(
                max_conflicts=self.max_conflicts,
                timeout_s=self.timeout_s,
                jobs=self.jobs,
                cache_dir=self.cache_dir,
            )
        if col is not None:
            result.stats["obs"] = col.snapshot()
        return result


OPERATIONS = {
    "get_quota": (CALL_GET_QUOTA, spec_get_quota),
    "spawn": (CALL_SPAWN, spec_spawn),
    "yield": (CALL_YIELD, spec_yield),
    "invalid": (None, spec_invalid),
}


def prove_boot(opt: int = 1, max_conflicts: int | None = None) -> ProofResult:
    """Verify the boot code (§3.4): from the architectural reset state
    (arbitrary memory and registers, concrete reset pc), boot
    establishes the representation invariant and AF of the post-boot
    state equals the initial specification state."""
    from ..sym import bv_val as _bv, new_context, verify_vcs
    from . import impl as impl_mod
    from .impl import INIT_QUOTA
    from .layout import NPROC, NSAVED, PROC_RUN
    from .spec import CertiState

    verifier = CertikosVerifier(opt=opt)
    with new_context() as ctx:
        cpu = verifier.make_cpu()
        cpu.pc = _bv(impl_mod.boot_address(opt), XLEN)
        final = run_interpreter(verifier.interp, cpu, verifier.engine_options()).merged()
        init = CertiState.__new__(CertiState)
        init.current = _bv(0, XLEN)
        init.state = [_bv(PROC_RUN if p == 0 else 0, XLEN) for p in range(NPROC)]
        init.quota = [_bv(INIT_QUOTA if p == 0 else 0, XLEN) for p in range(NPROC)]
        init.nr_children = [_bv(0, XLEN) for _ in range(NPROC)]
        init.regs = [_bv(0, XLEN) for _ in range(NPROC * NSAVED)]
        ctx.assert_prop(rep_invariant(final), "boot establishes RI")
        ctx.assert_prop(abstract(final).eq(init), "boot state abstracts to the initial spec state")
        ctx.assert_prop(final.csr("mtvec") == verifier.entry, "mtvec points at the trap entry")
        return verify_vcs(ctx, max_conflicts=max_conflicts)


def verify_all(
    opt: int = 1,
    symopts: SymOptConfig | None = None,
    timeout_s: float | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
    trace: bool | str = False,
):
    """Prove refinement for every monitor call; returns name -> (result, seconds).

    With ``jobs > 1`` the per-call proofs share the process-wide
    scheduler: each call's VCs are queued as they are produced, so
    workers stay busy *across* calls instead of draining between them.
    ``trace`` wraps the whole sweep in one tracing session (a path
    string writes the Chrome trace there on exit).
    """
    from ..obs import maybe_tracing

    verifier = CertikosVerifier(
        opt=opt,
        symopts=symopts or SymOptConfig(),
        timeout_s=timeout_s,
        jobs=jobs,
        cache_dir=cache_dir,
    )
    results = {}
    with maybe_tracing(trace):
        for op in OPERATIONS:
            start = time.perf_counter()
            result = verifier.prove_op(op)
            results[op] = (result, time.perf_counter() - start)
    return results
