"""The Serval framework core (Figure 1, middle box).

Specification library, symbolic optimizations, and support for
verifying systems code: the lifting engine, the memory model, binary
images, refinement, safety, and noninterference.
"""

from .engine import EngineOptions, Interpreter, Paths, run_interpreter
from .errors import (
    EngineFuelExhausted,
    MemoryModelError,
    ServalError,
    SpecificationError,
    UnconstrainedPc,
)
from .image import Image, Symbol, build_memory
from .memory import MCell, MStruct, MUniform, Memory, MemoryOptions, Region
from .noninterference import (
    Action,
    NIPolicy,
    prove_local_respect,
    prove_nickel_ni,
    prove_step_consistency,
)
from .runner import (
    Obligation,
    ObligationResult,
    RunnerStats,
    obligations_from_context,
    parallel_map,
    reduce_results,
    run_obligations,
)
from .scheduler import (
    ObligationScheduler,
    SchedulerStats,
    get_scheduler,
    shutdown_scheduler,
)
from .safety import (
    count_where,
    prove_invariant_step,
    prove_one_safety,
    prove_two_safety,
    reference_count_consistent,
)
from .spec import Refinement, SpecStruct, spec_struct, theorem
from .symopt import (
    SymOptConfig,
    concretize,
    rewrite_with_invariant,
    split_cases,
    split_cases_value,
)

__all__ = [name for name in dir() if not name.startswith("_")] + [
    "VerdictStore",
    "open_store",
]


def __getattr__(name):
    # Lazy so that ``python -m repro.core.store`` does not import the
    # module twice (runpy would warn about the sys.modules collision).
    if name == "VerdictStore":
        from .store import VerdictStore

        return VerdictStore
    if name == "open_store":
        from .store import open_store

        return open_store
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
