"""The lifting engine: all-paths symbolic evaluation of interpreters.

Serval turns an interpreter into a verifier by running it on symbolic
state (§3.2).  The engine below drives that evaluation:

  * With ``split_pc`` enabled (the symbolic optimization of §4), the
    engine maintains a worklist keyed by *concrete* program counter.
    After each step, a merged symbolic pc (an ``ite`` tree) is split
    into its concrete leaves; states that land on the same pc are
    merged (Rosette's hybrid strategy), so diamonds stay polynomial
    while fetch/decode always see a concrete pc.

  * With ``split_pc`` disabled (the paper's ablation: refinement
    proofs time out, §6.4), the pc stays symbolic.  ``fetch`` must
    then consider every instruction, producing guarded unions whose
    evaluation blows up exactly as Figure 5 illustrates.

Interpreters implement the small :class:`Interpreter` protocol; the
ISA verifiers in ``repro.riscv``/``x86``/``llvm``/``bpf`` are all
instances.

The guarded final states this engine produces are where parallel
verification starts: every ``assert_prop``/``bug_on`` recorded under a
path guard becomes one independent proof obligation
(``repro.core.runner.Obligation``), which the process-wide
work-stealing scheduler (``repro.core.scheduler``) discharges and the
content-addressed verdict store (``repro.core.store``) memoizes.  See
``docs/ARCHITECTURE.md`` for the worked dataflow from a ``split-pc``
leaf to a stored verdict.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import heapq
from typing import Any

from ..smt import Term, mk_and, mk_bool, mk_or
from ..sym import SymBV, SymBool, Union, current, merge_states, note_split, region
from ..sym.reflect import NotConcretizable, split_concrete
from .errors import EngineFuelExhausted, UnconstrainedPc

__all__ = ["Interpreter", "EngineOptions", "Paths", "run_interpreter"]


class Interpreter:
    """Protocol for interpreters liftable by the engine.

    Subclasses provide the fetch-decode-execute pieces; the engine
    owns control flow, path splitting, and state merging.
    """

    def pc_of(self, state) -> SymBV:
        raise NotImplementedError

    def set_pc(self, state, pc_val: int) -> None:
        """Overwrite the state's pc with a concrete value.

        Called by ``split_pc`` after cloning the state for one leaf:
        the concrete pc is what enables partial evaluation downstream.
        """
        raise NotImplementedError

    def is_halted(self, state) -> bool:
        """Whether the state finished execution.  Must be concrete:
        halting is control flow, and control flow is concretized by
        the pc split."""
        raise NotImplementedError

    def copy_state(self, state):
        raise NotImplementedError

    def fetch(self, state):
        """Return the instruction at the state's pc.

        When the pc is symbolic (split_pc off), implementations must
        return a guarded :class:`Union` of instructions, which is the
        path-explosion behaviour the optimization repairs.
        """
        raise NotImplementedError

    def execute(self, state, insn) -> None:
        """Execute one instruction, mutating ``state`` (including pc)."""
        raise NotImplementedError

    def merge_key(self, state):
        """Extra control state to split on besides the pc (e.g. a
        'halted' flag or privilege mode).  Must be hashable and
        concrete."""
        return None


@dataclass
class EngineOptions:
    split_pc: bool = True
    merge_states: bool = True  # ablation: False = pure path enumeration
    fuel: int = 200_000  # maximum executed instructions across all paths
    max_union: int = 4096  # bail-out for runaway pc unions


@dataclass
class Paths:
    """The result of all-paths evaluation: guarded final states."""

    finals: list[tuple[Term, Any]] = field(default_factory=list)
    steps: int = 0

    def merged(self):
        """Merge all final states into one (guards become ite trees)."""
        if not self.finals:
            raise ValueError("no final states")
        guard, state = self.finals[0]
        for g, s in self.finals[1:]:
            state = merge_states(SymBool(g), s, state)
            guard = mk_or(guard, g)
        return state

    def coverage(self) -> Term:
        """Disjunction of final guards (should be valid for total runs)."""
        return mk_or(*(g for g, _ in self.finals)) if self.finals else mk_bool(False)


def run_interpreter(interp: Interpreter, state, options: EngineOptions | None = None) -> Paths:
    """Evaluate ``interp`` from ``state`` over all feasible paths."""
    options = options or EngineOptions()
    if options.split_pc and options.merge_states:
        return _run_split_merged(interp, state, options)
    if options.split_pc:
        return _run_split_paths(interp, state, options)
    return _run_merged_pc(interp, state, options)


def _pc_leaves(interp: Interpreter, state, options: EngineOptions):
    """Split a (possibly symbolic) pc into (guard, concrete pc) pairs.

    This is the ``split-pc`` symbolic optimization (§4): recursively
    break the ite value and evaluate each branch with a concrete pc,
    maximizing opportunities for partial evaluation.
    """
    pc = interp.pc_of(state)
    try:
        raw = split_concrete(pc, limit=options.max_union)
    except NotConcretizable as exc:
        raise UnconstrainedPc(
            f"program counter is not determined by path conditions ({exc}); "
            "this usually indicates a jump to an unchecked untrusted address (§4)"
        ) from exc
    leaves = [
        (mk_and(*guards) if guards else mk_bool(True), value) for guards, value in raw
    ]
    if len(leaves) > 1:
        note_split(len(leaves) - 1)
    return leaves


def _run_split_merged(interp: Interpreter, state, options: EngineOptions) -> Paths:
    """split-pc + state merging: the production configuration."""
    ctx = current()
    result = Paths()
    # Worklist keyed by (pc, merge_key); entries merge on collision.
    pending: dict[tuple, tuple[Term, Any]] = {}
    order: list[tuple] = []  # min-heap of keys for deterministic processing

    def enqueue(guard: Term, st) -> None:
        if interp.is_halted(st):
            result.finals.append((guard, st))
            return
        leaves = _pc_leaves(interp, st, options)
        for leaf_guard, pc_val in leaves:
            g = mk_and(guard, leaf_guard)
            if g is mk_bool(False):
                continue
            # Clone the state for this concrete pc value ("doing so
            # effectively clones the program state for each concrete
            # value, maximizing opportunities for partial evaluation",
            # §4).
            clone = interp.copy_state(st)
            interp.set_pc(clone, pc_val)
            key = (pc_val, interp.merge_key(clone))
            if key in pending:
                old_guard, old_state = pending[key]
                merged = merge_states(SymBool(g), clone, old_state)
                pending[key] = (mk_or(old_guard, g), merged)
            else:
                pending[key] = (g, clone)
                heapq.heappush(order, key)

    enqueue(mk_bool(True), state)
    while order:
        key = heapq.heappop(order)
        guard, st = pending.pop(key)
        if interp.is_halted(st):
            result.finals.append((guard, st))
            continue
        if result.steps >= options.fuel:
            raise EngineFuelExhausted(f"exceeded {options.fuel} steps; unbounded loop?")
        result.steps += 1
        with ctx.under(SymBool(guard)):
            with region("engine.step"):
                insn = interp.fetch(st)
                interp.execute(st, insn)
        enqueue(guard, st)
    return result


def _run_split_paths(interp: Interpreter, state, options: EngineOptions) -> Paths:
    """split-pc without merging: pure path enumeration (ablation).

    Exponential in the number of control-flow diamonds; used to
    demonstrate why Rosette's hybrid strategy matters (§3.2).
    """
    ctx = current()
    result = Paths()
    stack: list[tuple[Term, Any]] = [(mk_bool(True), state)]
    while stack:
        guard, st = stack.pop()
        if interp.is_halted(st):
            result.finals.append((guard, st))
            continue
        if result.steps >= options.fuel:
            raise EngineFuelExhausted(f"exceeded {options.fuel} steps (path enumeration)")
        result.steps += 1
        with ctx.under(SymBool(guard)):
            insn = interp.fetch(st)
            interp.execute(st, insn)
        if interp.is_halted(st):
            result.finals.append((guard, st))
            continue
        for leaf_guard, pc_val in _pc_leaves(interp, st, options):
            g = mk_and(guard, leaf_guard)
            if g is mk_bool(False):
                continue
            clone = interp.copy_state(st)
            interp.set_pc(clone, pc_val)
            stack.append((g, clone))
    return result


def _run_merged_pc(interp: Interpreter, state, options: EngineOptions) -> Paths:
    """No split-pc: the pc stays a merged symbolic value.

    ``fetch`` returns guarded unions over every feasible instruction;
    each step multiplies work by the program size.  Provided for the
    §6.4 ablation; real verification always enables split-pc.
    """
    result = Paths()
    st = state
    for _ in range(options.fuel):
        halted = interp.is_halted(st)
        if halted:
            break
        result.steps += 1
        insn = interp.fetch(st)
        if isinstance(insn, Union):
            if len(insn) > options.max_union:
                raise EngineFuelExhausted(
                    f"instruction union exceeded {options.max_union} alternatives"
                )
            note_split(len(insn))

            def execute_alt(single, st=st):
                fresh = interp.copy_state(st)
                interp.execute(fresh, single)
                return fresh

            states = [(g, execute_alt(v)) for g, v in insn.alternatives]
            guard0, merged = states[0]
            for g, s in states[1:]:
                merged = merge_states(SymBool(g.term if isinstance(g, SymBool) else g), s, merged)
            st = merged
        else:
            interp.execute(st, insn)
    else:
        raise EngineFuelExhausted(f"exceeded {options.fuel} steps without split-pc")
    result.finals.append((mk_bool(True), st))
    return result
