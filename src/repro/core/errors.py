"""Exception types for the Serval core framework."""

__all__ = [
    "ServalError",
    "UnconstrainedPc",
    "EngineFuelExhausted",
    "MemoryModelError",
    "SpecificationError",
]


class ServalError(Exception):
    """Base class for framework errors."""


class UnconstrainedPc(ServalError):
    """The program counter is an opaque symbolic value (§4).

    ``split_pc`` cannot apply; in real systems this usually indicates
    a security bug: a jump to an unchecked, untrusted address.
    """


class EngineFuelExhausted(ServalError):
    """Symbolic evaluation did not terminate within the step budget.

    Serval requires finite interfaces (§3.5): implementations must be
    free of unbounded loops.
    """


class MemoryModelError(ServalError):
    """A memory access could not be resolved to a block/offset."""


class SpecificationError(ServalError):
    """A specification input (AF, RI, functional spec) is malformed."""
