"""Binary images and symbol tables (§3.4).

The paper's verifiers consume binary images: they extract top-level
memory blocks from symbol tables (via objdump) and construct memory
representations from debugging information, validating the extraction
(disjointness, alignment) rather than trusting the tools.  Our
assembler/linker substitute produces :class:`Image` objects carrying
the same information; :func:`build_memory` performs the validated
extraction into the memory model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import MemoryModelError
from .memory import Block, MCell, MStruct, MUniform, Memory, MemoryOptions, Region

__all__ = ["Symbol", "Image", "build_memory"]


@dataclass
class Symbol:
    """A symbol-table entry, with an optional shape hint.

    ``shape`` plays the role of DWARF debugging info: it tells the
    extractor which block representation to build.  Shapes:

      ("cell", nbytes)
      ("array", count, elem_shape)
      ("struct", [(field_name, shape), ...])
    """

    name: str
    addr: int
    size: int
    kind: str = "object"  # "object" | "func"
    shape: tuple | None = None


@dataclass
class Image:
    """A loaded binary image: code words plus data symbols."""

    base: int
    word_size: int  # bytes per instruction slot
    words: dict[int, int] = field(default_factory=dict)  # addr -> encoded insn
    symbols: list[Symbol] = field(default_factory=list)
    entry: int = 0

    def symbol(self, name: str) -> Symbol:
        for s in self.symbols:
            if s.name == name:
                return s
        raise KeyError(name)

    def text_range(self) -> tuple[int, int]:
        if not self.words:
            return (self.base, self.base)
        addrs = sorted(self.words)
        return (addrs[0], addrs[-1] + self.word_size)


def _block_of_shape(shape: tuple, name: str, symbolic: bool) -> Block:
    kind = shape[0]
    if kind == "cell":
        if symbolic:
            from ..sym import fresh_bv

            return MCell(shape[1], fresh_bv(name, shape[1] * 8))
        return MCell(shape[1])
    if kind == "array":
        _, count, elem = shape
        return MUniform([_block_of_shape(elem, f"{name}[{i}]", symbolic) for i in range(count)])
    if kind == "struct":
        return MStruct(
            [(fname, _block_of_shape(s, f"{name}.{fname}", symbolic)) for fname, s in shape[1]]
        )
    raise MemoryModelError(f"unknown shape {shape!r}")


def build_memory(
    image: Image,
    opts: MemoryOptions | None = None,
    addr_width: int = 32,
    extra_regions: list[Region] | None = None,
    symbolic: bool = True,
) -> Memory:
    """Extract data symbols into a validated :class:`Memory` (§3.4).

    Performs the validity checks the paper describes so the extraction
    need not be trusted: block sizes must match symbol sizes, and
    regions must be disjoint (checked by ``Memory``) and aligned to
    their access width.

    With ``symbolic=True`` (the default), every cell starts with a
    fresh symbolic value — the architecturally-unknown memory contents
    a trap handler sees (§3.4).  Boot-code verification passes
    ``symbolic=False`` for zeroed reset state.
    """
    regions = list(extra_regions or [])
    for sym in image.symbols:
        if sym.kind != "object":
            continue
        shape = sym.shape or ("array", max(1, sym.size // 4), ("cell", 4))
        block = _block_of_shape(shape, sym.name, symbolic)
        if block.size() != sym.size:
            raise MemoryModelError(
                f"symbol {sym.name}: shape size {block.size()} != symbol size {sym.size}"
            )
        if sym.addr % 4 != 0:
            raise MemoryModelError(f"symbol {sym.name}: misaligned base {sym.addr:#x}")
        regions.append(Region(sym.name, sym.addr, block))
    return Memory(regions, opts, addr_width)
