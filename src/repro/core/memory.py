"""The Serval memory model (§3.4).

Memory is a set of disjoint top-level *regions*, each holding a block
tree built from three block types (mirroring C types):

  * :class:`MCell`     -- a fixed-width value (like an integer field),
  * :class:`MUniform`  -- ``count`` elements of identical shape (array),
  * :class:`MStruct`   -- named fields of possibly different shapes.

Choosing a block shape that matches how the implementation accesses a
region keeps the number of generated constraints small, compared to a
naive flat array of bytes.

Symbolic addresses are handled with the §4 "symbolic memory address"
optimization: an in-block offset of the form ``idx*C0 + C1`` is
optimistically rewritten into (element ``idx``, field offset ``C1``),
emitting a bounds side condition that verification must discharge.
Disable ``concretize_offsets`` to get the naive behaviour (an ite
over every element) used by the ablation benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..smt import mk_bool
from ..sym import SymBV, SymBool, bug_on, bv, bv_val, ite, merge
from ..sym.reflect import destruct_linear
from .errors import MemoryModelError

__all__ = ["MCell", "MUniform", "MStruct", "Region", "Memory", "MemoryOptions"]


@dataclass
class MemoryOptions:
    """Knobs for the symbolic-address optimization (ablation: E5)."""

    concretize_offsets: bool = True
    # Upper bound on ite fan-out when concretization is disabled.
    max_fanout: int = 4096


DEFAULT_OPTIONS = MemoryOptions()


class Block:
    """Base class for memory blocks.  Sizes are in bytes."""

    def size(self) -> int:
        raise NotImplementedError

    def copy(self) -> "Block":
        raise NotImplementedError

    def load(self, offset: SymBV, nbytes: int, opts: MemoryOptions) -> SymBV:
        raise NotImplementedError

    def store(self, offset: SymBV, value: SymBV, opts: MemoryOptions) -> None:
        raise NotImplementedError

    def __sym_merge__(self, guard: SymBool, other: "Block") -> "Block":
        raise NotImplementedError


class MCell(Block):
    """A single fixed-width value; the leaf of a block tree.

    Byte-granularity loads and stores within the cell are supported
    via extract/splice, so byte-addressed code still verifies, just
    with more constraints than well-shaped access.
    """

    __slots__ = ("nbytes", "value")

    def __init__(self, nbytes: int, value: SymBV | int = 0):
        self.nbytes = nbytes
        self.value = bv(value, nbytes * 8) if not isinstance(value, SymBV) else value
        if self.value.width != nbytes * 8:
            raise MemoryModelError(f"cell value width {self.value.width} != {nbytes * 8}")

    def size(self) -> int:
        return self.nbytes

    def copy(self) -> "MCell":
        return MCell(self.nbytes, self.value)

    def load(self, offset: SymBV, nbytes: int, opts: MemoryOptions) -> SymBV:
        if nbytes == self.nbytes:
            if offset.is_concrete and offset.as_int() != 0:
                raise MemoryModelError(f"full-cell load at offset {offset.as_int()}")
            bug_on(offset != 0, "misaligned full-cell load")
            return self.value
        if not offset.is_concrete:
            raise MemoryModelError("symbolic sub-cell offsets are not supported")
        off = offset.as_int()
        if off + nbytes > self.nbytes:
            raise MemoryModelError(f"load of {nbytes}B at {off} exceeds cell of {self.nbytes}B")
        return self.value.extract(off * 8 + nbytes * 8 - 1, off * 8)

    def store(self, offset: SymBV, value: SymBV, opts: MemoryOptions) -> None:
        nbytes = value.width // 8
        if nbytes == self.nbytes:
            if offset.is_concrete and offset.as_int() != 0:
                raise MemoryModelError(f"full-cell store at offset {offset.as_int()}")
            bug_on(offset != 0, "misaligned full-cell store")
            self.value = value
            return
        if not offset.is_concrete:
            raise MemoryModelError("symbolic sub-cell offsets are not supported")
        off = offset.as_int()
        if off + nbytes > self.nbytes:
            raise MemoryModelError(f"store of {nbytes}B at {off} exceeds cell of {self.nbytes}B")
        pieces = []
        if off + nbytes < self.nbytes:
            pieces.append(self.value.extract(self.nbytes * 8 - 1, (off + nbytes) * 8))
        pieces.append(value)
        if off > 0:
            pieces.append(self.value.extract(off * 8 - 1, 0))
        out = pieces[0]
        for p in pieces[1:]:
            out = out.concat(p)
        self.value = out

    def __sym_merge__(self, guard: SymBool, other: "MCell") -> "MCell":
        return MCell(self.nbytes, merge(guard, self.value, other.value))

    def __repr__(self) -> str:
        return f"MCell({self.nbytes}B, {self.value!r})"


class MUniform(Block):
    """An array of ``count`` identically-shaped sub-blocks."""

    __slots__ = ("elems", "elem_size")

    def __init__(self, elems: list[Block]):
        if not elems:
            raise MemoryModelError("uniform block needs at least one element")
        self.elems = elems
        self.elem_size = elems[0].size()
        if any(e.size() != self.elem_size for e in elems):
            raise MemoryModelError("uniform block elements differ in size")

    @classmethod
    def of(cls, count: int, make: "callable") -> "MUniform":
        return cls([make() for _ in range(count)])

    def size(self) -> int:
        return self.elem_size * len(self.elems)

    def copy(self) -> "MUniform":
        return MUniform([e.copy() for e in self.elems])

    def _resolve(self, offset: SymBV, access_bytes: int, opts: MemoryOptions):
        """Split an offset into (element index, within-element offset).

        Concrete offsets resolve directly.  Symbolic offsets go through
        the §4 concretization: match ``idx*elem_size + C``, emit a
        bounds check, and descend into a single element shape with the
        symbolic ``idx`` pushed into element selection.
        """
        if offset.is_concrete:
            off = offset.as_int()
            index, within = divmod(off, self.elem_size)
            if index >= len(self.elems):
                raise MemoryModelError(f"offset {off} out of uniform block of {self.size()}B")
            return [(mk_bool(True), index)], bv_val(within, offset.width)
        if not opts.concretize_offsets:
            return None, None  # caller falls back to full fan-out
        idx_term, scale, const = destruct_linear(offset.term, offset.width)
        if idx_term is None or scale != self.elem_size or const >= self.elem_size:
            return None, None
        idx = SymBV(idx_term)
        # Optimistic rewrite's side condition (§4): the index stays in
        # bounds, so idx*size+C mod size == C and the rewrite is sound.
        bug_on(idx >= len(self.elems), "uniform-block index out of bounds", block=repr(self))
        guards = [((idx == i), i) for i in range(len(self.elems))]
        return [(g.term, i) for g, i in guards], bv_val(const, offset.width)

    def load(self, offset: SymBV, nbytes: int, opts: MemoryOptions) -> SymBV:
        resolved, within = self._resolve(offset, nbytes, opts)
        if resolved is None:
            return self._fanout_load(offset, nbytes, opts)
        if len(resolved) == 1:
            (_, index), = resolved
            return self.elems[index].load(within, nbytes, opts)
        # Build the select with the same nesting order functional specs
        # use (last element innermost), so both intern identically.
        result = self.elems[resolved[-1][1]].load(within, nbytes, opts)
        for guard, index in reversed(resolved[:-1]):
            value = self.elems[index].load(within, nbytes, opts)
            result = ite(SymBool(guard), value, result)
        return result

    def store(self, offset: SymBV, value: SymBV, opts: MemoryOptions) -> None:
        resolved, within = self._resolve(offset, value.width // 8, opts)
        if resolved is None:
            self._fanout_store(offset, value, opts)
            return
        if len(resolved) == 1:
            (_, index), = resolved
            self.elems[index].store(within, value, opts)
            return
        for guard, index in resolved:
            elem = self.elems[index]
            old = elem.load(within, value.width // 8, opts)
            elem.store(within, ite(SymBool(guard), value, old), opts)

    # Naive path (ablation): try every element at every alignment.
    def _fanout_load(self, offset: SymBV, nbytes: int, opts: MemoryOptions) -> SymBV:
        candidates = self._fanout_offsets(nbytes, opts)
        result = bv_val(0, nbytes * 8)
        hit_any = None
        for off in candidates:
            guard = offset == off
            value = self.load(bv_val(off, offset.width), nbytes, opts)
            result = ite(guard, value, result)
            hit_any = guard if hit_any is None else (hit_any | guard)
        bug_on(~hit_any, "unresolvable symbolic load offset")
        return result

    def _fanout_store(self, offset: SymBV, value: SymBV, opts: MemoryOptions) -> None:
        candidates = self._fanout_offsets(value.width // 8, opts)
        hit_any = None
        for off in candidates:
            guard = offset == off
            concrete = bv_val(off, offset.width)
            old = self.load(concrete, value.width // 8, opts)
            self.store(concrete, ite(guard, value, old), opts)
            hit_any = guard if hit_any is None else (hit_any | guard)
        bug_on(~hit_any, "unresolvable symbolic store offset")

    def _fanout_offsets(self, nbytes: int, opts: MemoryOptions) -> list[int]:
        step = nbytes
        offsets = list(range(0, self.size() - nbytes + 1, step))
        if len(offsets) > opts.max_fanout:
            raise MemoryModelError(
                f"symbolic access fans out to {len(offsets)} cases (> {opts.max_fanout})"
            )
        return offsets

    def __sym_merge__(self, guard: SymBool, other: "MUniform") -> "MUniform":
        return MUniform([a.__sym_merge__(guard, b) for a, b in zip(self.elems, other.elems)])

    def __repr__(self) -> str:
        return f"MUniform({len(self.elems)} x {self.elem_size}B)"


class MStruct(Block):
    """Named fields at computed offsets (like a C struct)."""

    __slots__ = ("fields", "offsets", "_size")

    def __init__(self, fields: list[tuple[str, Block]]):
        self.fields = dict(fields)
        self.offsets: dict[str, int] = {}
        off = 0
        for name, block in fields:
            self.offsets[name] = off
            off += block.size()
        self._size = off

    def size(self) -> int:
        return self._size

    def copy(self) -> "MStruct":
        return MStruct([(n, b.copy()) for n, b in self.fields.items()])

    def field(self, name: str) -> Block:
        return self.fields[name]

    def field_offset(self, name: str) -> int:
        return self.offsets[name]

    def _locate(self, off: int) -> tuple[str, int]:
        for name, start in self.offsets.items():
            block = self.fields[name]
            if start <= off < start + block.size():
                return name, off - start
        raise MemoryModelError(f"offset {off} outside struct of {self._size}B")

    def load(self, offset: SymBV, nbytes: int, opts: MemoryOptions) -> SymBV:
        if offset.is_concrete:
            name, within = self._locate(offset.as_int())
            return self.fields[name].load(bv_val(within, offset.width), nbytes, opts)
        # A symbolic struct offset with concrete destructuring failed
        # upstream; fan out across matching fields.
        result = bv_val(0, nbytes * 8)
        hit_any = None
        for name, start in self.offsets.items():
            block = self.fields[name]
            for within in range(0, block.size() - nbytes + 1, nbytes):
                guard = offset == (start + within)
                value = block.load(bv_val(within, offset.width), nbytes, opts)
                result = ite(guard, value, result)
                hit_any = guard if hit_any is None else (hit_any | guard)
        if hit_any is None:
            raise MemoryModelError("no field can satisfy this access size")
        bug_on(~hit_any, "unresolvable symbolic struct offset")
        return result

    def store(self, offset: SymBV, value: SymBV, opts: MemoryOptions) -> None:
        if offset.is_concrete:
            name, within = self._locate(offset.as_int())
            self.fields[name].store(bv_val(within, offset.width), value, opts)
            return
        nbytes = value.width // 8
        hit_any = None
        for name, start in self.offsets.items():
            block = self.fields[name]
            for within in range(0, block.size() - nbytes + 1, nbytes):
                guard = offset == (start + within)
                concrete = bv_val(within, offset.width)
                old = block.load(concrete, nbytes, opts)
                block.store(concrete, ite(guard, value, old), opts)
                hit_any = guard if hit_any is None else (hit_any | guard)
        if hit_any is None:
            raise MemoryModelError("no field can satisfy this access size")
        bug_on(~hit_any, "unresolvable symbolic struct offset")

    def __sym_merge__(self, guard: SymBool, other: "MStruct") -> "MStruct":
        return MStruct(
            [(n, b.__sym_merge__(guard, other.fields[n])) for n, b in self.fields.items()]
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}@{o}" for n, o in self.offsets.items())
        return f"MStruct({inner})"


class Region:
    """A top-level block at a fixed physical address range."""

    __slots__ = ("name", "base", "block", "writable")

    def __init__(self, name: str, base: int, block: Block, writable: bool = True):
        self.name = name
        self.base = base
        self.block = block
        self.writable = writable

    @property
    def limit(self) -> int:
        return self.base + self.block.size()

    def contains(self, addr: int) -> bool:
        return self.base <= addr < self.limit

    def copy(self) -> "Region":
        return Region(self.name, self.base, self.block.copy(), self.writable)

    def __repr__(self) -> str:
        return f"Region({self.name}@{self.base:#x}+{self.block.size():#x})"


class Memory:
    """Disjoint regions with address-based dispatch.

    Address resolution extracts the concrete component of the address
    term to pick a region (validated with a bounds side condition),
    implementing the §4 optimization at the region level.
    """

    def __init__(self, regions: list[Region], opts: MemoryOptions | None = None, addr_width: int = 32):
        self.regions = sorted(regions, key=lambda r: r.base)
        self.opts = opts or DEFAULT_OPTIONS
        self.addr_width = addr_width
        self._check_disjoint()

    def _check_disjoint(self) -> None:
        for a, b in zip(self.regions, self.regions[1:]):
            if a.limit > b.base:
                raise MemoryModelError(f"regions overlap: {a!r} and {b!r}")

    def copy(self) -> "Memory":
        return Memory([r.copy() for r in self.regions], self.opts, self.addr_width)

    def region(self, name: str) -> Region:
        for r in self.regions:
            if r.name == name:
                return r
        raise KeyError(name)

    def locate(self, addr: SymBV) -> tuple[Region, SymBV]:
        """Resolve an address term to (region, in-region offset)."""
        if addr.is_concrete:
            a = addr.as_int()
            for r in self.regions:
                if r.contains(a):
                    return r, bv_val(a - r.base, addr.width)
            raise MemoryModelError(f"address {a:#x} outside all regions")
        # Symbolic address: use its constant component as the anchor.
        idx_term, scale, const = destruct_linear(addr.term, addr.width)
        for r in self.regions:
            if r.contains(const):
                offset = addr - r.base
                bug_on(offset >= r.block.size(), "memory access outside region", region=r.name)
                return r, offset
        raise MemoryModelError(
            f"cannot anchor symbolic address {addr.term!r} (constant part {const:#x}) "
            "to a region"
        )

    def load(self, addr: SymBV, nbytes: int) -> SymBV:
        region, offset = self.locate(addr)
        return region.block.load(offset, nbytes, self.opts)

    def store(self, addr: SymBV, value: SymBV) -> None:
        region, offset = self.locate(addr)
        if not region.writable:
            bug_on(True, "store to read-only region", region=region.name)
            return
        region.block.store(offset, value, self.opts)

    def __sym_merge__(self, guard: SymBool, other: "Memory") -> "Memory":
        merged = [
            Region(a.name, a.base, a.block.__sym_merge__(guard, b.block), a.writable)
            for a, b in zip(self.regions, other.regions)
        ]
        return Memory(merged, self.opts, self.addr_width)
