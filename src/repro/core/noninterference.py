"""Noninterference specifications (§3.3, §6.2, §6.3).

The paper proves three kinds of noninterference over *specification*
states:

  * **Step consistency** (Goguen-Meseguer / Rushby): an observer's
    view of the state determines its view after any action it can
    see.  CertiKOS decomposes its big-step property into three
    small-step properties (§6.2); those are expressed directly with
    :func:`prove_step_consistency` and friends.

  * **Nickel-style intransitive noninterference** (Sigurbjarnarson et
    al., OSDI'18): a policy ``flows_to`` over domains plus unwinding
    conditions (weak step consistency + local respect).  This is the
    specification both ported monitors prove, and the one that caught
    the PID covert channel in ``spawn`` (§6.2).

Actions are finitized: callers enumerate concrete operations, each
carrying symbolic arguments, so every proof stays one solver query.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..sym import ProofResult, SymBool, new_context, sym_true, verify_vcs
from .spec import SpecStruct

__all__ = ["Action", "prove_step_consistency", "prove_local_respect", "NIPolicy", "prove_nickel_ni"]


def _no_args(prefix: str) -> tuple:
    """Default argument factory for actions that take no arguments."""
    return ()


@dataclass
class Action:
    """A finitized specification action.

    ``apply(state, args...) -> state`` is the functional spec of one
    operation; ``domain(state, args...)`` names the security domain
    performing it (often the current process/enclave).
    """

    name: str
    apply: Callable[..., Any]
    make_args: Callable[[str], tuple] = _no_args
    domain: Callable[..., Any] | None = None


def prove_step_consistency(
    name: str,
    action: Action,
    state_type: type[SpecStruct],
    equiv: Callable[[Any, Any, Any], SymBool],
    observer_values: list,
    assumptions: Callable[[Any, Any], SymBool] | None = None,
    max_conflicts: int | None = None,
    timeout_s: float | None = None,
) -> ProofResult:
    """Step consistency for one action, for every observer:
    ``s1 ~u s2  =>  step(s1, a) ~u step(s2, a)`` (§3.3).
    """
    with new_context() as ctx:
        s1 = state_type.fresh(f"{name}.s1")
        s2 = state_type.fresh(f"{name}.s2")
        args = action.make_args(name)
        t1 = action.apply(s1, *args)
        t2 = action.apply(s2, *args)
        assume = sym_true()
        if assumptions is not None:
            assume = assume & assumptions(s1, s2)
        for u in observer_values:
            pre = equiv(u, s1, s2)
            post = equiv(u, t1, t2)
            ctx.assert_prop(
                (assume & pre).implies(post), f"{name}: step consistency for observer {u}"
            )
        return verify_vcs(ctx, max_conflicts=max_conflicts, timeout_s=timeout_s)


def prove_local_respect(
    name: str,
    action: Action,
    state_type: type[SpecStruct],
    equiv: Callable[[Any, Any, Any], SymBool],
    observer_values: list,
    unaffected: Callable[[Any, Any, tuple], SymBool],
    assumptions: Callable[[Any], SymBool] | None = None,
    max_conflicts: int | None = None,
    timeout_s: float | None = None,
) -> ProofResult:
    """Local respect: actions invisible to ``u`` leave ``u``'s view
    unchanged: ``unaffected(u, s, args) => s ~u step(s, a)``."""
    with new_context() as ctx:
        s = state_type.fresh(f"{name}.s")
        args = action.make_args(name)
        t = action.apply(s, *args)
        assume = sym_true()
        if assumptions is not None:
            assume = assume & assumptions(s)
        for u in observer_values:
            cond = assume & unaffected(u, s, args)
            ctx.assert_prop(cond.implies(equiv(u, s, t)), f"{name}: local respect for observer {u}")
        return verify_vcs(ctx, max_conflicts=max_conflicts, timeout_s=timeout_s)


@dataclass
class NIPolicy:
    """A Nickel-style information-flow policy over finite domains.

    ``domains`` are concrete labels; ``flows_to(d1, d2, s)`` says
    whether information may flow from ``d1`` to ``d2`` in state ``s``
    (intransitive: reachability is *not* implied).  ``dom(action_name,
    s, args)`` maps an action in a state to its acting domain;
    ``equiv(u, s1, s2)`` is per-domain observational equivalence.
    """

    domains: list
    flows_to: Callable[[Any, Any, Any], SymBool]
    dom: Callable[[str, Any, tuple], Any]
    equiv: Callable[[Any, Any, Any], SymBool]
    state_invariant: Callable[[Any], SymBool] | None = None


def prove_nickel_ni(
    policy: NIPolicy,
    actions: list[Action],
    state_type: type[SpecStruct],
    max_conflicts: int | None = None,
    timeout_s: float | None = None,
) -> dict[str, ProofResult]:
    """Prove Nickel's unwinding conditions for every action/observer.

    For each action ``a`` and observer domain ``u``:

      weak step consistency:
        s1 ~u s2 /\\ s1 ~dom(a,s1) s2  =>  step(s1,a) ~u step(s2,a)
      local respect:
        not flows_to(dom(a,s), u, s)  =>  s ~u step(s,a)

    Together (with domain consistency, which holds by construction
    for state-independent ``dom``) these imply intransitive NI, the
    specification that exposed the PID covert channel (§6.2).
    """
    results: dict[str, ProofResult] = {}
    for action in actions:
        with new_context() as ctx:
            s1 = state_type.fresh(f"ni.{action.name}.s1")
            s2 = state_type.fresh(f"ni.{action.name}.s2")
            args = action.make_args(f"ni.{action.name}")
            t1 = action.apply(s1, *args)
            t2 = action.apply(s2, *args)
            inv = sym_true()
            if policy.state_invariant is not None:
                inv = policy.state_invariant(s1) & policy.state_invariant(s2)
            acting = policy.dom(action.name, s1, args)
            for u in policy.domains:
                wsc_pre = inv & policy.equiv(u, s1, s2) & policy.equiv(acting, s1, s2)
                ctx.assert_prop(
                    wsc_pre.implies(policy.equiv(u, t1, t2)),
                    f"{action.name}: weak step consistency for {u}",
                )
            results[f"{action.name}.wsc"] = verify_vcs(
                ctx, max_conflicts=max_conflicts, timeout_s=timeout_s
            )
        with new_context() as ctx:
            s = state_type.fresh(f"ni.{action.name}.s")
            args = action.make_args(f"ni.{action.name}.lr")
            t = action.apply(s, *args)
            inv = sym_true()
            if policy.state_invariant is not None:
                inv = policy.state_invariant(s)
            acting = policy.dom(action.name, s, args)
            for u in policy.domains:
                no_flow = ~policy.flows_to(acting, u, s)
                ctx.assert_prop(
                    (inv & no_flow).implies(policy.equiv(u, s, t)),
                    f"{action.name}: local respect for {u}",
                )
            results[f"{action.name}.lr"] = verify_vcs(
                ctx, max_conflicts=max_conflicts, timeout_s=timeout_s
            )
    return results
