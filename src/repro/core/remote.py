"""Distributed verdict store: HTTP object store + remote cache tier.

This module turns the content-addressed :class:`~repro.core.store.
VerdictStore` into a *networked* object store, so CI fleets and
developer machines converge on one global store instead of handing
tar.gz archives around:

  * :class:`StoreAPI` / :class:`StoreServer` — a stdlib-only HTTP
    server speaking the store's own sharded ``<digest[:2]>/<digest>.
    json`` (+ ``.cert.json[.gz]``) layout: ``GET/PUT/HEAD`` per digest,
    a batch ``POST /store/manifest`` endpoint, and ``ETag``-on-digest
    so writes are idempotent (the digest *is* the content address —
    a PUT of an existing digest is a no-op success, first writer wins,
    exactly like a local bulk import).  Served standalone via
    ``python -m repro.core.store serve`` or mounted into the
    verification daemon (``repro.serve``) under ``/store/``.
  * :class:`RemoteStoreClient` — a urllib wrapper that converts every
    network failure (refused, timeout, truncated body, 5xx) into one
    exception type, :class:`RemoteUnavailable`.
  * :class:`RemoteVerdictStore` — the read-through/write-back tier the
    solver cache actually talks to.  A local hit stays untouched; a
    local miss consults the remote, verifies the fetched certificate
    with the independent ``repro.smt.checkproof`` checker *before*
    adoption (``REPRO_REMOTE_VERIFY_CERTS=0`` skips), and adopts the
    entry into the local store so the next process hits locally.
    Writes land locally first, then spool (``.remote-spool/`` marker
    files) and flush asynchronously with bounded retry/backoff.

Trust model: certificates are why a store populated by machines we do
not control can be adopted at all — a remotely fetched UNSAT verdict
must come with a RUP-checkable clause proof, a SAT verdict with a
replayable model, both digest-bound to the query (docs/CERTIFICATES.md).
A fetch whose certificate is missing, malformed, mismatched, or simply
wrong is *rejected* (counted as ``store.remote.rejected_certs``) and
the query is solved locally as if the remote had missed.

Failure model: the remote tier degrades, never breaks.  Every remote
operation is wrapped so :class:`RemoteUnavailable` is counted
(``store.remote.errors``) and absorbed — no network failure ever
surfaces inside a solve.  After a failure a per-process circuit
breaker skips the remote for ``REPRO_REMOTE_BACKOFF_S`` seconds so a
dead server costs one timeout, not one per query.

Knobs (read per call so tests can flip them):

  * ``REPRO_REMOTE_STORE``        — base URL; empty disables the tier.
  * ``REPRO_REMOTE_VERIFY_CERTS`` — ``0`` adopts fetched entries
    without certificate verification (trusted-network mode).
  * ``REPRO_REMOTE_TIMEOUT_S``    — per-request timeout (default 5).
  * ``REPRO_REMOTE_BACKOFF_S``    — circuit-breaker cool-down after a
    network failure (default 30).
"""

from __future__ import annotations

import gzip
import http.client
import json
import os
import re
import socket
import tempfile
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..obs import count as obs_count, event as obs_event, observe as obs_observe
from ..obs.events import TRACE_HEADER, current_trace, format_trace_header, parse_trace_header
from .store import _DIGEST_RE, VerdictStore

__all__ = [
    "RemoteUnavailable",
    "RemoteStoreClient",
    "RemoteVerdictStore",
    "StoreAPI",
    "StoreServer",
    "breaker_open",
    "remote_store_url",
    "remote_verify_certs",
    "remote_timeout_s",
    "remote_backoff_s",
]


# ---------------------------------------------------------------------------
# Knobs


def remote_store_url() -> str:
    """Base URL of the remote store (``REPRO_REMOTE_STORE``), or ''."""
    return os.environ.get("REPRO_REMOTE_STORE", "").strip().rstrip("/")


def remote_verify_certs() -> bool:
    """Whether fetched entries need a checkable certificate to be
    adopted (default on; ``REPRO_REMOTE_VERIFY_CERTS=0`` opts out)."""
    return os.environ.get("REPRO_REMOTE_VERIFY_CERTS", "1") != "0"


def remote_timeout_s() -> float:
    """Per-request network timeout (``REPRO_REMOTE_TIMEOUT_S``, default 5)."""
    try:
        return float(os.environ.get("REPRO_REMOTE_TIMEOUT_S", "5"))
    except ValueError:
        return 5.0


def remote_backoff_s() -> float:
    """Circuit-breaker cool-down after a network failure
    (``REPRO_REMOTE_BACKOFF_S``, default 30)."""
    try:
        return float(os.environ.get("REPRO_REMOTE_BACKOFF_S", "30"))
    except ValueError:
        return 30.0


# ---------------------------------------------------------------------------
# Circuit breaker (per process, per URL)

_BREAKER_LOCK = threading.Lock()
_DOWN_UNTIL: dict[str, float] = {}


def _remote_down(url: str) -> bool:
    with _BREAKER_LOCK:
        return time.monotonic() < _DOWN_UNTIL.get(url, 0.0)


def _mark_remote_down(url: str) -> None:
    with _BREAKER_LOCK:
        _DOWN_UNTIL[url] = time.monotonic() + remote_backoff_s()


def _mark_remote_up(url: str) -> None:
    with _BREAKER_LOCK:
        _DOWN_UNTIL.pop(url, None)


def _reset_breakers() -> None:
    """Forget every open breaker (test isolation helper)."""
    with _BREAKER_LOCK:
        _DOWN_UNTIL.clear()


def breaker_open(url: str | None = None) -> bool:
    """Whether the circuit breaker is open for ``url`` (default: the
    configured remote).  The ``/metrics`` gauge for remote health."""
    target = url if url is not None else remote_store_url()
    if not target:
        return False
    return _remote_down(target.rstrip("/"))


# ---------------------------------------------------------------------------
# Client


class RemoteUnavailable(RuntimeError):
    """The remote store could not serve a request: connection refused,
    timeout, truncated reply, or a server-side error.  Callers on the
    solve path count it and degrade to local-only — it is never raised
    into a solve."""


# Everything urllib can throw for a dead/misbehaving peer.  OSError
# covers ConnectionError and socket-level failures; HTTPException
# covers truncated bodies (IncompleteRead) and protocol garbage.
_NETWORK_ERRORS = (
    urllib.error.URLError,
    http.client.HTTPException,
    socket.timeout,
    TimeoutError,
    OSError,
)


class RemoteStoreClient:
    """Stdlib HTTP client for the store protocol.

    One connection per call (like :class:`~repro.serve.client.
    ServeClient`), so instances are trivially thread- and fork-safe.
    All failures surface as :class:`RemoteUnavailable`; a 404 is a
    *miss*, returned as None — the one outcome that is not an error.
    """

    def __init__(self, base_url: str, timeout_s: float | None = None):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    def _timeout(self) -> float:
        return self.timeout_s if self.timeout_s is not None else remote_timeout_s()

    def _request(
        self, method: str, path: str, body: bytes | None = None
    ) -> tuple[int, bytes]:
        headers = {"Content-Type": "application/json"} if body is not None else {}
        # Propagate the ambient correlation ids so the server's request
        # log can tie this fetch/flush back to the submitting job.
        trace_value = format_trace_header(*current_trace())
        if trace_value is not None:
            headers[TRACE_HEADER] = trace_value
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(request, timeout=self._timeout()) as reply:
                return reply.status, reply.read()
        except urllib.error.HTTPError as exc:
            if exc.code == 404:
                return 404, b""
            raise RemoteUnavailable(f"{method} {path}: HTTP {exc.code}") from None
        except _NETWORK_ERRORS as exc:
            raise RemoteUnavailable(f"{method} {path}: {exc}") from None

    # -- entries ---------------------------------------------------------

    def head_entry(self, digest: str) -> bool:
        """Whether the remote holds an entry for ``digest``."""
        status, _ = self._request("HEAD", f"/store/{digest}")
        return status == 200

    def get_entry(self, digest: str) -> bytes | None:
        """Raw entry bytes for ``digest``, or None on a remote miss."""
        status, payload = self._request("GET", f"/store/{digest}")
        return payload if status == 200 else None

    def put_entry(self, digest: str, raw: bytes) -> bool:
        """Idempotent upload; True when the remote created the entry
        (False: it already held one — first writer wins)."""
        status, _ = self._request("PUT", f"/store/{digest}", raw)
        return status == 201

    # -- certificates ----------------------------------------------------

    def get_cert(self, digest: str) -> bytes | None:
        """Raw certificate JSON for ``digest``, or None if the remote
        has none (a legal legacy state)."""
        status, payload = self._request("GET", f"/store/{digest}/cert")
        return payload if status == 200 else None

    def put_cert(self, digest: str, raw: bytes) -> bool:
        """Idempotent certificate upload (same semantics as entries)."""
        status, _ = self._request("PUT", f"/store/{digest}/cert", raw)
        return status == 201

    # -- batch / monitoring ----------------------------------------------

    def manifest(self, digests: list[str]) -> dict:
        """Presence map for a batch of digests:
        ``{"entries": {digest: bool}, "certs": {digest: bool}}``."""
        body = json.dumps({"digests": list(digests)}).encode()
        status, payload = self._request("POST", "/store/manifest", body)
        if status != 200:
            raise RemoteUnavailable(f"manifest: HTTP {status}")
        try:
            return json.loads(payload)
        except ValueError as exc:
            raise RemoteUnavailable(f"manifest: corrupt reply: {exc}") from None

    def index(self) -> dict:
        """The remote's summary document (entry counts, bytes, spool)."""
        status, payload = self._request("GET", "/store/index")
        if status != 200:
            raise RemoteUnavailable(f"index: HTTP {status}")
        try:
            return json.loads(payload)
        except ValueError as exc:
            raise RemoteUnavailable(f"index: corrupt reply: {exc}") from None

    def healthz(self) -> dict:
        """Liveness document; raises :class:`RemoteUnavailable` when down."""
        status, payload = self._request("GET", "/store/healthz")
        if status != 200:
            raise RemoteUnavailable(f"healthz: HTTP {status}")
        try:
            return json.loads(payload)
        except ValueError as exc:
            raise RemoteUnavailable(f"healthz: corrupt reply: {exc}") from None


# ---------------------------------------------------------------------------
# Server-side protocol handler (shared by StoreServer and repro.serve)

_STORE_PATH = re.compile(r"^/([0-9a-f]{16,64})(/cert)?$")


class StoreAPI:
    """Pure request handler over a :class:`VerdictStore`.

    Maps ``(method, path, body)`` to ``(status, payload, content_type,
    headers)`` with no HTTP plumbing of its own, so the standalone
    :class:`StoreServer` and the ``/store/`` mount inside the
    verification daemon serve byte-identical replies.

    Protocol (paths are absolute, ``/store``-prefixed)::

        GET  /store/healthz      liveness + entry/request counts
        GET  /store/index        summary (entries, bytes, spool backlog)
        POST /store/manifest     {"digests": [...]} -> presence map
        HEAD /store/<digest>     200/404, ETag: "<digest>"
        GET  /store/<digest>     raw entry JSON, ETag: "<digest>"
        PUT  /store/<digest>     idempotent write; 201 created / 200 held
        GET  /store/<digest>/cert   certificate JSON (gzip transparent)
        PUT  /store/<digest>/cert   idempotent certificate write

    Writes validate shape (entries must be JSON objects with a
    ``sat``/``unsat`` status, certificates JSON objects) but do *not*
    re-check proofs — verification is the adopting client's job, which
    is what lets an untrusted server be useful at all.
    """

    MAX_BODY = 64 * 1024 * 1024

    def __init__(self, store: VerdictStore):
        self.store = store
        self.started_t = time.time()
        self._lock = threading.Lock()
        self.requests = 0
        self.gets = 0
        self.puts = 0
        self.put_conflicts = 0

    # -- plumbing --------------------------------------------------------

    @staticmethod
    def _json(status: int, doc: dict, headers: dict | None = None):
        return status, json.dumps(doc).encode(), "application/json", headers or {}

    def _error(self, status: int, message: str):
        return self._json(status, {"error": message})

    def counters(self) -> dict:
        """Request counters for /metrics and healthz documents."""
        with self._lock:
            return {
                "requests": self.requests,
                "gets": self.gets,
                "puts": self.puts,
                "put_conflicts": self.put_conflicts,
            }

    # -- reads -----------------------------------------------------------

    def _entry_bytes(self, digest: str) -> bytes | None:
        fname = self.store._find_entry_file(digest)
        if fname is None:
            return None
        try:
            with open(fname, "rb") as handle:
                return handle.read()
        except OSError:
            return None  # vanished mid-request (concurrent gc)

    def _cert_bytes(self, digest: str) -> bytes | None:
        fname = self.store._find_cert_file(digest)
        if fname is None:
            return None
        try:
            with open(fname, "rb") as handle:
                raw = handle.read()
            return gzip.decompress(raw) if fname.endswith(".gz") else raw
        except (OSError, ValueError):
            return None

    # -- dispatch --------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        body: bytes | None,
        accept: str = "",
        trace: str | None = None,
    ):
        """Serve one request; returns ``(status, payload, content_type,
        headers)``.  Never raises — protocol errors become 4xx JSON.

        ``accept`` content-negotiates ``/metrics`` (Prometheus text vs
        JSON); ``trace`` is the raw ``X-Repro-Trace`` header, logged as
        a structured request event so a store request can be correlated
        with the job that caused it.
        """
        with self._lock:
            self.requests += 1
        trace_id, ob_id = parse_trace_header(trace)
        obs_event(
            "debug",
            "store.request",
            trace_id=trace_id,
            ob_id=ob_id,
            method=method,
            path=path,
        )
        sub = path[len("/store"):] if path.startswith("/store") else path
        if method == "GET" and sub == "/metrics":
            return self._metrics(accept)
        if method == "GET" and sub in ("", "/", "/healthz"):
            return self._json(
                200,
                {
                    "ok": True,
                    "uptime_s": time.time() - self.started_t,
                    "entries": len(self.store.digests()),
                    "spool_pending": len(self.store.spool_pending()),
                    **self.counters(),
                },
            )
        if method == "GET" and sub == "/index":
            doc = self.store.summary()
            doc["spool_pending"] = len(self.store.spool_pending())
            return self._json(200, doc)
        if method == "POST" and sub == "/manifest":
            return self._manifest(body)
        match = _STORE_PATH.match(sub)
        if match is None:
            return self._error(404, f"no store route for {method} {path}")
        digest, is_cert = match.group(1), match.group(2) is not None
        if not _DIGEST_RE.match(digest):
            return self._error(404, f"malformed digest {digest!r}")
        if method in ("GET", "HEAD"):
            with self._lock:
                self.gets += 1
            payload = self._cert_bytes(digest) if is_cert else self._entry_bytes(digest)
            if payload is None:
                kind = "certificate" if is_cert else "entry"
                return self._error(404, f"no {kind} for {digest}")
            return 200, payload, "application/json", {"ETag": f'"{digest}"'}
        if method == "PUT":
            return self._put(digest, is_cert, body)
        return self._error(405, f"method {method} not supported on {path}")

    def _metrics(self, accept: str = ""):
        """Store-side metrics, JSON by default, Prometheus on request."""
        counters = {f"store.{name}": value for name, value in self.counters().items()}
        gauges = {
            "store.uptime_seconds": time.time() - self.started_t,
            "store.entries": len(self.store.digests()),
            "store.spool_pending": len(self.store.spool_pending()),
        }
        if "text/plain" in (accept or ""):
            from ..obs.prom import CONTENT_TYPE, render_prometheus

            text = render_prometheus(counters=counters, gauges=gauges)
            return 200, text.encode(), CONTENT_TYPE, {}
        return self._json(200, {"counters": counters, "gauges": gauges})

    def _manifest(self, body: bytes | None):
        try:
            doc = json.loads(body or b"")
        except ValueError as exc:
            return self._error(400, f"invalid JSON body: {exc}")
        digests = doc.get("digests") if isinstance(doc, dict) else None
        if not isinstance(digests, list) or not all(
            isinstance(d, str) for d in digests
        ):
            return self._error(400, "body must be {'digests': [<hex>, ...]}")
        entries, certs = {}, {}
        for digest in digests:
            if not _DIGEST_RE.match(digest):
                entries[digest] = certs[digest] = False
                continue
            entries[digest] = self.store._find_entry_file(digest) is not None
            certs[digest] = self.store._find_cert_file(digest) is not None
        return self._json(200, {"entries": entries, "certs": certs})

    def _put(self, digest: str, is_cert: bool, body: bytes | None):
        if body is None or not body:
            return self._error(400, "request body required")
        if len(body) > self.MAX_BODY:
            return self._error(413, "request body too large")
        try:
            doc = json.loads(body)
        except ValueError as exc:
            return self._error(400, f"invalid JSON body: {exc}")
        if not isinstance(doc, dict):
            return self._error(400, "payload must be a JSON object")
        if not is_cert and doc.get("status") not in ("sat", "unsat"):
            return self._error(400, "entry status must be 'sat' or 'unsat'")
        with self._lock:
            self.puts += 1
        if is_cert:
            created = self.store.put_raw_cert(digest, body)
        else:
            created = self.store.put_raw_entry(digest, body)
        if not created:
            # The digest is the content address: an existing object wins,
            # exactly like import_archive.  Idempotent success.
            with self._lock:
                self.put_conflicts += 1
        return self._json(
            201 if created else 200,
            {"digest": digest, "stored": created},
            {"ETag": f'"{digest}"'},
        )


class _StoreHandler(BaseHTTPRequestHandler):
    server_version = "repro-store/1.0"
    protocol_version = "HTTP/1.1"

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            BaseHTTPRequestHandler.log_message(self, format, *args)

    def _respond(self, status, payload, ctype, headers, send_body=True):
        self.send_response(status)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(payload)))
        for key, value in headers.items():
            self.send_header(key, value)
        self.end_headers()
        if send_body and payload:
            try:
                self.wfile.write(payload)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-reply

    def _handle(self, method: str) -> None:
        path = self.path.split("?", 1)[0]
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length > StoreAPI.MAX_BODY:
            self.close_connection = True
            self._respond(413, b'{"error":"request body too large"}', "application/json", {})
            return
        if length > 0:
            body = self.rfile.read(length)
        # Test harnesses (the fault-injection fixture) hang a hook off
        # the server to inject 500s, stalls, and truncated replies
        # without forking the protocol implementation.
        hook = getattr(self.server, "fault_hook", None)
        if hook is not None and hook(self, method, path, body):
            return
        status, payload, ctype, headers = self.server.api.handle(
            method,
            path,
            body,
            accept=self.headers.get("Accept", ""),
            trace=self.headers.get(TRACE_HEADER),
        )
        self._respond(status, payload, ctype, headers, send_body=(method != "HEAD"))

    def do_GET(self):  # noqa: N802 - stdlib naming
        self._handle("GET")

    def do_HEAD(self):  # noqa: N802 - stdlib naming
        self._handle("HEAD")

    def do_POST(self):  # noqa: N802 - stdlib naming
        self._handle("POST")

    def do_PUT(self):  # noqa: N802 - stdlib naming
        self._handle("PUT")


class StoreServer:
    """Standalone HTTP object-store daemon over one local store
    directory (``python -m repro.core.store serve``)."""

    def __init__(
        self,
        store_dir: str,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
        collect: bool = False,
    ):
        self.store = VerdictStore(store_dir)
        self.api = StoreAPI(self.store)
        self._httpd = ThreadingHTTPServer((host, port), _StoreHandler)
        self._httpd.daemon_threads = True
        self._httpd.api = self.api
        self._httpd.fault_hook = None
        self._httpd.verbose = verbose
        self._serve_thread: threading.Thread | None = None
        self._closed = False
        # ``collect=True`` (the standalone CLI) keeps a process-lifetime
        # tracing session open so request events are recorded; embedded
        # servers leave the process-global obs state alone.
        self._tracing = None
        self.collector = None
        if collect:
            from ..obs import tracing

            self._tracing = tracing(absorb=False)
            self.collector = self._tracing.__enter__()

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "StoreServer":
        """Serve in a background thread (tests, embedded use)."""
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-store", daemon=True
        )
        self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the CLI entrypoint)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop listening (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        if self._tracing is not None:
            self._tracing.__exit__(None, None, None)
            self._tracing = None


# ---------------------------------------------------------------------------
# Write-back flusher (one daemon thread per (store, url) per process)


class _SpoolFlusher(threading.Thread):
    """Drains a store's write-back spool to the remote in the
    background.  Event-kicked after every local store(), with a slow
    poll as the safety net; respects the circuit breaker so a dead
    remote is probed once per cool-down, not once per verdict."""

    POLL_S = 2.0

    def __init__(self, path: str, url: str):
        super().__init__(name=f"remote-flush:{os.path.basename(path)}", daemon=True)
        self.path = path
        self.url = url
        self.wake = threading.Event()

    def run(self) -> None:
        store = RemoteVerdictStore(self.path, self.url, async_flush=False, _register=False)
        while True:
            self.wake.wait(self.POLL_S)
            self.wake.clear()
            if _remote_down(self.url):
                continue
            if store.spool_pending():
                store.flush_spool(max_attempts=3)


_FLUSHERS: dict[tuple[str, str], _SpoolFlusher] = {}
_FLUSHERS_LOCK = threading.Lock()
_FLUSHERS_PID = os.getpid()


def _kick_flusher(path: str, url: str) -> None:
    global _FLUSHERS_PID
    key = (os.path.abspath(path), url)
    with _FLUSHERS_LOCK:
        if os.getpid() != _FLUSHERS_PID:
            # Forked child: the parent's flusher threads did not survive
            # the fork, only the registry dict did.  Start over.
            _FLUSHERS.clear()
            _FLUSHERS_PID = os.getpid()
        flusher = _FLUSHERS.get(key)
        if flusher is None or not flusher.is_alive():
            flusher = _SpoolFlusher(key[0], url)
            _FLUSHERS[key] = flusher
            flusher.start()
    flusher.wake.set()


# ---------------------------------------------------------------------------
# The remote tier


def _cert_matches(digest: str, entry: dict, cert: dict) -> bool:
    """Whether ``cert`` is a valid certificate *for this digest and
    verdict*: digest-bound, kind-consistent with the entry's status,
    and independently checkable (RUP replay / model replay)."""
    from ..smt.checkproof import CheckFailure, check_certificate

    try:
        if cert.get("digest") != digest:
            return False
        kind, status = cert.get("kind"), entry.get("status")
        if (kind, status) not in (("drat", "unsat"), ("model", "sat")):
            return False
        check_certificate(cert)
    except CheckFailure:
        return False
    except Exception:  # noqa: BLE001 - hostile payloads crash arbitrarily
        return False
    return True


class RemoteVerdictStore(VerdictStore):
    """A :class:`VerdictStore` with a remote read-through/write-back
    tier.

    Lookups: local hit -> done (the remote is never consulted); local
    miss -> remote fetch, certificate verification, local adoption.
    Stores: local write first (the source of truth for this machine),
    then a spool marker that a background flusher pushes to the remote
    with bounded retry.  Every remote failure is counted and absorbed.

    Observability counters (all under ``store.remote.``): ``hits``,
    ``misses``, ``fetch_s``, ``flush_s``, ``rejected_certs``,
    ``errors``.
    """

    def __init__(
        self,
        path: str,
        url: str | None = None,
        verify_certs: bool | None = None,
        timeout_s: float | None = None,
        client: RemoteStoreClient | None = None,
        async_flush: bool = True,
        _register: bool = True,
    ):
        super().__init__(path)
        self.remote_url = (url if url is not None else remote_store_url()).rstrip("/")
        self._verify_certs = verify_certs
        self.async_flush = async_flush
        self._register = _register
        if client is not None:
            self.client = client
        elif self.remote_url:
            self.client = RemoteStoreClient(self.remote_url, timeout_s)
        else:
            self.client = None

    def verify_certs_enabled(self) -> bool:
        """Whether adoption requires a checkable certificate (ctor
        override first, else ``REPRO_REMOTE_VERIFY_CERTS``)."""
        if self._verify_certs is not None:
            return self._verify_certs
        return remote_verify_certs()

    # -- read-through ----------------------------------------------------

    def lookup(self, digest: str, var_map: dict[str, str]):
        """Local entry, else remote fetch-verify-adopt, else miss."""
        entry = self._read_entry(digest)
        if entry is None and self.client is not None:
            entry = self._fetch_remote(digest)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return self._entry_to_result(entry, var_map)

    def _fetch_remote(self, digest: str) -> dict | None:
        """Fetch ``digest`` from the remote and adopt it locally.

        Returns the entry dict on success, None on miss/rejection/
        failure.  Never raises: network trouble opens the circuit
        breaker and counts ``store.remote.errors``."""
        if _remote_down(self.remote_url):
            return None
        start = time.perf_counter()
        try:
            raw = self.client.get_entry(digest)
            if raw is None:
                obs_count("store.remote.misses")
                return None
            try:
                entry = json.loads(raw)
            except ValueError:
                entry = None
            if not isinstance(entry, dict) or entry.get("status") not in ("sat", "unsat"):
                # A 200 with garbage is a server bug, not a miss.
                obs_count("store.remote.errors")
                return None
            cert_raw = self.client.get_cert(digest)
        except RemoteUnavailable as exc:
            obs_count("store.remote.errors")
            obs_event("warn", "store.fetch.failed", digest=digest, error=str(exc))
            _mark_remote_down(self.remote_url)
            return None
        finally:
            fetch_s = time.perf_counter() - start
            obs_count("store.remote.fetch_s", fetch_s)
            obs_observe("store.remote.fetch_seconds", fetch_s)
        cert = None
        if cert_raw is not None:
            try:
                cert = json.loads(cert_raw)
            except ValueError:
                cert = None
            if not isinstance(cert, dict):
                cert = None
        if self.verify_certs_enabled():
            if cert is None or not _cert_matches(digest, entry, cert):
                # Unverifiable evidence: treat as a miss, solve locally.
                obs_count("store.remote.rejected_certs")
                return None
        _mark_remote_up(self.remote_url)
        self.put_raw_entry(digest, raw)
        if cert is not None:
            self.put_raw_cert(digest, cert_raw)
        obs_count("store.remote.hits")
        return entry

    # -- write-back ------------------------------------------------------

    def store(self, digest: str, var_map: dict[str, str], result) -> None:
        """Local write, then spool for asynchronous remote write-back."""
        before = self.stores
        super().store(digest, var_map, result)
        if self.stores == before or self.client is None:
            return  # not cacheable (unknown) or the local write failed
        self._spool_mark(digest)
        if self.async_flush:
            if self._register:
                _kick_flusher(self.path, self.remote_url)
        elif not _remote_down(self.remote_url):
            self.flush_spool(max_attempts=1)

    def _spool_mark(self, digest: str) -> None:
        os.makedirs(self.spool_dir, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.spool_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump({"digest": digest}, handle)
            os.replace(tmp, os.path.join(self.spool_dir, f"{digest}.json"))
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass

    def _flush_one(self, digest: str) -> None:
        """Push one spooled digest (entry, then certificate) and clear
        its marker.  Raises :class:`RemoteUnavailable` on network
        failure so the caller can back off."""
        marker = os.path.join(self.spool_dir, f"{digest}.json")
        fname = self._find_entry_file(digest)
        if fname is None:
            # Entry gc'd before the flush caught up: nothing to push.
            try:
                os.unlink(marker)
            except OSError:
                pass
            return
        try:
            with open(fname, "rb") as handle:
                raw = handle.read()
        except OSError:
            return  # vanished mid-flush; marker stays for the next pass
        self.client.put_entry(digest, raw)
        cert_file = self._find_cert_file(digest)
        if cert_file is not None:
            try:
                with open(cert_file, "rb") as handle:
                    cert_raw = handle.read()
                if cert_file.endswith(".gz"):
                    cert_raw = gzip.decompress(cert_raw)
                self.client.put_cert(digest, cert_raw)
            except (OSError, ValueError):
                pass  # unreadable local cert; the entry still travels
        try:
            os.unlink(marker)
        except OSError:
            pass

    def flush_spool(self, max_attempts: int = 3, backoff_s: float = 0.25) -> dict:
        """Synchronously push every pending spool marker.

        Retries the whole backlog up to ``max_attempts`` times with
        exponential backoff between rounds; returns ``{"flushed": n,
        "pending": m, "errors": k}``.  Used by the background flusher,
        the ``store flush`` CLI, and tests that need determinism.
        """
        flushed = errors = 0
        start = time.perf_counter()
        for attempt in range(max_attempts):
            pending = self.spool_pending()
            if not pending:
                break
            failed = False
            for digest in pending:
                try:
                    self._flush_one(digest)
                    flushed += 1
                except RemoteUnavailable:
                    errors += 1
                    obs_count("store.remote.errors")
                    _mark_remote_down(self.remote_url)
                    failed = True
                    break
            if not failed:
                break
            if attempt + 1 < max_attempts:
                time.sleep(backoff_s * (2**attempt))
        flush_s = time.perf_counter() - start
        obs_count("store.remote.flush_s", flush_s)
        obs_observe("store.remote.flush_seconds", flush_s)
        return {
            "flushed": flushed,
            "pending": len(self.spool_pending()),
            "errors": errors,
        }
