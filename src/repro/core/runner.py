"""Parallel proof-obligation runner with a persistent solver cache.

Serval's symbolic optimizations deliberately decompose one monolithic
verification task into many small, independent proof obligations:
``split-pc`` (repro.core.engine) yields one guarded final state per
path through the binary, and ``split-cases`` (repro.core.symopt)
yields one proof per monitor-call handler.  Each verification
condition collected in the evaluation context is therefore an
independent check-sat query — the natural unit of parallelism and
memoization.

This module makes those units explicit:

  * :class:`Obligation` — a self-contained query (serialized term DAG
    for the goal formulas plus assumptions) that can be shipped to a
    worker process or hashed for the cache;
  * :func:`run_obligations` — dispatches obligations across worker
    processes via ``multiprocessing`` and reduces results
    deterministically (input order, first failure wins);
  * the persistent cache (``repro.smt.SolverCache``) keyed by the
    canonical hash-consed DAG digest, so alpha-equivalent queries hit
    across runs and across worker processes.

Everything above the solver boundary (``repro.sym.check_batch``,
``Refinement.prove(jobs=...)``, the verifiers' ``jobs``/``cache_dir``
knobs) funnels through here.

Since PR 3, parallel dispatch defaults to the **process-wide
work-stealing scheduler** (``repro.core.scheduler``): one persistent
pool shared by every ``run_obligations`` call, with per-obligation
timeout + bounded retry and verdicts memoized in the sharded
content-addressed store (``repro.core.store.VerdictStore``).  The PR 2
per-call pool remains as a fallback (``REPRO_NO_SCHEDULER=1``), and
``jobs=1`` stays the in-process sequential baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import multiprocessing
import os
import time
from typing import Callable, Iterable, Sequence

from ..obs import (
    enabled as _obs_enabled,
    get_collector as _obs_collector,
    observe as _obs_observe,
    span as _obs_span,
)
from ..smt import (
    SolverTimeout,
    Term,
    deserialize_terms,
    mk_and,
    mk_not,
    serialize_terms,
)
from ..smt.solver import Solver

__all__ = [
    "Obligation",
    "ObligationResult",
    "RunnerStats",
    "default_jobs",
    "obligations_from_context",
    "parallel_map",
    "reduce_results",
    "run_obligations",
]

PROVED = "proved"
FAILED = "failed"
UNKNOWN = "unknown"


def default_jobs() -> int:
    """Worker count when the caller asks for ``jobs=0`` (all cores)."""
    return max(os.cpu_count() or 1, 1)


@dataclass
class Obligation:
    """One independent proof obligation.

    ``payload`` is the portable serialization of ``goals + assumptions``
    (see ``repro.smt.serialize_terms``); ``num_goals`` splits the two
    groups back apart on the worker side.  The obligation is proved by
    showing ``assumptions /\\ not(/\\ goals)`` unsatisfiable.
    """

    name: str
    payload: dict
    num_goals: int
    info: dict = field(default_factory=dict)

    @classmethod
    def from_terms(
        cls,
        name: str,
        goals: Sequence[Term],
        assumptions: Sequence[Term] = (),
        **info,
    ) -> "Obligation":
        goals = list(goals)
        roots = goals + list(assumptions)
        return cls(name, serialize_terms(roots), len(goals), dict(info))

    def to_json(self) -> dict:
        """Wire format for shipping an obligation to a remote runner
        (``repro.serve`` batch jobs).  Everything inside is already
        JSON-safe: the payload is ``serialize_terms`` output."""
        return {
            "name": self.name,
            "num_goals": self.num_goals,
            "payload": self.payload,
            "info": self.info,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "Obligation":
        """Rebuild an obligation from :meth:`to_json` output.

        Validates shape only (types and payload structure) — the term
        DAG itself is checked when a worker deserializes it, so a
        malformed batch degrades to per-obligation ``unknown`` verdicts
        instead of taking the daemon down.  Raises ``ValueError`` on a
        document that is not an obligation at all.
        """
        if not isinstance(doc, dict):
            raise ValueError("obligation must be a JSON object")
        name = doc.get("name")
        num_goals = doc.get("num_goals")
        payload = doc.get("payload")
        if not isinstance(name, str) or not name:
            raise ValueError("obligation.name must be a non-empty string")
        if not isinstance(num_goals, int) or isinstance(num_goals, bool) or num_goals < 1:
            raise ValueError("obligation.num_goals must be a positive integer")
        if (
            not isinstance(payload, dict)
            or not isinstance(payload.get("nodes"), list)
            or not isinstance(payload.get("roots"), list)
        ):
            raise ValueError("obligation.payload must carry serialized terms (nodes/roots)")
        if num_goals > len(payload["roots"]):
            raise ValueError("obligation.num_goals exceeds the payload's root count")
        info = doc.get("info", {})
        if not isinstance(info, dict):
            raise ValueError("obligation.info must be an object")
        return cls(name, payload, num_goals, dict(info))


@dataclass
class ObligationResult:
    """Verdict for one obligation, reduced deterministically."""

    name: str
    status: str  # proved | failed | unknown
    model_values: dict | None = None
    stats: dict = field(default_factory=dict)

    @property
    def proved(self) -> bool:
        return self.status == PROVED

    def to_json(self) -> dict:
        """Wire format for a verdict (``repro.serve`` streams these).

        ``stats`` is filtered to JSON scalars so obs envelopes and other
        process-local baggage never leak onto the wire.
        """
        stats = {
            key: value
            for key, value in self.stats.items()
            if isinstance(value, (int, float, str, bool)) or value is None
        }
        doc: dict = {"name": self.name, "status": self.status, "stats": stats}
        if self.model_values is not None:
            doc["model"] = dict(self.model_values)
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "ObligationResult":
        if not isinstance(doc, dict) or not isinstance(doc.get("name"), str):
            raise ValueError("obligation result must be an object with a name")
        status = doc.get("status")
        if status not in (PROVED, FAILED, UNKNOWN):
            raise ValueError(f"obligation result has unknown status {status!r}")
        model = doc.get("model")
        if model is not None and not isinstance(model, dict):
            raise ValueError("obligation result model must be an object")
        stats = doc.get("stats", {})
        if not isinstance(stats, dict):
            raise ValueError("obligation result stats must be an object")
        return cls(doc["name"], status, model_values=model, stats=dict(stats))

    def __repr__(self) -> str:
        return f"ObligationResult({self.name}: {self.status})"


@dataclass
class RunnerStats:
    """Aggregate statistics for one ``run_obligations`` call."""

    obligations: int = 0
    jobs: int = 1
    wall_time_s: float = 0.0
    cache_queries: int = 0
    cache_hits: int = 0

    @property
    def cache_hit_rate(self) -> float:
        return self.cache_hits / self.cache_queries if self.cache_queries else 0.0

    def as_dict(self) -> dict:
        return {
            "obligations": self.obligations,
            "jobs": self.jobs,
            "wall_time_s": self.wall_time_s,
            "cache_queries": self.cache_queries,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": self.cache_hit_rate,
        }


def obligations_from_context(ctx, assumptions: Sequence = (), prefix: str = "vc") -> list[Obligation]:
    """One obligation per VC collected during symbolic evaluation.

    This is where the engine's path decomposition becomes explicit:
    every ``assert_prop``/``bug_on`` recorded under a path guard is an
    independent query.  ``assumptions`` may be ``SymBool``s or raw
    boolean terms.
    """
    assume_terms = [a.term if hasattr(a, "term") else a for a in assumptions]
    out = []
    for i, vc in enumerate(ctx.vcs):
        out.append(
            Obligation.from_terms(
                f"{prefix}[{i}]: {vc.message}",
                [vc.formula],
                assume_terms,
                kind=vc.kind,
                index=i,
            )
        )
    return out


# ---------------------------------------------------------------------------
# Worker side

def _check_obligation(
    obligation: Obligation,
    cache_dir: str | None,
    max_conflicts: int | None,
    timeout_s: float | None,
    trace: bool = False,
) -> ObligationResult:
    """Discharge one obligation in the current process.

    Top-level (not a closure) so worker processes can receive it via
    pickling under any multiprocessing start method.

    With ``trace`` the check runs inside its own tracing session plus
    symbolic profiler and the snapshot is embedded as
    ``result.stats["obs"]`` — the envelope the PR 2 fallback pool ships
    back to the parent (the work-stealing scheduler has its own,
    richer, envelope path through the outbox).
    """
    if trace:
        from ..obs import tracing
        from ..sym.profiler import profile

        with tracing(absorb=False) as col, profile() as prof:
            result = _check_obligation(obligation, cache_dir, max_conflicts, timeout_s)
        col.merge_regions(prof.snapshot())
        result.stats["obs"] = col.snapshot()
        return result
    start = time.perf_counter()
    roots = deserialize_terms(obligation.payload)
    goals = roots[: obligation.num_goals]
    assumptions = roots[obligation.num_goals:]
    if cache_dir:
        # Sharded content-addressed store; reads legacy flat caches too,
        # and grows a remote read-through/write-back tier when
        # REPRO_REMOTE_STORE points at a store server.
        from .store import open_store

        cache = open_store(cache_dir)
    else:
        cache = None
    solver = Solver(max_conflicts=max_conflicts, timeout_s=timeout_s, cache=cache)
    solver.add(*assumptions)
    try:
        result = solver.check(mk_not(mk_and(*goals)))
    except SolverTimeout:
        stats = dict(solver.last_stats, time_s=time.perf_counter() - start, timed_out=True)
        return ObligationResult(obligation.name, UNKNOWN, stats=stats)
    stats = dict(solver.last_stats)
    stats["time_s"] = time.perf_counter() - start
    stats["cache_hit"] = bool(stats.get("cache_hit", False))
    stats["cached"] = cache is not None and not stats.get("trivial", False)
    if result.is_unsat:
        return ObligationResult(obligation.name, PROVED, stats=stats)
    if result.is_sat:
        values = dict(result.model.items())
        return ObligationResult(obligation.name, FAILED, model_values=values, stats=stats)
    return ObligationResult(obligation.name, UNKNOWN, stats=stats)


def _worker(job: tuple) -> ObligationResult:
    obligation, cache_dir, max_conflicts, timeout_s, trace = job
    return _check_obligation(obligation, cache_dir, max_conflicts, timeout_s, trace=trace)


def _pool_context():
    """Prefer fork (workers inherit the interned DAG for free); fall
    back to spawn where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


# ---------------------------------------------------------------------------
# Scheduler

def _pool_fallback() -> bool:
    """True when ``REPRO_NO_SCHEDULER=1`` opts out of the shared
    scheduler, restoring the PR 2 per-call pool."""
    return os.environ.get("REPRO_NO_SCHEDULER") == "1"


def run_obligations(
    obligations: Sequence[Obligation],
    jobs: int = 1,
    cache_dir: str | None = None,
    max_conflicts: int | None = None,
    timeout_s: float | None = None,
    retries: int = 1,
) -> tuple[list[ObligationResult], RunnerStats]:
    """Discharge obligations, optionally across worker processes.

    ``jobs=1`` runs in-process (no multiprocessing overhead, the
    sequential baseline); ``jobs=0`` means one worker per core.  With
    ``jobs > 1`` the obligations feed the process-wide work-stealing
    scheduler (``repro.core.scheduler``): one persistent pool shared by
    every concurrent caller, per-obligation ``timeout_s`` with
    ``retries`` bounded re-runs, and the sharded verdict store at
    ``cache_dir``.  Set ``REPRO_NO_SCHEDULER=1`` to fall back to the
    PR 2 per-call pool.

    The reduction is deterministic regardless of worker scheduling:
    results come back in input order, so "first failing obligation"
    is stable across parallel runs — parallel, work-stealing, and
    sequential runs produce identical verdicts in identical order.
    """
    from .scheduler import in_worker

    if jobs == 0:
        jobs = default_jobs()
    if in_worker():
        jobs = 1
    start = time.perf_counter()
    tracing_on = _obs_enabled()
    if jobs <= 1 or len(obligations) <= 1:
        # In-process: solver/sym events already record straight into the
        # caller's collector; only the per-obligation scheduler-layer
        # span needs adding.
        results = []
        for ob in obligations:
            ob_start = time.perf_counter()
            with _obs_span(ob.name, cat="scheduler") as sargs:
                result = _check_obligation(ob, cache_dir, max_conflicts, timeout_s)
            _obs_observe("obligation.wall_seconds", time.perf_counter() - ob_start)
            if sargs is not None:
                sargs["status"] = result.status
            results.append(result)
        effective_jobs = 1
    elif _pool_fallback():
        # PR 2 fallback: a pool scoped to this one call.  Workers embed
        # their trace snapshot in ``stats["obs"]``; reassemble here.
        from ..sym.profiler import active_profiler

        trace = tracing_on or active_profiler() is not None
        effective_jobs = min(jobs, len(obligations))
        jobs_args = [(ob, cache_dir, max_conflicts, timeout_s, trace) for ob in obligations]
        ctx = _pool_context()
        with ctx.Pool(processes=effective_jobs) as pool:
            results = pool.map(_worker, jobs_args, chunksize=1)
        if trace:
            col = _obs_collector()
            prof = active_profiler()
            for result in results:
                snap = result.stats.pop("obs", None)
                if snap is None:
                    continue
                if prof is not None:
                    prof.merge_from(snap.get("regions", {}))
                if col is not None:
                    if prof is not None:
                        snap = {**snap, "regions": {}}
                    col.absorb(snap, tid="worker")
                    col.add_span(
                        result.name,
                        "scheduler",
                        "worker",
                        snap["t0"],
                        result.stats.get("time_s", 0.0),
                        {"status": result.status},
                    )
    else:
        from .scheduler import get_scheduler

        return get_scheduler(jobs).run(
            obligations,
            cache_dir=cache_dir,
            max_conflicts=max_conflicts,
            timeout_s=timeout_s,
            retries=retries,
            jobs_hint=jobs,
        )
    stats = RunnerStats(
        obligations=len(obligations),
        jobs=effective_jobs,
        wall_time_s=time.perf_counter() - start,
        cache_queries=sum(1 for r in results if r.stats.get("cached")),
        cache_hits=sum(1 for r in results if r.stats.get("cache_hit")),
    )
    return results, stats


def parallel_map(fn: Callable, items: Iterable, jobs: int = 1) -> list:
    """Order-preserving map across worker processes.

    Generic escape hatch for workloads whose parallel unit is not an
    :class:`Obligation` — e.g. the BPF JIT checker sweeps, where the
    per-item work includes symbolic evaluation, not just solving.
    ``fn`` and the items must be picklable (top-level callables).

    With ``jobs > 1`` the items ride the same shared work-stealing pool
    as proof obligations, so a JIT sweep and a refinement proof can
    interleave on the same workers (``REPRO_NO_SCHEDULER=1`` restores
    the per-call pool).
    """
    from .scheduler import in_worker

    items = list(items)
    if jobs == 0:
        jobs = default_jobs()
    if jobs <= 1 or len(items) <= 1 or in_worker():
        return [fn(item) for item in items]
    if _pool_fallback():
        ctx = _pool_context()
        with ctx.Pool(processes=min(jobs, len(items))) as pool:
            return pool.map(fn, items, chunksize=1)
    from .scheduler import get_scheduler

    return get_scheduler(jobs).map(fn, items)


def reduce_results(results: Sequence[ObligationResult]) -> ObligationResult | None:
    """Deterministic reduction: the first non-proved result, or None.

    Mirrors the sequential runner's "stop at first failure" semantics
    without depending on which worker finished first.
    """
    for result in results:
        if not result.proved:
            return result
    return None
