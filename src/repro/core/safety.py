"""Safety-property library (§3.3).

As a sanity check on functional specifications, developers prove key
safety properties *of the specifications themselves*.  The paper uses
two flavors:

  * one-safety: predicates on a single specification state (e.g.
    reference-count consistency, Hyperkernel §3.3), and
  * two-safety: predicates on two specification states (e.g.
    noninterference, Terauchi & Aiken).

These helpers finitize the quantifiers and discharge each obligation
with the solver.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..sym import ProofResult, SymBool, new_context, sym_true, verify_vcs
from .spec import SpecStruct

__all__ = [
    "prove_invariant_step",
    "prove_one_safety",
    "prove_two_safety",
    "reference_count_consistent",
]


def prove_invariant_step(
    name: str,
    invariant: Callable[[Any], SymBool],
    step: Callable[[Any], Any],
    state_type: type[SpecStruct],
    assumptions: Callable[[Any], SymBool] | None = None,
    max_conflicts: int | None = None,
) -> ProofResult:
    """Prove that a spec-level transition preserves an invariant:
    ``inv(s) /\\ A(s) => inv(step(s))``."""
    with new_context() as ctx:
        s = state_type.fresh(f"{name}.s")
        s1 = step(s)
        ctx.assert_prop(invariant(s1), f"{name}: invariant preserved")
        assume = [invariant(s)]
        if assumptions is not None:
            assume.append(assumptions(s))
        return verify_vcs(ctx, assumptions=assume, max_conflicts=max_conflicts)


def prove_one_safety(
    name: str,
    prop: Callable[[Any], SymBool],
    state_type: type[SpecStruct],
    assumptions: Callable[[Any], SymBool] | None = None,
    max_conflicts: int | None = None,
) -> ProofResult:
    """Prove a predicate on a single specification state."""
    with new_context() as ctx:
        s = state_type.fresh(f"{name}.s")
        ctx.assert_prop(prop(s), name)
        assume = [assumptions(s)] if assumptions is not None else []
        return verify_vcs(ctx, assumptions=assume, max_conflicts=max_conflicts)


def prove_two_safety(
    name: str,
    prop: Callable[[Any, Any], SymBool],
    state_type: type[SpecStruct],
    assumptions: Callable[[Any, Any], SymBool] | None = None,
    max_conflicts: int | None = None,
) -> ProofResult:
    """Prove a predicate relating two specification states."""
    with new_context() as ctx:
        s1 = state_type.fresh(f"{name}.s1")
        s2 = state_type.fresh(f"{name}.s2")
        ctx.assert_prop(prop(s1, s2), name)
        assume = [assumptions(s1, s2)] if assumptions is not None else []
        return verify_vcs(ctx, assumptions=assume, max_conflicts=max_conflicts)


def count_where(items: list, pred: Callable[[Any], SymBool], width: int):
    """Symbolic count of items satisfying ``pred`` (bounded sum)."""
    from ..sym import bv_val, ite

    total = bv_val(0, width)
    for item in items:
        total = total + ite(pred(item), bv_val(1, width), bv_val(0, width))
    return total


def reference_count_consistent(
    owners: list,
    resources: list,
    declared_count: Callable[[Any], Any],
    owner_of: Callable[[Any, Any], SymBool],
    width: int = 32,
) -> SymBool:
    """Reference-count consistency (Hyperkernel §3.3 flavor).

    For each owner ``o``, ``declared_count(o)`` equals the number of
    resources ``r`` with ``owner_of(r, o)``.  The count is a bounded
    sum over the finite resource set, staying inside the decidable
    fragment (§3.1).
    """
    from ..sym import sym_eq

    out = sym_true()
    for owner in owners:
        actual = count_where(resources, lambda r: owner_of(r, owner), width)
        out = out & sym_eq(declared_count(owner), actual)
    return out
