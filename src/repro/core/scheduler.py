"""Process-wide work-stealing scheduler for proof obligations.

PR 2's runner parallelizes *within* one ``run_obligations`` call: each
call builds a pool, maps its obligations, and tears the pool down.
Between the Figure 11 grid's tasks — twelve refinement proofs, two
safety suites, a JIT sweep — workers sit idle and every call pays pool
startup again.  This module owns **one persistent worker pool for the
whole process**, fed by a shared work-stealing queue, so any number of
concurrent verification tasks keep all cores busy end-to-end (§3.3's
decomposition into independent obligations is what makes this sound:
obligations share no state, only the content-addressed verdict store).

Scheduling discipline (the classic work-stealing deque arrangement):

  * every worker has a **local deque**; submissions are dealt
    round-robin across the deques;
  * a worker takes work from the *front* of its own deque (oldest
    first, preserving submission locality);
  * a worker whose deque is empty **steals from the back of a random
    victim's deque** (seeded RNG, so runs are reproducible), which is
    counted in the telemetry;
  * verdict reduction is by submission index, never completion order —
    a stolen obligation lands in the same slot it would have filled
    sequentially, so work-stealing runs report *identical* verdicts and
    first-failures to sequential runs.

Resilience (per KVerus' proof-fleet scheduling): each obligation gets a
wall-clock ``timeout_s`` enforced inside the SAT core plus **one bounded
retry**; a timed-out-twice obligation reports ``unknown`` instead of
wedging the run, and a crashed worker is respawned with its in-flight
obligation requeued.

Telemetry compatible with ``RunnerStats`` (queue depth, steal count,
retries, per-worker utilization) flows through ``ProofResult.stats``
into the ``BENCH_runner.json`` artifact.
"""

from __future__ import annotations

import atexit
from collections import deque
from dataclasses import dataclass
import os
import queue as queue_mod
import random
import threading
import time

from .runner import (
    Obligation,
    ObligationResult,
    RunnerStats,
    UNKNOWN,
    _check_obligation,
    _pool_context,
    default_jobs,
)

__all__ = [
    "ObligationScheduler",
    "SchedulerStats",
    "get_scheduler",
    "peek_scheduler",
    "shutdown_scheduler",
]

# Set in worker processes so nested verification work never tries to
# spawn grandchild processes (daemonic workers cannot fork).
_WORKER_ENV = "REPRO_SCHEDULER_WORKER"


@dataclass
class SchedulerStats(RunnerStats):
    """``RunnerStats`` plus the work-stealing telemetry.

    ``utilization`` is the fraction of worker-seconds spent solving
    during this run's wall time (1.0 = every worker busy the whole
    time); ``max_queue_depth`` is the deepest the combined deques got.
    """

    steals: int = 0
    retries: int = 0
    timeouts: int = 0
    max_queue_depth: int = 0
    worker_restarts: int = 0
    pool_workers: int = 0
    utilization: float = 0.0

    def as_dict(self) -> dict:
        out = super().as_dict()
        out.update(
            steals=self.steals,
            retries=self.retries,
            timeouts=self.timeouts,
            max_queue_depth=self.max_queue_depth,
            worker_restarts=self.worker_restarts,
            pool_workers=self.pool_workers,
            utilization=self.utilization,
        )
        return out


class _CallError:
    """Marker result for a generic task whose callable raised."""

    def __init__(self, message: str):
        self.message = message

    def __repr__(self) -> str:
        return f"_CallError({self.message})"


class _Task:
    __slots__ = (
        "tid",
        "kind",
        "payload",
        "ticket",
        "index",
        "attempts",
        "max_attempts",
        "name",
        "queued_t",
        "stolen",
    )

    def __init__(self, tid, kind, payload, ticket, index, max_attempts, name):
        self.tid = tid
        self.kind = kind  # "ob" | "call"
        self.payload = payload
        self.ticket = ticket
        self.index = index
        self.attempts = 0
        self.max_attempts = max_attempts
        self.name = name
        self.queued_t = time.perf_counter()
        self.stolen = False


class _Ticket:
    """One submission's rendezvous point and per-run telemetry.

    With ``trace`` set, workers run each task inside their own tracing
    session and ship the span/counter/region snapshot back through the
    outbox; ``obs`` holds those ``(wid, snapshot)`` envelopes and
    ``timeline`` the queued/start/end record per task, both indexed by
    submission order.

    ``job`` is an opaque caller tag (the serving layer uses its job id)
    so concurrent submissions can be told apart in telemetry, and
    ``on_result`` — when set — is invoked as ``on_result(index, result)``
    each time a task finalizes.  The callback runs on the dispatcher
    thread while the scheduler lock is held: it must be fast and must
    never call back into the scheduler (stash the result and notify a
    condition instead).
    """

    def __init__(
        self,
        count: int,
        trace: bool = False,
        job: str | None = None,
        on_result=None,
        trace_id: str | None = None,
    ):
        self.results: list = [None] * count
        self.pending = count
        self.done = 0
        self.event = threading.Event()
        self.trace = trace
        self.job = job
        self.trace_id = trace_id
        self.on_result = on_result
        self.cancelled = False
        self.obs: list = [None] * count
        self.timeline: list = [None] * count
        self.steals = 0
        self.retries = 0
        self.timeouts = 0
        self.busy_s = 0.0
        self.max_depth = 0

    def wait(self, timeout: float | None = None) -> list:
        self.event.wait(timeout)
        return self.results

    def progress(self) -> dict:
        """Point-in-time per-job counters, safe to read from any thread
        (monitoring only — values may be mid-update)."""
        return {
            "total": len(self.results),
            "done": self.done,
            "pending": self.pending,
            "cancelled": self.cancelled,
            "steals": self.steals,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "busy_s": self.busy_s,
        }


def _run_task(kind: str, payload) -> object:
    if kind == "ob":
        obligation, cache_dir, max_conflicts, timeout_s = payload
        return _check_obligation(obligation, cache_dir, max_conflicts, timeout_s)
    fn, item = payload
    return fn(item)


def _worker_main(wid: int, inbox, outbox) -> None:
    """Worker process loop: pull a task, solve, report, repeat.

    Never raises out of the loop — any failure is reported as a result
    so the dispatcher, not the pool, decides what to do about it.

    When the parent is tracing (``trace`` set in the task message), the
    task runs inside its own obs tracing session plus symbolic
    profiler, and the serialized snapshot rides home in the outbox
    message.  ``time.perf_counter()`` is machine-wide on Linux, so the
    worker's span timestamps land directly on the parent's timeline.
    """
    os.environ[_WORKER_ENV] = "1"
    from ..obs.events import trace_context

    while True:
        msg = inbox.get()
        if msg is None:
            return
        tid, kind, payload, trace, ids = msg
        trace_id, ob_id = ids if ids is not None else (None, None)
        start = time.perf_counter()
        snap = None
        try:
            # Bind the correlation ids around the whole solve so every
            # span recorded below — and every remote-store request the
            # cache makes — carries the submitting job's trace_id.
            with trace_context(trace_id, ob_id):
                if trace:
                    from ..obs import tracing
                    from ..sym.profiler import profile

                    with tracing(absorb=False) as col, profile() as prof:
                        result = _run_task(kind, payload)
                    col.merge_regions(prof.snapshot())
                    snap = col.snapshot()
                else:
                    result = _run_task(kind, payload)
        except BaseException as exc:  # resilience: the loop must survive
            # A crash may have left the worker's incremental SAT session
            # mid-mutation; drop it so the next task starts clean.
            from ..smt.solver import reset_incremental_session

            reset_incremental_session()
            if kind == "ob":
                result = ObligationResult(
                    payload[0].name, UNKNOWN, stats={"worker_error": repr(exc)}
                )
            else:
                result = _CallError(repr(exc))
        outbox.put((wid, tid, result, time.perf_counter() - start, start, snap))


class _Worker:
    __slots__ = ("wid", "process", "inbox", "deque", "busy_s")

    def __init__(self, wid, process, inbox):
        self.wid = wid
        self.process = process
        self.inbox = inbox
        self.deque: deque[int] = deque()
        self.busy_s = 0.0


class ObligationScheduler:
    """The process-wide scheduler: persistent pool + work-stealing deques.

    Use :func:`get_scheduler` rather than constructing one per call —
    sharing the pool across calls is the point.
    """

    def __init__(self, workers: int = 0, steal_seed: int = 0):
        workers = workers or default_jobs()
        self._ctx = _pool_context()
        self._lock = threading.Lock()
        self._rng = random.Random(steal_seed)
        self._outbox = self._ctx.Queue()
        self._workers: list[_Worker] = []
        self._idle: set[int] = set()
        self._inflight: dict[int, int] = {}  # wid -> tid
        self._tasks: dict[int, _Task] = {}
        self._next_tid = 0
        self._cursor = 0
        self.closed = False
        # Process-lifetime counters (per-run numbers live on tickets).
        self.steals = 0
        self.retries = 0
        self.timeouts = 0
        self.worker_restarts = 0
        self.max_queue_depth = 0
        for _ in range(workers):
            self._spawn_worker()
        self._dispatcher = threading.Thread(
            target=self._loop, name="obligation-scheduler", daemon=True
        )
        self._dispatcher.start()

    # -- pool management -------------------------------------------------

    def _spawn_worker(self) -> None:
        wid = len(self._workers)
        inbox = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main, args=(wid, inbox, self._outbox), daemon=True
        )
        process.start()
        self._workers.append(_Worker(wid, process, inbox))
        self._idle.add(wid)

    def _respawn(self, worker: _Worker) -> None:
        self.worker_restarts += 1
        worker.process = self._ctx.Process(
            target=_worker_main, args=(worker.wid, worker.inbox, self._outbox), daemon=True
        )
        worker.process.start()

    def grow(self, extra: int) -> None:
        """Add workers (the pool only ever grows; idle workers block on
        their inbox and cost nothing)."""
        with self._lock:
            for _ in range(extra):
                self._spawn_worker()
            self._feed_idle()

    @property
    def pool_size(self) -> int:
        return len(self._workers)

    def telemetry(self) -> dict:
        """Process-lifetime counters plus a point-in-time queue picture
        (the serving layer's ``/metrics`` payload)."""
        with self._lock:
            return {
                "pool_workers": len(self._workers),
                "queued": sum(len(w.deque) for w in self._workers),
                "inflight": len(self._inflight),
                "steals": self.steals,
                "retries": self.retries,
                "timeouts": self.timeouts,
                "worker_restarts": self.worker_restarts,
                "max_queue_depth": self.max_queue_depth,
            }

    def shutdown(self) -> None:
        """Stop workers and the dispatcher.  Idempotent."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            for worker in self._workers:
                try:
                    worker.inbox.put(None)
                except (OSError, ValueError):
                    pass
        for worker in self._workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():
                worker.process.terminate()

    # -- submission ------------------------------------------------------

    def submit_obligations(
        self,
        obligations,
        cache_dir: str | None = None,
        max_conflicts: int | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        trace: bool = False,
        job: str | None = None,
        on_result=None,
        trace_id: str | None = None,
    ) -> _Ticket:
        """Queue obligations; returns a ticket to ``wait()`` on.

        Multiple tickets may be outstanding at once — that is how
        independent verification tasks share the pool.  ``job`` tags
        the ticket for telemetry and ``on_result(index, result)``
        streams each verdict as it finalizes (see :class:`_Ticket` for
        the callback's constraints).  ``trace_id`` (defaulting to the
        submitting thread's ambient id) rides to the workers so their
        spans and store requests are correlated with the job.
        """
        specs = [
            ("ob", (ob, cache_dir, max_conflicts, timeout_s), ob.name) for ob in obligations
        ]
        return self._submit(
            specs, retries, trace, job=job, on_result=on_result, trace_id=trace_id
        )

    def submit_calls(self, fn, items, retries: int = 0, trace: bool = False) -> _Ticket:
        """Queue generic ``fn(item)`` tasks (the JIT-sweep shape)."""
        specs = [("call", (fn, item), f"{getattr(fn, '__name__', 'call')}[{i}]") for i, item in enumerate(items)]
        return self._submit(specs, retries, trace)

    def _submit(
        self, specs, retries: int, trace: bool = False, job=None, on_result=None, trace_id=None
    ) -> _Ticket:
        if trace_id is None:
            from ..obs.events import current_trace

            trace_id = current_trace()[0]
        ticket = _Ticket(len(specs), trace=trace, job=job, on_result=on_result, trace_id=trace_id)
        if not specs:
            ticket.event.set()
            return ticket
        with self._lock:
            if self.closed:
                raise RuntimeError("scheduler is shut down")
            for index, (kind, payload, name) in enumerate(specs):
                tid = self._next_tid
                self._next_tid += 1
                self._tasks[tid] = _Task(tid, kind, payload, ticket, index, 1 + retries, name)
                home = self._workers[self._cursor % len(self._workers)]
                self._cursor += 1
                home.deque.append(tid)
            self._note_depth(ticket)
            self._feed_idle()
        return ticket

    # -- dispatch (all called under self._lock) --------------------------

    def _note_depth(self, ticket: _Ticket | None = None) -> None:
        depth = sum(len(w.deque) for w in self._workers)
        self.max_queue_depth = max(self.max_queue_depth, depth)
        if ticket is not None:
            ticket.max_depth = max(ticket.max_depth, depth)
        else:
            for task in self._tasks.values():
                t = task.ticket
                t.max_depth = max(t.max_depth, depth)

    def _take_for(self, worker: _Worker) -> tuple[int | None, bool]:
        if worker.deque:
            return worker.deque.popleft(), False
        victims = [w for w in self._workers if w is not worker and w.deque]
        if not victims:
            return None, False
        victim = victims[self._rng.randrange(len(victims))]
        return victim.deque.pop(), True

    def _feed_idle(self) -> None:
        for wid in sorted(self._idle):
            worker = self._workers[wid]
            tid, stolen = self._take_for(worker)
            if tid is None:
                continue
            task = self._tasks[tid]
            if stolen:
                self.steals += 1
                task.ticket.steals += 1
                task.stolen = True
            self._idle.discard(wid)
            self._inflight[wid] = tid
            ticket = task.ticket
            ids = None
            if ticket.trace_id is not None:
                ids = (ticket.trace_id, f"{ticket.trace_id}.{task.index}")
            worker.inbox.put((tid, task.kind, task.payload, ticket.trace, ids))

    def _finalize(
        self,
        task: _Task,
        result,
        wid: int | None = None,
        start: float | None = None,
        elapsed: float = 0.0,
        snap: dict | None = None,
    ) -> None:
        del self._tasks[task.tid]
        ticket = task.ticket
        ticket.results[task.index] = result
        ob_id = f"{ticket.trace_id}.{task.index}" if ticket.trace_id else None
        if wid is not None and start is not None:
            ticket.timeline[task.index] = {
                "name": task.name,
                "queued_t": task.queued_t,
                "start_t": start,
                "end_t": start + elapsed,
                "wid": wid,
                "stolen": task.stolen,
                "attempts": task.attempts + 1,
            }
            # Latency histograms go to the process-global collector (the
            # daemon's process-lifetime session): obligation wall time
            # and how long the task sat queued before a worker took it.
            from ..obs import event as obs_event, observe as obs_observe

            obs_observe("obligation.wall_seconds", elapsed)
            obs_observe("obligation.queue_wait_seconds", max(0.0, start - task.queued_t))
            if task.kind == "ob":
                status = result.status if isinstance(result, ObligationResult) else "?"
                obs_event(
                    "info",
                    "obligation.done",
                    trace_id=ticket.trace_id,
                    ob_id=ob_id,
                    name=task.name,
                    status=status,
                    wall_s=elapsed,
                    worker=wid,
                    job=ticket.job,
                )
        if snap is not None:
            ticket.obs[task.index] = (wid, snap)
        ticket.done += 1
        ticket.pending -= 1
        if ticket.on_result is not None:
            try:
                ticket.on_result(task.index, result)
            except Exception:
                # A broken observer must not wedge dispatch.
                pass
        if ticket.pending == 0:
            ticket.event.set()

    def _cancelled_result(self, task: _Task):
        if task.kind == "ob":
            return ObligationResult(task.name, UNKNOWN, stats={"cancelled": True})
        return _CallError("cancelled")

    def cancel(self, ticket: _Ticket) -> int:
        """Cancel a submission: tasks still queued are finalized as
        ``unknown`` with ``stats["cancelled"]`` set; tasks already on a
        worker run to completion (their per-obligation timeout still
        applies) but are never retried.  Returns the number of tasks
        cancelled before they started.  Idempotent; the ticket's
        ``wait()`` returns once in-flight tasks drain.
        """
        with self._lock:
            if ticket.cancelled:
                return 0
            ticket.cancelled = True
            doomed: list[int] = []
            for worker in self._workers:
                kept = deque()
                for tid in worker.deque:
                    task = self._tasks.get(tid)
                    if task is not None and task.ticket is ticket:
                        doomed.append(tid)
                    else:
                        kept.append(tid)
                worker.deque = kept
            for tid in doomed:
                self._finalize(self._tasks[tid], self._cancelled_result(self._tasks[tid]))
            return len(doomed)

    def _requeue(self, wid: int, task: _Task) -> None:
        task.attempts += 1
        self.retries += 1
        task.ticket.retries += 1
        from ..obs import event as obs_event

        obs_event(
            "warn",
            "obligation.retry",
            trace_id=task.ticket.trace_id,
            ob_id=f"{task.ticket.trace_id}.{task.index}" if task.ticket.trace_id else None,
            name=task.name,
            attempt=task.attempts + 1,
            worker=wid,
        )
        # Retry on the worker that just freed up: its deque front keeps
        # the retry prompt without jumping the whole queue.
        self._workers[wid].deque.appendleft(task.tid)

    # -- dispatcher thread ----------------------------------------------

    def _loop(self) -> None:
        while True:
            try:
                wid, tid, result, elapsed, start, snap = self._outbox.get(timeout=0.2)
            except queue_mod.Empty:
                with self._lock:
                    if self.closed:
                        return
                    self._check_workers()
                continue
            except (OSError, EOFError, ValueError):
                return
            with self._lock:
                if self.closed:
                    return
                worker = self._workers[wid]
                worker.busy_s += elapsed
                self._inflight.pop(wid, None)
                self._idle.add(wid)
                task = self._tasks.get(tid)
                if task is None:
                    # Duplicate delivery after a worker-death requeue.
                    self._feed_idle()
                    continue
                task.ticket.busy_s += elapsed
                self._handle_result(wid, task, result, elapsed, start, snap)
                self._note_depth()
                self._feed_idle()

    def _handle_result(
        self, wid: int, task: _Task, result, elapsed: float, start: float, snap: dict | None
    ) -> None:
        if task.ticket.cancelled:
            # No retry budget for a cancelled job; report what we got.
            self._finalize(task, result, wid=wid, start=start, elapsed=elapsed, snap=snap)
            return
        if task.kind == "ob":
            timed_out = (
                isinstance(result, ObligationResult)
                and result.status == UNKNOWN
                and bool(result.stats.get("timed_out"))
            )
            errored = isinstance(result, ObligationResult) and "worker_error" in result.stats
            if timed_out:
                self.timeouts += 1
                task.ticket.timeouts += 1
            if (timed_out or errored) and task.attempts + 1 < task.max_attempts:
                self._requeue(wid, task)
                return
        self._finalize(task, result, wid=wid, start=start, elapsed=elapsed, snap=snap)

    def _check_workers(self) -> None:
        for worker in self._workers:
            if worker.process.is_alive():
                continue
            from ..obs import event as obs_event

            obs_event("error", "worker.died", worker=worker.wid)
            tid = self._inflight.pop(worker.wid, None)
            if tid is not None and tid in self._tasks:
                task = self._tasks[tid]
                if task.ticket.cancelled:
                    self._finalize(task, self._cancelled_result(task))
                elif task.attempts + 1 < task.max_attempts:
                    self._requeue(worker.wid, task)
                elif task.kind == "ob":
                    self._finalize(
                        task,
                        ObligationResult(task.name, UNKNOWN, stats={"worker_error": "worker died"}),
                    )
                else:
                    self._finalize(task, _CallError("worker died"))
            self._respawn(worker)
            self._idle.add(worker.wid)
        self._feed_idle()

    # -- high-level entry points ----------------------------------------

    @staticmethod
    def _want_trace(trace: bool | None) -> bool:
        """Default the ``trace`` knob to "the caller is observing":
        an obs tracing session or a symbolic profiler is active."""
        if trace is not None:
            return trace
        from ..obs import enabled
        from ..sym.profiler import active_profiler

        return enabled() or active_profiler() is not None

    def _collect_trace(self, ticket: _Ticket) -> None:
        """Reassemble worker envelopes into the caller's collector and
        profiler, and lay down one ``scheduler``-category span per task
        (its solving interval, on its worker's track)."""
        from ..obs import get_collector
        from ..sym.profiler import active_profiler

        col = get_collector()
        prof = active_profiler()
        for entry in ticket.obs:
            if entry is None:
                continue
            wid, snap = entry
            if prof is not None:
                prof.merge_from(snap.get("regions", {}))
            if col is not None:
                if prof is not None:
                    # Regions went to the profiler; don't double-count.
                    snap = {**snap, "regions": {}}
                col.absorb(snap, tid=f"worker-{wid}")
        if col is None:
            return
        for index, entry in enumerate(ticket.timeline):
            if entry is None:
                continue
            result = ticket.results[index]
            args = {
                "queued_s": entry["start_t"] - entry["queued_t"],
                "stolen": entry["stolen"],
                "attempts": entry["attempts"],
                "worker": entry["wid"],
            }
            if ticket.trace_id is not None:
                args["trace_id"] = ticket.trace_id
                args["ob_id"] = f"{ticket.trace_id}.{index}"
            if isinstance(result, ObligationResult):
                args["status"] = result.status
            col.add_span(
                entry["name"],
                "scheduler",
                f"worker-{entry['wid']}",
                entry["start_t"],
                entry["end_t"] - entry["start_t"],
                args,
            )

    def run(
        self,
        obligations,
        cache_dir: str | None = None,
        max_conflicts: int | None = None,
        timeout_s: float | None = None,
        retries: int = 1,
        jobs_hint: int | None = None,
        trace: bool | None = None,
    ) -> tuple[list[ObligationResult], SchedulerStats]:
        """Submit, wait, and reduce — the ``run_obligations`` shape.

        ``jobs_hint`` is what the caller asked for; it is reported as
        ``stats.jobs`` for compatibility with PR 2 consumers even though
        the whole pool participates.
        """
        start = time.perf_counter()
        trace = self._want_trace(trace)
        ticket = self.submit_obligations(
            obligations,
            cache_dir=cache_dir,
            max_conflicts=max_conflicts,
            timeout_s=timeout_s,
            retries=retries,
            trace=trace,
        )
        results = ticket.wait()
        wall = time.perf_counter() - start
        if trace:
            self._collect_trace(ticket)
        workers = len(self._workers)
        stats = SchedulerStats(
            obligations=len(obligations),
            jobs=min(jobs_hint or workers, max(len(obligations), 1)),
            wall_time_s=wall,
            cache_queries=sum(1 for r in results if r.stats.get("cached")),
            cache_hits=sum(1 for r in results if r.stats.get("cache_hit")),
            steals=ticket.steals,
            retries=ticket.retries,
            timeouts=ticket.timeouts,
            max_queue_depth=ticket.max_depth,
            worker_restarts=self.worker_restarts,
            pool_workers=workers,
            utilization=ticket.busy_s / (wall * workers) if wall > 0 and workers else 0.0,
        )
        return results, stats

    def map(self, fn, items, trace: bool | None = None) -> list:
        """Order-preserving parallel map over the shared pool.

        Raises ``RuntimeError`` if ``fn`` raised in a worker (after the
        worker-death retry budget), mirroring ``Pool.map``.
        """
        trace = self._want_trace(trace)
        ticket = self.submit_calls(fn, list(items), trace=trace)
        results = ticket.wait()
        if trace:
            self._collect_trace(ticket)
        for result in results:
            if isinstance(result, _CallError):
                raise RuntimeError(f"scheduler map task failed: {result.message}")
        return results


# ---------------------------------------------------------------------------
# The process-wide instance

_GLOBAL: ObligationScheduler | None = None
_GLOBAL_LOCK = threading.Lock()


def in_worker() -> bool:
    """True inside a scheduler worker process (nested parallelism is
    downgraded to sequential there; daemonic workers cannot fork)."""
    return os.environ.get(_WORKER_ENV) == "1"


def peek_scheduler() -> ObligationScheduler | None:
    """The shared scheduler if one is live, without creating it (the
    serving layer's ``/metrics`` must not fork a pool on a read)."""
    with _GLOBAL_LOCK:
        if _GLOBAL is not None and not _GLOBAL.closed:
            return _GLOBAL
        return None


def get_scheduler(workers: int = 0) -> ObligationScheduler:
    """The shared scheduler, growing its pool to ``workers`` if needed."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        want = workers or default_jobs()
        if _GLOBAL is None or _GLOBAL.closed:
            _GLOBAL = ObligationScheduler(want)
        elif _GLOBAL.pool_size < want:
            _GLOBAL.grow(want - _GLOBAL.pool_size)
        return _GLOBAL


def shutdown_scheduler() -> None:
    """Tear down the shared pool (atexit; tests use it to reset seeds)."""
    global _GLOBAL
    with _GLOBAL_LOCK:
        if _GLOBAL is not None:
            _GLOBAL.shutdown()
            _GLOBAL = None


atexit.register(shutdown_scheduler)
