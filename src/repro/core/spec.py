r"""Specification library: spec states, theorems, and refinement (§3.3).

Serval asks system developers for four specification inputs:

  1. a definition of specification state   -> :func:`spec_struct`
  2. a functional specification            -> a Python function
  3. an abstraction function AF             -> a Python function
  4. a representation invariant RI          -> a Python function

and proves lock-step state-machine refinement:

  RI(c)              =>  RI(f_impl(c))
  RI(c) /\ AF(c) = s  =>  AF(f_impl(c)) = f_spec(s)

plus the absence of undefined behaviour (every ``bug_on`` collected
while evaluating ``f_impl`` must be false).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from ..sym import (
    ProofResult,
    SymBool,
    fresh_bool,
    fresh_bv,
    merge,
    new_context,
    sym_eq,
    sym_true,
    verify_vcs,
)

__all__ = ["spec_struct", "SpecStruct", "theorem", "Refinement"]


class SpecStruct:
    """A record of symbolic fields, with structural equality and merge.

    The Python analogue of the paper's ``(struct state (a0 a1))``:
    field specs map names to a bit width, ``(width, count)`` for a
    vector of bitvectors, or ``bool``.
    """

    _fields: dict[str, Any] = {}
    _name = "state"

    def __init__(self, **values):
        for fname, shape in self._fields.items():
            if fname in values:
                setattr(self, fname, values.pop(fname))
            else:
                setattr(self, fname, _fresh_field(f"{self._name}.{fname}", shape))
        if values:
            raise TypeError(f"unknown fields: {sorted(values)}")

    @classmethod
    def fresh(cls, prefix: str | None = None) -> "SpecStruct":
        obj = cls.__new__(cls)
        base = prefix or cls._name
        for fname, shape in cls._fields.items():
            setattr(obj, fname, _fresh_field(f"{base}.{fname}", shape))
        return obj

    def copy(self) -> "SpecStruct":
        obj = self.__class__.__new__(self.__class__)
        for fname in self._fields:
            value = getattr(self, fname)
            setattr(obj, fname, list(value) if isinstance(value, list) else value)
        return obj

    def eq(self, other: "SpecStruct") -> SymBool:
        out = sym_true()
        for fname in self._fields:
            out = out & sym_eq(getattr(self, fname), getattr(other, fname))
        return out

    def __sym_merge__(self, guard: SymBool, other: "SpecStruct") -> "SpecStruct":
        obj = self.__class__.__new__(self.__class__)
        for fname in self._fields:
            setattr(obj, fname, merge(guard, getattr(self, fname), getattr(other, fname)))
        return obj

    def __repr__(self) -> str:
        inner = ", ".join(f"{n}={getattr(self, n)!r}" for n in self._fields)
        return f"{self._name}({inner})"


def _fresh_field(name: str, shape):
    if shape is bool:
        return fresh_bool(name)
    if isinstance(shape, int):
        return fresh_bv(name, shape)
    if isinstance(shape, tuple) and len(shape) == 2:
        width, count = shape
        return [fresh_bv(f"{name}[{i}]", width) for i in range(count)]
    raise TypeError(f"bad field shape for {name}: {shape!r}")


def spec_struct(name: str, **fields) -> type[SpecStruct]:
    """Create a spec-state record type.

    Example::

        State = spec_struct("state", a0=64, a1=64)
        s = State.fresh()
        s2 = State(a0=s.a0, a1=bv_val(0, 64))
    """
    return type(name, (SpecStruct,), {"_fields": dict(fields), "_name": name})


def theorem(
    name: str,
    prop: Callable[..., SymBool],
    *state_types: type[SpecStruct],
    assumptions: Callable[..., SymBool] | None = None,
    max_conflicts: int | None = None,
    timeout_s: float | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> ProofResult:
    """Prove a universally quantified property over spec states.

    The paper's ``(theorem (forall ([s1 struct:state] ...) ...))``:
    quantifiers over finite structures are finitized by instantiating
    fresh symbolic states.
    """
    states = [t.fresh(f"{name}.s{i}") for i, t in enumerate(state_types)]
    with new_context() as ctx:
        claim = prop(*states)
        ctx.assert_prop(claim, name)
        assume = [assumptions(*states)] if assumptions is not None else []
        return verify_vcs(
            ctx,
            assumptions=assume,
            max_conflicts=max_conflicts,
            timeout_s=timeout_s,
            jobs=jobs,
            cache_dir=cache_dir,
        )


@dataclass
class Refinement:
    """A state-machine refinement proof obligation for one operation.

    ``impl_step`` evaluates the implementation from a fresh
    implementation state (typically by running an interpreter under
    the engine) and returns the final implementation state.
    ``spec_step`` is the functional specification.
    """

    name: str
    make_impl: Callable[[], Any]  # fresh symbolic implementation state
    impl_step: Callable[[Any], Any]
    spec_step: Callable[[Any], Any]
    abstract: Callable[[Any], Any]  # AF: impl state -> spec state
    rep_invariant: Callable[[Any], SymBool]  # RI over impl state
    extra_assumptions: Callable[[Any], SymBool] | None = None

    def prove(
        self,
        max_conflicts: int | None = None,
        timeout_s: float | None = None,
        jobs: int = 1,
        cache_dir: str | None = None,
    ) -> ProofResult:
        with new_context() as ctx:
            impl0 = self.make_impl()
            ri0 = self.rep_invariant(impl0)
            spec0 = self.abstract(impl0)

            impl1 = self.impl_step(impl0)
            spec1 = self.spec_step(spec0)

            ctx.assert_prop(
                self.rep_invariant(impl1), f"{self.name}: RI preserved"
            )
            ctx.assert_prop(
                self.abstract(impl1).eq(spec1), f"{self.name}: AF lock-step refinement"
            )
            assumptions = [ri0]
            if self.extra_assumptions is not None:
                assumptions.append(self.extra_assumptions(impl0))
            return verify_vcs(
                ctx,
                assumptions=assumptions,
                max_conflicts=max_conflicts,
                timeout_s=timeout_s,
                jobs=jobs,
                cache_dir=cache_dir,
            )
