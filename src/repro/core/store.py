"""Content-addressed verdict store shared across runs and machines.

The persistent solver cache of PR 2 (``repro.smt.SolverCache``) memoizes
check-sat verdicts one-file-per-digest in a flat directory.  This module
grows it into a *shareable artifact*: a sharded, content-addressed store
(``<digest[:2]>/<digest>.json``) with an index file, portable
export/import archives, and garbage collection — the "remote/shared
solver cache" the ROADMAP calls for, in the shape *Divide, Conquer and
Verify* uses to memoize verified slices.

Because entries are keyed by the alpha-blind canonical digest of the
query DAG (``repro.smt.terms.canonicalize_query``), two machines that
verify the same monitor — or the same monitor under differently numbered
fresh constants — produce byte-compatible entries.  CI jobs therefore
hand verdicts to each other by exporting the store as an artifact and
importing it on the next job (see ``.github/workflows/ci.yml``).

Writes are atomic (tempfile + rename in the shard directory), so any
number of worker processes and concurrent CI jobs can share a store
without locking; the worst race is two writers storing identical
entries.

Command-line interface::

    python -m repro.core.store stats  [--store DIR]
    python -m repro.core.store index  [--store DIR]
    python -m repro.core.store gc     [--store DIR] [--max-age-h H] [--keep N]
    python -m repro.core.store export ARCHIVE [--store DIR]
    python -m repro.core.store import ARCHIVE [--store DIR] [--wait]
    python -m repro.core.store serve  [--store DIR] [--host H] [--port P]
    python -m repro.core.store flush  [--store DIR] [--remote URL]

Bulk imports take an flock (``.import.lock``) so two concurrent
imports into one store cannot interleave their shard scans; a second
importer refuses with exit code 3 unless ``--wait`` is passed.

``serve`` exposes the store over HTTP (the object-store protocol in
``repro.core.remote``); ``flush`` synchronously pushes any write-back
spool left behind by an interrupted remote flush.
"""

from __future__ import annotations

import contextlib
import gzip
import json
import os
import re
import sys
import tarfile
import tempfile
import time

try:
    import fcntl
except ImportError:  # non-POSIX: imports proceed unguarded
    fcntl = None

from ..smt.solver import SolverCache

__all__ = [
    "StoreLockedError",
    "VerdictStore",
    "DEFAULT_STORE_DIR",
    "open_store",
    "main",
]

DEFAULT_STORE_DIR = os.environ.get("REPRO_CACHE_DIR", ".solvercache")

# Entry files are named by hex digest; anything else in the tree is not
# a verdict (index, tempfiles) and is never exported or collected.
_DIGEST_RE = re.compile(r"^[0-9a-f]{16,64}$")

INDEX_NAME = "index.json"
IMPORT_LOCK_NAME = ".import.lock"
# Write-back markers for the remote tier (repro.core.remote) live in
# their own subdirectory so store walks never mistake them for entries.
SPOOL_DIR_NAME = ".remote-spool"


class StoreLockedError(RuntimeError):
    """Another process holds the store's import lock."""


def _stat_or_none(fname: str):
    """``os.stat`` that treats a vanished file as absent.

    Store scans (index, summary, gc, export) run concurrently with
    writers and with gc in other processes, so any file listed a moment
    ago may already be gone; that is a skip, never an error.
    """
    try:
        return os.stat(fname)
    except OSError:
        return None


class VerdictStore(SolverCache):
    """A sharded, exportable :class:`~repro.smt.solver.SolverCache`.

    Layout: ``<path>/<digest[:2]>/<digest>.json`` (two-level sharding
    keeps directory sizes bounded at fleet scale); legacy flat entries
    written by PR 2 caches are still readable, so pointing a scheduler
    at an old cache directory keeps its verdicts.

    The drop-in compatibility is deliberate: ``Solver`` talks to the
    store through the ``lookup``/``store`` interface it already uses for
    ``SolverCache``, so every layer above the solver gains sharing for
    free.
    """

    def _entry_path(self, digest: str) -> str:
        return os.path.join(self.path, digest[:2], f"{digest}.json")

    def _legacy_path(self, digest: str) -> str:
        return os.path.join(self.path, f"{digest}.json")

    def _cert_path(self, digest: str) -> str:
        # Certificates shard alongside their entries.
        return os.path.join(self.path, digest[:2], f"{digest}.cert.json")

    def _find_cert_file(self, digest: str) -> str | None:
        """On-disk certificate for ``digest`` (sharded or legacy flat,
        plain or gzipped), or None."""
        sharded = self._cert_path(digest)
        flat = os.path.join(self.path, f"{digest}.cert.json")
        for candidate in (sharded, sharded + ".gz", flat, flat + ".gz"):
            if os.path.exists(candidate):
                return candidate
        return None

    def load_certificate(self, digest: str) -> dict | None:
        cert = super().load_certificate(digest)
        if cert is not None:
            return cert
        # Flat-layout certificates (written by a plain SolverCache
        # pointed at this directory before it became a store).
        fname = self._find_cert_file(digest)
        if fname is None:
            return None
        try:
            with open(fname, "rb") as handle:
                raw = handle.read()
            if fname.endswith(".gz"):
                raw = gzip.decompress(raw)
            return json.loads(raw.decode())
        except (OSError, ValueError):
            return None

    def _read_entry(self, digest: str) -> dict | None:
        entry = super()._read_entry(digest)
        if entry is not None:
            return entry
        # Fall back to the flat PR 2 layout for pre-sharding caches.
        try:
            with open(self._legacy_path(digest)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    # -- enumeration ----------------------------------------------------

    def digests(self) -> list[str]:
        """Every digest present (sharded and legacy flat), sorted."""
        found: set[str] = set()
        try:
            names = os.listdir(self.path)
        except OSError:
            return []
        for name in names:
            full = os.path.join(self.path, name)
            if os.path.isdir(full) and len(name) == 2:
                try:
                    shard = os.listdir(full)
                except OSError:
                    continue  # shard removed mid-scan
                for fname in shard:
                    stem, ext = os.path.splitext(fname)
                    if ext == ".json" and _DIGEST_RE.match(stem):
                        found.add(stem)
            elif name.endswith(".json"):
                stem = name[: -len(".json")]
                if _DIGEST_RE.match(stem):
                    found.add(stem)
        return sorted(found)

    def _find_entry_file(self, digest: str) -> str | None:
        for candidate in (self._entry_path(digest), self._legacy_path(digest)):
            if os.path.exists(candidate):
                return candidate
        return None

    # -- raw object writes (the remote tier and HTTP server) -------------

    def put_raw_entry(self, digest: str, raw: bytes) -> bool:
        """Write a verdict entry from its raw JSON bytes.

        First writer wins (matching :meth:`import_archive`: existing
        digests are identical by construction, the digest *is* the
        content address).  Returns True when the entry was created,
        False when one already existed or the write failed.  Atomic
        like every store write, so racing writers are safe.
        """
        if self._find_entry_file(digest) is not None:
            return False
        target = self._entry_path(digest)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(target), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(raw)
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    def put_raw_cert(self, digest: str, raw: bytes) -> bool:
        """Write a certificate from raw (uncompressed) JSON bytes, with
        the same first-writer-wins semantics as :meth:`put_raw_entry`.
        Large documents gzip exactly like :meth:`store_certificate`."""
        if self._find_cert_file(digest) is not None:
            return False
        base = self._cert_path(digest)
        target = base
        if len(raw) >= self.CERT_GZIP_THRESHOLD:
            raw = gzip.compress(raw, 1)
            target = base + ".gz"
        os.makedirs(os.path.dirname(target), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(target), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(raw)
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return False
        return True

    # -- remote write-back spool -----------------------------------------

    @property
    def spool_dir(self) -> str:
        return os.path.join(self.path, SPOOL_DIR_NAME)

    def spool_pending(self) -> list[str]:
        """Digests whose remote write-back has not completed, sorted.

        Each pending digest is a ``<digest>.json`` marker dropped by
        the remote tier at store time and removed after a successful
        flush — so anything here survived an interrupted flush (or a
        down remote) and still owes the fleet an upload.
        """
        try:
            names = os.listdir(self.spool_dir)
        except OSError:
            return []
        pending = []
        for name in names:
            stem, ext = os.path.splitext(name)
            if ext == ".json" and _DIGEST_RE.match(stem):
                pending.append(stem)
        return sorted(pending)

    # -- index ----------------------------------------------------------

    @property
    def index_path(self) -> str:
        return os.path.join(self.path, INDEX_NAME)

    def write_index(self) -> dict:
        """Rebuild ``index.json``: one row per entry (status, size, age).

        The index is advisory — lookups never consult it — but it makes
        a store self-describing for humans and for ``stats`` on stores
        too large to walk cheaply.  Written atomically like any entry.
        """
        rows = {}
        for digest in self.digests():
            fname = self._find_entry_file(digest)
            if fname is None:
                continue
            entry = self._read_entry(digest)
            if entry is None:
                continue
            st = _stat_or_none(fname)
            if st is None:
                continue
            rows[digest] = {
                "status": entry.get("status"),
                "bytes": st.st_size,
                "mtime": st.st_mtime,
                "cert": self._find_cert_file(digest) is not None,
            }
        index = {
            "version": 1,
            "entries": len(rows),
            "spool_pending": len(self.spool_pending()),
            "rows": rows,
        }
        fd, tmp = tempfile.mkstemp(dir=self.path, suffix=".tmp")
        with os.fdopen(fd, "w") as handle:
            json.dump(index, handle, indent=2)
        os.replace(tmp, self.index_path)
        return index

    # -- stats / gc ------------------------------------------------------

    def summary(self) -> dict:
        """Counts by verdict, total bytes, entry and certificate counts.

        Mixed stores are the norm (entries written before certificates
        existed sit next to certified ones), so every per-entry field
        here is optional: a missing or unreadable certificate only
        decrements a count, it never aborts the walk.
        """
        by_status: dict[str, int] = {}
        total_bytes = 0
        count = 0
        certs = 0
        cert_bytes = 0
        for digest in self.digests():
            entry = self._read_entry(digest)
            if entry is None:
                continue
            count += 1
            by_status[entry.get("status", "?")] = by_status.get(entry.get("status", "?"), 0) + 1
            fname = self._find_entry_file(digest)
            st = _stat_or_none(fname) if fname else None
            if st is not None:
                total_bytes += st.st_size
            cert_file = self._find_cert_file(digest)
            cst = _stat_or_none(cert_file) if cert_file else None
            if cst is not None:
                certs += 1
                cert_bytes += cst.st_size
        return {
            "path": self.path,
            "entries": count,
            "bytes": total_bytes,
            "by_status": by_status,
            "certificates": certs,
            "cert_bytes": cert_bytes,
            # Interrupted remote flushes leave their write-back markers
            # behind; surfacing the backlog here (instead of silently
            # skipping the spool directory) is what lets operators see
            # verdicts that never reached the shared store.
            "spool_pending": len(self.spool_pending()),
        }

    def gc(self, max_age_s: float | None = None, keep: int | None = None) -> int:
        """Collect entries older than ``max_age_s`` and/or trim to the
        ``keep`` most recently touched.  Returns the number removed.

        Verdicts never go stale semantically (the digest pins the exact
        query), so GC is purely a size policy for long-lived shared
        stores.
        """
        now = time.time()
        aged: list[tuple[float, str, str]] = []
        for digest in self.digests():
            fname = self._find_entry_file(digest)
            if fname is None:
                continue
            st = _stat_or_none(fname)
            if st is None:
                continue
            aged.append((st.st_mtime, digest, fname))
        aged.sort(reverse=True)  # newest first
        doomed: list[str] = []
        for rank, (mtime, digest, fname) in enumerate(aged):
            too_old = max_age_s is not None and (now - mtime) > max_age_s
            overflow = keep is not None and rank >= keep
            if too_old or overflow:
                doomed.append(fname)
                # An orphan certificate has nothing to certify; drop it
                # with its entry (uncounted: the return value is entries).
                cert_file = self._find_cert_file(digest)
                if cert_file is not None:
                    try:
                        os.unlink(cert_file)
                    except OSError:
                        pass
                # Likewise its write-back marker: a collected entry can
                # never be flushed, so the marker would sit in the spool
                # forever as phantom backlog.
                marker = os.path.join(self.spool_dir, f"{digest}.json")
                if os.path.exists(marker):
                    try:
                        os.unlink(marker)
                    except OSError:
                        pass
        removed = 0
        for fname in doomed:
            try:
                os.unlink(fname)
                removed += 1
            except OSError:
                pass
        return removed

    # -- export / import -------------------------------------------------

    def export_archive(self, archive_path: str) -> int:
        """Write every entry into a ``.tar.gz``; returns the entry count.

        The archive stores sharded relative names
        (``ab/ab12....json``), so importing normalizes legacy flat
        entries into the sharded layout as a side effect.  Certificates
        travel with their entries (``ab/ab12....cert.json[.gz]``) —
        an imported verdict stays independently checkable.
        """
        self.write_index()
        count = 0
        with tarfile.open(archive_path, "w:gz") as tar:
            for digest in self.digests():
                fname = self._find_entry_file(digest)
                if fname is None:
                    continue
                try:
                    tar.add(fname, arcname=f"{digest[:2]}/{digest}.json")
                except OSError:
                    continue  # entry gc'd mid-export
                count += 1
                cert_file = self._find_cert_file(digest)
                if cert_file is not None:
                    suffix = ".cert.json.gz" if cert_file.endswith(".gz") else ".cert.json"
                    try:
                        tar.add(cert_file, arcname=f"{digest[:2]}/{digest}{suffix}")
                    except OSError:
                        pass  # cert gc'd mid-export; entry still valid
            tar.add(self.index_path, arcname=INDEX_NAME)
        return count

    @property
    def import_lock_path(self) -> str:
        return os.path.join(self.path, IMPORT_LOCK_NAME)

    @contextlib.contextmanager
    def import_lock(self, wait: bool = False):
        """Exclusive flock over bulk imports into this store.

        Entry writes are individually atomic, but a bulk import is a
        long sequence of shard writes: two concurrent imports interleave
        their ``_find_entry_file`` existence probes and both report
        entries as "new", and a reader walking shards mid-import sees a
        half-merged store with a stale index.  The flock makes bulk
        imports mutually exclusive; with ``wait=False`` a held lock
        raises :class:`StoreLockedError` instead of blocking.  On
        platforms without ``fcntl`` the guard degrades to unlocked
        (single-user platforms; the CI fleet is POSIX).
        """
        if fcntl is None:
            yield
            return
        handle = open(self.import_lock_path, "a+")
        try:
            flags = fcntl.LOCK_EX | (0 if wait else fcntl.LOCK_NB)
            try:
                fcntl.flock(handle, flags)
            except OSError:
                raise StoreLockedError(
                    f"another process is importing into {self.path} "
                    f"(lock: {self.import_lock_path}); retry or pass --wait"
                ) from None
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)
        finally:
            handle.close()

    def import_archive(self, archive_path: str, wait: bool = False) -> int:
        """Merge entries from an exported archive; returns how many were
        new.  Existing digests win (they are identical by construction);
        member names are validated so a hostile archive cannot escape
        the store directory.

        Holds the store's :meth:`import_lock` for the duration — a
        second importer either blocks (``wait=True``) or gets
        :class:`StoreLockedError` — so concurrent bulk imports cannot
        interleave their shard scans.
        """
        with self.import_lock(wait=wait):
            return self._import_archive_locked(archive_path)

    # (digest, suffix) parsers for archive member names.  Only these
    # shapes are ever extracted; anything else in a tarball is ignored.
    _MEMBER_SUFFIXES = (".cert.json.gz", ".cert.json", ".json")

    @classmethod
    def _parse_member(cls, name: str) -> tuple[str, str] | None:
        parts = name.split("/")
        if len(parts) != 2:
            return None
        for suffix in cls._MEMBER_SUFFIXES:
            if parts[1].endswith(suffix):
                digest = parts[1][: -len(suffix)]
                if _DIGEST_RE.match(digest) and parts[0] == digest[:2]:
                    return digest, suffix
                return None
        return None

    def _import_archive_locked(self, archive_path: str) -> int:
        imported = 0
        with tarfile.open(archive_path, "r:gz") as tar:
            for member in tar.getmembers():
                if not member.isfile():
                    continue
                parsed = self._parse_member(member.name)
                if parsed is None:
                    continue
                digest, suffix = parsed
                is_cert = suffix != ".json"
                if is_cert:
                    if self._find_cert_file(digest) is not None:
                        continue
                else:
                    if self._find_entry_file(digest) is not None:
                        continue
                handle = tar.extractfile(member)
                if handle is None:
                    continue
                payload = handle.read()
                try:
                    raw = gzip.decompress(payload) if suffix.endswith(".gz") else payload
                    json.loads(raw)
                except (OSError, ValueError):
                    continue
                if is_cert:
                    target = self._cert_path(digest) + (".gz" if suffix.endswith(".gz") else "")
                else:
                    target = self._entry_path(digest)
                os.makedirs(os.path.dirname(target), exist_ok=True)
                fd, tmp = tempfile.mkstemp(dir=os.path.dirname(target), suffix=".tmp")
                with os.fdopen(fd, "wb") as out:
                    out.write(payload)
                os.replace(tmp, target)
                if not is_cert:
                    imported += 1
        return imported


# ---------------------------------------------------------------------------
# Factory


def open_store(path: str, remote_url: str | None = None) -> VerdictStore:
    """Open ``path`` as a verdict store, remote-tiered when configured.

    With ``remote_url`` (or ``REPRO_REMOTE_STORE`` in the environment)
    set, returns a :class:`~repro.core.remote.RemoteVerdictStore` whose
    lookups read through to the shared HTTP store and whose writes
    spool back to it; otherwise a plain local :class:`VerdictStore`.
    This is the one switch point the runner and serve daemon use, so
    every caller gains the remote tier from the environment alone.
    """
    from .remote import RemoteVerdictStore, remote_store_url

    url = remote_url if remote_url is not None else remote_store_url()
    if url:
        return RemoteVerdictStore(path, url)
    return VerdictStore(path)


# ---------------------------------------------------------------------------
# CLI


def main(argv=None) -> int:
    """Entry point for ``python -m repro.core.store``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.core.store",
        description="Inspect and share a content-addressed verdict store.",
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE_DIR,
        help=f"store directory (default: $REPRO_CACHE_DIR or {DEFAULT_STORE_DIR})",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)
    sub.add_parser("stats", help="entry counts, bytes, verdict breakdown")
    sub.add_parser("index", help="rebuild index.json")
    gc_p = sub.add_parser("gc", help="collect old/overflow entries")
    gc_p.add_argument("--max-age-h", type=float, default=None, help="drop entries older than H hours")
    gc_p.add_argument("--keep", type=int, default=None, help="keep only the N newest entries")
    exp = sub.add_parser("export", help="write all entries to a .tar.gz archive")
    exp.add_argument("archive")
    imp = sub.add_parser("import", help="merge entries from an exported archive")
    imp.add_argument("archive")
    imp.add_argument(
        "--wait",
        action="store_true",
        help="block until a concurrent import releases the store lock "
        "(default: refuse with exit code 3)",
    )
    srv = sub.add_parser("serve", help="expose the store over HTTP")
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=0, help="0 picks a free port")
    srv.add_argument("--verbose", action="store_true", help="log every request")
    flush = sub.add_parser(
        "flush", help="synchronously push the remote write-back spool"
    )
    flush.add_argument(
        "--remote",
        default=None,
        help="store server URL (default: $REPRO_REMOTE_STORE)",
    )
    args = parser.parse_args(argv)

    store = VerdictStore(args.store)
    if args.cmd == "stats":
        print(json.dumps(store.summary(), indent=2))
    elif args.cmd == "index":
        index = store.write_index()
        print(f"indexed {index['entries']} entries -> {store.index_path}")
    elif args.cmd == "gc":
        if args.max_age_h is None and args.keep is None:
            print("gc: nothing to do (pass --max-age-h and/or --keep)")
            return 2
        max_age_s = args.max_age_h * 3600.0 if args.max_age_h is not None else None
        removed = store.gc(max_age_s=max_age_s, keep=args.keep)
        print(f"collected {removed} entries; {store.summary()['entries']} remain")
        _report_spool(store, "gc")
    elif args.cmd == "export":
        try:
            count = store.export_archive(args.archive)
        except OSError as exc:
            print(f"export: cannot write {args.archive}: {exc}", file=sys.stderr)
            return 1
        print(f"exported {count} entries -> {args.archive}")
        _report_spool(store, "export")
    elif args.cmd == "import":
        try:
            count = store.import_archive(args.archive, wait=args.wait)
        except StoreLockedError as exc:
            print(f"import: {exc}", file=sys.stderr)
            return 3
        except (OSError, tarfile.TarError) as exc:
            print(f"import: cannot read {args.archive}: {exc}", file=sys.stderr)
            return 1
        print(f"imported {count} new entries into {store.path}")
        _report_spool(store, "import")
    elif args.cmd == "serve":
        from .remote import StoreServer

        server = StoreServer(
            args.store, host=args.host, port=args.port, verbose=args.verbose, collect=True
        )
        print(f"store serving on {server.url}", flush=True)
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.close()
    elif args.cmd == "flush":
        from .remote import RemoteVerdictStore, remote_store_url

        url = args.remote if args.remote is not None else remote_store_url()
        if not url:
            print(
                "flush: no remote configured (pass --remote or set "
                "REPRO_REMOTE_STORE)",
                file=sys.stderr,
            )
            return 2
        remote_store = RemoteVerdictStore(args.store, url, async_flush=False)
        outcome = remote_store.flush_spool()
        print(
            f"flushed {outcome['flushed']} spooled entries to {url}; "
            f"{outcome['pending']} pending, {outcome['errors']} errors"
        )
        if outcome["pending"]:
            return 1
    return 0


def _report_spool(store: VerdictStore, verb: str) -> None:
    """Surface any write-back backlog after a store-mutating walk, so an
    interrupted remote flush is visible instead of silently skipped."""
    pending = store.spool_pending()
    if pending:
        print(
            f"{verb}: {len(pending)} entries still spooled for remote "
            f"write-back (run `python -m repro.core.store flush` to push them)"
        )


if __name__ == "__main__":
    raise SystemExit(main())
