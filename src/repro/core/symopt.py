"""Symbolic optimizations (§4).

Symbolic optimizations run *during* symbolic evaluation, using domain
knowledge and symbolic reflection to rewrite values into forms that
evaluate fast and produce solver-friendly constraints.  The paper's
catalog, and where each item lives here:

  * symbolic program counters -> ``split_pc``: implemented by the
    engine worklist (``repro.core.engine``); toggled via
    ``EngineOptions.split_pc``.
  * symbolic memory addresses -> offset concretization: implemented in
    the memory model (``repro.core.memory``); toggled via
    ``MemoryOptions.concretize_offsets``.
  * symbolic system registers -> representation-invariant rewriting:
    ``rewrite_with_invariant`` below.
  * monolithic dispatching -> ``split_cases`` below.

``SymOptConfig`` bundles the toggles so the monitors' verification
harnesses (and the E5 ablation bench) can switch them together.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sym import SymBV, SymBool, bug_on, bv_val, ite, merge, note_split

__all__ = ["SymOptConfig", "split_cases", "split_cases_value", "rewrite_with_invariant", "concretize"]


@dataclass
class SymOptConfig:
    """Which symbolic optimizations are enabled (all on by default)."""

    split_pc: bool = True
    split_cases: bool = True
    concretize_offsets: bool = True
    concrete_sysregs: bool = True
    # The §6.4 "one new optimization" that brought -O1/-O2 close to
    # -O0: realized here as the term-layer normalization rules (ite
    # absorption, self-subsuming resolution, De Morgan
    # canonicalization — see DESIGN.md and repro.smt.terms), which
    # collapse the guard shapes optimized code produces.  The flag is
    # advisory; the rules are sound identities and always active.
    flatten_conditionals: bool = True

    @classmethod
    def none(cls) -> "SymOptConfig":
        return cls(False, False, False, False, False)


def split_cases_value(x: SymBV, values: list[int]) -> SymBV:
    """Rewrite ``x`` into ``ite(x==C0, C0, ite(x==C1, C1, ... x))``.

    The rewrite is an identity (the last branch keeps ``x``), so it is
    sound for any value; its effect is to expose concrete values to
    downstream partial evaluation.  Applied to a trap-cause register,
    it decomposes a monolithic dispatch constraint into one manageable
    constraint per handler (§4, "Monolithic dispatching").
    """
    out = x
    for c in reversed(values):
        out = ite(x == c, bv_val(c, x.width), out)
    return out


def split_cases(x: SymBV, values: list[int], fn, default=None):
    """Evaluate ``fn`` once per concrete case of ``x`` and merge.

    ``fn(case_value)`` is called with a concrete SymBV for each listed
    value, and with the original symbolic ``x`` for the residual case
    (or ``default(x)`` when given).  Results merge into a single
    guarded value; states should be copied inside ``fn``.
    """
    note_split(len(values))
    residual = default(x) if default is not None else fn(x)
    out = residual
    for c in reversed(values):
        out = merge(x == c, fn(bv_val(c, x.width)), out)
    return out


def concretize(x: SymBV, candidates: list[int], message: str = "value outside candidate set") -> SymBV:
    """Force ``x`` into a candidate set, emitting a completeness VC.

    Unlike ``split_cases_value`` this has no residual branch: a VC
    requires ``x`` to equal one of the candidates.  Used when domain
    knowledge says the set is exhaustive (e.g. system-call numbers
    after range validation)."""
    covered = None
    for c in candidates:
        g = x == c
        covered = g if covered is None else (covered | g)
    bug_on(~covered, message)
    out = bv_val(candidates[-1], x.width)
    for c in candidates[:-1]:
        out = ite(x == c, bv_val(c, x.width), out)
    return out


def rewrite_with_invariant(reg: SymBV, invariant_value: int, ri_holds: SymBool | None = None) -> SymBV:
    """Rewrite a symbolic system register to its invariant value (§4).

    Many system registers are written once during boot and never
    change (e.g. the trap-vector base).  The representation invariant
    pins them; under RI the rewrite is sound.  When ``ri_holds`` is
    provided the result is guarded so that the rewrite degrades
    gracefully outside RI; refinement proofs assume RI anyway.
    """
    concrete = bv_val(invariant_value, reg.width)
    if ri_holds is None:
        return concrete
    return ite(ri_holds, concrete, reg)
