"""Keystone case study (§7): spec, safety properties, and UB bugs."""

from .impl import build_module
from .safety import prove_enclave_independence, prove_pmp_sufficient
from .spec import (
    HOST,
    KeystoneState,
    NENC,
    spec_create,
    spec_destroy,
    spec_exit,
    spec_run,
    spec_stop,
    state_invariant,
)
from .verify import KEYSTONE_BUG_IDS, UbFinding, scan_for_ub

__all__ = [name for name in dir() if not name.startswith("_")]
