"""A Keystone-monitor implementation at the LLVM level, with the two
undefined-behaviour bugs the paper found (§7).

"We also ran the Serval LLVM verifier on the Keystone implementation
and found two undefined-behavior bugs, oversized shifting and buffer
overflow, both on the paths of three monitor calls."

``build_module(bugs={...})`` builds the IR; the buggy variants:

  * ``oversized-shift`` -- the PMP NAPOT mask helper computes
    ``(1 << log2size) - 1`` with an untrusted log2size that can reach
    the operand width (UB in C/LLVM).  The helper sits on the paths of
    create/run/stop, so all three calls are affected.
  * ``buffer-overflow`` -- the enclave-table index is dereferenced
    before it is bounds-checked (again shared by the three calls).

The fixed variant clamps the shift and checks the index first; the
LLVM verifier proves it UB-free.
"""

from __future__ import annotations

from ..llvm.ir import (
    Bin,
    Block,
    Br,
    CondBr,
    Const,
    Function,
    Gep,
    GlobalRef,
    Icmp,
    Load,
    Local,
    Module,
    Param,
    Ret,
    Store,
)
from .spec import NENC

__all__ = ["build_module", "ENCLAVES_ADDR", "DATA_SYMBOLS"]

W = 32
ENCLAVES_ADDR = 0x0002_0000
ENC_STRIDE = 12  # {status, region, measure}

DATA_SYMBOLS = [
    (
        "enclaves",
        ENCLAVES_ADDR,
        NENC * ENC_STRIDE,
        (
            "array",
            NENC,
            (
                "struct",
                [("status", ("cell", 4)), ("region", ("cell", 4)), ("measure", ("cell", 4))],
            ),
        ),
    ),
]


def _napot_mask_blocks(bugs: set[str], next_label: str) -> list[Block]:
    """Compute ``mask = (1 << log2size) - 1`` from Param(1).

    The buggy version shifts by the untrusted value directly; the
    fixed version clamps it to 30 first.
    """
    if "oversized-shift" in bugs:
        compute = Block(
            "mask",
            [
                # BUG: log2size comes straight from the caller; a value
                # >= 32 makes the shift UB.
                Bin("one_shift", "shl", Const(1, W), Param(1)),
                Bin("mask", "sub", Local("one_shift"), Const(1, W)),
            ],
            Br(next_label),
        )
        return [compute]
    clamp = Block(
        "mask",
        [Icmp("log_ok", "ult", Param(1), Const(31, W))],
        CondBr(Local("log_ok"), "mask_do", "fail"),
    )
    compute = Block(
        "mask_do",
        [
            Bin("one_shift", "shl", Const(1, W), Param(1)),
            Bin("mask", "sub", Local("one_shift"), Const(1, W)),
        ],
        Br(next_label),
    )
    return [clamp, compute]


def _monitor_call(name: str, new_status: int, bugs: set[str]) -> Function:
    """One of create/run/stop: compute the PMP mask for the enclave's
    region, then update the enclave's slot.

    Params: (eid, log2size, payload).
    """
    blocks: list[Block] = []

    if "buffer-overflow" in bugs:
        # BUG: dereference enclaves[eid] before checking eid < NENC.
        entry = Block(
            "entry",
            [
                Gep("slot", GlobalRef("enclaves"), Param(0), ENC_STRIDE),
                Load("old_status", Local("slot"), 4),
                Icmp("eid_ok", "ult", Param(0), Const(NENC, W)),
            ],
            CondBr(Local("eid_ok"), "mask", "fail"),
        )
    else:
        entry = Block(
            "entry",
            [Icmp("eid_ok", "ult", Param(0), Const(NENC, W))],
            CondBr(Local("eid_ok"), "mask", "fail"),
        )
    blocks.append(entry)
    blocks += _napot_mask_blocks(bugs, "update")

    update = Block(
        "update",
        [
            Gep("slot2", GlobalRef("enclaves"), Param(0), ENC_STRIDE),
            Store(Local("slot2"), Const(new_status, W)),
            Gep("region_p", GlobalRef("enclaves"), Param(0), ENC_STRIDE, offset=4),
            Store(Local("region_p"), Local("mask")),
            Gep("measure_p", GlobalRef("enclaves"), Param(0), ENC_STRIDE, offset=8),
            Store(Local("measure_p"), Param(2)),
        ],
        Ret(Const(0, W)),
    )
    fail = Block("fail", [], Ret(Const(0xFFFFFFFF, W)))
    blocks += [update, fail]
    return Function(name, 3, {b.label: b for b in blocks}, entry="entry")


def build_module(bugs: set[str] | frozenset[str] = frozenset()) -> Module:
    bugs = set(bugs)
    return Module(
        functions={
            "sbi_create_enclave": _monitor_call("sbi_create_enclave", 1, bugs),
            "sbi_run_enclave": _monitor_call("sbi_run_enclave", 2, bugs),
            "sbi_stop_enclave": _monitor_call("sbi_stop_enclave", 3, bugs),
        },
        data=list(DATA_SYMBOLS),
    )
