"""Keystone safety properties and the two interface findings (§7).

1. "Keystone allowed an enclave to create more enclaves within itself
   [which] violates the safety property that an enclave's state
   should not be influenced by other enclaves, which we proved over
   our specification" — :func:`prove_enclave_independence` proves the
   property for the fixed spec and produces a counterexample for the
   nested-create variant.

2. "Keystone required the OS to create a page table for each enclave
   and performed checks that the page table was well-formed; our
   specification does not have this check, as PMP alone is sufficient
   to guarantee isolation" — :func:`prove_pmp_sufficient` shows that
   disjoint per-enclave PMP regions isolate enclaves with *no*
   hypothesis about page tables: any translated address, whatever the
   page tables contain, is subject to the PMP check.
"""

from __future__ import annotations

from ..riscv.pmp import PMP_A_NAPOT, PMP_A_SHIFT, PMP_R, PMP_W, PMP_X, napot_region, pmp_check
from ..sym import ProofResult, bv_val, fresh_bv, new_context, sym_true, verify_vcs
from .spec import HOST, KeystoneState, NENC, spec_create, state_invariant

__all__ = ["prove_enclave_independence", "prove_pmp_sufficient"]


def prove_enclave_independence(allow_nested_create: bool = False) -> ProofResult:
    """An action by domain d leaves every other enclave's slot
    unchanged (the per-enclave state is only host-managed).

    For ``create`` specifically: if the caller is an enclave (cur !=
    HOST), no enclave slot may change.  The fixed spec proves this;
    the nested-create variant yields a counterexample in which enclave
    ``cur`` rewrites a free slot — the flaw reported to Keystone.
    """
    with new_context() as ctx:
        s = KeystoneState.fresh("ki.s")
        eid = fresh_bv("ki.eid", 32)
        region = fresh_bv("ki.region", 32)
        payload = fresh_bv("ki.payload", 32)
        t = spec_create(s, eid, region, payload, allow_nested_create=allow_nested_create)
        caller_is_enclave = s.cur != HOST
        unchanged = sym_true()
        for i in range(NENC):
            unchanged = (
                unchanged
                & (t.status[i] == s.status[i])
                & (t.region[i] == s.region[i])
                & (t.measure[i] == s.measure[i])
            )
        ctx.assert_prop(
            (state_invariant(s) & caller_is_enclave).implies(unchanged),
            "enclave cannot influence other enclaves' state via create",
        )
        return verify_vcs(ctx)


def prove_pmp_sufficient(xlen: int = 64) -> ProofResult:
    """PMP alone isolates enclaves: with per-enclave NAPOT regions and
    a deny-by-default configuration, an access that the PMP allows for
    the running enclave can never land in another enclave's region —
    for *any* virtual-to-physical translation the page tables may
    produce.  Hence the monitor need not validate page tables."""
    # Three disjoint 4 KiB enclave regions.
    bases = [0x10000, 0x20000, 0x30000]
    size = 0x1000
    with new_context() as ctx:
        csrs = {name: bv_val(0, xlen) for name in ["pmpcfg0"] + [f"pmpaddr{i}" for i in range(8)]}
        cfg = 0
        for i, base in enumerate(bases):
            cfg |= ((PMP_R | PMP_W | PMP_X) | (PMP_A_NAPOT << PMP_A_SHIFT)) << (8 * i)
            csrs[f"pmpaddr{i}"] = bv_val(napot_region(base, size), xlen)
        csrs["pmpcfg0"] = bv_val(cfg, xlen)

        # The monitor masks off other enclaves' regions while enclave 0
        # runs: regions 1, 2 get their permissions cleared.
        run0 = dict(csrs)
        cfg_run0 = (
            ((PMP_R | PMP_W | PMP_X) | (PMP_A_NAPOT << PMP_A_SHIFT))
            | ((PMP_A_NAPOT << PMP_A_SHIFT) << 8)
            | ((PMP_A_NAPOT << PMP_A_SHIFT) << 16)
        )
        run0["pmpcfg0"] = bv_val(cfg_run0, xlen)

        # paddr is *whatever the page walk produced* — fully symbolic,
        # i.e. no page-table well-formedness is assumed.
        paddr = fresh_bv("ki.paddr", xlen)
        for access in ("r", "w", "x"):
            allowed = pmp_check(run0, paddr, access)
            for other_base in bases[1:]:
                inside_other = (paddr >= other_base) & (paddr < other_base + size)
                ctx.assert_prop(
                    ~(allowed & inside_other),
                    f"pmp {access}-access cannot reach another enclave's region",
                )
        return verify_vcs(ctx)
