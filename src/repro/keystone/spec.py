"""A functional specification for the Keystone security monitor (§7).

"Since Keystone was in active development and did not have a formal
specification, we wrote a functional specification based on our
understanding of its design."  Keystone isolates enclaves with a
dedicated PMP region per enclave (rather than paging, as in Komodo).

The spec models a host domain plus NENC enclaves; monitor calls:

  create(eid, region)  -- host creates an enclave over a free slot
  run(eid)             -- host enters a created enclave
  stop(eid)            -- host stops a running enclave
  destroy(eid)         -- host reclaims a stopped enclave
  exit()               -- the running enclave returns to the host

``allow_nested_create=True`` reproduces the interface flaw the paper
reported: Keystone "allowed an enclave to create more enclaves within
itself", which violates the proved safety property that an enclave's
state is not influenced by other enclaves.  Keystone adopted the fix
(creation from enclave context is now rejected).
"""

from __future__ import annotations

from ..core import spec_struct
from ..sym import SymBV, SymBool, bv_val, ite, sym_true

__all__ = [
    "KeystoneState",
    "NENC",
    "HOST",
    "ENC_FREE",
    "ENC_CREATED",
    "ENC_RUNNING",
    "ENC_STOPPED",
    "spec_create",
    "spec_run",
    "spec_stop",
    "spec_destroy",
    "spec_exit",
    "state_invariant",
]

W = 32
NENC = 3
HOST = NENC  # the host "domain id" (callers: 0..NENC-1 enclaves, NENC host)

ENC_FREE = 0
ENC_CREATED = 1
ENC_RUNNING = 2
ENC_STOPPED = 3

# status[i], region[i] (an opaque PMP region handle), measure[i] (a
# stand-in for the enclave's measured contents), cur (running enclave
# id, or HOST).
KeystoneState = spec_struct(
    "keystone",
    cur=W,
    status=(W, NENC),
    region=(W, NENC),
    measure=(W, NENC),
)


def _select(vec, idx, count):
    out = vec[count - 1]
    for i in range(count - 2, -1, -1):
        out = ite(idx == i, vec[i], out)
    return out


def _update(vec, idx, value, count, guard):
    return [ite((idx == i) & guard, value, vec[i]) for i in range(count)]


def state_invariant(s) -> SymBool:
    inv = (s.cur <= HOST)
    for i in range(NENC):
        inv = inv & (s.status[i] <= ENC_STOPPED)
        # only the current enclave can be RUNNING
        inv = inv & ((s.status[i] != ENC_RUNNING) | (s.cur == i))
    return inv


def spec_create(s, eid: SymBV, region: SymBV, payload: SymBV, allow_nested_create: bool = False):
    """Host creates enclave ``eid`` over PMP region ``region``.

    With ``allow_nested_create`` the caller check is skipped — the
    Keystone flaw: a running enclave may then rewrite another
    enclave's slot.
    """
    out = s.copy()
    caller_ok = sym_true() if allow_nested_create else (s.cur == HOST)
    ok = caller_ok & (eid < NENC) & (_select(s.status, eid, NENC) == ENC_FREE)
    out.status = _update(s.status, eid, bv_val(ENC_CREATED, W), NENC, ok)
    out.region = _update(s.region, eid, region, NENC, ok)
    out.measure = _update(s.measure, eid, payload, NENC, ok)
    return out


def spec_run(s, eid: SymBV):
    out = s.copy()
    ok = (s.cur == HOST) & (eid < NENC) & (_select(s.status, eid, NENC) == ENC_CREATED)
    out.status = _update(s.status, eid, bv_val(ENC_RUNNING, W), NENC, ok)
    out.cur = ite(ok, eid, s.cur)
    return out


def spec_stop(s, eid: SymBV):
    out = s.copy()
    ok = (s.cur == HOST) & (eid < NENC) & (_select(s.status, eid, NENC) == ENC_STOPPED)
    # stop applies to an enclave that has exited (STOPPED after exit);
    # model: host may also forcibly stop a CREATED enclave.
    ok = (s.cur == HOST) & (eid < NENC) & (
        (_select(s.status, eid, NENC) == ENC_CREATED)
        | (_select(s.status, eid, NENC) == ENC_STOPPED)
    )
    out.status = _update(s.status, eid, bv_val(ENC_STOPPED, W), NENC, ok)
    return out


def spec_destroy(s, eid: SymBV):
    """Reclaim a stopped enclave; its measured contents are erased
    (the litmus test of §6.3: memory of a finalized enclave must not
    be observable afterwards)."""
    out = s.copy()
    ok = (s.cur == HOST) & (eid < NENC) & (_select(s.status, eid, NENC) == ENC_STOPPED)
    out.status = _update(s.status, eid, bv_val(ENC_FREE, W), NENC, ok)
    out.measure = _update(s.measure, eid, bv_val(0, W), NENC, ok)
    out.region = _update(s.region, eid, bv_val(0, W), NENC, ok)
    return out


def spec_exit(s):
    """The running enclave exits back to the host."""
    out = s.copy()
    running = s.cur < NENC
    out.status = _update(s.status, s.cur, bv_val(ENC_STOPPED, W), NENC, running)
    out.cur = ite(running, bv_val(HOST, W), s.cur)
    return out
