"""Keystone verification driver: UB scanning + interface analysis (§7)."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.image import Image, Symbol, build_memory
from ..llvm.interp import run_function
from ..sym import new_context
from .impl import DATA_SYMBOLS, build_module

__all__ = ["UbFinding", "scan_for_ub", "KEYSTONE_BUG_IDS"]

KEYSTONE_BUG_IDS = ["oversized-shift", "buffer-overflow"]


@dataclass
class UbFinding:
    function: str
    message: str
    counterexample: object

    def __repr__(self) -> str:
        return f"UbFinding({self.function}: {self.message})"


def _memory():
    image = Image(
        base=0,
        word_size=4,
        words={},
        symbols=[Symbol(name, addr, size, "object", shape) for name, addr, size, shape in DATA_SYMBOLS],
    )
    return build_memory(image, addr_width=32)


def scan_for_ub(
    bugs: set[str] | frozenset[str] = frozenset(),
    jobs: int = 1,
    cache_dir: str | None = None,
    trace: bool | str = False,
) -> list[UbFinding]:
    """Run the LLVM verifier's UB checks over every monitor call.

    Returns findings (empty for the fixed monitor) — the workflow that
    surfaced the two Keystone bugs, "both on the paths of three
    monitor calls".  Every UB verification condition across every
    monitor call is an independent proof obligation, so the scan takes
    the standard ``jobs``/``cache_dir`` knobs and feeds the shared
    work-stealing scheduler (``repro.core.scheduler``) like the other
    verifier frontends.  One finding is reported per (function,
    message) pair, the first failing instance winning — identical to
    the sequential scan.
    """
    from ..obs import maybe_tracing
    from ..sym import SymBool
    from ..sym.profiler import region
    from ..sym.solverapi import check_batch

    with maybe_tracing(trace):
        module = build_module(bugs)
        work: list[tuple[str, object]] = []
        for name, func in module.functions.items():
            with new_context() as ctx, region(f"keystone.{name}"):
                run_function(func, mem=_memory())
                vcs = list(ctx.vcs)
            for vc in vcs:
                work.append((name, vc))
        results = check_batch(
            [(f"{name}: {vc.message}", SymBool(vc.formula), []) for name, vc in work],
            jobs=jobs,
            cache_dir=cache_dir,
        )
    findings: list[UbFinding] = []
    reported: set[tuple[str, str]] = set()
    for (name, vc), result in zip(work, results):
        if result.proved or (name, vc.message) in reported:
            continue
        reported.add((name, vc.message))
        findings.append(UbFinding(name, vc.message, result.counterexample))
    return findings
