"""Keystone verification driver: UB scanning + interface analysis (§7)."""

from __future__ import annotations

from dataclasses import dataclass

from ..core.image import Image, Symbol, build_memory
from ..llvm.interp import run_function
from ..sym import new_context
from .impl import DATA_SYMBOLS, build_module

__all__ = ["UbFinding", "scan_for_ub", "KEYSTONE_BUG_IDS"]

KEYSTONE_BUG_IDS = ["oversized-shift", "buffer-overflow"]


@dataclass
class UbFinding:
    function: str
    message: str
    counterexample: object

    def __repr__(self) -> str:
        return f"UbFinding({self.function}: {self.message})"


def _memory():
    image = Image(
        base=0,
        word_size=4,
        words={},
        symbols=[Symbol(name, addr, size, "object", shape) for name, addr, size, shape in DATA_SYMBOLS],
    )
    return build_memory(image, addr_width=32)


def scan_for_ub(bugs: set[str] | frozenset[str] = frozenset()) -> list[UbFinding]:
    """Run the LLVM verifier's UB checks over every monitor call.

    Returns findings (empty for the fixed monitor) — the workflow that
    surfaced the two Keystone bugs, "both on the paths of three
    monitor calls".
    """
    from ..sym.solverapi import prove

    module = build_module(bugs)
    findings: list[UbFinding] = []
    for name, func in module.functions.items():
        with new_context() as ctx:
            run_function(func, mem=_memory())
            vcs = list(ctx.vcs)
        seen_messages = set()
        for vc in vcs:
            if vc.message in seen_messages:
                continue
            from ..sym import SymBool

            result = prove(SymBool(vc.formula))
            if not result.proved:
                seen_messages.add(vc.message)
                findings.append(UbFinding(name, vc.message, result.counterexample))
    return findings
