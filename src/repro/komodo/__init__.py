"""Komodo^s: the Komodo enclave monitor retrofitted to automated
verification on RISC-V (§6.3)."""

from .impl import CALL_NAMES, build_image
from .invariants import abstract, rep_invariant
from .layout import HOST, NENC, NPAGES
from .ni import (
    enclave_equiv,
    exit_declassifies,
    prove_host_cannot_read_enclave,
    prove_removed_enclave_unobservable,
)
from .spec import KomodoState, SPEC_CALLS, state_invariant
from .verify import KomodoVerifier, prove_boot, verify_all

__all__ = [name for name in dir() if not name.startswith("_")]
