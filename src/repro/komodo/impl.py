"""Komodo^s implementation: trap entry/exit in assembly, handlers in
mini-C (§6.3).

Same execution model as CertiKOS^s (Figure 6): save the caller's
registers into ``pcb[cur]``, dispatch on a7, write non-switching
calls' return values into the caller's saved a0, restore the (possibly
new) current context, zero the remaining registers, ``mret``.

Context-switching calls (Enter/Resume/Exit) manage saved-register
banks themselves: on success the target context's bank is restored
untouched; failures write -1 into the *caller's* bank.
"""

from __future__ import annotations

from ..cc import (
    Arg,
    Assign,
    BinOp,
    Cmp,
    Const,
    Func,
    GlobalAddr,
    If,
    Load,
    Program,
    Return,
    Store,
    Var,
    compile_program,
)
from ..core.image import Image
from ..riscv import Assembler
from .layout import (
    DATA_SYMBOLS,
    ENC_FINAL,
    ENC_INIT,
    ENC_INVALID,
    ENC_STOPPED,
    HOST,
    NENC,
    NPAGES,
    PCB_STRIDE,
    PG_ADDRSPACE,
    PG_DATA,
    PG_FREE,
    PG_L2PT,
    PG_L3PT,
    PG_THREAD,
    SAVED_REGS,
    STACK_TOP,
    TEXT_BASE,
    WORD,
    XLEN,
)

__all__ = ["build_image", "boot_address", "CALL_NAMES"]

CALL_NAMES = [
    "init_addrspace",
    "init_thread",
    "init_l2ptable",
    "init_l3ptable",
    "map_secure",
    "map_insecure",
    "finalize",
    "enter",
    "resume",
    "stop",
    "remove",
    "exit",
]

# Handlers that switch context and manage return values themselves.
SWITCHING = {"enter", "resume", "exit"}


def _enc_state(eid_expr):
    return BinOp("+", GlobalAddr("enclaves"), BinOp("*", eid_expr, Const(4)))


def _pg_field(page_expr, off: int):
    return BinOp("+", BinOp("+", GlobalAddr("pagedb"), BinOp("*", page_expr, Const(12))), Const(off))


def _pcb_a0(ctx_expr):
    # a0 is saved-register slot 2 (ra, sp, a0, a1).
    return BinOp("+", BinOp("+", GlobalAddr("pcb"), BinOp("*", ctx_expr, Const(PCB_STRIDE))), Const(8))


def _alloc_handler(name: str, pg_type: int, required_state: int, store_payload: bool) -> Func:
    """init_thread/init_l2ptable/init_l3ptable/map_secure shape:
    (eid, page[, payload]) -> 0 / -1."""
    body = (
        Assign(
            "ok",
            BinOp(
                "&",
                Cmp("==", Load(GlobalAddr("cur")), Const(HOST)),
                BinOp("&", Cmp("<u", Arg(0), Const(NENC)), Cmp("<u", Arg(1), Const(NPAGES))),
            ),
        ),
        If(
            Cmp("!=", Var("ok"), Const(0)),
            (
                If(
                    Cmp("==", Load(_enc_state(Arg(0))), Const(required_state)),
                    (
                        If(
                            Cmp("==", Load(_pg_field(Arg(1), 0)), Const(PG_FREE)),
                            (
                                Store(_pg_field(Arg(1), 0), Const(pg_type)),
                                Store(_pg_field(Arg(1), 4), Arg(0)),
                            )
                            + ((Store(_pg_field(Arg(1), 8), Arg(2)),) if store_payload else ())
                            + (Return(Const(0)),),
                        ),
                    ),
                ),
            ),
        ),
        Return(Const(-1)),
    )
    return Func(name, 3, body, locals=("ok",))


def _handlers() -> Program:
    funcs = []

    # init_addrspace additionally flips the enclave to INIT.
    funcs.append(
        Func(
            "c_init_addrspace",
            2,
            (
                Assign(
                    "ok",
                    BinOp(
                        "&",
                        Cmp("==", Load(GlobalAddr("cur")), Const(HOST)),
                        BinOp("&", Cmp("<u", Arg(0), Const(NENC)), Cmp("<u", Arg(1), Const(NPAGES))),
                    ),
                ),
                If(
                    Cmp("!=", Var("ok"), Const(0)),
                    (
                        If(
                            Cmp("==", Load(_enc_state(Arg(0))), Const(ENC_INVALID)),
                            (
                                If(
                                    Cmp("==", Load(_pg_field(Arg(1), 0)), Const(PG_FREE)),
                                    (
                                        Store(_pg_field(Arg(1), 0), Const(PG_ADDRSPACE)),
                                        Store(_pg_field(Arg(1), 4), Arg(0)),
                                        Store(_enc_state(Arg(0)), Const(ENC_INIT)),
                                        Return(Const(0)),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
                Return(Const(-1)),
            ),
            locals=("ok",),
        )
    )
    funcs.append(_alloc_handler("c_init_thread", PG_THREAD, ENC_INIT, False))
    funcs.append(_alloc_handler("c_init_l2ptable", PG_L2PT, ENC_INIT, False))
    funcs.append(_alloc_handler("c_init_l3ptable", PG_L3PT, ENC_INIT, False))
    funcs.append(_alloc_handler("c_map_secure", PG_DATA, ENC_INIT, True))

    funcs.append(
        Func(
            "c_map_insecure",
            2,
            (
                If(
                    BinOp(
                        "&",
                        Cmp("==", Load(GlobalAddr("cur")), Const(HOST)),
                        Cmp("<u", Arg(0), Const(NENC)),
                    ),
                    (
                        If(
                            Cmp("==", Load(_enc_state(Arg(0))), Const(ENC_INIT)),
                            (Return(Const(0)),),
                        ),
                    ),
                ),
                Return(Const(-1)),
            ),
            locals=(),
        )
    )

    def _state_transition(name, from_states, to_state):
        cond = Cmp("==", Load(_enc_state(Arg(0))), Const(from_states[0]))
        for st in from_states[1:]:
            cond = BinOp("|", cond, Cmp("==", Load(_enc_state(Arg(0))), Const(st)))
        return Func(
            name,
            1,
            (
                If(
                    BinOp(
                        "&",
                        Cmp("==", Load(GlobalAddr("cur")), Const(HOST)),
                        Cmp("<u", Arg(0), Const(NENC)),
                    ),
                    (
                        If(
                            Cmp("!=", cond, Const(0)),
                            (Store(_enc_state(Arg(0)), Const(to_state)), Return(Const(0))),
                        ),
                    ),
                ),
                Return(Const(-1)),
            ),
            locals=(),
        )

    funcs.append(_state_transition("c_finalize", [ENC_INIT], ENC_FINAL))
    funcs.append(_state_transition("c_stop", [ENC_INIT, ENC_FINAL], ENC_STOPPED))

    # remove: free all pages owned by a STOPPED enclave (bounded loop,
    # unrolled here as straight-line per-page checks).
    remove_body = [
        Assign(
            "ok",
            BinOp(
                "&",
                Cmp("==", Load(GlobalAddr("cur")), Const(HOST)),
                Cmp("<u", Arg(0), Const(NENC)),
            ),
        ),
    ]
    page_frees = []
    for p in range(NPAGES):
        page_frees.append(
            If(
                BinOp(
                    "&",
                    Cmp("==", Load(_pg_field(Const(p), 4)), Arg(0)),
                    Cmp("!=", Load(_pg_field(Const(p), 0)), Const(PG_FREE)),
                ),
                (
                    Store(_pg_field(Const(p), 0), Const(PG_FREE)),
                    Store(_pg_field(Const(p), 4), Const(0)),
                    Store(_pg_field(Const(p), 8), Const(0)),
                ),
            )
        )
    remove_body.append(
        If(
            Cmp("!=", Var("ok"), Const(0)),
            (
                If(
                    Cmp("==", Load(_enc_state(Arg(0))), Const(ENC_STOPPED)),
                    tuple(page_frees)
                    + (Store(_enc_state(Arg(0)), Const(ENC_INVALID)), Return(Const(0))),
                ),
            ),
        )
    )
    remove_body.append(Return(Const(-1)))
    funcs.append(Func("c_remove", 1, tuple(remove_body), locals=("ok",)))

    # enter/resume: host -> enclave on FINAL; failure writes the
    # caller's saved a0.
    for name in ("c_enter", "c_resume"):
        funcs.append(
            Func(
                name,
                1,
                (
                    If(
                        BinOp(
                            "&",
                            Cmp("==", Load(GlobalAddr("cur")), Const(HOST)),
                            Cmp("<u", Arg(0), Const(NENC)),
                        ),
                        (
                            If(
                                Cmp("==", Load(_enc_state(Arg(0))), Const(ENC_FINAL)),
                                (Store(GlobalAddr("cur"), Arg(0)), Return(Const(0))),
                            ),
                        ),
                    ),
                    Store(_pcb_a0(Load(GlobalAddr("cur"))), Const(-1)),
                    Return(Const(0)),
                ),
                locals=(),
            )
        )

    # exit: running enclave -> host; its saved a0 is the (declassified)
    # exit value, delivered to the host's saved a0.
    funcs.append(
        Func(
            "c_exit",
            0,
            (
                Assign("me", Load(GlobalAddr("cur"))),
                If(
                    Cmp("<u", Var("me"), Const(NENC)),
                    (
                        Store(_pcb_a0(Const(HOST)), Load(_pcb_a0(Var("me")))),
                        Store(GlobalAddr("cur"), Const(HOST)),
                    ),
                ),
                Return(Const(0)),
            ),
            locals=("me",),
        )
    )

    return Program(funcs=funcs, data=list(DATA_SYMBOLS))


_SAVED_NUMS = {num for _, num in SAVED_REGS}
CLEARED_REGS = [i for i in range(1, 32) if i not in _SAVED_NUMS]


def _emit_pcb_addr(asm: Assembler, dest: str, scratch: str) -> None:
    asm.la(dest, "cur")
    asm.lw(scratch, 0, dest)
    asm.slli(scratch, scratch, PCB_STRIDE.bit_length() - 1)
    asm.la(dest, "pcb")
    asm.add(dest, dest, scratch)


_BOOT_ADDR_CACHE: dict[int, int] = {}


def boot_address(opt: int = 1) -> int:
    """Address of the boot entry point in the built image."""
    if opt not in _BOOT_ADDR_CACHE:
        _BOOT_ADDR_CACHE[opt] = _build_asm(opt).addr_of("boot")
    return _BOOT_ADDR_CACHE[opt]


def build_image(opt: int = 1) -> Image:
    return _build_asm(opt).assemble()


def _build_asm(opt: int) -> Assembler:
    asm = Assembler(base=TEXT_BASE, xlen=XLEN)
    for name, addr, size, shape in DATA_SYMBOLS:
        asm.data_symbol(name, addr, size, shape)

    asm.label("entry")
    _emit_pcb_addr(asm, "t0", "t1")
    for j, (_, num) in enumerate(SAVED_REGS):
        asm.sw(num, WORD * j, "t0")
    asm.li("sp", STACK_TOP)
    for call_no, name in enumerate(CALL_NAMES):
        asm.li("t1", call_no)
        asm.beq("a7", "t1", f"do_{name}")
    asm.li("a0", -1)
    asm.j("save_ret")

    for name in CALL_NAMES:
        asm.label(f"do_{name}")
        if name in ("enter", "resume"):
            # enter(eid) arrives with eid in a0 already.
            asm.call(f"c_{name}")
        elif name == "map_secure":
            asm.call("c_map_secure")
        else:
            asm.call(f"c_{name}")
        asm.j("restore" if name in SWITCHING else "save_ret")

    asm.label("save_ret")
    _emit_pcb_addr(asm, "t0", "t1")
    asm.sw("a0", WORD * 2, "t0")  # slot 2 = a0

    asm.label("restore")
    _emit_pcb_addr(asm, "t0", "t1")
    for j, (_, num) in enumerate(SAVED_REGS):
        asm.lw(num, WORD * j, "t0")
    for num in CLEARED_REGS:
        asm.li(num, 0)
    asm.mret()

    compile_program(_handlers(), asm, opt)
    _emit_boot(asm)
    return asm


S_MODE_START = 0x0010_0000


def _emit_boot(asm: Assembler) -> None:
    """Boot code: the host context with an empty page database."""
    asm.label("boot")
    asm.la("t0", "cur")
    asm.li("t1", HOST)
    asm.sw("t1", 0, "t0")
    asm.la("t0", "enclaves")
    for i in range(NENC):
        asm.sw("zero", 4 * i, "t0")
    asm.la("t0", "pagedb")
    for off in range(0, NPAGES * 12, 4):
        asm.sw("zero", off, "t0")
    asm.la("t0", "pcb")
    for off in range(0, (NENC + 1) * PCB_STRIDE, 4):
        asm.sw("zero", off, "t0")
    asm.li("t0", asm.addr_of("entry"))
    asm.csrrw("zero", "mtvec", "t0")
    asm.li("t0", S_MODE_START)
    asm.csrrw("zero", "mepc", "t0")
    for num in range(1, 32):
        asm.li(num, 0)
    asm.mret()
