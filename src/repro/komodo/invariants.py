"""Komodo^s abstraction function and representation invariant (§6.3)."""

from __future__ import annotations

from ..riscv import CpuState
from ..sym import SymBV, SymBool, bv_val, ite
from .layout import HOST, NENC, NPAGES, PCB_STRIDE, PG_DATA, PG_FREE, SAVED_REGS, WORD, XLEN
from .spec import KomodoState

__all__ = ["abstract", "rep_invariant"]


def _load(cpu: CpuState, region: str, offset: int) -> SymBV:
    return cpu.mem.region(region).block.load(bv_val(offset, XLEN), WORD, cpu.mem.opts)


def read_cur(cpu: CpuState) -> SymBV:
    return _load(cpu, "cur", 0)


def abstract(cpu: CpuState) -> KomodoState:
    cur = read_cur(cpu)
    out = KomodoState.__new__(KomodoState)
    out.cur = cur
    out.enc_state = [_load(cpu, "enclaves", 4 * i) for i in range(NENC)]
    out.pg_type = [_load(cpu, "pagedb", 12 * p) for p in range(NPAGES)]
    out.pg_owner = [_load(cpu, "pagedb", 12 * p + 4) for p in range(NPAGES)]
    out.pg_content = [_load(cpu, "pagedb", 12 * p + 8) for p in range(NPAGES)]
    regs = []
    for c in range(NENC + 1):
        for j, (_, num) in enumerate(SAVED_REGS):
            live = cpu.reg(num)
            saved = _load(cpu, "pcb", c * PCB_STRIDE + WORD * j)
            regs.append(ite(cur == c, live, saved))
    out.regs = regs
    return out


def rep_invariant(cpu: CpuState) -> SymBool:
    """RI: a well-formed context id and page database."""
    cur = read_cur(cpu)
    inv = cur <= HOST
    for i in range(NENC):
        inv = inv & (_load(cpu, "enclaves", 4 * i) <= 3)
    from ..sym import ite

    for p in range(NPAGES):
        inv = inv & (_load(cpu, "pagedb", 12 * p) <= PG_DATA)
        owner = _load(cpu, "pagedb", 12 * p + 4)
        inv = inv & (owner < NENC)
        free = _load(cpu, "pagedb", 12 * p) == PG_FREE
        inv = inv & (~free | (_load(cpu, "pagedb", 12 * p + 8) == 0))
        owner_state = _load(cpu, "enclaves", 4 * (NENC - 1))
        for i in range(NENC - 2, -1, -1):
            owner_state = ite(owner == i, _load(cpu, "enclaves", 4 * i), owner_state)
        inv = inv & (free | (owner_state != 0))
    return inv
