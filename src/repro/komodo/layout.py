"""Komodo^s configuration and layout (§6.3).

A scaled-down port of the Komodo C prototype to RISC-V: NENC enclaves
and NPAGES secure pages tracked by a page database.  Komodo^s keeps
Komodo's architecture-independent data structures but replaces
pointers with indices in struct fields, "not necessary for
verification, but [it] simplifies the task of specifying
representation invariants" — a page *index* needs only a bounds
check, not an alignment-and-range fact about a pointer.
"""

from __future__ import annotations

XLEN = 32
WORD = 4
NENC = 2
NPAGES = 6

# Monitor call numbers (a7), following the Komodo interface with the
# InitL3PTable addition for three-level RISC-V paging (§6.3).
CALL_INIT_ADDRSPACE = 0
CALL_INIT_THREAD = 1
CALL_INIT_L2PTABLE = 2
CALL_INIT_L3PTABLE = 3
CALL_MAP_SECURE = 4
CALL_MAP_INSECURE = 5
CALL_FINALIZE = 6
CALL_ENTER = 7
CALL_RESUME = 8
CALL_STOP = 9
CALL_REMOVE = 10
CALL_EXIT = 11

ALL_CALLS = list(range(12))

# Page types.
PG_FREE = 0
PG_ADDRSPACE = 1
PG_THREAD = 2
PG_L2PT = 3
PG_L3PT = 4
PG_DATA = 5

# Enclave states.
ENC_INVALID = 0
ENC_INIT = 1
ENC_FINAL = 2
ENC_STOPPED = 3

# Security domains: enclaves 0..NENC-1; the OS/host is NENC.
HOST = NENC

# Saved-register set (like CertiKOS^s but narrower).
SAVED_REGS = [("ra", 1), ("sp", 2), ("a0", 10), ("a1", 11)]
NSAVED = len(SAVED_REGS)
PCB_STRIDE = 16  # 4 words

# Physical layout.
TEXT_BASE = 0x0000_1000
CUR_ADDR = 0x0002_0000  # current context: HOST or enclave id
ENCLAVES_ADDR = 0x0002_1000  # NENC x {state}, stride 4
PAGEDB_ADDR = 0x0002_2000  # NPAGES x {type, owner, content}, stride 12
PCB_ADDR = 0x0002_3000  # (NENC+1) x {4 regs}, stride 16
STACK_ADDR = 0x0002_4000
STACK_SIZE = 256
STACK_TOP = STACK_ADDR + STACK_SIZE

DATA_SYMBOLS = [
    ("cur", CUR_ADDR, WORD, ("cell", WORD)),
    ("enclaves", ENCLAVES_ADDR, NENC * 4, ("array", NENC, ("struct", [("state", ("cell", 4))]))),
    (
        "pagedb",
        PAGEDB_ADDR,
        NPAGES * 12,
        (
            "array",
            NPAGES,
            ("struct", [("type", ("cell", 4)), ("owner", ("cell", 4)), ("content", ("cell", 4))]),
        ),
    ),
    (
        "pcb",
        PCB_ADDR,
        (NENC + 1) * PCB_STRIDE,
        ("array", NENC + 1, ("struct", [("regs", ("array", NSAVED, ("cell", 4)))])),
    ),
    ("stack", STACK_ADDR, STACK_SIZE, ("array", STACK_SIZE // 4, ("cell", 4))),
]
