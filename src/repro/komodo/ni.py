"""Komodo^s noninterference: Nickel-style unwinding + litmus tests (§6.3).

Komodo's own spec uses big-step actions, which Serval cannot express
(§3.5); like the paper we prove Nickel's specification instead, and
use litmus tests to compare guarantees informally:

  * both specifications preclude the OS from learning the contents of
    a finalized-then-removed enclave's memory
    (:func:`prove_removed_enclave_unobservable`);
  * an enclave's exit value *is* observable to the OS — intentional
    declassification (:func:`exit_declassifies`).
"""

from __future__ import annotations

from ..sym import ProofResult, SymBool, bv_val, fresh_bv, new_context, sym_true, verify_vcs
from .layout import HOST, NENC, NPAGES, NSAVED, XLEN
from .spec import KomodoState, SPEC_CALLS, spec_exit, spec_remove, spec_stop, state_invariant

__all__ = [
    "enclave_equiv",
    "prove_host_cannot_read_enclave",
    "prove_removed_enclave_unobservable",
    "exit_declassifies",
]


def enclave_equiv(u: int, s1, s2) -> SymBool:
    """s1 ~u s2 for enclave u: its lifecycle state, registers, and the
    pages it owns (type + contents)."""
    eq = s1.enc_state[u] == s2.enc_state[u]
    for j in range(NSAVED):
        eq = eq & (s1.regs[u * NSAVED + j] == s2.regs[u * NSAVED + j])
    for p in range(NPAGES):
        mine1 = (s1.pg_owner[p] == u) & (s1.pg_type[p] != 0)
        mine2 = (s2.pg_owner[p] == u) & (s2.pg_type[p] != 0)
        eq = eq & (mine1 == mine2)
        eq = eq & (~mine1 | (s1.pg_content[p] == s2.pg_content[p]))
    return eq


def host_equiv(s1, s2) -> SymBool:
    """The host sees enclave lifecycle states, the page-database
    *metadata* (it manages page allocation), and its own registers —
    but never secure-page *contents*."""
    eq = s1.cur == s2.cur
    for i in range(NENC):
        eq = eq & (s1.enc_state[i] == s2.enc_state[i])
    for p in range(NPAGES):
        eq = eq & (s1.pg_type[p] == s2.pg_type[p]) & (s1.pg_owner[p] == s2.pg_owner[p])
    for j in range(NSAVED):
        eq = eq & (s1.regs[HOST * NSAVED + j] == s2.regs[HOST * NSAVED + j])
    return eq


def prove_host_cannot_read_enclave(max_conflicts: int | None = None) -> ProofResult:
    """Weak step consistency for the host across management calls:
    the host's view after any host call is a function of the host's
    view (secure-page contents never flow to it)."""
    with new_context() as ctx:
        s1 = KomodoState.fresh("kni.s1")
        s2 = KomodoState.fresh("kni.s2")
        eid = fresh_bv("kni.eid", XLEN)
        page = fresh_bv("kni.page", XLEN)
        for name in ("init_addrspace", "init_thread", "finalize", "stop", "remove", "enter"):
            _, fn = SPEC_CALLS[name]
            t1 = fn(s1, eid, page, bv_val(0, XLEN))
            t2 = fn(s2, eid, page, bv_val(0, XLEN))
            pre = state_invariant(s1) & state_invariant(s2) & host_equiv(s1, s2)
            ctx.assert_prop(
                pre.implies(host_equiv(t1, t2)), f"host view closed under {name}"
            )
        return verify_vcs(ctx, max_conflicts=max_conflicts)


def prove_removed_enclave_unobservable() -> ProofResult:
    """The §6.3 litmus test both NI specs agree on: after Stop +
    Remove, nothing about the enclave's measured contents remains in
    the state (its pages are freed and zeroed)."""
    with new_context() as ctx:
        s = KomodoState.fresh("krm.s")
        eid = fresh_bv("krm.eid", XLEN)
        zero = bv_val(0, XLEN)
        stopped = spec_stop(s, eid, zero, zero)
        removed = spec_remove(stopped, eid, zero, zero)
        inv = state_invariant(s) & (eid < NENC)
        # Formulate via the post-state: once the enclave is INVALID
        # after remove, no page may still carry its data.
        eid_invalid = sym_true()
        for i in range(NENC):
            eid_invalid = eid_invalid & ((eid != i) | (removed.enc_state[i] == 0))
        for p in range(NPAGES):
            still_mine = (removed.pg_owner[p] == eid) & (removed.pg_type[p] != 0)
            ctx.assert_prop(
                (inv & eid_invalid).implies(~still_mine | (removed.pg_content[p] == s.pg_content[p])),
                "no stale ownership after remove",
            )
            was_mine = (s.pg_owner[p] == eid) & (s.pg_type[p] != 0)
            ctx.assert_prop(
                (inv & eid_invalid).implies(~was_mine | (removed.pg_content[p] == 0)),
                f"removed enclave's page {p} contents erased",
            )
        return verify_vcs(ctx)


def exit_declassifies() -> bool:
    """Sanity check (not a theorem): Exit *does* reveal the enclave's
    a0 to the host — Komodo's intentional declassification.  We show
    the host's view can change with the enclave's secret, i.e. the
    naive non-declassifying property is falsifiable."""
    from ..sym import solve

    s = KomodoState.fresh("kdx.s")
    t = spec_exit(s, None, None, None)
    # Find two runs... equivalently: host's a0 after exit depends on
    # the enclave's a0: exhibit a state where they are equal.
    model = solve(
        state_invariant(s),
        s.cur == 0,
        t.regs[HOST * NSAVED + 2] == s.regs[0 * NSAVED + 2],
        s.regs[0 * NSAVED + 2] == 0x1234,
    )
    return model is not None
