"""Komodo^s abstract specification (§6.3).

State: a current context (host or enclave), per-enclave lifecycle
states, and a page database mapping each secure page to (type, owner,
content).  The OS constructs enclaves page by page (InitAddrspace /
InitThread / InitL2PTable / InitL3PTable / MapSecure / MapInsecure),
finalizes them, and enters/stops/removes them; an enclave exits back
to the OS.

The two §6.3 interface changes are visible here: InitL3PTable exists
(RISC-V three-level paging), and MapSecure takes a page-table page
index plus entry index rather than a virtual address.
"""

from __future__ import annotations

from ..core import spec_struct
from ..sym import SymBV, SymBool, bv_val, ite
from .layout import (
    ENC_FINAL,
    ENC_INIT,
    ENC_INVALID,
    ENC_STOPPED,
    HOST,
    NENC,
    NPAGES,
    NSAVED,
    PG_ADDRSPACE,
    PG_DATA,
    PG_FREE,
    PG_L2PT,
    PG_L3PT,
    PG_THREAD,
    XLEN,
)

__all__ = ["KomodoState", "state_invariant", "SPEC_CALLS"]

A0 = 2  # index of a0 in the saved-register vector (ra, sp, a0, a1)

KomodoState = spec_struct(
    "komodo",
    cur=XLEN,
    enc_state=(XLEN, NENC),
    pg_type=(XLEN, NPAGES),
    pg_owner=(XLEN, NPAGES),
    pg_content=(XLEN, NPAGES),
    regs=(XLEN, (NENC + 1) * NSAVED),
)


def _select(vec, idx, count):
    out = vec[count - 1]
    for i in range(count - 2, -1, -1):
        out = ite(idx == i, vec[i], out)
    return out


def _update(vec, idx, value, count, guard):
    return [ite((idx == i) & guard, value, vec[i]) for i in range(count)]


def _set_reg(regs, ctx_id, j, value, guard=None):
    out = list(regs)
    for c in range(NENC + 1):
        cond = ctx_id == c if guard is None else (ctx_id == c) & guard
        out[c * NSAVED + j] = ite(cond, value, regs[c * NSAVED + j])
    return out


def state_invariant(s) -> SymBool:
    inv = s.cur <= HOST
    for i in range(NENC):
        inv = inv & (s.enc_state[i] <= ENC_STOPPED)
    for p in range(NPAGES):
        inv = inv & (s.pg_type[p] <= PG_DATA) & (s.pg_owner[p] < NENC)
        # Free pages carry no content (zeroed on Remove).
        inv = inv & ((s.pg_type[p] != PG_FREE) | (s.pg_content[p] == 0))
        # Owned pages belong to live enclaves: Remove frees an
        # enclave's pages before invalidating it.
        owner_state = _select(s.enc_state, s.pg_owner[p], NENC)
        inv = inv & ((s.pg_type[p] == PG_FREE) | (owner_state != ENC_INVALID))
    return inv


def _ret(s_out, s_in, value):
    s_out.regs = _set_reg(s_out.regs, s_in.cur, A0, value)
    return s_out


def _alloc_page(s, eid: SymBV, page: SymBV, pg_type: int, required_enc_state: int, payload=None):
    """Common shape of the Init*/MapSecure calls: host allocates a free
    page of a given type to an enclave in a given lifecycle state."""
    out = s.copy()
    ok = (
        (s.cur == HOST)
        & (eid < NENC)
        & (page < NPAGES)
        & (_select(s.enc_state, eid, NENC) == required_enc_state)
        & (_select(s.pg_type, page, NPAGES) == PG_FREE)
    )
    out.pg_type = _update(s.pg_type, page, bv_val(pg_type, XLEN), NPAGES, ok)
    out.pg_owner = _update(s.pg_owner, page, eid, NPAGES, ok)
    if payload is not None:
        out.pg_content = _update(s.pg_content, page, payload, NPAGES, ok)
    return _ret(out, s, ite(ok, bv_val(0, XLEN), bv_val(-1, XLEN))), ok


def spec_init_addrspace(s, eid, page, _arg2):
    """Create an enclave: its address-space root page."""
    out = s.copy()
    ok = (
        (s.cur == HOST)
        & (eid < NENC)
        & (page < NPAGES)
        & (_select(s.enc_state, eid, NENC) == ENC_INVALID)
        & (_select(s.pg_type, page, NPAGES) == PG_FREE)
    )
    out.pg_type = _update(s.pg_type, page, bv_val(PG_ADDRSPACE, XLEN), NPAGES, ok)
    out.pg_owner = _update(s.pg_owner, page, eid, NPAGES, ok)
    out.enc_state = _update(s.enc_state, eid, bv_val(ENC_INIT, XLEN), NENC, ok)
    return _ret(out, s, ite(ok, bv_val(0, XLEN), bv_val(-1, XLEN)))


def spec_init_thread(s, eid, page, _arg2):
    return _alloc_page(s, eid, page, PG_THREAD, ENC_INIT)[0]


def spec_init_l2ptable(s, eid, page, _arg2):
    return _alloc_page(s, eid, page, PG_L2PT, ENC_INIT)[0]


def spec_init_l3ptable(s, eid, page, _arg2):
    """The call added for RISC-V's three-level paging (§6.3)."""
    return _alloc_page(s, eid, page, PG_L3PT, ENC_INIT)[0]


def spec_map_secure(s, eid, page, payload):
    """Map a data page; takes the page index + payload (word-sized
    stand-in for the page's measured contents)."""
    return _alloc_page(s, eid, page, PG_DATA, ENC_INIT, payload=payload)[0]


def spec_map_insecure(s, eid, _page, _arg2):
    """Insecure mappings share OS memory: no page-db ownership change;
    succeeds for an INIT enclave."""
    out = s.copy()
    ok = (s.cur == HOST) & (eid < NENC) & (_select(s.enc_state, eid, NENC) == ENC_INIT)
    return _ret(out, s, ite(ok, bv_val(0, XLEN), bv_val(-1, XLEN)))


def spec_finalize(s, eid, _page, _arg2):
    out = s.copy()
    ok = (s.cur == HOST) & (eid < NENC) & (_select(s.enc_state, eid, NENC) == ENC_INIT)
    out.enc_state = _update(s.enc_state, eid, bv_val(ENC_FINAL, XLEN), NENC, ok)
    return _ret(out, s, ite(ok, bv_val(0, XLEN), bv_val(-1, XLEN)))


def _enter_like(s, eid):
    out = s.copy()
    ok = (s.cur == HOST) & (eid < NENC) & (_select(s.enc_state, eid, NENC) == ENC_FINAL)
    out.cur = ite(ok, eid, s.cur)
    # Failure is reported to the host; on success the enclave resumes
    # from its own register bank.
    out.regs = _set_reg(out.regs, s.cur, A0, bv_val(-1, XLEN), guard=~ok)
    return out


def spec_enter(s, eid, _page, _arg2):
    return _enter_like(s, eid)


def spec_resume(s, eid, _page, _arg2):
    return _enter_like(s, eid)


def spec_stop(s, eid, _page, _arg2):
    out = s.copy()
    ok = (
        (s.cur == HOST)
        & (eid < NENC)
        & (
            (_select(s.enc_state, eid, NENC) == ENC_INIT)
            | (_select(s.enc_state, eid, NENC) == ENC_FINAL)
        )
    )
    out.enc_state = _update(s.enc_state, eid, bv_val(ENC_STOPPED, XLEN), NENC, ok)
    return _ret(out, s, ite(ok, bv_val(0, XLEN), bv_val(-1, XLEN)))


def spec_remove(s, eid, _page, _arg2):
    """Free a stopped enclave's pages, erasing their contents (the
    §6.3 litmus test: a finalized-then-removed enclave's memory is not
    observable afterwards)."""
    out = s.copy()
    ok = (s.cur == HOST) & (eid < NENC) & (_select(s.enc_state, eid, NENC) == ENC_STOPPED)
    zero = bv_val(0, XLEN)
    new_type, new_owner, new_content = [], [], []
    for p in range(NPAGES):
        mine = ok & (s.pg_owner[p] == eid) & (s.pg_type[p] != PG_FREE)
        new_type.append(ite(mine, zero, s.pg_type[p]))
        new_owner.append(ite(mine, zero, s.pg_owner[p]))
        new_content.append(ite(mine, zero, s.pg_content[p]))
    out.pg_type, out.pg_owner, out.pg_content = new_type, new_owner, new_content
    out.enc_state = _update(s.enc_state, eid, bv_val(ENC_INVALID, XLEN), NENC, ok)
    return _ret(out, s, ite(ok, bv_val(0, XLEN), bv_val(-1, XLEN)))


def spec_exit(s, _eid, _page, _arg2):
    """The running enclave returns to the host; its a0 is the exit
    value — an intentional declassification Komodo permits (§6.3)."""
    out = s.copy()
    running = s.cur < NENC
    exit_value = _select([s.regs[c * NSAVED + A0] for c in range(NENC + 1)], s.cur, NENC + 1)
    out.cur = ite(running, bv_val(HOST, XLEN), s.cur)
    out.regs = _set_reg(out.regs, bv_val(HOST, XLEN), A0, exit_value, guard=running)
    return out


def spec_invalid(s, _eid, _page, _arg2):
    out = s.copy()
    return _ret(out, s, bv_val(-1, XLEN))


SPEC_CALLS = {
    "init_addrspace": (0, spec_init_addrspace),
    "init_thread": (1, spec_init_thread),
    "init_l2ptable": (2, spec_init_l2ptable),
    "init_l3ptable": (3, spec_init_l3ptable),
    "map_secure": (4, spec_map_secure),
    "map_insecure": (5, spec_map_insecure),
    "finalize": (6, spec_finalize),
    "enter": (7, spec_enter),
    "resume": (8, spec_resume),
    "stop": (9, spec_stop),
    "remove": (10, spec_remove),
    "exit": (11, spec_exit),
    "invalid": (None, spec_invalid),
}
