"""Komodo^s verification driver (§6.3, §6.4)."""

from __future__ import annotations

from dataclasses import dataclass, field
import time

from ..core import EngineOptions, Refinement, run_interpreter
from ..core.image import build_memory
from ..core.memory import MemoryOptions
from ..core.symopt import SymOptConfig
from ..riscv import CpuState, RiscvInterp
from ..sym import ProofResult, bv_val
from .impl import CALL_NAMES, build_image
from .invariants import abstract, rep_invariant
from .layout import XLEN
from .spec import SPEC_CALLS

__all__ = ["KomodoVerifier", "verify_all", "prove_boot", "OPERATIONS"]

A7 = 17
A0, A1, A2 = 10, 11, 12

OPERATIONS = {name: SPEC_CALLS[name] for name in list(CALL_NAMES) + ["invalid"]}


@dataclass
class KomodoVerifier:
    opt: int = 1
    symopts: SymOptConfig = field(default_factory=SymOptConfig)
    fuel: int = 10_000
    max_conflicts: int | None = None
    timeout_s: float | None = None
    # Proof-obligation scheduling knobs: with jobs > 1 the refinement
    # VCs feed the process-wide work-stealing pool, and cache_dir names
    # the shared content-addressed verdict store (repro.core.scheduler,
    # repro.core.store).
    jobs: int = 1
    cache_dir: str | None = None
    # Observability knob (repro.obs): False = off, True = collect and
    # attach the snapshot as result.stats["obs"], a path string = also
    # write a Chrome trace there.
    trace: bool | str = False

    def __post_init__(self):
        self.image = build_image(self.opt)
        self.interp = RiscvInterp(self.image, xlen=XLEN)

    def make_cpu(self) -> CpuState:
        mem_opts = MemoryOptions(concretize_offsets=self.symopts.concretize_offsets)
        mem = build_memory(self.image, opts=mem_opts, addr_width=XLEN)
        return CpuState.symbolic(XLEN, self.image.base, mem, prefix="komodo")

    def refinement(self, op: str) -> Refinement:
        call_no, spec_fn = OPERATIONS[op]

        def make_impl():
            cpu = self.make_cpu()
            if call_no is not None and self.symopts.split_cases:
                cpu.set_reg(A7, bv_val(call_no, XLEN))
            self._cpu = cpu
            return cpu

        def impl_step(cpu):
            return run_interpreter(
                self.interp, cpu, EngineOptions(split_pc=self.symopts.split_pc, fuel=self.fuel)
            ).merged()

        def spec_step(s):
            cpu = self._cpu
            return spec_fn(s, cpu.reg(A0), cpu.reg(A1), cpu.reg(A2))

        def extra(cpu):
            a7 = cpu.reg(A7)
            if op == "invalid":
                cond = a7 >= len(CALL_NAMES)
            else:
                cond = a7 == call_no
            return cond

        return Refinement(
            name=f"komodo.{op}.O{self.opt}",
            make_impl=make_impl,
            impl_step=impl_step,
            spec_step=spec_step,
            abstract=abstract,
            rep_invariant=rep_invariant,
            extra_assumptions=extra,
        )

    def prove_op(self, op: str) -> ProofResult:
        from ..obs import maybe_tracing

        with maybe_tracing(self.trace) as col:
            result = self.refinement(op).prove(
                max_conflicts=self.max_conflicts,
                timeout_s=self.timeout_s,
                jobs=self.jobs,
                cache_dir=self.cache_dir,
            )
        if col is not None:
            result.stats["obs"] = col.snapshot()
        return result


def prove_boot(opt: int = 1, max_conflicts: int | None = None) -> ProofResult:
    """Verify Komodo^s boot: from reset, the host context with an empty
    page database — the initial specification state."""
    from ..core import run_interpreter as _run
    from ..sym import bv_val as _bv, new_context, verify_vcs
    from . import impl as impl_mod
    from .invariants import abstract as _abstract, rep_invariant as _ri
    from .layout import HOST, NENC, NPAGES, NSAVED
    from .spec import KomodoState

    verifier = KomodoVerifier(opt=opt)
    with new_context() as ctx:
        cpu = verifier.make_cpu()
        cpu.pc = _bv(impl_mod.boot_address(opt), XLEN)
        final = _run(verifier.interp, cpu, EngineOptions(fuel=verifier.fuel)).merged()
        init = KomodoState.__new__(KomodoState)
        init.cur = _bv(HOST, XLEN)
        init.enc_state = [_bv(0, XLEN) for _ in range(NENC)]
        init.pg_type = [_bv(0, XLEN) for _ in range(NPAGES)]
        init.pg_owner = [_bv(0, XLEN) for _ in range(NPAGES)]
        init.pg_content = [_bv(0, XLEN) for _ in range(NPAGES)]
        init.regs = [_bv(0, XLEN) for _ in range((NENC + 1) * NSAVED)]
        ctx.assert_prop(_ri(final), "boot establishes RI")
        ctx.assert_prop(_abstract(final).eq(init), "boot abstracts to the initial spec state")
        ctx.assert_prop(final.csr("mtvec") == verifier.image.base, "mtvec points at the trap entry")
        return verify_vcs(ctx, max_conflicts=max_conflicts)


def verify_all(
    opt: int = 1,
    symopts: SymOptConfig | None = None,
    ops: list[str] | None = None,
    jobs: int = 1,
    cache_dir: str | None = None,
    trace: bool | str = False,
):
    """Prove refinement for the monitor interface (all calls by default).

    With ``jobs > 1`` the per-call proofs share the process-wide
    scheduler: each call's VCs are queued as they are produced, so
    workers stay busy *across* calls instead of draining between them.
    ``trace`` wraps the whole sweep in one tracing session (a path
    string writes the Chrome trace there on exit).
    """
    from ..obs import maybe_tracing

    verifier = KomodoVerifier(
        opt=opt, symopts=symopts or SymOptConfig(), jobs=jobs, cache_dir=cache_dir
    )
    results = {}
    with maybe_tracing(trace):
        for op in ops or OPERATIONS:
            start = time.perf_counter()
            results[op] = (verifier.prove_op(op), time.perf_counter() - start)
    return results
