"""The LLVM verifier (§5): Hyperkernel's IR subset, lifted."""

from .interp import LlvmInterp, LlvmState, run_function
from .ir import (
    Bin,
    Block,
    Br,
    Cast,
    CondBr,
    Const,
    Function,
    Gep,
    GlobalRef,
    Icmp,
    Load,
    Local,
    Module,
    Param,
    Ret,
    Select,
    Store,
    Value,
)

__all__ = [name for name in dir() if not name.startswith("_")]
