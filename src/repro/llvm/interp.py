"""The LLVM verifier: block-level interpretation under the engine (§5).

The "pc" is the index of a basic block; one engine step executes a
whole block and sets the pc to the successor (an ite for condbr).
State merging therefore happens at block heads — exactly LLVM's
control-flow joins.  Undefined behaviour raises ``bug_on`` conditions
under the block's path condition.
"""

from __future__ import annotations

from ..core.engine import Interpreter
from ..core.memory import Memory
from ..sym import SymBV, SymBool, bug_on, bv_val, fresh_bv, ite, merge
from .ir import (
    Bin,
    Br,
    Cast,
    CondBr,
    Const,
    Function,
    Gep,
    GlobalRef,
    Icmp,
    Load,
    Local,
    Module,
    Param,
    Ret,
    Select,
    Store,
)

__all__ = ["LlvmState", "LlvmInterp", "run_function"]

PTR_WIDTH = 32


class LlvmState:
    """Block pc + mutable locals + arguments + memory + return slot."""

    __slots__ = ("pc", "locals", "params", "mem", "returned", "retval")

    def __init__(self, pc: SymBV, locals_: dict, params: list[SymBV], mem: Memory):
        self.pc = pc
        self.locals = locals_
        self.params = params
        self.mem = mem
        self.returned = False
        self.retval: SymBV | None = None

    def copy(self) -> "LlvmState":
        out = LlvmState(self.pc, dict(self.locals), list(self.params), self.mem.copy())
        out.returned = self.returned
        out.retval = self.retval
        return out

    def __sym_merge__(self, guard: SymBool, other: "LlvmState") -> "LlvmState":
        if self.returned != other.returned:
            raise ValueError("cannot merge returned with running state")
        # Locals defined on only one side stay one-sided (dead values).
        merged_locals = {}
        for key in self.locals.keys() | other.locals.keys():
            a, b = self.locals.get(key), other.locals.get(key)
            if a is not None and b is not None:
                merged_locals[key] = merge(guard, a, b)
            else:
                merged_locals[key] = a if a is not None else b
        out = LlvmState(
            merge(guard, self.pc, other.pc),
            merged_locals,
            [merge(guard, a, b) for a, b in zip(self.params, other.params)],
            merge(guard, self.mem, other.mem),
        )
        out.returned = self.returned
        if self.retval is not None and other.retval is not None:
            out.retval = merge(guard, self.retval, other.retval)
        else:
            out.retval = self.retval if self.retval is not None else other.retval
        return out


class LlvmInterp(Interpreter):
    """Interpreter for one function; liftable by the engine."""

    def __init__(self, func: Function, module: Module | None = None):
        self.func = func
        self.module = module
        self.block_labels = func.block_order()
        self.block_index = {label: i for i, label in enumerate(self.block_labels)}

    # -- engine protocol ----------------------------------------------------------

    def pc_of(self, state: LlvmState) -> SymBV:
        return state.pc

    def set_pc(self, state: LlvmState, pc_val: int) -> None:
        state.pc = bv_val(pc_val, PTR_WIDTH)

    def is_halted(self, state: LlvmState) -> bool:
        return state.returned

    def copy_state(self, state: LlvmState) -> LlvmState:
        return state.copy()

    def merge_key(self, state: LlvmState):
        return state.returned

    def fetch(self, state: LlvmState):
        return self.func.blocks[self.block_labels[state.pc.as_int()]]

    # -- evaluation ----------------------------------------------------------------

    def _val(self, state: LlvmState, v, width: int = 32) -> SymBV:
        if isinstance(v, Const):
            return bv_val(v.value, v.width)
        if isinstance(v, Local):
            out = state.locals.get(v.name)
            if out is None:
                raise KeyError(f"use of undefined local %{v.name}")
            return out
        if isinstance(v, Param):
            return state.params[v.index]
        if isinstance(v, GlobalRef):
            return bv_val(state.mem.region(v.name).base, PTR_WIDTH)
        raise TypeError(f"bad operand {v!r}")

    def execute(self, state: LlvmState, block) -> None:
        for insn in block.insns:
            self._exec_insn(state, insn)
        self._exec_terminator(state, block.terminator)

    def _exec_insn(self, state: LlvmState, insn) -> None:
        if isinstance(insn, Bin):
            state.locals[insn.dst] = self._bin(state, insn)
        elif isinstance(insn, Icmp):
            a, b = self._val(state, insn.a), self._val(state, insn.b)
            preds = {
                "eq": a == b, "ne": a != b,
                "ult": a < b, "ule": a <= b, "ugt": a > b, "uge": a >= b,
                "slt": a.slt(b), "sle": a.sle(b), "sgt": a.sgt(b), "sge": a.sge(b),
            }
            state.locals[insn.dst] = ite(preds[insn.pred], bv_val(1, 1), bv_val(0, 1))
        elif isinstance(insn, Cast):
            a = self._val(state, insn.a)
            if insn.kind == "zext":
                state.locals[insn.dst] = a.zext(insn.width)
            elif insn.kind == "sext":
                state.locals[insn.dst] = a.sext(insn.width)
            elif insn.kind == "trunc":
                state.locals[insn.dst] = a.trunc(insn.width)
            else:
                raise ValueError(f"bad cast {insn.kind!r}")
        elif isinstance(insn, Select):
            c = self._val(state, insn.cond)
            state.locals[insn.dst] = ite(c != 0, self._val(state, insn.a), self._val(state, insn.b))
        elif isinstance(insn, Gep):
            base = self._val(state, insn.base)
            index = self._val(state, insn.index)
            if index.width != PTR_WIDTH:
                index = index.resize(PTR_WIDTH)
            state.locals[insn.dst] = base + index * insn.stride + insn.offset
        elif isinstance(insn, Load):
            addr = self._val(state, insn.addr)
            value = state.mem.load(addr, insn.nbytes)
            target = insn.width
            state.locals[insn.dst] = value.sext(target) if insn.signed else value.zext(target)
        elif isinstance(insn, Store):
            addr = self._val(state, insn.addr)
            value = self._val(state, insn.value)
            state.mem.store(addr, value.trunc(insn.nbytes * 8))
        else:
            raise TypeError(f"bad instruction {insn!r}")

    def _bin(self, state: LlvmState, insn: Bin) -> SymBV:
        a = self._val(state, insn.a)
        b = self._val(state, insn.b)
        w = a.width
        op = insn.op
        if op in ("shl", "lshr", "ashr"):
            # Oversized shifting is UB in LLVM — one of the two
            # Keystone bugs the paper found (§7).
            bug_on(b >= w, f"oversized {op}: shift amount >= width {w}")
        if op in ("udiv", "sdiv", "urem", "srem"):
            bug_on(b == 0, f"{op} by zero")
        if "nsw" in insn.flags and op in ("add", "sub", "mul"):
            wide_a, wide_b = a.sext(2 * w), b.sext(2 * w)
            wide = {"add": wide_a + wide_b, "sub": wide_a - wide_b, "mul": wide_a * wide_b}[op]
            narrow = {"add": a + b, "sub": a - b, "mul": a * b}[op]
            bug_on(wide != narrow.sext(2 * w), f"signed overflow in {op} nsw")
        ops = {
            "add": lambda: a + b,
            "sub": lambda: a - b,
            "mul": lambda: a * b,
            "udiv": lambda: a.udiv(b),
            "sdiv": lambda: a.sdiv(b),
            "urem": lambda: a.urem(b),
            "srem": lambda: a.srem(b),
            "and": lambda: a & b,
            "or": lambda: a | b,
            "xor": lambda: a ^ b,
            "shl": lambda: a << b,
            "lshr": lambda: a >> b,
            "ashr": lambda: a.ashr(b),
        }
        return ops[op]()

    def _exec_terminator(self, state: LlvmState, term) -> None:
        if isinstance(term, Ret):
            state.returned = True
            if term.value is not None:
                state.retval = self._val(state, term.value)
            return
        if isinstance(term, Br):
            state.pc = bv_val(self.block_index[term.target], PTR_WIDTH)
            return
        if isinstance(term, CondBr):
            c = self._val(state, term.cond)
            state.pc = ite(
                c != 0,
                bv_val(self.block_index[term.then], PTR_WIDTH),
                bv_val(self.block_index[term.els], PTR_WIDTH),
            )
            return
        raise TypeError(f"bad terminator {term!r}")


def run_function(
    func: Function,
    params: list[SymBV] | None = None,
    mem: Memory | None = None,
    fuel: int = 10_000,
) -> LlvmState:
    """Symbolically evaluate a function over all paths; returns the
    merged final state (retval + memory)."""
    from ..core import EngineOptions, run_interpreter

    interp = LlvmInterp(func)
    params = params or [fresh_bv(f"{func.name}.arg{i}", 32) for i in range(func.num_params)]
    mem = mem or Memory([], addr_width=PTR_WIDTH)
    state = LlvmState(bv_val(interp.block_index[func.entry], PTR_WIDTH), {}, params, mem)
    return run_interpreter(interp, state, EngineOptions(fuel=fuel)).merged()
