"""A small LLVM-like IR (§5: "the same subset of LLVM as Hyperkernel").

Functions are graphs of basic blocks over typed bitvector values.
Unlike LLVM proper the IR is not SSA: instructions assign to mutable
locals (the pre-mem2reg form), which keeps phi nodes out of the
verifier without changing what can be expressed for finite code.

Undefined behaviour is explicit in the semantics: oversized shifts,
division by zero, ``nsw``/``nuw`` overflow, and out-of-bounds memory
accesses all raise ``bug_on`` conditions, mirroring how Serval's LLVM
verifier "reuses checks inserted by Clang's UndefinedBehaviorSanitizer"
(§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Value",
    "Const",
    "Local",
    "Param",
    "GlobalRef",
    "Bin",
    "Icmp",
    "Cast",
    "Select",
    "Load",
    "Store",
    "Gep",
    "Br",
    "CondBr",
    "Ret",
    "Block",
    "Function",
    "Module",
]


class Value:
    """Base class for operands."""


@dataclass(frozen=True)
class Const(Value):
    value: int
    width: int = 32


@dataclass(frozen=True)
class Local(Value):
    name: str


@dataclass(frozen=True)
class Param(Value):
    index: int


@dataclass(frozen=True)
class GlobalRef(Value):
    """The address of a global (a region base)."""

    name: str


class Insn:
    """Base class for instructions (each assigns to ``dst`` if any)."""


@dataclass(frozen=True)
class Bin(Insn):
    """dst = op a, b.  op in add/sub/mul/udiv/sdiv/urem/srem/and/or/
    xor/shl/lshr/ashr; flags may include "nsw"/"nuw" (overflow UB) and
    "exact"."""

    dst: str
    op: str
    a: Value
    b: Value
    flags: tuple[str, ...] = ()


@dataclass(frozen=True)
class Icmp(Insn):
    """dst = icmp pred a, b (result width 1)."""

    dst: str
    pred: str  # eq ne ult ule ugt uge slt sle sgt sge
    a: Value
    b: Value


@dataclass(frozen=True)
class Cast(Insn):
    """dst = zext/sext/trunc a to width."""

    dst: str
    kind: str
    a: Value
    width: int


@dataclass(frozen=True)
class Select(Insn):
    dst: str
    cond: Value
    a: Value
    b: Value


@dataclass(frozen=True)
class Gep(Insn):
    """dst = getelementptr base, index, byte_offset.

    ``base`` must be a GlobalRef or a pointer-typed local; the result
    is ``base + index*stride + byte_offset`` — the §4 symbolic-address
    shape the memory model concretizes.
    """

    dst: str
    base: Value
    index: Value
    stride: int
    offset: int = 0


@dataclass(frozen=True)
class Load(Insn):
    dst: str
    addr: Value
    nbytes: int = 4
    signed: bool = False
    width: int = 32


@dataclass(frozen=True)
class Store(Insn):
    addr: Value
    value: Value
    nbytes: int = 4


class Terminator:
    pass


@dataclass(frozen=True)
class Br(Terminator):
    target: str


@dataclass(frozen=True)
class CondBr(Terminator):
    cond: Value
    then: str
    els: str


@dataclass(frozen=True)
class Ret(Terminator):
    value: Value | None = None


@dataclass
class Block:
    label: str
    insns: list[Insn]
    terminator: Terminator


@dataclass
class Function:
    name: str
    num_params: int
    blocks: dict[str, Block]
    entry: str = "entry"

    def block_order(self) -> list[str]:
        return list(self.blocks.keys())


@dataclass
class Module:
    functions: dict[str, Function]
    # data symbols: (name, addr, size, shape)
    data: list[tuple] = field(default_factory=list)
