"""``repro.obs`` — unified tracing and metrics for the whole stack.

Every layer of the Figure-1 stack reports here: symbolic evaluation
(``sym`` regions), bit-blasting (``bitblast``), the CDCL core
(``sat``), the verdict cache (``solver-cache``), and the
work-stealing scheduler (``scheduler``, one span per proof-obligation
timeline).  The paper's workflow is profile-then-optimize (§3.2); this
package is what makes that workflow possible once the work runs in
scheduler worker processes — workers serialize their span buffers and
counter deltas into the result envelope, and the parent reassembles
one coherent trace per ``run_obligations`` call.

Usage::

    from repro import obs

    with obs.tracing() as col:
        verifier.prove_op("get_quota")          # any stack entry point
    obs.write_chrome_trace(col, "trace.json")   # chrome://tracing / Perfetto
    print(obs.render_report({"obs": obs.summarize(col)}))

Disabled-by-default: ``obs.span(...)``/``obs.count(...)`` outside a
``tracing()`` block cost one global load and a None test.  Counters
never include wall-clock values, so they are bit-identical across two
runs with the same seed — the determinism contract CI checks.
"""

from .collector import (
    Collector,
    SpanEvent,
    count,
    enabled,
    get_collector,
    maybe_tracing,
    span,
    tracing,
)
from .export import (
    LAYER_CATEGORIES,
    chrome_trace,
    jsonl_lines,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .report import render_report, summarize

__all__ = [
    "Collector",
    "LAYER_CATEGORIES",
    "SpanEvent",
    "chrome_trace",
    "count",
    "enabled",
    "get_collector",
    "jsonl_lines",
    "maybe_tracing",
    "render_report",
    "span",
    "summarize",
    "tracing",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
