"""``repro.obs`` — unified tracing and metrics for the whole stack.

Every layer of the Figure-1 stack reports here: symbolic evaluation
(``sym`` regions), bit-blasting (``bitblast``), the CDCL core
(``sat``), the verdict cache (``solver-cache``), and the
work-stealing scheduler (``scheduler``, one span per proof-obligation
timeline).  The paper's workflow is profile-then-optimize (§3.2); this
package is what makes that workflow possible once the work runs in
scheduler worker processes — workers serialize their span buffers and
counter deltas into the result envelope, and the parent reassembles
one coherent trace per ``run_obligations`` call.

Usage::

    from repro import obs

    with obs.tracing() as col:
        verifier.prove_op("get_quota")          # any stack entry point
    obs.write_chrome_trace(col, "trace.json")   # chrome://tracing / Perfetto
    print(obs.render_report({"obs": obs.summarize(col)}))

Disabled-by-default: ``obs.span(...)``/``obs.count(...)`` outside a
``tracing()`` block cost one global load and a None test.  Counters
never include wall-clock values, so they are bit-identical across two
runs with the same seed — the determinism contract CI checks.
"""

from .collector import (
    HIST_BUCKETS,
    Collector,
    Histogram,
    SpanEvent,
    count,
    enabled,
    event,
    get_collector,
    maybe_tracing,
    observe,
    span,
    tracing,
)
from .events import current_trace, new_trace_id, trace_context
from .export import (
    LAYER_CATEGORIES,
    chrome_trace,
    jsonl_lines,
    merge_chrome_traces,
    parse_prometheus,
    render_prometheus,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from .report import render_report, summarize

__all__ = [
    "Collector",
    "HIST_BUCKETS",
    "Histogram",
    "LAYER_CATEGORIES",
    "SpanEvent",
    "chrome_trace",
    "count",
    "current_trace",
    "enabled",
    "event",
    "get_collector",
    "jsonl_lines",
    "maybe_tracing",
    "merge_chrome_traces",
    "new_trace_id",
    "observe",
    "parse_prometheus",
    "render_prometheus",
    "render_report",
    "span",
    "summarize",
    "trace_context",
    "tracing",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]
