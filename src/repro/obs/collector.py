"""Span/counter collection: the heart of ``repro.obs``.

One :class:`Collector` holds everything a tracing session records:

  * **spans** — named intervals with a category (the Figure-1 layer
    that emitted them: ``sym``, ``bitblast``, ``sat``, ``solver-cache``,
    ``scheduler``), a track id (``main`` or ``worker-N``), and a
    mutable ``args`` dict filled in as the span closes;
  * **counters** — monotonically accumulated integers
    (``sat.conflicts``, ``sym.terms``, ...).  Counters never include
    wall-clock quantities, so two runs of the same workload with the
    same seeds produce bit-identical counter maps — the property the
    CI determinism guard checks;
  * **regions** — aggregated §3.2 symbolic-profiler region statistics
    merged in from worker snapshots.

The module-level API (:func:`span`, :func:`count`) is the one the rest
of the stack calls.  Its disabled fast path is a single global load
plus an ``is None`` test, returning a shared no-op context manager —
no allocation, no clock read — so instrumentation can stay in hot
paths permanently.

Timestamps are ``time.perf_counter()`` values.  On Linux that clock is
``CLOCK_MONOTONIC``, which is machine-wide, so spans recorded in
forked worker processes land on the same timeline as the parent's when
their snapshots are absorbed.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
import threading
import time

from .events import current_trace

__all__ = [
    "Collector",
    "HIST_BUCKETS",
    "Histogram",
    "SpanEvent",
    "count",
    "enabled",
    "event",
    "get_collector",
    "maybe_tracing",
    "observe",
    "span",
    "tracing",
]

# Spans beyond this are dropped (and counted) so a pathological run —
# e.g. a span per engine step over a huge binary — cannot exhaust
# memory; counters are unaffected by the cap.
MAX_SPANS = 200_000

# Events beyond this roll off the front of the ring; the record seq
# keeps increasing so ``GET /events?since=`` readers can detect loss.
MAX_EVENTS = 4096

# The shared latency bucket scheme: log-spaced upper bounds from 100 µs
# doubling up to ~839 s, plus an implicit +Inf overflow bucket.  Every
# process uses the *same* bounds, which is what makes histograms
# mergeable across workers and daemons by element-wise addition —
# the histogram analogue of the counter-merge contract.
HIST_BUCKETS: tuple[float, ...] = tuple(1e-4 * (2.0**i) for i in range(24))


class Histogram:
    """Fixed-bucket latency histogram, mergeable across processes.

    Observations land in log-spaced buckets (:data:`HIST_BUCKETS` by
    default); two histograms with the same bounds merge by adding
    bucket counts, so worker snapshots fold into the parent exactly
    like counters do.  ``sum``/``min``/``max`` ride along for exact
    aggregates; percentiles are estimated by linear interpolation
    within the winning bucket (the same estimate Prometheus's
    ``histogram_quantile`` makes from ``_bucket`` series).
    """

    __slots__ = ("bounds", "buckets", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = HIST_BUCKETS):
        self.bounds = tuple(bounds)
        # One slot per bound plus the +Inf overflow bucket.
        self.buckets = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation (seconds)."""
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def merge(self, other: "Histogram | dict") -> None:
        """Fold another histogram (or its ``to_json`` dict) into this one."""
        if isinstance(other, dict):
            other = Histogram.from_json(other)
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bucket bounds")
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None or other.max > self.max):
            self.max = other.max

    def percentile(self, q: float) -> float:
        """Estimated q-quantile (``q`` in [0, 1]) from the buckets."""
        if self.count == 0:
            return 0.0
        target = q * self.count
        cum = 0
        for i, n in enumerate(self.buckets):
            if n == 0:
                continue
            if cum + n >= target:
                lo = self.bounds[i - 1] if i > 0 else 0.0
                hi = self.bounds[i] if i < len(self.bounds) else (self.max or lo)
                hi = min(hi, self.max) if self.max is not None else hi
                lo = max(lo, self.min) if self.min is not None else lo
                if hi <= lo:
                    return hi
                frac = (target - cum) / n
                return lo + (hi - lo) * frac
            cum += n
        return self.max or 0.0

    def summary(self) -> dict:
        """Count/sum/min/max plus p50/p90/p99 estimates."""
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
        }

    def to_json(self) -> dict:
        """Portable dict for result envelopes and ``/metrics`` JSON."""
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "Histogram":
        """Rebuild a histogram from :meth:`to_json` output."""
        hist = cls(tuple(doc["bounds"]))
        hist.buckets = list(doc["buckets"])
        hist.count = doc["count"]
        hist.sum = doc["sum"]
        hist.min = doc.get("min")
        hist.max = doc.get("max")
        return hist

    def __repr__(self) -> str:
        return f"Histogram(count={self.count}, sum={self.sum:.6f})"


class SpanEvent:
    """One closed span: ``[ts, ts + dur)`` on track ``tid``."""

    __slots__ = ("name", "cat", "tid", "ts", "dur", "args")

    def __init__(self, name: str, cat: str, tid: str, ts: float, dur: float, args: dict | None):
        self.name = name
        self.cat = cat
        self.tid = tid
        self.ts = ts
        self.dur = dur
        self.args = args

    def as_row(self) -> list:
        """Portable serialization (the worker->parent envelope format)."""
        return [self.name, self.cat, self.tid, self.ts, self.dur, self.args or None]

    def __repr__(self) -> str:
        return f"SpanEvent({self.cat}/{self.name} @{self.ts:.6f} +{self.dur * 1e3:.3f}ms)"


class _Span:
    """Live span handle; ``with`` yields the mutable args dict."""

    __slots__ = ("_col", "_name", "_cat", "_tid", "_args", "_start")

    def __init__(self, col: "Collector", name: str, cat: str, tid: str, args: dict):
        self._col = col
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args

    def __enter__(self) -> dict:
        self._start = time.perf_counter()
        return self._args

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        # Stamp the ambient correlation ids here (not in add_span) so
        # absorbed child rows keep the ids of the thread that recorded
        # them rather than being re-stamped with the parent's context.
        trace_id, ob_id = current_trace()
        if trace_id is not None:
            self._args.setdefault("trace_id", trace_id)
            if ob_id is not None:
                self._args.setdefault("ob_id", ob_id)
        self._col.add_span(
            self._name, self._cat, self._tid, self._start, end - self._start, self._args
        )
        return False


class _NullSpan:
    """Shared no-op context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Collector:
    """Accumulates spans, counters, and region stats for one session."""

    def __init__(self, max_spans: int = MAX_SPANS, max_events: int = MAX_EVENTS):
        self.spans: list[SpanEvent] = []
        self.counters: dict[str, int] = {}
        self.regions: dict[str, dict] = {}
        self.histograms: dict[str, Histogram] = {}
        self.events: deque[dict] = deque(maxlen=max_events)
        self.event_seq = 0
        self.max_spans = max_spans
        self.dropped_spans = 0
        self.t0 = time.perf_counter()
        # absorb() may be driven from another thread than the one
        # recording spans; counter read-modify-writes need the lock.
        self._lock = threading.Lock()

    # -- recording -------------------------------------------------------

    def span(self, name: str, cat: str = "app", tid: str = "main", **args) -> _Span:
        return _Span(self, name, cat, tid, args)

    def add_span(
        self, name: str, cat: str, tid: str, ts: float, dur: float, args: dict | None
    ) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return
        # Keep the args dict itself (even when still empty): callers
        # fill it in after the ``with`` block closes, and ``as_row``
        # drops it at serialization time if it stayed empty.
        self.spans.append(SpanEvent(name, cat, tid, ts, dur, args))

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        """Record a latency observation (seconds) into a named histogram."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)

    def event(
        self,
        level: str,
        msg: str,
        trace_id: str | None = None,
        ob_id: str | None = None,
        **fields,
    ) -> dict:
        """Append a structured event record to the ring buffer.

        Records carry a monotonically increasing ``seq`` even as old
        entries roll off, so ``GET /events?since=`` readers can page
        and detect loss.  ``ts`` is wall-clock (``time.time()``): the
        log is for humans and cross-machine correlation, not for the
        perf_counter span timeline.
        """
        with self._lock:
            self.event_seq += 1
            record = {
                "seq": self.event_seq,
                "ts": time.time(),
                "level": level,
                "msg": msg,
                "trace_id": trace_id,
                "ob_id": ob_id,
            }
            if fields:
                record.update(fields)
            self.events.append(record)
            return record

    def events_since(self, since: int = 0, level: str | None = None) -> list[dict]:
        """Events with ``seq > since``, optionally at/above ``level``."""
        from .events import EVENT_LEVELS

        with self._lock:
            records = [e for e in self.events if e["seq"] > since]
        if level is not None and level in EVENT_LEVELS:
            floor = EVENT_LEVELS.index(level)
            records = [
                e
                for e in records
                if (EVENT_LEVELS.index(e["level"]) if e.get("level") in EVENT_LEVELS else 1)
                >= floor
            ]
        return records

    # -- merging ---------------------------------------------------------

    def merge_regions(self, regions: dict[str, dict]) -> None:
        """Accumulate aggregated SymProfiler region stats."""
        with self._lock:
            for name, incoming in regions.items():
                mine = self.regions.get(name)
                if mine is None:
                    self.regions[name] = dict(incoming)
                    continue
                for key, value in incoming.items():
                    if key == "name":
                        continue
                    if key == "max_union":
                        mine[key] = max(mine.get(key, 0), value)
                    else:
                        mine[key] = mine.get(key, 0) + value

    def absorb(self, snapshot: dict, tid: str | None = None) -> None:
        """Merge a serialized child snapshot (worker envelope or nested
        tracing block) into this collector.

        ``tid`` relabels the child's spans onto one track — the parent
        uses ``worker-N`` so a reassembled trace shows each worker as
        its own row.
        """
        for row in snapshot.get("spans", ()):
            name, cat, child_tid, ts, dur, args = row
            self.add_span(name, cat, tid or child_tid, ts, dur, args)
        self.dropped_spans += snapshot.get("dropped_spans", 0)
        with self._lock:
            for key, value in snapshot.get("counters", {}).items():
                self.counters[key] = self.counters.get(key, 0) + value
            for key, doc in snapshot.get("histograms", {}).items():
                hist = self.histograms.get(key)
                if hist is None:
                    self.histograms[key] = Histogram.from_json(doc)
                else:
                    hist.merge(doc)
        self.merge_regions(snapshot.get("regions", {}))
        # Re-sequence child events onto this collector's ring so seq
        # stays monotonic for ``/events?since=`` readers.
        for child in snapshot.get("events", ()):
            with self._lock:
                self.event_seq += 1
                record = dict(child)
                record["seq"] = self.event_seq
                self.events.append(record)

    # -- serialization ---------------------------------------------------

    def snapshot(self) -> dict:
        """Portable dict of everything recorded (the result envelope)."""
        with self._lock:
            return {
                "t0": self.t0,
                "spans": [event.as_row() for event in self.spans],
                "dropped_spans": self.dropped_spans,
                "counters": dict(self.counters),
                "histograms": {name: h.to_json() for name, h in self.histograms.items()},
                "regions": {name: dict(stats) for name, stats in self.regions.items()},
                "events": [dict(e) for e in self.events],
            }

    def histogram_summaries(self) -> dict:
        """``{name: summary}`` for every histogram (the JSON ``/metrics`` shape)."""
        with self._lock:
            return {name: h.summary() for name, h in self.histograms.items()}


# ---------------------------------------------------------------------------
# The process-global tracing stack

_stack: list[Collector] = []
_active: Collector | None = None


def enabled() -> bool:
    """True when a tracing session is active in this process."""
    return _active is not None


def get_collector() -> Collector | None:
    """The innermost active collector, or None."""
    return _active


def span(name: str, cat: str = "app", tid: str = "main", **args):
    """Record a span into the active collector; no-op when disabled.

    Yields the span's mutable ``args`` dict (or None when disabled), so
    instrumentation can attach results as the span closes::

        with obs.span("sat.solve", cat="sat") as sargs:
            status = sat.solve()
        if sargs is not None:
            sargs["status"] = status
    """
    col = _active
    if col is None:
        return _NULL_SPAN
    return col.span(name, cat=cat, tid=tid, **args)


def count(name: str, n: int = 1) -> None:
    """Bump a counter in the active collector; no-op when disabled."""
    col = _active
    if col is not None:
        col.count(name, n)


def observe(name: str, value: float) -> None:
    """Record a latency observation into the active collector's
    histogram; no-op when disabled (same fast path as :func:`count`)."""
    col = _active
    if col is not None:
        col.observe(name, value)


def event(level: str, msg: str, **fields) -> None:
    """Emit a structured event into the active collector's ring.

    The ambient correlation ids (:func:`~repro.obs.events.current_trace`)
    are filled in unless the caller passes explicit ``trace_id``/``ob_id``
    keyword fields.  No-op when tracing is disabled.
    """
    col = _active
    if col is None:
        return
    if "trace_id" not in fields or "ob_id" not in fields:
        trace_id, ob_id = current_trace()
        fields.setdefault("trace_id", trace_id)
        fields.setdefault("ob_id", ob_id)
    col.event(level, msg, **fields)


class _Tracing:
    """Context manager entering/leaving a tracing session.

    Nesting is allowed: an inner session shadows the outer one (events
    go to the innermost collector only) and, with ``absorb=True`` (the
    default), folds its events into the outer collector on exit so the
    outer trace stays coherent.  Worker-side sessions use
    ``absorb=False`` and ship their snapshot through the result
    envelope instead.
    """

    def __init__(self, absorb: bool = True, collector: Collector | None = None):
        self._absorb = absorb
        self.collector = collector or Collector()
        self._hook_token = None

    def __enter__(self) -> Collector:
        global _active
        _stack.append(self.collector)
        _active = self.collector
        self._hook_token = _install_term_hooks(self.collector)
        return self.collector

    def __exit__(self, exc_type, exc, tb) -> bool:
        global _active
        _remove_term_hooks(self._hook_token)
        _stack.pop()
        _active = _stack[-1] if _stack else None
        if self._absorb and _active is not None:
            _active.absorb(self.collector.snapshot())
        return False


def tracing(absorb: bool = True, collector: Collector | None = None) -> _Tracing:
    """Start a tracing session: ``with tracing() as col: ...``."""
    return _Tracing(absorb=absorb, collector=collector)


class _MaybeTracing:
    """``trace=`` knob semantics shared by the verifier entry points.

    ``trace`` may be falsy (no-op), True (collect; caller reads the
    collector), or a path string (collect and write a Chrome trace
    there on exit).
    """

    def __init__(self, trace):
        self._trace = trace
        self._inner: _Tracing | None = None

    def __enter__(self) -> Collector | None:
        if not self._trace:
            return None
        self._inner = _Tracing(absorb=True)
        return self._inner.__enter__()

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._inner is None:
            return False
        self._inner.__exit__(exc_type, exc, tb)
        if isinstance(self._trace, str):
            from .export import write_chrome_trace

            write_chrome_trace(self._inner.collector, self._trace)
        return False


def maybe_tracing(trace) -> _MaybeTracing:
    """Tracing gated on a ``trace`` knob (False | True | output path)."""
    return _MaybeTracing(trace)


# ---------------------------------------------------------------------------
# Term/merge hook chaining (sym.terms / sym.merges counters)


def _install_term_hooks(col: Collector):
    """Chain counting hooks onto the term manager and merge hook.

    Imported lazily so ``repro.obs`` itself has no import-time
    dependency on the smt/sym layers (they import us).
    """
    from ..smt.terms import manager
    from ..sym.merge import get_merge_hook, set_merge_hook

    old_term = manager.on_new_term
    old_merge = get_merge_hook()

    def term_hook(term):
        col.counters["sym.terms"] = col.counters.get("sym.terms", 0) + 1
        if old_term is not None:
            old_term(term)

    def merge_hook(guard, a, b):
        col.counters["sym.merges"] = col.counters.get("sym.merges", 0) + 1
        if old_merge is not None:
            old_merge(guard, a, b)

    manager.on_new_term = term_hook
    set_merge_hook(merge_hook)
    return (old_term, old_merge, term_hook, merge_hook)


def _remove_term_hooks(token) -> None:
    if token is None:
        return
    from ..smt.terms import manager
    from ..sym.merge import get_merge_hook, set_merge_hook

    old_term, old_merge, term_hook, merge_hook = token
    # Only unwind if nobody chained on top of us in the meantime.
    if manager.on_new_term is term_hook:
        manager.on_new_term = old_term
    if get_merge_hook() is merge_hook:
        set_merge_hook(old_merge)
