"""Correlation IDs and the structured event log.

Every job submitted to the fleet gets a ``trace_id`` (16 hex chars)
and every obligation within it an ``ob_id`` (``<trace_id>.<index>``).
The pair travels with the work: ``serve.client`` sends it as an
``X-Repro-Trace`` header, the daemon binds it around the job thread,
the scheduler ships it inside worker envelopes, and the remote-store
client re-emits it on every HTTP request — so one obligation can be
followed from submit to solve to fetch across process boundaries.

The binding is a thread-local stack (:func:`trace_context`): code deep
in the solver never sees an explicit id, it just records spans and
events, and the collector stamps the ambient ids onto them.  Events
are leveled structured records (``ts``/``level``/``msg``/``trace_id``/
``ob_id`` plus free-form fields) ring-buffered by the collector and
served by the daemon at ``GET /events?since=<seq>``.
"""

from __future__ import annotations

import json
import secrets
import threading

__all__ = [
    "EVENT_LEVELS",
    "TRACE_HEADER",
    "current_trace",
    "event_jsonl",
    "format_trace_header",
    "new_trace_id",
    "parse_trace_header",
    "trace_context",
]

# The HTTP header correlation ids travel in, end to end:
# client -> daemon -> (scheduler envelope) -> remote store.
TRACE_HEADER = "X-Repro-Trace"

# Severity order for ``GET /events?level=``-style filtering.
EVENT_LEVELS = ("debug", "info", "warn", "error")

_local = threading.local()


def new_trace_id() -> str:
    """A fresh 16-hex-char correlation id (64 bits of entropy)."""
    return secrets.token_hex(8)


def current_trace() -> tuple[str | None, str | None]:
    """The ``(trace_id, ob_id)`` bound to this thread, or ``(None, None)``."""
    stack = getattr(_local, "stack", None)
    if not stack:
        return (None, None)
    return stack[-1]


class _TraceContext:
    """Context manager binding ``(trace_id, ob_id)`` to the thread."""

    __slots__ = ("_ids",)

    def __init__(self, trace_id: str | None, ob_id: str | None):
        self._ids = (trace_id, ob_id)

    def __enter__(self) -> tuple[str | None, str | None]:
        stack = getattr(_local, "stack", None)
        if stack is None:
            stack = _local.stack = []
        if self._ids[0] is None and stack:
            # Inherit the enclosing trace_id when only an ob_id is set.
            self._ids = (stack[-1][0], self._ids[1])
        stack.append(self._ids)
        return self._ids

    def __exit__(self, exc_type, exc, tb) -> bool:
        _local.stack.pop()
        return False


def trace_context(trace_id: str | None, ob_id: str | None = None) -> _TraceContext:
    """Bind a correlation id pair to the current thread::

        with trace_context(trace_id, ob_id):
            ...  # spans/events recorded here are stamped with the ids
    """
    return _TraceContext(trace_id, ob_id)


def format_trace_header(trace_id: str | None, ob_id: str | None = None) -> str | None:
    """Header value for the ids: ``<trace_id>`` or ``<trace_id>;<ob_id>``."""
    if trace_id is None:
        return None
    return trace_id if ob_id is None else f"{trace_id};{ob_id}"


def parse_trace_header(value: str | None) -> tuple[str | None, str | None]:
    """Inverse of :func:`format_trace_header`; tolerant of junk."""
    if not value:
        return (None, None)
    parts = value.strip().split(";", 1)
    trace_id = parts[0] or None
    ob_id = parts[1].strip() or None if len(parts) == 2 else None
    return (trace_id, ob_id)


def event_jsonl(events: list[dict]) -> str:
    """Render event records as JSONL (one compact object per line)."""
    return "\n".join(json.dumps(e, sort_keys=True) for e in events)
