"""Trace exporters: Chrome ``trace_event`` JSON and JSONL.

The Chrome format is the one ``chrome://tracing`` and Perfetto load
directly: an object with a ``traceEvents`` list of complete ("ph: X")
events, timestamps in microseconds.  Each span's category is the
Figure-1 layer that emitted it (``sym``, ``bitblast``, ``sat``,
``solver-cache``, ``scheduler``) and its ``tid`` is the track —
``main`` for the parent process, ``worker-N`` for scheduler workers —
so a reassembled multi-process run renders as one timeline with a row
per worker.

``validate_chrome_trace`` is the schema check shared by the tests and
the CI smoke step (``scripts/check_trace.py``).
"""

from __future__ import annotations

import json
import os

from .collector import Collector

# The Prometheus exposition pair lives in ``.prom``; re-exported here
# because this module is the stack's exporter façade (the CI scrape
# gate imports the parser from ``repro.obs.export``).
from .prom import parse_prometheus, render_prometheus

__all__ = [
    "chrome_trace",
    "jsonl_lines",
    "merge_chrome_traces",
    "parse_prometheus",
    "render_prometheus",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
]

# The five instrumented layers of the Figure-1 stack; CI asserts an
# exported end-to-end trace contains spans from every one of them.
LAYER_CATEGORIES = ("sym", "bitblast", "sat", "solver-cache", "scheduler")


def _snapshot(source) -> dict:
    if isinstance(source, Collector):
        return source.snapshot()
    return source


def chrome_trace(source) -> dict:
    """Render a Collector (or snapshot dict) as Chrome trace JSON.

    Timestamps are normalized so the earliest span starts at t=0 —
    absolute ``perf_counter`` values are meaningless to a viewer.
    """
    snap = _snapshot(source)
    rows = snap.get("spans", [])
    t0 = min((row[3] for row in rows), default=0.0)
    pid = os.getpid()
    events = []
    for name, cat, tid, ts, dur, args in rows:
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": round((ts - t0) * 1e6, 1),
            "dur": round(dur * 1e6, 1),
            "pid": pid,
            "tid": tid,
        }
        if args:
            event["args"] = args
        events.append(event)
    events.sort(key=lambda e: (e["ts"], -e["dur"]))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": dict(sorted(snap.get("counters", {}).items())),
            "dropped_spans": snap.get("dropped_spans", 0),
        },
    }


def merge_chrome_traces(docs: list[dict]) -> dict:
    """Merge per-daemon Chrome traces into one fleet-wide timeline.

    Each input document (a ``chrome_trace`` export or a raw collector
    snapshot) becomes its own ``pid`` (1-based input order) so a viewer
    renders one process group per daemon, with the original worker
    tracks preserved as ``tid`` rows inside it.  Counters are summed
    across inputs; ``ts`` values are kept relative to each input's own
    t=0 (the exports were already normalized per process).
    """
    events: list = []
    counters: dict = {}
    dropped = 0
    for pid, doc in enumerate(docs, 1):
        if "traceEvents" not in doc:
            doc = chrome_trace(doc)
        for event in doc.get("traceEvents", []):
            merged = dict(event)
            merged["pid"] = pid
            events.append(merged)
        other = doc.get("otherData", {})
        for key, value in other.get("counters", {}).items():
            if isinstance(value, (int, float)):
                counters[key] = counters.get(key, 0) + value
        dropped += other.get("dropped_spans", 0) or 0
    events.sort(key=lambda e: (e["ts"], -e.get("dur", 0)))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": dict(sorted(counters.items())),
            "dropped_spans": dropped,
            "merged_from": len(docs),
        },
    }


def _ensure_parent(path: str) -> None:
    parent = os.path.dirname(os.path.abspath(path))
    os.makedirs(parent, exist_ok=True)


def write_chrome_trace(source, path: str) -> dict:
    """Write Chrome trace JSON to ``path``; returns the document."""
    doc = chrome_trace(source)
    _ensure_parent(path)
    with open(path, "w") as handle:
        json.dump(doc, handle)
    return doc


def jsonl_lines(source):
    """Yield one JSON document per span, then one ``counters`` record."""
    snap = _snapshot(source)
    for name, cat, tid, ts, dur, args in snap.get("spans", []):
        record = {"type": "span", "name": name, "cat": cat, "tid": tid, "ts": ts, "dur": dur}
        if args:
            record["args"] = args
        yield json.dumps(record)
    yield json.dumps(
        {"type": "counters", "counters": dict(sorted(snap.get("counters", {}).items()))}
    )


def write_jsonl(source, path: str) -> None:
    _ensure_parent(path)
    with open(path, "w") as handle:
        for line in jsonl_lines(source):
            handle.write(line + "\n")


def validate_chrome_trace(doc) -> list[str]:
    """Schema-check a Chrome trace document; returns a list of problems
    (empty = valid).  Checks the keys Perfetto/chrome://tracing rely on."""
    problems: list[str] = []
    if not isinstance(doc, dict):
        return [f"top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {i} is not an object")
            continue
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in event:
                problems.append(f"event {i} ({event.get('name', '?')}) missing {key!r}")
        if event.get("ph") == "X" and "dur" not in event:
            problems.append(f"event {i} ({event.get('name', '?')}) is ph=X without dur")
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"event {i} has bad ts {ts!r}")
        if len(problems) > 20:
            problems.append("... (truncated)")
            break
    return problems
