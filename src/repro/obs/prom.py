"""Prometheus text exposition (format 0.0.4) — render and parse.

The daemon's ``GET /metrics`` content-negotiates this format alongside
its JSON document; ``python -m repro.obs.top`` and the CI serve-load
gate consume it.  Both directions live here and are stdlib-only:

  * :func:`render_prometheus` turns counters / gauges / histograms
    into the text format (``# TYPE`` lines, ``_bucket``/``_sum``/
    ``_count`` series with cumulative ``le`` labels);
  * :func:`parse_prometheus` reads that text back into the same shape,
    so tests can assert a lossless round trip and tooling does not
    need a Prometheus client library.

Metric names are namespaced ``repro_`` and sanitized from the dotted
internal names (``obligation.wall_seconds`` →
``repro_obligation_wall_seconds``).
"""

from __future__ import annotations

import math
import re

__all__ = [
    "CONTENT_TYPE",
    "metric_name",
    "parse_prometheus",
    "render_prometheus",
]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
# One sample line: name{labels} value  (labels optional).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)\s*$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def metric_name(name: str, prefix: str = "repro") -> str:
    """Sanitize a dotted internal name into a Prometheus metric name."""
    clean = _NAME_RE.sub("_", name)
    if prefix and not clean.startswith(prefix + "_"):
        clean = f"{prefix}_{clean}"
    return clean


def _fmt(value: float) -> str:
    """Shortest exact-enough float rendering (and +Inf spelling)."""
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def render_prometheus(
    counters: dict | None = None,
    gauges: dict | None = None,
    histograms: dict | None = None,
    prefix: str = "repro",
) -> str:
    """Render the three metric families as Prometheus 0.0.4 text.

    ``histograms`` maps internal names to either
    :class:`~repro.obs.collector.Histogram` objects or their
    ``to_json()`` dicts (``bounds``/``buckets``/``count``/``sum``).
    Output is sorted by metric name so successive scrapes diff cleanly.
    """
    lines: list[str] = []
    for name in sorted(counters or {}):
        metric = metric_name(name, prefix)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_fmt(counters[name])}")
    for name in sorted(gauges or {}):
        value = gauges[name]
        if value is None:
            continue
        metric = metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_fmt(value)}")
    for name in sorted(histograms or {}):
        hist = histograms[name]
        doc = hist if isinstance(hist, dict) else hist.to_json()
        metric = metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        cum = 0
        for bound, n in zip(doc["bounds"], doc["buckets"]):
            cum += n
            lines.append(f'{metric}_bucket{{le="{_fmt(bound)}"}} {cum}')
        cum += doc["buckets"][len(doc["bounds"])]
        lines.append(f'{metric}_bucket{{le="+Inf"}} {cum}')
        lines.append(f"{metric}_sum {_fmt(doc['sum'])}")
        lines.append(f"{metric}_count {doc['count']}")
    return "\n".join(lines) + "\n"


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    return float(text)


def parse_prometheus(text: str) -> dict:
    """Parse Prometheus 0.0.4 text into ``{counters, gauges, histograms}``.

    Histograms come back as ``{name: {"bounds": [...], "buckets": [...],
    "count": n, "sum": s}}`` — per-bucket (non-cumulative) counts in
    bound order with the +Inf overflow last, i.e. the same shape
    :meth:`Histogram.to_json` produces (minus min/max, which the text
    format cannot carry).  Raises ``ValueError`` on malformed lines, so
    the CI scrape gate fails loudly on invalid exposition output.
    """
    types: dict[str, str] = {}
    counters: dict[str, float] = {}
    gauges: dict[str, float] = {}
    raw_hist: dict[str, dict] = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split()
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        value = _parse_value(match.group("value"))
        labels = dict(_LABEL_RE.findall(match.group("labels") or ""))
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and types.get(name[: -len(suffix)]) == "histogram":
                base = name[: -len(suffix)]
                break
        kind = types.get(base)
        if kind == "histogram":
            hist = raw_hist.setdefault(base, {"cum": [], "sum": 0.0, "count": 0})
            if name.endswith("_bucket"):
                if "le" not in labels:
                    raise ValueError(f"line {lineno}: histogram bucket without le label")
                hist["cum"].append((_parse_value(labels["le"]), value))
            elif name.endswith("_sum"):
                hist["sum"] = value
            elif name.endswith("_count"):
                hist["count"] = int(value)
        elif kind == "gauge":
            gauges[name] = value
        else:
            # counter, or untyped (treated as a counter).
            counters[name] = value
    histograms: dict[str, dict] = {}
    for name, hist in raw_hist.items():
        cum = sorted(hist["cum"], key=lambda pair: pair[0])
        if not cum or cum[-1][0] != math.inf:
            raise ValueError(f"histogram {name}: missing +Inf bucket")
        bounds: list[float] = []
        buckets: list[int] = []
        prev = 0.0
        for bound, total in cum:
            buckets.append(int(total - prev))
            prev = total
            if bound != math.inf:
                bounds.append(bound)
        histograms[name] = {
            "bounds": bounds,
            "buckets": buckets,
            "count": hist["count"],
            "sum": hist["sum"],
        }
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
