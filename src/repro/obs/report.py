"""Terminal profile report: ``python -m repro.obs.report BENCH_fig11.json``.

Ranks proof obligations by wall time and symbolic-profiler regions by
the §3.2 bottleneck score — the profile-then-optimize loop the paper
runs with SymPro, over the artifact a traced benchmark run persisted.

Accepts any JSON document that either *is* an obs summary (has
``obligations``/``regions``/``counters`` keys) or carries one under an
``obs`` key (``BENCH_fig11.json``, ``BENCH_runner.json``).
"""

from __future__ import annotations

import argparse
import json
import sys

__all__ = ["summarize", "render_report", "main"]


def summarize(collector, profiler=None) -> dict:
    """Condense a Collector (plus optional SymProfiler) into the
    ``obs`` section persisted in benchmark artifacts.

    Obligation rows come from the scheduler-category spans (one per
    obligation, whichever process solved it); region rows come from the
    profiler when one is supplied (it has both parent- and worker-side
    regions merged), else from the collector's absorbed worker regions.
    """
    obligations = []
    for event in collector.spans:
        if event.cat != "scheduler":
            continue
        row = {"name": event.name, "wall_s": event.dur, "worker": event.tid}
        if event.args:
            row.update(event.args)
        obligations.append(row)
    obligations.sort(key=lambda r: r["wall_s"], reverse=True)

    if profiler is not None:
        regions = {name: stats.as_dict() for name, stats in profiler.regions.items()}
    else:
        regions = {name: dict(stats) for name, stats in collector.regions.items()}
    region_rows = sorted(regions.values(), key=_region_score, reverse=True)

    return {
        "counters": dict(sorted(collector.counters.items())),
        "spans": len(collector.spans),
        "dropped_spans": collector.dropped_spans,
        "obligations": obligations,
        "regions": region_rows,
        "histograms": {
            name: hist.summary() for name, hist in sorted(collector.histograms.items())
        },
    }


def _region_score(region: dict) -> float:
    """§3.2 bottleneck score of an aggregated region row (delegates to
    ``RegionStats`` so the weights live in exactly one place)."""
    from ..sym.profiler import RegionStats

    return RegionStats(
        name=region.get("name", "?"),
        terms=region.get("terms", 0),
        merges=region.get("merges", 0),
        splits=region.get("splits", 0),
        max_union=region.get("max_union", 0),
    ).score


def _extract_obs(doc: dict) -> dict:
    if isinstance(doc, dict) and isinstance(doc.get("obs"), dict):
        return doc["obs"]
    return doc if isinstance(doc, dict) else {}


def render_report(doc: dict, top: int = 15) -> str:
    """The human-readable profile for one artifact document."""
    obs = _extract_obs(doc)
    lines: list[str] = []

    if isinstance(doc.get("wall_s"), (int, float)):
        lines.append(
            f"run: wall {doc['wall_s']:.2f}s, {doc.get('obligations', '?')} obligations, "
            f"{doc.get('cache_hits', 0)} cache hits"
        )

    obligations = obs.get("obligations") or []
    lines.append(f"\n== obligations by wall time (top {min(top, len(obligations))}) ==")
    if obligations:
        lines.append(
            f"{'obligation':<44} {'wall(s)':>8} {'worker':>9} {'stolen':>6} "
            f"{'attempts':>8} {'queued(s)':>9}"
        )
        for row in obligations[:top]:
            lines.append(
                f"{row.get('name', '?')[:44]:<44} {row.get('wall_s', 0.0):>8.3f} "
                f"{str(row.get('worker', '-')):>9} {str(row.get('stolen', '-')):>6} "
                f"{str(row.get('attempts', '-')):>8} {row.get('queued_s', 0.0):>9.3f}"
            )
    else:
        lines.append("  (none recorded — run with tracing enabled)")

    regions = obs.get("regions") or []
    lines.append(f"\n== regions by §3.2 bottleneck score (top {min(top, len(regions))}) ==")
    if regions:
        lines.append(
            f"{'region':<28} {'calls':>7} {'terms':>9} {'merges':>8} {'splits':>7} "
            f"{'maxU':>5} {'incl(s)':>8} {'excl(s)':>8} {'score':>10}"
        )
        for region in regions[:top]:
            lines.append(
                f"{region.get('name', '?')[:28]:<28} {region.get('calls', 0):>7} "
                f"{region.get('terms', 0):>9} {region.get('merges', 0):>8} "
                f"{region.get('splits', 0):>7} {region.get('max_union', 0):>5} "
                f"{region.get('time_s', 0.0):>8.3f} {region.get('excl_s', 0.0):>8.3f} "
                f"{_region_score(region):>10.0f}"
            )
    else:
        lines.append("  (none recorded)")

    histograms = obs.get("histograms") or {}
    if histograms:
        lines.append(f"\n== latency histograms ({len(histograms)}) ==")
        lines.append(
            f"{'histogram':<36} {'count':>7} {'p50(ms)':>9} {'p90(ms)':>9} "
            f"{'p99(ms)':>9} {'max(ms)':>9}"
        )
        for name, summary in sorted(histograms.items()):
            if not isinstance(summary, dict):
                continue
            lines.append(
                f"{name[:36]:<36} {summary.get('count', 0):>7} "
                f"{summary.get('p50', 0.0) * 1e3:>9.2f} "
                f"{summary.get('p90', 0.0) * 1e3:>9.2f} "
                f"{summary.get('p99', 0.0) * 1e3:>9.2f} "
                f"{(summary.get('max') or 0.0) * 1e3:>9.2f}"
            )

    counters = obs.get("counters") or {}
    lines.append(f"\n== counters ({len(counters)}) ==")
    for name, value in sorted(counters.items()):
        # Tolerant of schema drift: a counter that is not a plain number
        # (older or newer artifact versions) renders as-is instead of
        # killing the whole report.
        shown = value if isinstance(value, (int, float)) else str(value)
        lines.append(f"  {name:<40} {shown:>14}")

    cert_line = _cert_summary(doc, counters)
    if cert_line:
        lines.append(f"\n{cert_line}")
    if obs.get("dropped_spans"):
        lines.append(f"\n({obs['dropped_spans']} spans dropped past the buffer cap)")
    return "\n".join(lines)


def _cert_summary(doc: dict, counters: dict) -> str | None:
    """One line on proof-certificate coverage, when anything in the
    artifact mentions certificates.

    Stores and artifacts are routinely mixed — entries written before
    certificates existed next to certified ones, counters present in
    one run and absent in the next — so every field here is optional
    and type-checked; absence or junk means "no line", never a crash.
    """
    emitted = counters.get("solver.certs")
    errors = counters.get("solver.cert_errors")
    store = doc.get("store") if isinstance(doc.get("store"), dict) else {}
    stored = store.get("certificates")
    entries = store.get("entries")
    parts = []
    if isinstance(emitted, (int, float)):
        parts.append(f"{int(emitted)} certificates emitted")
    if isinstance(errors, (int, float)) and errors:
        parts.append(f"{int(errors)} emission errors")
    if isinstance(stored, (int, float)) and isinstance(entries, (int, float)):
        parts.append(f"store holds {int(stored)}/{int(entries)} certified entries")
    if not parts:
        return None
    return "certificates: " + ", ".join(parts) + " (audit: python -m repro.smt.checkproof --store)"


def _report_json(doc: dict, top: int) -> dict:
    """The ranked-bottleneck report as a machine-readable document
    (the ``--json`` twin of :func:`render_report`)."""
    obs = _extract_obs(doc)
    obligations = obs.get("obligations") or []
    regions = obs.get("regions") or []
    out = {
        "obligations": obligations[:top],
        "regions": regions[:top],
        "counters": dict(sorted((obs.get("counters") or {}).items())),
        "histograms": obs.get("histograms") or {},
        "dropped_spans": obs.get("dropped_spans", 0),
    }
    if isinstance(doc.get("wall_s"), (int, float)):
        out["wall_s"] = doc["wall_s"]
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "artifacts",
        nargs="+",
        metavar="artifact",
        help="BENCH_fig11.json / BENCH_runner.json / obs summary / Chrome trace JSON",
    )
    parser.add_argument("--top", type=int, default=15, help="rows per ranking table")
    parser.add_argument(
        "--json", action="store_true", help="emit the ranked report as JSON instead of text"
    )
    parser.add_argument(
        "--merge",
        action="store_true",
        help="reassemble the artifacts (Chrome traces or obs snapshots) "
        "into one fleet-wide Chrome trace, one pid per input",
    )
    parser.add_argument(
        "--out",
        default="trace_merged.json",
        help="output path for --merge (default: trace_merged.json)",
    )
    args = parser.parse_args(argv)

    docs = []
    for artifact in args.artifacts:
        try:
            with open(artifact) as handle:
                docs.append(json.load(handle))
        except (OSError, ValueError) as exc:
            print(f"cannot read {artifact}: {exc}", file=sys.stderr)
            return 2

    if args.merge:
        from .export import _ensure_parent, merge_chrome_traces, validate_chrome_trace

        merged = merge_chrome_traces(docs)
        problems = validate_chrome_trace(merged)
        if problems:
            for problem in problems:
                print(f"merge: {problem}", file=sys.stderr)
            return 4
        _ensure_parent(args.out)
        with open(args.out, "w") as handle:
            json.dump(merged, handle)
        print(
            f"merged {len(docs)} trace(s), {len(merged['traceEvents'])} events "
            f"-> {args.out}"
        )
        return 0

    if len(docs) > 1:
        print("multiple artifacts need --merge", file=sys.stderr)
        return 2
    doc = docs[0]

    obs = _extract_obs(doc)
    has_content = isinstance(obs.get("counters"), dict) and obs["counters"]
    has_content = has_content or isinstance(obs.get("obligations"), list) and obs["obligations"]
    has_content = has_content or isinstance(obs.get("regions"), list) and obs["regions"]
    if not has_content:
        print(
            f"{args.artifacts[0]}: no obs section to report on — re-run the "
            "benchmark with tracing enabled (e.g. bench_fig11_verify.py "
            "--trace) to collect counters, spans, and regions.",
            file=sys.stderr,
        )
        return 3

    if args.json:
        json.dump(_report_json(doc, args.top), sys.stdout, indent=2)
        print()
    else:
        print(render_report(doc, top=args.top))
    return 0


if __name__ == "__main__":
    sys.exit(main())
