"""Live fleet dashboard: ``python -m repro.obs.top URL [URL ...]``.

Polls one or more daemon ``/metrics`` endpoints (JSON flavour — the
Prometheus text flavour is for real scrapers) plus ``/healthz`` and
``/jobs``, and renders a refreshing terminal view: obligations/sec,
wall-time p50/p99, solver-cache hit rate, worker utilization, remote
store health, and per-job progress bars.

Two modes:

* interactive (default) — redraws every ``--interval`` seconds using
  ANSI clear; rates are computed from deltas between polls.
* ``--once`` — one sample, one render, exit 0.  With ``--json`` the
  render is a machine-readable document (the CI serve-load gate runs
  ``--once --json`` and asserts ob/s > 0 and p50 <= p99).

Store endpoints (``/store/metrics``) are also accepted; they expose a
flat counters/gauges document and render as a health line only.

Everything is stdlib; a dead endpoint renders as ``DOWN`` rather than
killing the loop.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

__all__ = ["main", "sample_endpoint", "build_doc"]

DEFAULT_URL = "http://127.0.0.1:8631"
OB_HIST = "obligation.wall_seconds"


# ---------------------------------------------------------------------------
# sampling


def _get_json(url: str, timeout_s: float) -> dict | list:
    request = urllib.request.Request(url, headers={"Accept": "application/json"})
    with urllib.request.urlopen(request, timeout=timeout_s) as reply:
        return json.loads(reply.read())


def sample_endpoint(base_url: str, timeout_s: float = 5.0) -> dict:
    """One poll of one endpoint.  Never raises: failures come back as
    ``{"url": ..., "ok": False, "error": ...}``."""
    base = base_url.rstrip("/")
    if "://" not in base:
        base = f"http://{base}"
    out: dict = {"url": base, "t": time.monotonic(), "ok": True}
    try:
        if base.endswith("/store"):
            out["kind"] = "store"
            out["metrics"] = _get_json(f"{base}/metrics", timeout_s)
            return out
        out["kind"] = "serve"
        out["metrics"] = _get_json(f"{base}/metrics", timeout_s)
        out["healthz"] = _get_json(f"{base}/healthz", timeout_s)
        try:
            out["jobs"] = _get_json(f"{base}/jobs", timeout_s).get("jobs", [])
        except (OSError, ValueError):
            out["jobs"] = []
    except (urllib.error.URLError, OSError, ValueError) as exc:
        return {"url": base, "t": time.monotonic(), "ok": False, "error": str(exc)}
    return out


# ---------------------------------------------------------------------------
# derived stats


def _hist(metrics: dict, name: str) -> dict:
    return ((metrics.get("obs") or {}).get("histograms") or {}).get(name) or {}


def _counter(metrics: dict, name: str) -> float:
    return ((metrics.get("obs") or {}).get("counters") or {}).get(name, 0)


def _rates(now: dict, prev: dict | None) -> dict:
    """ob/s and cache-hit/s from two samples; falls back to lifetime
    averages (count / uptime) when there is no previous sample."""
    metrics = now.get("metrics") or {}
    hist = _hist(metrics, OB_HIST)
    count = hist.get("count", 0)
    uptime = metrics.get("uptime_s") or (now.get("healthz") or {}).get("uptime_s") or 0
    if prev is not None and prev.get("ok"):
        dt = max(1e-9, now["t"] - prev["t"])
        prev_count = _hist(prev.get("metrics") or {}, OB_HIST).get("count", 0)
        ob_per_s = max(0.0, count - prev_count) / dt
    else:
        ob_per_s = count / uptime if uptime > 0 else 0.0
    hits = _counter(metrics, "solver.cache.hits")
    misses = _counter(metrics, "solver.cache.misses")
    lookups = hits + misses
    # Busy-fraction of the pool over the process lifetime: total
    # obligation wall time spread across pool_workers * uptime.
    workers = ((metrics.get("scheduler") or {}) or {}).get("pool_workers", 0)
    busy = hist.get("sum", 0.0)
    utilization = busy / (workers * uptime) if workers and uptime > 0 else 0.0
    return {
        "ob_per_s": ob_per_s,
        "obligations": count,
        "p50_ms": (hist.get("p50") or 0.0) * 1e3,
        "p90_ms": (hist.get("p90") or 0.0) * 1e3,
        "p99_ms": (hist.get("p99") or 0.0) * 1e3,
        "cache_hit_rate": hits / lookups if lookups else None,
        "worker_utilization": min(1.0, utilization),
    }


def build_doc(samples: list[dict], prev: dict[str, dict] | None = None) -> dict:
    """The machine-readable dashboard document (``--json`` output)."""
    endpoints = []
    for sample in samples:
        entry: dict = {"url": sample["url"], "ok": sample.get("ok", False)}
        if not entry["ok"]:
            entry["error"] = sample.get("error", "unreachable")
            endpoints.append(entry)
            continue
        if sample.get("kind") == "store":
            entry["kind"] = "store"
            entry["store"] = sample.get("metrics")
            endpoints.append(entry)
            continue
        metrics = sample.get("metrics") or {}
        healthz = sample.get("healthz") or {}
        scheduler = metrics.get("scheduler") or {}
        store = metrics.get("store") or {}
        obs = metrics.get("obs") or {}
        entry.update(
            {
                "kind": "serve",
                "version": healthz.get("version"),
                "uptime_s": metrics.get("uptime_s", healthz.get("uptime_s", 0.0)),
                "jobs": metrics.get("jobs") or {},
                "pool_workers": scheduler.get("pool_workers", 0),
                "queued": scheduler.get("queued", 0),
                "inflight": scheduler.get("inflight", 0),
                "remote": {
                    "breaker_open": bool(store.get("remote_breaker_open")),
                    "spool_pending": store.get("spool_pending", 0),
                    "hits": _counter(metrics, "store.remote.hits"),
                    "misses": _counter(metrics, "store.remote.misses"),
                    "errors": _counter(metrics, "store.remote.errors"),
                },
                "events": obs.get("events", 0),
                "histograms": obs.get("histograms") or {},
                **_rates(sample, (prev or {}).get(sample["url"])),
            }
        )
        entry["active_jobs"] = [
            {
                "id": j.get("id"),
                "state": j.get("state"),
                "trace_id": j.get("trace_id"),
                "done": (j.get("progress") or {}).get("done", 0),
                "total": (j.get("progress") or {}).get("total"),
            }
            for j in sample.get("jobs", [])
            if j.get("state") in ("queued", "running")
        ]
        endpoints.append(entry)
    return {"endpoints": endpoints}


# ---------------------------------------------------------------------------
# rendering


def _bar(done: int, total: int | None, width: int = 24) -> str:
    if not total:
        return "[" + "?" * width + "]"
    filled = min(width, int(width * done / total))
    return "[" + "#" * filled + "." * (width - filled) + f"] {done}/{total}"


def _pct(value: float | None) -> str:
    return "--" if value is None else f"{100.0 * value:5.1f}%"


def render(doc: dict) -> str:
    lines: list[str] = []
    for entry in doc["endpoints"]:
        if not entry.get("ok"):
            lines.append(f"{entry['url']}  DOWN  ({entry.get('error', '?')})")
            lines.append("")
            continue
        if entry.get("kind") == "store":
            gauges = (entry.get("store") or {}).get("gauges", {})
            lines.append(
                f"{entry['url']}  store  entries={gauges.get('store.entries', '?')}"
                f"  spool={gauges.get('store.spool_pending', '?')}"
                f"  up={gauges.get('store.uptime_seconds', 0):.0f}s"
            )
            lines.append("")
            continue
        remote = entry["remote"]
        breaker = "OPEN" if remote["breaker_open"] else "closed"
        lines.append(
            f"{entry['url']}  repro {entry.get('version') or '?'}"
            f"  up {entry['uptime_s']:.0f}s"
            f"  workers {entry['pool_workers']}"
            f"  util {_pct(entry['worker_utilization'])}"
        )
        lines.append(
            f"  ob/s {entry['ob_per_s']:8.2f}   obligations {entry['obligations']:>7}"
            f"   queued {entry['queued']:>4}   inflight {entry['inflight']:>4}"
        )
        lines.append(
            f"  wall p50 {entry['p50_ms']:8.2f}ms  p90 {entry['p90_ms']:8.2f}ms"
            f"  p99 {entry['p99_ms']:8.2f}ms   cache hit {_pct(entry['cache_hit_rate'])}"
        )
        lines.append(
            f"  remote: breaker {breaker}  spool {remote['spool_pending']}"
            f"  hits {remote['hits']}  misses {remote['misses']}  errors {remote['errors']}"
        )
        for name, hist in sorted(entry.get("histograms", {}).items()):
            if name == OB_HIST or not hist.get("count"):
                continue
            lines.append(
                f"    {name:<32} n={hist['count']:<7}"
                f" p50={1e3 * (hist.get('p50') or 0):.2f}ms"
                f" p99={1e3 * (hist.get('p99') or 0):.2f}ms"
            )
        jobs = entry.get("active_jobs", [])
        if jobs:
            lines.append("  jobs:")
            for job in jobs:
                lines.append(
                    f"    {job['id']}  {job['state']:<8}"
                    f" {_bar(job['done'], job['total'])}  trace={job['trace_id'] or '-'}"
                )
        lines.append("")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# entry point


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.top",
        description="live dashboard over repro.serve /metrics endpoints",
    )
    parser.add_argument(
        "urls", nargs="*", default=[DEFAULT_URL],
        help=f"daemon base URLs (default {DEFAULT_URL})",
    )
    parser.add_argument("--interval", type=float, default=2.0, help="poll period, seconds")
    parser.add_argument("--timeout", type=float, default=5.0, help="per-request timeout")
    parser.add_argument("--once", action="store_true", help="sample once and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable document instead of the table")
    args = parser.parse_args(argv)
    urls = args.urls or [DEFAULT_URL]

    prev: dict[str, dict] = {}
    try:
        while True:
            samples = [sample_endpoint(url, args.timeout) for url in urls]
            doc = build_doc(samples, prev)
            if args.as_json:
                text = json.dumps(doc, indent=2, sort_keys=True)
            else:
                stamp = time.strftime("%H:%M:%S")
                text = f"repro.obs.top  {stamp}  ({len(urls)} endpoint(s))\n\n" + render(doc)
            if args.once:
                print(text)
                return 0 if all(e.get("ok") for e in doc["endpoints"]) else 1
            # Interactive refresh: clear screen, home cursor, redraw.
            sys.stdout.write("\x1b[2J\x1b[H" + text + "\n")
            sys.stdout.flush()
            prev = {s["url"]: s for s in samples if s.get("ok")}
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
