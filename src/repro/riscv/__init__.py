"""The RISC-V verifier (§5): RV32I/RV64I + M + Zicsr, machine mode.

Built by lifting the interpreter in ``interp.py``; the decoder is
validated against the encoder so binutils stays untrusted (§3.4).
"""

from .asm import AsmError, Assembler
from .cpu import CpuState, MACHINE_CSRS
from .decode import DecodeError, decode, decode_validated
from .encode import EncodeError, encode
from .insn import CSRS, Insn, REG_NAMES, REG_NUMBERS, reg_num
from .interp import RiscvInterp
from .pmp import PmpRegion, QuirkConfig, counter_readable, napot_region, pmp_check, pmp_regions_of

__all__ = [name for name in dir() if not name.startswith("_")]
