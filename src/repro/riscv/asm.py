"""A RISC-V assembler and linker substitute (gcc/binutils stand-in).

Builds binary :class:`Image` objects from programmatic assembly with
labels, pseudo-instructions (li/la/mv/j/call/ret/...), and data-symbol
declarations.  The resulting image is what the verifier consumes —
and because the verifier validates decoding against its own encoder
(§3.4), this assembler is *not* in the trusted computing base.
"""

from __future__ import annotations

from ..core.image import Image, Symbol
from .encode import encode
from .insn import CSRS, Insn, reg_num

__all__ = ["Assembler", "AsmError"]


class AsmError(Exception):
    pass


class Assembler:
    """Incremental assembly into a text section at a base address.

    Usage::

        asm = Assembler(base=0x80000000, xlen=64)
        asm.label("entry")
        asm.addi("sp", "sp", -16)
        asm.bnez("a0", "slow_path")
        ...
        image = asm.assemble()
    """

    def __init__(self, base: int = 0x8000_0000, xlen: int = 64):
        self.base = base
        self.xlen = xlen
        self._insns: list[Insn | tuple] = []  # Insn or ("label-use", ...)
        self._labels: dict[str, int] = {}  # label -> instruction index
        self._symbols: list[Symbol] = []
        self.entry_label: str | None = None

    # -- labels and symbols ------------------------------------------------------

    def label(self, name: str) -> None:
        if name in self._labels:
            raise AsmError(f"duplicate label {name!r}")
        self._labels[name] = len(self._insns)

    def entry(self, name: str) -> None:
        self.entry_label = name

    def data_symbol(self, name: str, addr: int, size: int, shape: tuple | None = None) -> None:
        """Declare a data object (the symbol table + debug-info stand-in)."""
        self._symbols.append(Symbol(name, addr, size, "object", shape))

    def addr_of(self, label: str) -> int:
        """Address of a label after assembly (labels resolve eagerly)."""
        if label not in self._labels:
            raise AsmError(f"undefined label {label!r}")
        return self.base + 4 * self._labels[label]

    # -- instruction emission -------------------------------------------------------

    def emit(self, name: str, rd=0, rs1=0, rs2=0, imm=0) -> None:
        self._insns.append(Insn(name, rd=reg_num(rd), rs1=reg_num(rs1), rs2=reg_num(rs2), imm=imm))

    def __getattr__(self, name: str):
        """Direct instruction emission: ``asm.add('a0','a1','a2')``."""
        from .insn import SPEC

        base = name.replace("_", ".")
        if base not in SPEC:
            raise AttributeError(name)
        spec = SPEC[base]

        def emitter(*args):
            if spec.fmt == "R":
                rd, rs1, rs2 = args
                self.emit(base, rd=rd, rs1=rs1, rs2=rs2)
            elif spec.fmt in ("I", "SHIFT"):
                if base in ("fence", "fence.i"):
                    self.emit(base)
                elif base in ("lb", "lbu", "lh", "lhu", "lw", "lwu", "ld"):
                    rd, imm, rs1 = args  # load rd, imm(rs1)
                    self.emit(base, rd=rd, rs1=rs1, imm=imm)
                else:
                    rd, rs1, imm = args
                    self.emit(base, rd=rd, rs1=rs1, imm=imm)
            elif spec.fmt == "S":
                rs2, imm, rs1 = args
                self.emit(base, rs1=rs1, rs2=rs2, imm=imm)
            elif spec.fmt == "B":
                rs1, rs2, target = args
                self._emit_branch(base, rs1, rs2, target)
            elif spec.fmt == "U":
                rd, imm = args
                self.emit(base, rd=rd, imm=imm)
            elif spec.fmt == "J":
                rd, target = args
                self._emit_jump(rd, target)
            elif spec.fmt == "CSR":
                rd, csr, rs1 = args
                self.emit(base, rd=rd, rs1=rs1, imm=self._csr(csr))
            elif spec.fmt == "CSRI":
                rd, csr, zimm = args
                self.emit(base, rd=rd, rs1=zimm, imm=self._csr(csr))
            elif spec.fmt == "SYS":
                self.emit(base)
            else:
                raise AsmError(f"cannot emit {base}")

        return emitter

    def _csr(self, csr) -> int:
        if isinstance(csr, str):
            return CSRS[csr]
        return csr

    def _emit_branch(self, name: str, rs1, rs2, target) -> None:
        index = len(self._insns)
        if isinstance(target, str):
            self._insns.append(("branch", name, reg_num(rs1), reg_num(rs2), target, index))
        else:
            self.emit(name, rs1=rs1, rs2=rs2, imm=target)

    def _emit_jump(self, rd, target) -> None:
        index = len(self._insns)
        if isinstance(target, str):
            self._insns.append(("jump", reg_num(rd), target, index))
        else:
            self.emit("jal", rd=rd, imm=target)

    # -- pseudo-instructions -----------------------------------------------------------

    def nop(self) -> None:
        self.emit("addi")

    def mv(self, rd, rs) -> None:
        self.emit("addi", rd=rd, rs1=rs)

    def not_(self, rd, rs) -> None:
        self.emit("xori", rd=rd, rs1=rs, imm=-1)

    def neg(self, rd, rs) -> None:
        self.emit("sub", rd=rd, rs2=rs)

    def seqz(self, rd, rs) -> None:
        self.emit("sltiu", rd=rd, rs1=rs, imm=1)

    def snez(self, rd, rs) -> None:
        self.emit("sltu", rd=rd, rs2=rs)

    def beqz(self, rs, target) -> None:
        self._emit_branch("beq", rs, 0, target)

    def bnez(self, rs, target) -> None:
        self._emit_branch("bne", rs, 0, target)

    def bgtu(self, rs1, rs2, target) -> None:
        self._emit_branch("bltu", rs2, rs1, target)

    def bleu(self, rs1, rs2, target) -> None:
        self._emit_branch("bgeu", rs2, rs1, target)

    def j(self, target) -> None:
        self._emit_jump(0, target)

    def call(self, target) -> None:
        self._emit_jump(1, target)  # ra = x1

    def ret(self) -> None:
        self.emit("jalr", rd=0, rs1=1, imm=0)

    def li(self, rd, value: int) -> None:
        """Load immediate, expanding to lui+addi as needed."""
        rd = reg_num(rd)
        value_s = value
        mask = (1 << self.xlen) - 1
        value &= mask
        signed = value - (1 << self.xlen) if value >> (self.xlen - 1) else value
        if -2048 <= signed <= 2047:
            self.emit("addi", rd=rd, imm=signed)
            return
        if self.xlen == 64 and not (-(1 << 31) <= signed < (1 << 31)):
            raise AsmError(f"li: 64-bit constant {value_s:#x} not supported; use la/data")
        low = signed & 0xFFF
        if low >= 0x800:
            low -= 0x1000
        high = (signed - low) & 0xFFFFFFFF
        self.emit("lui", rd=rd, imm=high)
        if low != 0:
            # RV64 needs addiw so the 32-bit intermediate is computed
            # and then sign-extended (lui+addi would mis-handle values
            # like 0x7fffffff whose lui part wraps negative).
            self.emit("addiw" if self.xlen == 64 else "addi", rd=rd, rs1=rd, imm=low)

    def la(self, rd, symbol_or_addr) -> None:
        """Load an absolute address (data symbols live below 2 GiB)."""
        if isinstance(symbol_or_addr, str):
            for sym in self._symbols:
                if sym.name == symbol_or_addr:
                    self.li(rd, sym.addr)
                    return
            raise AsmError(f"unknown data symbol {symbol_or_addr!r}")
        self.li(rd, symbol_or_addr)

    # -- assembly ------------------------------------------------------------------------

    def assemble(self) -> Image:
        words: dict[int, int] = {}
        resolved: list[Insn] = []
        for item in self._insns:
            if isinstance(item, Insn):
                resolved.append(item)
                continue
            if item[0] == "branch":
                _, name, rs1, rs2, label, index = item
                offset = self._label_offset(label, index)
                resolved.append(Insn(name, rs1=rs1, rs2=rs2, imm=offset))
            elif item[0] == "jump":
                _, rd, label, index = item
                offset = self._label_offset(label, index)
                resolved.append(Insn("jal", rd=rd, imm=offset))
            else:
                raise AsmError(f"bad pending item {item!r}")
        for i, insn in enumerate(resolved):
            words[self.base + 4 * i] = encode(insn, self.xlen)
        entry = self.base
        if self.entry_label is not None:
            entry = self.base + 4 * self._labels[self.entry_label]
        return Image(base=self.base, word_size=4, words=words, symbols=list(self._symbols), entry=entry)

    def _label_offset(self, label: str, index: int) -> int:
        if label not in self._labels:
            raise AsmError(f"undefined label {label!r}")
        return 4 * (self._labels[label] - index)
