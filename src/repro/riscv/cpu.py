"""RISC-V machine state (M-mode, XLEN parameterized).

The monitors run entirely in machine mode (§6.1); the verifier models
the registers, the machine-mode CSRs, and physical memory.  S/U-mode
execution is not interpreted — it is covered by the specification's
PMP/page-walk model (``repro.riscv.pmp``), as in the paper.
"""

from __future__ import annotations

from ..core.memory import Memory
from ..sym import SymBV, SymBool, bv_val, fresh_bv, merge

__all__ = ["CpuState", "MACHINE_CSRS"]

MACHINE_CSRS = [
    "mstatus",
    "mtvec",
    "mscratch",
    "mepc",
    "mcause",
    "mtval",
    "mie",
    "mip",
    "medeleg",
    "mideleg",
    "misa",
    "mhartid",
    "mcounteren",
    "mcycle",
    "minstret",
    "satp",
    "pmpcfg0",
    "pmpaddr0",
    "pmpaddr1",
    "pmpaddr2",
    "pmpaddr3",
    "pmpaddr4",
    "pmpaddr5",
    "pmpaddr6",
    "pmpaddr7",
]


class CpuState:
    """Registers, CSRs, memory, and trap bookkeeping."""

    __slots__ = ("xlen", "pc", "regs", "csrs", "mem", "exited", "trap")

    def __init__(
        self,
        xlen: int,
        pc: SymBV,
        regs: list[SymBV],
        csrs: dict[str, SymBV],
        mem: Memory,
    ):
        self.xlen = xlen
        self.pc = pc
        self.regs = regs
        self.csrs = csrs
        self.mem = mem
        self.exited = False  # set by mret/wfi; concrete control flow
        self.trap: str | None = None  # fault indicator (ecall/ebreak in M)

    # -- construction ----------------------------------------------------------

    @classmethod
    def symbolic(cls, xlen: int, pc: int, mem: Memory, prefix: str = "cpu") -> "CpuState":
        """Architecturally-defined trap-entry state (§3.4): concrete pc
        (the trap vector), symbolic general-purpose registers and CSRs."""
        regs = [bv_val(0, xlen)] + [fresh_bv(f"{prefix}.x{i}", xlen) for i in range(1, 32)]
        csrs = {name: fresh_bv(f"{prefix}.{name}", xlen) for name in MACHINE_CSRS}
        return cls(xlen, bv_val(pc, xlen), regs, csrs, mem)

    # -- register access ----------------------------------------------------------

    def reg(self, idx: int) -> SymBV:
        return self.regs[idx]

    def set_reg(self, idx: int, value: SymBV) -> None:
        if idx != 0:  # x0 is hard-wired to zero
            self.regs[idx] = value

    def csr(self, name: str) -> SymBV:
        return self.csrs[name]

    def set_csr(self, name: str, value: SymBV) -> None:
        self.csrs[name] = value

    # -- copying / merging ----------------------------------------------------------

    def copy(self) -> "CpuState":
        out = CpuState(self.xlen, self.pc, list(self.regs), dict(self.csrs), self.mem.copy())
        out.exited = self.exited
        out.trap = self.trap
        return out

    def __sym_merge__(self, guard: SymBool, other: "CpuState") -> "CpuState":
        if self.exited != other.exited or self.trap != other.trap:
            raise ValueError("cannot merge states with different control status")
        out = CpuState(
            self.xlen,
            merge(guard, self.pc, other.pc),
            [merge(guard, a, b) for a, b in zip(self.regs, other.regs)],
            {k: merge(guard, v, other.csrs[k]) for k, v in self.csrs.items()},
            merge(guard, self.mem, other.mem),
        )
        out.exited = self.exited
        out.trap = self.trap
        return out

    def __repr__(self) -> str:
        return f"CpuState(xlen={self.xlen}, pc={self.pc!r}, exited={self.exited})"
