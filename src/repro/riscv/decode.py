"""RISC-V instruction decoder, validated against the encoder (§3.4)."""

from __future__ import annotations

from .encode import encode
from .insn import (
    AUIPC,
    BRANCH,
    FUNCT12_SYS,
    Insn,
    JAL,
    JALR,
    LOAD,
    LUI,
    MISC_MEM,
    OP,
    OP_32,
    OP_IMM,
    OP_IMM_32,
    SPEC,
    STORE,
    SYSTEM,
)

__all__ = ["decode", "decode_validated", "DecodeError"]


class DecodeError(Exception):
    pass


def _sext(value: int, bits: int) -> int:
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


_BY_KEY: dict[tuple, str] = {}
for _name, _spec in SPEC.items():
    if _spec.fmt == "R":
        _BY_KEY[("R", _spec.opcode, _spec.funct3, _spec.funct7)] = _name
    elif _spec.fmt in ("I", "S", "B", "CSR", "CSRI"):
        _BY_KEY[(_spec.fmt, _spec.opcode, _spec.funct3)] = _name
    elif _spec.fmt == "SHIFT":
        _BY_KEY[("SHIFT", _spec.opcode, _spec.funct3, _spec.funct7)] = _name


def decode(word: int, xlen: int = 64) -> Insn:
    """Decode a 32-bit instruction word."""
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = (word >> 25) & 0x7F

    if opcode in (OP, OP_32):
        name = _BY_KEY.get(("R", opcode, funct3, funct7))
        if name is None:
            raise DecodeError(f"bad R-type word {word:#010x}")
        return Insn(name, rd=rd, rs1=rs1, rs2=rs2)

    if opcode in (OP_IMM, OP_IMM_32):
        if funct3 in (0b001, 0b101):
            shamt_bits = 6 if (xlen == 64 and opcode == OP_IMM) else 5
            shamt = (word >> 20) & ((1 << shamt_bits) - 1)
            f7 = funct7 & (0b1111110 if shamt_bits == 6 else 0b1111111)
            name = _BY_KEY.get(("SHIFT", opcode, funct3, f7))
            if name is None:
                raise DecodeError(f"bad shift word {word:#010x}")
            return Insn(name, rd=rd, rs1=rs1, imm=shamt)
        name = _BY_KEY.get(("I", opcode, funct3))
        if name is None:
            raise DecodeError(f"bad OP-IMM word {word:#010x}")
        return Insn(name, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))

    if opcode == LOAD or opcode == JALR:
        name = _BY_KEY.get(("I", opcode, funct3))
        if name is None:
            raise DecodeError(f"bad load/jalr word {word:#010x}")
        return Insn(name, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))

    if opcode == MISC_MEM:
        name = _BY_KEY.get(("I", opcode, funct3))
        if name is None:
            raise DecodeError(f"bad misc-mem word {word:#010x}")
        return Insn(name, rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))

    if opcode == STORE:
        name = _BY_KEY.get(("S", opcode, funct3))
        if name is None:
            raise DecodeError(f"bad store word {word:#010x}")
        imm = ((word >> 25) << 5) | ((word >> 7) & 0x1F)
        return Insn(name, rs1=rs1, rs2=rs2, imm=_sext(imm, 12))

    if opcode == BRANCH:
        name = _BY_KEY.get(("B", opcode, funct3))
        if name is None:
            raise DecodeError(f"bad branch word {word:#010x}")
        imm = (
            (((word >> 31) & 1) << 12)
            | (((word >> 7) & 1) << 11)
            | (((word >> 25) & 0x3F) << 5)
            | (((word >> 8) & 0xF) << 1)
        )
        return Insn(name, rs1=rs1, rs2=rs2, imm=_sext(imm, 13))

    if opcode == LUI:
        return Insn("lui", rd=rd, imm=word & 0xFFFFF000)
    if opcode == AUIPC:
        return Insn("auipc", rd=rd, imm=word & 0xFFFFF000)

    if opcode == JAL:
        imm = (
            (((word >> 31) & 1) << 20)
            | (((word >> 12) & 0xFF) << 12)
            | (((word >> 20) & 1) << 11)
            | (((word >> 21) & 0x3FF) << 1)
        )
        return Insn("jal", rd=rd, imm=_sext(imm, 21))

    if opcode == SYSTEM:
        if funct3 == 0:
            name = FUNCT12_SYS.get(word >> 20)
            if name is None or rd != 0 or rs1 != 0:
                raise DecodeError(f"bad system word {word:#010x}")
            return Insn(name)
        csr = word >> 20
        if funct3 in (0b001, 0b010, 0b011):
            name = _BY_KEY.get(("CSR", opcode, funct3))
            return Insn(name, rd=rd, rs1=rs1, imm=csr)
        if funct3 in (0b101, 0b110, 0b111):
            name = _BY_KEY.get(("CSRI", opcode, funct3))
            return Insn(name, rd=rd, rs1=rs1, imm=csr)
        raise DecodeError(f"bad csr word {word:#010x}")

    raise DecodeError(f"unknown opcode {opcode:#04x} in word {word:#010x}")


def decode_validated(word: int, xlen: int = 64) -> Insn:
    """Decode and validate via the encoder (§3.4).

    Re-encodes the decoded instruction and checks the bytes match the
    original word, removing the decoder (and any external disassembler)
    from the trusted computing base.
    """
    insn = decode(word, xlen)
    reencoded = encode(insn, xlen)
    if reencoded != word:
        raise DecodeError(
            f"decoder validation failed: {word:#010x} decodes to {insn!r} "
            f"which re-encodes to {reencoded:#010x}"
        )
    return insn
