"""RISC-V instruction encoder.

§3.4: "it also implements an encoder, which is generally simpler and
easier to audit than a decoder, and validates that the encoded bytes
of each decoded instruction matches the original bytes in the binary
image.  Doing so avoids the need to trust objdump, the assembler, or
the linker."  The decoder-validation test in ``decode.py`` uses this
encoder exactly that way.
"""

from __future__ import annotations

from .insn import Insn, SPEC, SYS_FUNCT12

__all__ = ["encode", "EncodeError"]


class EncodeError(Exception):
    pass


def _check_range(name: str, value: int, bits: int, signed: bool) -> int:
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    else:
        lo, hi = 0, (1 << bits) - 1
    if not lo <= value <= hi:
        raise EncodeError(f"{name}: immediate {value} out of {bits}-bit range")
    return value & ((1 << bits) - 1)


def encode(insn: Insn, xlen: int = 64) -> int:
    """Encode an instruction to its 32-bit word."""
    spec = SPEC.get(insn.name)
    if spec is None:
        raise EncodeError(f"unknown instruction {insn.name!r}")
    fmt, opcode = spec.fmt, spec.opcode
    rd, rs1, rs2 = insn.rd, insn.rs1, insn.rs2

    if fmt == "R":
        return (
            (spec.funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | opcode
        )
    if fmt == "I":
        imm = _check_range(insn.name, insn.imm, 12, signed=True)
        return (imm << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | opcode
    if fmt == "SHIFT":
        shamt_bits = 6 if (xlen == 64 and spec.opcode == 0b0010011) else 5
        if not 0 <= insn.imm < (1 << shamt_bits):
            raise EncodeError(f"{insn.name}: shamt {insn.imm} out of range")
        return (
            (spec.funct7 << 25) | (insn.imm << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | opcode
        )
    if fmt == "S":
        imm = _check_range(insn.name, insn.imm, 12, signed=True)
        hi, lo = imm >> 5, imm & 0x1F
        return (hi << 25) | (rs2 << 20) | (rs1 << 15) | (spec.funct3 << 12) | (lo << 7) | opcode
    if fmt == "B":
        imm = _check_range(insn.name, insn.imm, 13, signed=True)
        if imm & 1:
            raise EncodeError(f"{insn.name}: branch offset must be even")
        b12 = (imm >> 12) & 1
        b11 = (imm >> 11) & 1
        b10_5 = (imm >> 5) & 0x3F
        b4_1 = (imm >> 1) & 0xF
        return (
            (b12 << 31) | (b10_5 << 25) | (rs2 << 20) | (rs1 << 15)
            | (spec.funct3 << 12) | (b4_1 << 8) | (b11 << 7) | opcode
        )
    if fmt == "U":
        imm = insn.imm
        if imm & 0xFFF:
            raise EncodeError(f"{insn.name}: U-immediate has low bits set")
        return (imm & 0xFFFFF000) | (rd << 7) | opcode
    if fmt == "J":
        imm = _check_range(insn.name, insn.imm, 21, signed=True)
        if imm & 1:
            raise EncodeError(f"{insn.name}: jump offset must be even")
        b20 = (imm >> 20) & 1
        b19_12 = (imm >> 12) & 0xFF
        b11 = (imm >> 11) & 1
        b10_1 = (imm >> 1) & 0x3FF
        return (b20 << 31) | (b10_1 << 21) | (b11 << 20) | (b19_12 << 12) | (rd << 7) | opcode
    if fmt == "CSR":
        return (insn.imm << 20) | (rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | opcode
    if fmt == "CSRI":
        # rs1 field holds the 5-bit zimm.
        if not 0 <= insn.rs1 < 32:
            raise EncodeError(f"{insn.name}: zimm {insn.rs1} out of range")
        return (insn.imm << 20) | (insn.rs1 << 15) | (spec.funct3 << 12) | (rd << 7) | opcode
    if fmt == "SYS":
        return (SYS_FUNCT12[insn.name] << 20) | opcode
    raise EncodeError(f"unknown format {fmt!r}")
