"""RISC-V instruction definitions (RV32I/RV64I base, M, Zicsr, privileged).

The verifier implements "the RV64I base integer instruction set and
two extensions, 'M' for integer multiplication and division and
'Zicsr' for control and status register instructions" (§5), plus the
privileged instructions the security monitors need (ecall/mret/wfi).
XLEN is a parameter: the same tables serve RV32 and RV64.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Insn", "SPEC", "InsnSpec", "REG_NAMES", "REG_NUMBERS", "CSRS", "reg_num"]

# ABI register names, x0..x31.
REG_NAMES = (
    "zero ra sp gp tp t0 t1 t2 s0 s1 a0 a1 a2 a3 a4 a5 a6 a7 "
    "s2 s3 s4 s5 s6 s7 s8 s9 s10 s11 t3 t4 t5 t6"
).split()
REG_NUMBERS = {name: i for i, name in enumerate(REG_NAMES)}
REG_NUMBERS["fp"] = 8


def reg_num(reg) -> int:
    if isinstance(reg, int):
        if not 0 <= reg < 32:
            raise ValueError(f"bad register number {reg}")
        return reg
    return REG_NUMBERS[reg]


# CSR addresses (the subset the monitors and tests use).
CSRS = {
    "mstatus": 0x300,
    "misa": 0x301,
    "medeleg": 0x302,
    "mideleg": 0x303,
    "mie": 0x304,
    "mtvec": 0x305,
    "mcounteren": 0x306,
    "mscratch": 0x340,
    "mepc": 0x341,
    "mcause": 0x342,
    "mtval": 0x343,
    "mip": 0x344,
    "pmpcfg0": 0x3A0,
    "pmpaddr0": 0x3B0,
    "pmpaddr1": 0x3B1,
    "pmpaddr2": 0x3B2,
    "pmpaddr3": 0x3B3,
    "pmpaddr4": 0x3B4,
    "pmpaddr5": 0x3B5,
    "pmpaddr6": 0x3B6,
    "pmpaddr7": 0x3B7,
    "mcycle": 0xB00,
    "minstret": 0xB02,
    "mhartid": 0xF14,
    "satp": 0x180,
}
CSR_NAMES = {v: k for k, v in CSRS.items()}


@dataclass(frozen=True)
class InsnSpec:
    """Static description of one instruction encoding."""

    name: str
    fmt: str  # R, I, S, B, U, J, SHIFT, CSR, CSRI, SYS
    opcode: int
    funct3: int | None = None
    funct7: int | None = None


def _r(name, opcode, f3, f7):
    return InsnSpec(name, "R", opcode, f3, f7)


def _i(name, opcode, f3):
    return InsnSpec(name, "I", opcode, f3)


def _sh(name, opcode, f3, f7):
    return InsnSpec(name, "SHIFT", opcode, f3, f7)


OP = 0b0110011
OP_32 = 0b0111011
OP_IMM = 0b0010011
OP_IMM_32 = 0b0011011
LOAD = 0b0000011
STORE = 0b0100011
BRANCH = 0b1100011
JAL = 0b1101111
JALR = 0b1100111
LUI = 0b0110111
AUIPC = 0b0010111
SYSTEM = 0b1110011
MISC_MEM = 0b0001111

_SPECS = [
    # RV32I register-register
    _r("add", OP, 0b000, 0b0000000),
    _r("sub", OP, 0b000, 0b0100000),
    _r("sll", OP, 0b001, 0b0000000),
    _r("slt", OP, 0b010, 0b0000000),
    _r("sltu", OP, 0b011, 0b0000000),
    _r("xor", OP, 0b100, 0b0000000),
    _r("srl", OP, 0b101, 0b0000000),
    _r("sra", OP, 0b101, 0b0100000),
    _r("or", OP, 0b110, 0b0000000),
    _r("and", OP, 0b111, 0b0000000),
    # M extension
    _r("mul", OP, 0b000, 0b0000001),
    _r("mulh", OP, 0b001, 0b0000001),
    _r("mulhsu", OP, 0b010, 0b0000001),
    _r("mulhu", OP, 0b011, 0b0000001),
    _r("div", OP, 0b100, 0b0000001),
    _r("divu", OP, 0b101, 0b0000001),
    _r("rem", OP, 0b110, 0b0000001),
    _r("remu", OP, 0b111, 0b0000001),
    # RV64 W forms
    _r("addw", OP_32, 0b000, 0b0000000),
    _r("subw", OP_32, 0b000, 0b0100000),
    _r("sllw", OP_32, 0b001, 0b0000000),
    _r("srlw", OP_32, 0b101, 0b0000000),
    _r("sraw", OP_32, 0b101, 0b0100000),
    _r("mulw", OP_32, 0b000, 0b0000001),
    _r("divw", OP_32, 0b100, 0b0000001),
    _r("divuw", OP_32, 0b101, 0b0000001),
    _r("remw", OP_32, 0b110, 0b0000001),
    _r("remuw", OP_32, 0b111, 0b0000001),
    # immediates
    _i("addi", OP_IMM, 0b000),
    _i("slti", OP_IMM, 0b010),
    _i("sltiu", OP_IMM, 0b011),
    _i("xori", OP_IMM, 0b100),
    _i("ori", OP_IMM, 0b110),
    _i("andi", OP_IMM, 0b111),
    _sh("slli", OP_IMM, 0b001, 0b0000000),
    _sh("srli", OP_IMM, 0b101, 0b0000000),
    _sh("srai", OP_IMM, 0b101, 0b0100000),
    _i("addiw", OP_IMM_32, 0b000),
    _sh("slliw", OP_IMM_32, 0b001, 0b0000000),
    _sh("srliw", OP_IMM_32, 0b101, 0b0000000),
    _sh("sraiw", OP_IMM_32, 0b101, 0b0100000),
    # loads / stores
    _i("lb", LOAD, 0b000),
    _i("lh", LOAD, 0b001),
    _i("lw", LOAD, 0b010),
    _i("ld", LOAD, 0b011),
    _i("lbu", LOAD, 0b100),
    _i("lhu", LOAD, 0b101),
    _i("lwu", LOAD, 0b110),
    InsnSpec("sb", "S", STORE, 0b000),
    InsnSpec("sh", "S", STORE, 0b001),
    InsnSpec("sw", "S", STORE, 0b010),
    InsnSpec("sd", "S", STORE, 0b011),
    # control flow
    InsnSpec("beq", "B", BRANCH, 0b000),
    InsnSpec("bne", "B", BRANCH, 0b001),
    InsnSpec("blt", "B", BRANCH, 0b100),
    InsnSpec("bge", "B", BRANCH, 0b101),
    InsnSpec("bltu", "B", BRANCH, 0b110),
    InsnSpec("bgeu", "B", BRANCH, 0b111),
    InsnSpec("jal", "J", JAL),
    _i("jalr", JALR, 0b000),
    InsnSpec("lui", "U", LUI),
    InsnSpec("auipc", "U", AUIPC),
    # Zicsr
    InsnSpec("csrrw", "CSR", SYSTEM, 0b001),
    InsnSpec("csrrs", "CSR", SYSTEM, 0b010),
    InsnSpec("csrrc", "CSR", SYSTEM, 0b011),
    InsnSpec("csrrwi", "CSRI", SYSTEM, 0b101),
    InsnSpec("csrrsi", "CSRI", SYSTEM, 0b110),
    InsnSpec("csrrci", "CSRI", SYSTEM, 0b111),
    # privileged / system
    InsnSpec("ecall", "SYS", SYSTEM, 0b000),
    InsnSpec("ebreak", "SYS", SYSTEM, 0b000),
    InsnSpec("mret", "SYS", SYSTEM, 0b000),
    InsnSpec("wfi", "SYS", SYSTEM, 0b000),
    InsnSpec("fence", "I", MISC_MEM, 0b000),
    InsnSpec("fence.i", "I", MISC_MEM, 0b001),
]

SPEC: dict[str, InsnSpec] = {s.name: s for s in _SPECS}

# funct12 values for SYS instructions.
SYS_FUNCT12 = {"ecall": 0x000, "ebreak": 0x001, "mret": 0x302, "wfi": 0x105}
FUNCT12_SYS = {v: k for k, v in SYS_FUNCT12.items()}


@dataclass(frozen=True)
class Insn:
    """A decoded instruction.

    ``imm`` is the sign-extended immediate as a Python int; for CSR
    instructions it holds the CSR address; for shifts the shamt.
    """

    name: str
    rd: int = 0
    rs1: int = 0
    rs2: int = 0
    imm: int = 0

    def __repr__(self) -> str:
        spec = SPEC.get(self.name)
        fmt = spec.fmt if spec else "?"
        if fmt in ("SYS",):
            return self.name
        if fmt in ("CSR", "CSRI"):
            csr = CSR_NAMES.get(self.imm, hex(self.imm))
            src = REG_NAMES[self.rs1] if fmt == "CSR" else f"#{self.rs1}"
            return f"{self.name} {REG_NAMES[self.rd]}, {csr}, {src}"
        if fmt == "R":
            return f"{self.name} {REG_NAMES[self.rd]}, {REG_NAMES[self.rs1]}, {REG_NAMES[self.rs2]}"
        if fmt in ("I", "SHIFT"):
            return f"{self.name} {REG_NAMES[self.rd]}, {REG_NAMES[self.rs1]}, {self.imm}"
        if fmt == "S":
            return f"{self.name} {REG_NAMES[self.rs2]}, {self.imm}({REG_NAMES[self.rs1]})"
        if fmt == "B":
            return f"{self.name} {REG_NAMES[self.rs1]}, {REG_NAMES[self.rs2]}, {self.imm}"
        if fmt in ("U", "J"):
            return f"{self.name} {REG_NAMES[self.rd]}, {self.imm:#x}"
        return f"{self.name}(...)"
