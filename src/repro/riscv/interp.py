"""The RISC-V interpreter, liftable into a verifier (§3.2, §5).

Implements RV32I/RV64I + M + Zicsr plus the privileged instructions
the monitors use.  Decoding is validated against the encoder (§3.4),
and decoded instructions are cached per address — the program text is
concrete, so decode work is done once.
"""

from __future__ import annotations

from ..core.engine import Interpreter
from ..core.image import Image
from ..sym import SymBV, bug_on, bv_val, ite, region
from .cpu import CpuState
from .decode import decode_validated
from .insn import CSR_NAMES, Insn

__all__ = ["RiscvInterp"]


class RiscvInterp(Interpreter):
    """Fetch/decode/execute over a binary image."""

    def __init__(self, image: Image, xlen: int = 64):
        self.image = image
        self.xlen = xlen
        self._decode_cache: dict[int, Insn] = {}

    # -- engine protocol ----------------------------------------------------------

    def pc_of(self, state: CpuState) -> SymBV:
        return state.pc

    def set_pc(self, state: CpuState, pc_val: int) -> None:
        state.pc = bv_val(pc_val, state.xlen)

    def is_halted(self, state: CpuState) -> bool:
        return state.exited or state.trap is not None

    def copy_state(self, state: CpuState) -> CpuState:
        return state.copy()

    def merge_key(self, state: CpuState):
        return (state.exited, state.trap)

    def fetch(self, state: CpuState) -> Insn:
        with region("riscv.fetch"):
            pc = state.pc
            if not pc.is_concrete:
                raise AssertionError("riscv fetch requires split-pc (concrete pc)")
            addr = pc.as_int()
            insn = self._decode_cache.get(addr)
            if insn is None:
                word = self.image.words.get(addr)
                if word is None:
                    raise KeyError(f"fetch outside text section: pc={addr:#x}")
                insn = decode_validated(word, self.xlen)
                self._decode_cache[addr] = insn
            return insn

    # -- execution ----------------------------------------------------------------

    def execute(self, state: CpuState, insn: Insn) -> None:
        with region("riscv.execute"):
            handler = getattr(self, f"_exec_{insn.name.replace('.', '_')}", None)
            if handler is None:
                raise NotImplementedError(f"no semantics for {insn.name!r}")
            handler(state, insn)

    # Helpers ------------------------------------------------------------------

    def _imm(self, state: CpuState, value: int) -> SymBV:
        return bv_val(value, state.xlen)

    def _next(self, state: CpuState) -> None:
        state.pc = state.pc + 4

    def _word_op(self, state: CpuState, insn: Insn, fn) -> None:
        """RV64 W-form: operate on low 32 bits, sign-extend the result."""
        if state.xlen != 64:
            raise NotImplementedError("W-form instructions require RV64")
        a = state.reg(insn.rs1).trunc(32)
        b = state.reg(insn.rs2).trunc(32)
        state.set_reg(insn.rd, fn(a, b).sext(64))
        self._next(state)

    # ALU register-register -------------------------------------------------------

    def _exec_add(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) + s.reg(i.rs2))
        self._next(s)

    def _exec_sub(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) - s.reg(i.rs2))
        self._next(s)

    def _exec_and(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) & s.reg(i.rs2))
        self._next(s)

    def _exec_or(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) | s.reg(i.rs2))
        self._next(s)

    def _exec_xor(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) ^ s.reg(i.rs2))
        self._next(s)

    def _shamt(self, s: CpuState, value: SymBV) -> SymBV:
        mask = s.xlen - 1
        return value & mask

    def _exec_sll(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) << self._shamt(s, s.reg(i.rs2)))
        self._next(s)

    def _exec_srl(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) >> self._shamt(s, s.reg(i.rs2)))
        self._next(s)

    def _exec_sra(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1).ashr(self._shamt(s, s.reg(i.rs2))))
        self._next(s)

    def _exec_slt(self, s, i):
        s.set_reg(i.rd, ite(s.reg(i.rs1).slt(s.reg(i.rs2)), self._imm(s, 1), self._imm(s, 0)))
        self._next(s)

    def _exec_sltu(self, s, i):
        s.set_reg(i.rd, ite(s.reg(i.rs1) < s.reg(i.rs2), self._imm(s, 1), self._imm(s, 0)))
        self._next(s)

    # M extension ---------------------------------------------------------------

    def _exec_mul(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) * s.reg(i.rs2))
        self._next(s)

    def _mulh_generic(self, s, i, ext_a, ext_b):
        w = s.xlen
        a = ext_a(s.reg(i.rs1), 2 * w)
        b = ext_b(s.reg(i.rs2), 2 * w)
        s.set_reg(i.rd, (a * b).extract(2 * w - 1, w))
        self._next(s)

    def _exec_mulh(self, s, i):
        self._mulh_generic(s, i, lambda v, w: v.sext(w), lambda v, w: v.sext(w))

    def _exec_mulhu(self, s, i):
        self._mulh_generic(s, i, lambda v, w: v.zext(w), lambda v, w: v.zext(w))

    def _exec_mulhsu(self, s, i):
        self._mulh_generic(s, i, lambda v, w: v.sext(w), lambda v, w: v.zext(w))

    def _div_signed(self, a: SymBV, b: SymBV) -> SymBV:
        # RISC-V: division by zero yields all ones.
        return ite(b == 0, bv_val(-1, a.width), a.sdiv(b))

    def _div_unsigned(self, a: SymBV, b: SymBV) -> SymBV:
        return ite(b == 0, bv_val(-1, a.width), a.udiv(b))

    def _rem_signed(self, a: SymBV, b: SymBV) -> SymBV:
        return ite(b == 0, a, a.srem(b))

    def _rem_unsigned(self, a: SymBV, b: SymBV) -> SymBV:
        return ite(b == 0, a, a.urem(b))

    def _exec_div(self, s, i):
        s.set_reg(i.rd, self._div_signed(s.reg(i.rs1), s.reg(i.rs2)))
        self._next(s)

    def _exec_divu(self, s, i):
        s.set_reg(i.rd, self._div_unsigned(s.reg(i.rs1), s.reg(i.rs2)))
        self._next(s)

    def _exec_rem(self, s, i):
        s.set_reg(i.rd, self._rem_signed(s.reg(i.rs1), s.reg(i.rs2)))
        self._next(s)

    def _exec_remu(self, s, i):
        s.set_reg(i.rd, self._rem_unsigned(s.reg(i.rs1), s.reg(i.rs2)))
        self._next(s)

    # RV64 W forms -----------------------------------------------------------------

    def _exec_addw(self, s, i):
        self._word_op(s, i, lambda a, b: a + b)

    def _exec_subw(self, s, i):
        self._word_op(s, i, lambda a, b: a - b)

    def _exec_sllw(self, s, i):
        self._word_op(s, i, lambda a, b: a << (b & 31))

    def _exec_srlw(self, s, i):
        self._word_op(s, i, lambda a, b: a >> (b & 31))

    def _exec_sraw(self, s, i):
        self._word_op(s, i, lambda a, b: a.ashr(b & 31))

    def _exec_mulw(self, s, i):
        self._word_op(s, i, lambda a, b: a * b)

    def _exec_divw(self, s, i):
        self._word_op(s, i, self._div_signed)

    def _exec_divuw(self, s, i):
        self._word_op(s, i, self._div_unsigned)

    def _exec_remw(self, s, i):
        self._word_op(s, i, self._rem_signed)

    def _exec_remuw(self, s, i):
        self._word_op(s, i, self._rem_unsigned)

    # ALU immediates ---------------------------------------------------------------

    def _exec_addi(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) + i.imm)
        self._next(s)

    def _exec_andi(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) & i.imm)
        self._next(s)

    def _exec_ori(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) | i.imm)
        self._next(s)

    def _exec_xori(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) ^ i.imm)
        self._next(s)

    def _exec_slti(self, s, i):
        s.set_reg(i.rd, ite(s.reg(i.rs1).slt(i.imm), self._imm(s, 1), self._imm(s, 0)))
        self._next(s)

    def _exec_sltiu(self, s, i):
        s.set_reg(i.rd, ite(s.reg(i.rs1) < self._imm(s, i.imm), self._imm(s, 1), self._imm(s, 0)))
        self._next(s)

    def _exec_slli(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) << i.imm)
        self._next(s)

    def _exec_srli(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1) >> i.imm)
        self._next(s)

    def _exec_srai(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1).ashr(i.imm))
        self._next(s)

    def _exec_addiw(self, s, i):
        a = s.reg(i.rs1).trunc(32)
        s.set_reg(i.rd, (a + i.imm).sext(64))
        self._next(s)

    def _exec_slliw(self, s, i):
        s.set_reg(i.rd, (s.reg(i.rs1).trunc(32) << i.imm).sext(64))
        self._next(s)

    def _exec_srliw(self, s, i):
        s.set_reg(i.rd, (s.reg(i.rs1).trunc(32) >> i.imm).sext(64))
        self._next(s)

    def _exec_sraiw(self, s, i):
        s.set_reg(i.rd, s.reg(i.rs1).trunc(32).ashr(i.imm).sext(64))
        self._next(s)

    def _exec_lui(self, s, i):
        value = bv_val(i.imm, 32).sext(s.xlen) if s.xlen == 64 else bv_val(i.imm, 32)
        s.set_reg(i.rd, value)
        self._next(s)

    def _exec_auipc(self, s, i):
        offset = bv_val(i.imm, 32).sext(s.xlen) if s.xlen == 64 else bv_val(i.imm, 32)
        s.set_reg(i.rd, s.pc + offset)
        self._next(s)

    # Memory ------------------------------------------------------------------------

    def _load(self, s: CpuState, i: Insn, nbytes: int, signed: bool) -> None:
        with region("riscv.load"):
            addr = s.reg(i.rs1) + i.imm
            value = s.mem.load(addr, nbytes)
            s.set_reg(i.rd, value.sext(s.xlen) if signed else value.zext(s.xlen))
            self._next(s)

    def _store(self, s: CpuState, i: Insn, nbytes: int) -> None:
        with region("riscv.store"):
            addr = s.reg(i.rs1) + i.imm
            s.mem.store(addr, s.reg(i.rs2).trunc(nbytes * 8))
            self._next(s)

    def _exec_lb(self, s, i):
        self._load(s, i, 1, signed=True)

    def _exec_lbu(self, s, i):
        self._load(s, i, 1, signed=False)

    def _exec_lh(self, s, i):
        self._load(s, i, 2, signed=True)

    def _exec_lhu(self, s, i):
        self._load(s, i, 2, signed=False)

    def _exec_lw(self, s, i):
        self._load(s, i, 4, signed=True)

    def _exec_lwu(self, s, i):
        self._load(s, i, 4, signed=False)

    def _exec_ld(self, s, i):
        self._load(s, i, 8, signed=True)

    def _exec_sb(self, s, i):
        self._store(s, i, 1)

    def _exec_sh(self, s, i):
        self._store(s, i, 2)

    def _exec_sw(self, s, i):
        self._store(s, i, 4)

    def _exec_sd(self, s, i):
        self._store(s, i, 8)

    # Control flow ---------------------------------------------------------------------

    def _branch(self, s: CpuState, i: Insn, cond) -> None:
        s.pc = ite(cond, s.pc + i.imm, s.pc + 4)

    def _exec_beq(self, s, i):
        self._branch(s, i, s.reg(i.rs1) == s.reg(i.rs2))

    def _exec_bne(self, s, i):
        self._branch(s, i, s.reg(i.rs1) != s.reg(i.rs2))

    def _exec_blt(self, s, i):
        self._branch(s, i, s.reg(i.rs1).slt(s.reg(i.rs2)))

    def _exec_bge(self, s, i):
        self._branch(s, i, s.reg(i.rs1).sge(s.reg(i.rs2)))

    def _exec_bltu(self, s, i):
        self._branch(s, i, s.reg(i.rs1) < s.reg(i.rs2))

    def _exec_bgeu(self, s, i):
        self._branch(s, i, s.reg(i.rs1) >= s.reg(i.rs2))

    def _exec_jal(self, s, i):
        s.set_reg(i.rd, s.pc + 4)
        s.pc = s.pc + i.imm

    def _exec_jalr(self, s, i):
        target = (s.reg(i.rs1) + i.imm) & ~1
        s.set_reg(i.rd, s.pc + 4)
        s.pc = target

    # CSRs -------------------------------------------------------------------------------

    def _csr_name(self, i: Insn) -> str:
        name = CSR_NAMES.get(i.imm)
        if name is None:
            raise KeyError(f"unknown CSR address {i.imm:#x}")
        return name

    def _exec_csrrw(self, s, i):
        name = self._csr_name(i)
        old = s.csr(name)
        s.set_csr(name, s.reg(i.rs1))
        s.set_reg(i.rd, old)
        self._next(s)

    def _exec_csrrs(self, s, i):
        name = self._csr_name(i)
        old = s.csr(name)
        if i.rs1 != 0:
            s.set_csr(name, old | s.reg(i.rs1))
        s.set_reg(i.rd, old)
        self._next(s)

    def _exec_csrrc(self, s, i):
        name = self._csr_name(i)
        old = s.csr(name)
        if i.rs1 != 0:
            s.set_csr(name, old & ~s.reg(i.rs1))
        s.set_reg(i.rd, old)
        self._next(s)

    def _exec_csrrwi(self, s, i):
        name = self._csr_name(i)
        s.set_reg(i.rd, s.csr(name))
        s.set_csr(name, self._imm(s, i.rs1))
        self._next(s)

    def _exec_csrrsi(self, s, i):
        name = self._csr_name(i)
        old = s.csr(name)
        if i.rs1 != 0:
            s.set_csr(name, old | i.rs1)
        s.set_reg(i.rd, old)
        self._next(s)

    def _exec_csrrci(self, s, i):
        name = self._csr_name(i)
        old = s.csr(name)
        if i.rs1 != 0:
            s.set_csr(name, old & ~self._imm(s, i.rs1))
        s.set_reg(i.rd, old)
        self._next(s)

    # Privileged ----------------------------------------------------------------------------

    def _exec_mret(self, s, i):
        # Return to the interrupted context; ends trap-handler
        # evaluation (§3.4: "ends upon executing a trap-return
        # instruction").
        s.pc = s.csr("mepc")
        s.exited = True

    def _exec_wfi(self, s, i):
        s.exited = True
        self._next(s)

    def _exec_ecall(self, s, i):
        # The monitors never ecall from M-mode; treat as a fault.
        bug_on(True, "ecall executed in machine mode")
        s.trap = "ecall"

    def _exec_ebreak(self, s, i):
        bug_on(True, "ebreak executed in machine mode")
        s.trap = "ebreak"

    def _exec_fence(self, s, i):
        self._next(s)

    def _exec_fence_i(self, s, i):
        self._next(s)
