"""A three-level page-walk model (§6.1).

"For verification, we apply Serval's RISC-V verifier to monitor code
running in M-mode, with a specification of PMP and a three-level page
walk to model memory accesses in S- or U-mode."

This module models an Sv32-like three-level translation (the §6.3
port adds a third level to Komodo's two ARM levels — hence the new
``InitL3PTable`` call).  The walk is a pure function over the memory
model, bounded at three levels, so it stays inside the decidable
fragment.  Combined with :mod:`repro.riscv.pmp`, it specifies what
untrusted S/U-mode code can reach: translation produces a physical
address, and the PMP check then gates the access — which is exactly
why Keystone-style PMP isolation needs no page-table validation
(see ``repro.keystone.safety.prove_pmp_sufficient``).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.memory import Memory
from ..sym import SymBV, SymBool, bv_val, ite, sym_false, sym_true

__all__ = ["WalkResult", "walk", "pte_valid", "pte_leaf", "make_pte", "PAGE_SIZE"]

PAGE_SIZE = 4096
LEVELS = 3
# PTE bits (RISC-V): V R W X U.
PTE_V = 1 << 0
PTE_R = 1 << 1
PTE_W = 1 << 2
PTE_X = 1 << 3
PTE_U = 1 << 4
# 10-bit VPN slice per level in this scaled model.
VPN_BITS = 10


@dataclass
class WalkResult:
    """Outcome of a page walk."""

    ok: SymBool
    paddr: SymBV
    readable: SymBool
    writable: SymBool
    executable: SymBool
    user: SymBool


def pte_valid(pte: SymBV) -> SymBool:
    return (pte & PTE_V) != 0


def pte_leaf(pte: SymBV) -> SymBool:
    """A PTE is a leaf if any of R/W/X is set."""
    return (pte & (PTE_R | PTE_W | PTE_X)) != 0


def make_pte(ppn: int, flags: int) -> int:
    """Build a concrete PTE value (ppn in the upper bits)."""
    return (ppn << VPN_BITS) | flags


def _vpn(vaddr: SymBV, level: int) -> SymBV:
    """The level-th virtual page number slice (level 2 = root index).

    Implemented with extract (not shift+mask) so the slice folds
    through concatenation-shaped virtual addresses — the same
    missed-concretization concern as §4's address optimization.
    """
    lo = 12 + VPN_BITS * level
    width = vaddr.width
    if lo >= width:
        # A 32-bit address space doesn't reach the root slice: the
        # top-level index is implicitly zero.
        return bv_val(0, width)
    hi = min(lo + VPN_BITS - 1, width - 1)
    return vaddr.extract(hi, lo).zext(width)


def walk(mem: Memory, satp_root: SymBV, vaddr: SymBV, pte_bytes: int = 4) -> WalkResult:
    """Translate ``vaddr`` through a three-level table rooted at the
    physical address ``satp_root``.

    Page-table memory is read through the ordinary memory model, so
    malformed tables simply produce failed translations (or memory-
    model side conditions) — the walk makes *no* well-formedness
    assumption, which is what lets specifications quantify over
    arbitrary OS-constructed tables.
    """
    width = vaddr.width
    ok = sym_true()
    done = sym_false()
    paddr = bv_val(0, width)
    perms = bv_val(0, width)
    table = satp_root

    for level in range(LEVELS - 1, -1, -1):
        index = _vpn(vaddr, level)
        pte_addr = table + index * pte_bytes
        pte = mem.load(pte_addr, pte_bytes).zext(width) if pte_bytes * 8 < width else mem.load(pte_addr, pte_bytes)
        valid = pte_valid(pte)
        leaf = pte_leaf(pte)
        ppn = pte >> VPN_BITS

        is_active = ok & ~done
        hit_leaf = is_active & valid & leaf
        # Leaf: physical page + offset.  (Superpages would OR in the
        # lower VPN slices; the monitors avoid superpages entirely to
        # dodge the U54 PMP quirk, §6.4.)
        page_off = vaddr.extract(11, 0).zext(width)
        paddr = ite(hit_leaf, (ppn << 12) + page_off, paddr)
        perms = ite(hit_leaf, pte, perms)
        done = done | hit_leaf
        # Invalid entry anywhere kills the walk.
        ok = ok & (done | valid)
        # Descend: next table is the PTE's ppn.
        table = ite(is_active & valid & ~leaf, ppn << 12, table)

    ok = ok & done  # must have hit a leaf within three levels
    return WalkResult(
        ok=ok,
        paddr=paddr,
        readable=ok & ((perms & PTE_R) != 0),
        writable=ok & ((perms & PTE_W) != 0),
        executable=ok & ((perms & PTE_X) != 0),
        user=ok & ((perms & PTE_U) != 0),
    )
