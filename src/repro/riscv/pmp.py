"""Physical memory protection (PMP) model (§6.1).

PMP lets M-mode define up to 8 physical regions (on the U54) with
per-region read/write/execute permissions, checked by the CPU for
S/U-mode accesses.  The monitors use PMP for memory isolation; the
*specifications* use this model to describe what untrusted S/U-mode
code can touch, since monitor code itself runs in M-mode.

The model also reproduces the first U54 hardware bug found in §6.4:
"the PMP checking was too strict, improperly composing with
superpages".  Enable ``QuirkConfig.u54_pmp_superpage`` to get the
buggy behaviour (an access through a superpage passes only if the
*entire superpage* is covered by the PMP region); tests demonstrate
the divergence, and the monitors apply the paper's workaround (no
superpages).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sym import SymBV, SymBool, bv_val, ite, sym_false, sym_true

__all__ = ["QuirkConfig", "PmpRegion", "pmp_check", "pmp_regions_of", "napot_region"]

# Config byte layout.
PMP_R = 1 << 0
PMP_W = 1 << 1
PMP_X = 1 << 2
PMP_A_SHIFT = 3
PMP_A_OFF = 0
PMP_A_TOR = 1
PMP_A_NA4 = 2
PMP_A_NAPOT = 3
PMP_L = 1 << 7


@dataclass
class QuirkConfig:
    """Hardware quirks (U54 bugs found via verification, §6.4)."""

    u54_pmp_superpage: bool = False  # PMP check too strict with superpages
    u54_counter_leak: bool = False  # mcounteren ignored for perf counters


@dataclass
class PmpRegion:
    """One decoded PMP entry."""

    cfg: SymBV  # the 8-bit config byte
    addr: SymBV  # pmpaddr[i]
    prev_addr: SymBV  # pmpaddr[i-1] (for TOR)


def pmp_regions_of(csrs: dict[str, SymBV], count: int = 8) -> list[PmpRegion]:
    """Decode pmpcfg0 + pmpaddr0..7 CSRs into regions."""
    cfg0 = csrs["pmpcfg0"]
    xlen = cfg0.width
    regions = []
    zero = bv_val(0, xlen)
    for i in range(count):
        cfg_byte = cfg0.extract(8 * i + 7, 8 * i) if 8 * i + 7 < xlen else None
        if cfg_byte is None:
            break
        prev = csrs[f"pmpaddr{i - 1}"] if i > 0 else zero
        regions.append(PmpRegion(cfg_byte, csrs[f"pmpaddr{i}"], prev))
    return regions


def _region_match(region: PmpRegion, word_addr: SymBV, span_words: int = 1) -> SymBool:
    """Does this region match the (addr>>2) word address?"""
    a_field = (region.cfg >> PMP_A_SHIFT) & 0b11
    y = region.addr
    xlen = y.width
    # NAPOT: mask off the trailing-ones + 1 bits.
    t = y ^ (y + 1)  # 2^(k+1) - 1 for k trailing ones
    napot = (word_addr | t) == (y | t)
    na4 = word_addr == y
    tor = (region.prev_addr <= word_addr) & (word_addr < y)
    if span_words > 1:
        # Strict variant: the whole span must sit inside the region.
        last = word_addr + (span_words - 1)
        napot = napot & ((last | t) == (y | t))
        na4 = na4 & (last == y)
        tor = tor & (region.prev_addr <= last) & (last < y)
    return ite(
        a_field == PMP_A_NAPOT,
        napot,
        ite(a_field == PMP_A_NA4, na4, ite(a_field == PMP_A_TOR, tor, sym_false())),
    )


def pmp_check(
    csrs: dict[str, SymBV],
    addr: SymBV,
    access: str,
    quirks: QuirkConfig | None = None,
    page_size: int = 4096,
    count: int = 8,
) -> SymBool:
    """Whether an S/U-mode access to ``addr`` is allowed.

    ``access`` is "r", "w", or "x".  Priority matching: the lowest-
    numbered matching region decides; no match denies (for S/U mode).

    With the U54 superpage quirk enabled and a superpage translation
    (``page_size`` > 4 KiB), the hardware erroneously requires the
    PMP region to cover the *entire* superpage, not just the access.
    """
    quirks = quirks or QuirkConfig()
    perm_bit = {"r": PMP_R, "w": PMP_W, "x": PMP_X}[access]
    word_addr = addr >> 2
    span = 1
    if quirks.u54_pmp_superpage and page_size > 4096:
        # Buggy composition: check the superpage's full word span.
        word_addr = (addr & ~(page_size - 1)) >> 2
        span = page_size // 4

    allowed = sym_false()
    matched = sym_false()
    for region in pmp_regions_of(csrs, count):
        hit = _region_match(region, word_addr, span)
        grant = (region.cfg & perm_bit) != 0
        first_hit = hit & ~matched
        allowed = ite(first_hit, grant, allowed)
        matched = matched | hit
    return allowed


def napot_region(base: int, size: int) -> int:
    """Compute a pmpaddr value for a naturally-aligned power-of-two
    region (what monitor boot code writes)."""
    if size & (size - 1) or size < 8:
        raise ValueError(f"NAPOT size must be a power of two >= 8, got {size}")
    if base % size:
        raise ValueError(f"NAPOT base {base:#x} not aligned to size {size:#x}")
    return (base >> 2) | ((size // 8) - 1)


def counter_readable(
    csrs: dict[str, SymBV], counter_bit: int, quirks: QuirkConfig | None = None
) -> SymBool:
    """Whether S/U mode can read a performance counter.

    Architecturally this requires the matching ``mcounteren`` bit; the
    second U54 bug ignores the control entirely, "allowing any
    privilege level to read performance counters, which creates covert
    channels" (§6.4).
    """
    quirks = quirks or QuirkConfig()
    if quirks.u54_counter_leak:
        return sym_true()
    return (csrs["mcounteren"] & (1 << counter_bit)) != 0
