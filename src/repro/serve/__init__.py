"""``repro.serve`` — verification as a service.

The daemon that turns the single-shot CLI into a long-lived service:
an HTTP/JSON job API (submit a named verifier grid or a batch of
serialized proof obligations, poll status, stream verdicts as they
land, cancel) over the process-wide work-stealing scheduler and one
shared content-addressed verdict store, so any number of concurrent
clients hit the same warm cache.  Stdlib only — ``http.server`` on
the wire, ``urllib`` in the client.

Start it::

    python -m repro.serve --port 8631 --store .solvercache

Talk to it::

    curl -s -X POST localhost:8631/jobs \
        -d '{"kind": "grid", "grid": "fig11-quick"}'
    curl -s localhost:8631/jobs/<id>/verdicts?since=0&wait_s=10

See ``docs/ARCHITECTURE.md`` (Serving layer) for the job lifecycle and
the endpoint table, and ``scripts/load_serve.py`` for the CI load/soak
driver.
"""

from .app import ApiError, VerificationServer
from .client import ServeClient, ServeError
from .grids import GRIDS, grid_ops, run_grid
from .jobs import Job, JobRegistry

__all__ = [
    "ApiError",
    "GRIDS",
    "Job",
    "JobRegistry",
    "ServeClient",
    "ServeError",
    "VerificationServer",
    "grid_ops",
    "run_grid",
]
