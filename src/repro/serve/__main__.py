"""``python -m repro.serve`` — run the verification daemon.

Prints ``serving on http://HOST:PORT`` (flushed) once the listener is
bound, which is the line ``scripts/load_serve.py`` and the CI job
parse to find an ephemeral port.  SIGTERM/SIGINT shut the listener
down cleanly; jobs still running stay ``running`` in the spool and the
next daemon marks them ``interrupted``.
"""

from __future__ import annotations

import argparse
import signal
import sys

from ..core.store import DEFAULT_STORE_DIR
from .app import VerificationServer


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Long-lived verification daemon over the shared scheduler + verdict store.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port (printed on stdout)"
    )
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE_DIR,
        help=f"verdict store shared by all jobs (default: $REPRO_CACHE_DIR or {DEFAULT_STORE_DIR})",
    )
    parser.add_argument(
        "--spool", default=None, help="job spool directory (default: <store>/jobs)"
    )
    parser.add_argument(
        "--jobs", type=int, default=2, help="default scheduler workers per job (default 2)"
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="skip the process-lifetime obs session (/metrics loses obs counters)",
    )
    parser.add_argument("--verbose", action="store_true", help="log each HTTP request")
    args = parser.parse_args(argv)

    server = VerificationServer(
        host=args.host,
        port=args.port,
        store_dir=args.store,
        spool_dir=args.spool,
        default_jobs=args.jobs,
        trace=not args.no_trace,
        verbose=args.verbose,
    )
    if server.registry.recovered:
        print(
            f"recovered spool: {len(server.registry.recovered)} job(s) marked interrupted",
            flush=True,
        )
    print(f"serving on {server.url}", flush=True)

    def _shutdown(signum, frame):
        raise KeyboardInterrupt

    signal.signal(signal.SIGTERM, _shutdown)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.close()
        print("daemon stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
