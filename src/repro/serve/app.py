"""The verification daemon: HTTP/JSON front end over the scheduler.

``VerificationServer`` wires four existing pieces into a long-lived
service with zero new dependencies (stdlib ``http.server`` only):

  * the process-wide work-stealing scheduler discharges every job's
    obligations (``repro.core.scheduler``);
  * one content-addressed verdict store is shared by *all* jobs and
    all clients, so concurrent submissions of overlapping work hit one
    warm cache (``repro.core.store``);
  * the job registry spools state so a daemon restart marks live jobs
    ``interrupted`` instead of losing them (``repro.serve.jobs``);
  * an optional process-lifetime ``repro.obs`` tracing session feeds
    ``GET /metrics``.

Endpoints (all JSON)::

    POST /jobs                  submit {"kind": "grid"|"obligations", ...}
    GET  /jobs                  job summaries
    GET  /jobs/<id>             status + progress + verdict map
    GET  /jobs/<id>/verdicts    verdict records; ?since=N pages, ?wait_s=S
                                long-polls until new verdicts land,
                                ?certs=1 inlines stored proof certificates
    GET  /jobs/<id>/certificates  per-verdict proof certificates (null
                                for records without a query digest)
    POST /jobs/<id>/cancel      cancel (queued obligations dropped,
                                in-flight ones finish)
    GET  /healthz               liveness + version + pool/job counts
    GET  /metrics               obs counters/histograms + scheduler/store
                                telemetry; ``Accept: text/plain`` gets
                                Prometheus 0.0.4 exposition instead
    GET  /events                structured event ring; ?since=N pages,
                                ?level=warn filters by severity
    *    /store/...              the distributed-store object protocol
                                (``repro.core.remote.StoreAPI``), so one
                                daemon can serve verdicts to a fleet

Determinism contract: a grid job's verdict map is keyed ``monitor.op``
exactly like the bench CLI's artifact, and an obligation batch's
records carry their submission ``index`` — reduced in index order they
equal a sequential ``run_obligations`` call verbatim, whatever the
work-stealing interleaving was.
"""

from __future__ import annotations

import json
import re
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..core.remote import StoreAPI, breaker_open
from ..core.runner import Obligation
from ..core.scheduler import get_scheduler, peek_scheduler
from ..core.store import DEFAULT_STORE_DIR, VerdictStore
from ..obs.events import TRACE_HEADER, new_trace_id, parse_trace_header, trace_context
from .grids import GRIDS, run_grid
from .jobs import CANCELLED, DONE, FAILED, RUNNING, JobRegistry

__all__ = ["VerificationServer", "ApiError"]

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9_-]+)(/verdicts|/certificates|/cancel)?$")

# Long-poll ceiling: clients asking for more still get a response (and
# re-poll), so a dead client can never pin a handler thread for long.
MAX_WAIT_S = 30.0


class ApiError(Exception):
    """Request error carrying its HTTP status code."""

    def __init__(self, code: int, message: str):
        super().__init__(message)
        self.code = code


class VerificationServer:
    """The daemon: owns the registry, the store, and the HTTP listener.

    ``default_jobs`` is how many scheduler workers a job uses unless
    its submission says otherwise; the pool itself is shared and grows
    to the largest request.  ``trace=True`` (default) keeps a
    process-lifetime obs tracing session open so ``/metrics`` reports
    live counters from every layer.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        store_dir: str | None = None,
        spool_dir: str | None = None,
        default_jobs: int = 2,
        trace: bool = True,
        verbose: bool = False,
    ):
        import os

        self.store_dir = store_dir or DEFAULT_STORE_DIR
        self.store = VerdictStore(self.store_dir)
        # The daemon's store doubles as a distributed-store server:
        # remote clients read/write it under /store/ with the same
        # protocol the standalone `store serve` daemon speaks.
        self.store_api = StoreAPI(self.store)
        self.spool_dir = spool_dir or os.path.join(self.store_dir, "jobs")
        self.registry = JobRegistry(self.spool_dir)
        self.default_jobs = default_jobs
        self.verbose = verbose
        self.started_t = time.time()
        self._collector = None
        self._trace_ctx = None
        if trace:
            from ..obs import tracing

            self._trace_ctx = tracing(absorb=False)
            self._collector = self._trace_ctx.__enter__()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.app = self
        self._serve_thread: threading.Thread | None = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "VerificationServer":
        """Serve in a background thread (tests, embedded use)."""
        self._serve_thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-serve", daemon=True
        )
        self._serve_thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``python -m`` entrypoint)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        """Stop listening.  Running jobs stay in the spool as
        ``running``; the next daemon marks them ``interrupted`` — the
        restart contract tests rely on.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._serve_thread is not None:
            self._serve_thread.join(timeout=5.0)
        if self._trace_ctx is not None:
            self._trace_ctx.__exit__(None, None, None)
            self._trace_ctx = None

    # -- submission ------------------------------------------------------

    def submit(self, doc: dict, trace_id: str | None = None):
        """Validate a ``POST /jobs`` body, register the job, and start
        its runner thread.  Raises :class:`ApiError` on a bad body.

        ``trace_id`` is the client's correlation id (``X-Repro-Trace``);
        jobs submitted without one get a fresh daemon-generated id, so
        every job is traceable either way.
        """
        if not isinstance(doc, dict):
            raise ApiError(400, "request body must be a JSON object")
        trace_id = trace_id or new_trace_id()
        kind = doc.get("kind")
        if kind == "grid":
            job = self._submit_grid(doc, trace_id)
        elif kind == "obligations":
            job = self._submit_obligations(doc, trace_id)
        else:
            raise ApiError(400, f"kind must be 'grid' or 'obligations', got {kind!r}")
        threading.Thread(
            target=self._run_job, args=(job,), name=f"job-{job.id}", daemon=True
        ).start()
        return job

    def _jobs_knob(self, doc: dict) -> int:
        jobs = doc.get("jobs", self.default_jobs)
        if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs < 0:
            raise ApiError(400, "jobs must be a non-negative integer")
        return jobs or self.default_jobs

    def _budget_knobs(self, doc: dict) -> tuple[int | None, float | None]:
        max_conflicts = doc.get("max_conflicts")
        if max_conflicts is not None and (
            not isinstance(max_conflicts, int) or max_conflicts < 1
        ):
            raise ApiError(400, "max_conflicts must be a positive integer")
        timeout_s = doc.get("timeout_s")
        if timeout_s is not None and (
            not isinstance(timeout_s, (int, float)) or timeout_s <= 0
        ):
            raise ApiError(400, "timeout_s must be a positive number")
        return max_conflicts, timeout_s

    def _submit_grid(self, doc: dict, trace_id: str | None = None):
        grid = doc.get("grid", "fig11-quick")
        if grid not in GRIDS:
            raise ApiError(400, f"unknown grid {grid!r}; one of {sorted(GRIDS)}")
        opt = doc.get("opt", 1)
        if opt not in (0, 1, 2):
            raise ApiError(400, "opt must be 0, 1, or 2")
        max_conflicts, timeout_s = self._budget_knobs(doc)
        params = {
            "grid": grid,
            "opt": opt,
            "jobs": self._jobs_knob(doc),
            "max_conflicts": max_conflicts,
            "timeout_s": timeout_s,
        }
        job = self.registry.create("grid", params, trace_id=trace_id)
        job.total = len(GRIDS[grid])
        return job

    def _submit_obligations(self, doc: dict, trace_id: str | None = None):
        raw = doc.get("obligations")
        if not isinstance(raw, list) or not raw:
            raise ApiError(400, "obligations must be a non-empty list")
        try:
            obligations = [Obligation.from_json(entry) for entry in raw]
        except ValueError as exc:
            raise ApiError(400, str(exc))
        max_conflicts, timeout_s = self._budget_knobs(doc)
        params = {
            "count": len(obligations),
            "jobs": self._jobs_knob(doc),
            "max_conflicts": max_conflicts,
            "timeout_s": timeout_s,
            "cache": bool(doc.get("cache", True)),
        }
        job = self.registry.create("obligations", params, trace_id=trace_id)
        job.total = len(obligations)
        # Runtime-only: parsed payloads ride on the job object, never
        # through the spool.
        job.obligations = obligations
        return job

    # -- execution -------------------------------------------------------

    def _run_job(self, job) -> None:
        from ..obs import count, event

        with job.cond:
            job.state = RUNNING
            job.started_t = time.time()
        self.registry.persist(job)
        count("serve.jobs.started")
        start = time.perf_counter()
        # The whole job thread runs under the job's trace_id, so every
        # span it records, every obligation it submits, and every store
        # request it triggers is correlated back to this submission.
        with trace_context(job.trace_id):
            event("info", "job.started", job=job.id, kind=job.kind)
            try:
                if job.kind == "grid":
                    self._run_grid_job(job)
                else:
                    self._run_obligations_job(job)
            except Exception as exc:  # noqa: BLE001 - job isolation boundary
                job.finish(FAILED, error=f"{type(exc).__name__}: {exc}")
                event("error", "job.failed", job=job.id, error=f"{type(exc).__name__}: {exc}")
            finally:
                job.stats["wall_s"] = time.perf_counter() - start
                self.registry.persist(job)
                count(f"serve.jobs.{job.state}")
                event(
                    "info",
                    "job.finished",
                    job=job.id,
                    state=job.state,
                    wall_s=job.stats["wall_s"],
                )

    def _run_grid_job(self, job) -> None:
        params = job.params

        def on_verdict(label, result):
            job.add_verdict(
                {
                    "index": len(job.verdicts),
                    "name": label,
                    "status": "proved" if result.proved else
                    ("unknown" if result.unknown else "failed"),
                    "proved": bool(result.proved),
                }
            )
            self.registry.persist(job)

        verdicts, totals = run_grid(
            params["grid"],
            opt=params["opt"],
            jobs=params["jobs"],
            cache_dir=self.store_dir,
            max_conflicts=params.get("max_conflicts"),
            timeout_s=params.get("timeout_s"),
            on_verdict=on_verdict,
            should_stop=lambda: job.cancel_requested,
        )
        job.stats.update(totals)
        job.stats["verdict_map"] = verdicts
        job.finish(CANCELLED if job.cancel_requested else DONE)

    def _run_obligations_job(self, job) -> None:
        params = job.params
        scheduler = get_scheduler(params["jobs"])
        cache_dir = self.store_dir if params.get("cache", True) else None

        def on_result(index, result):
            # Dispatcher-thread callback: append + notify only, no
            # scheduler calls, no disk IO (see _Ticket docs).
            record = result.to_json()
            record["index"] = index
            job.add_verdict(record)

        ticket = scheduler.submit_obligations(
            job.obligations,
            cache_dir=cache_dir,
            max_conflicts=params.get("max_conflicts"),
            timeout_s=params.get("timeout_s"),
            job=job.id,
            on_result=on_result,
            trace=self._collector is not None,
            trace_id=job.trace_id,
        )
        job.ticket = ticket
        results = ticket.wait()
        if ticket.trace:
            # Fold the workers' span envelopes into the daemon's
            # process-lifetime collector: this is what puts a worker's
            # sat.solve span (stamped with the job's trace_id) into the
            # daemon's /metrics and exported traces.
            scheduler._collect_trace(ticket)
        progress = ticket.progress()
        job.stats.update(
            obligations=len(results),
            cache_queries=sum(1 for r in results if r is not None and r.stats.get("cached")),
            cache_hits=sum(1 for r in results if r is not None and r.stats.get("cache_hit")),
            steals=progress["steals"],
            retries=progress["retries"],
            timeouts=progress["timeouts"],
        )
        job.finish(CANCELLED if ticket.cancelled else DONE)

    def cancel(self, job) -> bool:
        """Request cancellation; returns False once the job is terminal."""
        with job.cond:
            if job.is_terminal():
                return False
            job.cancel_requested = True
        ticket = job.ticket
        if ticket is not None:
            scheduler = peek_scheduler()
            if scheduler is not None:
                scheduler.cancel(ticket)
        return True

    # -- monitoring ------------------------------------------------------

    def healthz(self) -> dict:
        from .. import __version__

        scheduler = peek_scheduler()
        return {
            "ok": True,
            "version": __version__,
            "started_at": self.started_t,
            "uptime_s": time.time() - self.started_t,
            "jobs": self.registry.counts(),
            "pool_workers": scheduler.pool_size if scheduler else 0,
            "recovered_jobs": list(self.registry.recovered),
        }

    def metrics(self) -> dict:
        scheduler = peek_scheduler()
        doc = {
            "uptime_s": time.time() - self.started_t,
            "jobs": self.registry.counts(),
            "scheduler": scheduler.telemetry() if scheduler else None,
            "store": {
                "path": self.store.path,
                "entries": len(self.store.digests()),
                "spool_pending": len(self.store.spool_pending()),
                "remote_breaker_open": breaker_open(),
                **self.store_api.counters(),
            },
        }
        if self._collector is not None:
            snap = self._collector.snapshot()
            doc["obs"] = {
                "counters": snap["counters"],
                "spans": len(snap["spans"]),
                "dropped_spans": snap["dropped_spans"],
                "histograms": self._collector.histogram_summaries(),
                "events": self._collector.event_seq,
            }
        return doc

    def _gauges(self) -> dict:
        """Point-in-time gauge set shared by both /metrics renderings."""
        scheduler = peek_scheduler()
        telemetry = scheduler.telemetry() if scheduler else {}
        gauges = {
            "serve.uptime_seconds": time.time() - self.started_t,
            "scheduler.pool_workers": telemetry.get("pool_workers", 0),
            "scheduler.queued": telemetry.get("queued", 0),
            "scheduler.inflight": telemetry.get("inflight", 0),
            "scheduler.max_queue_depth": telemetry.get("max_queue_depth", 0),
            "store.entries": len(self.store.digests()),
            "store.spool_pending": len(self.store.spool_pending()),
            "store.remote.breaker_open": int(breaker_open()),
        }
        for state, n in self.registry.counts().items():
            gauges[f"serve.jobs.{state}"] = n
        return gauges

    def prometheus_metrics(self) -> str:
        """``GET /metrics`` with ``Accept: text/plain`` — the Prometheus
        0.0.4 exposition of everything the JSON document reports:
        collector counters, latency histograms with their buckets, and
        the gauges (queue depth, pool size, breaker state, backlog,
        uptime)."""
        from ..obs.prom import render_prometheus

        counters: dict = {}
        histograms: dict = {}
        if self._collector is not None:
            snap = self._collector.snapshot()
            counters.update(snap["counters"])
            histograms = snap["histograms"]
        for name, value in self.store_api.counters().items():
            counters[f"store.{name}"] = value
        scheduler = peek_scheduler()
        if scheduler is not None:
            telemetry = scheduler.telemetry()
            for key in ("steals", "retries", "timeouts", "worker_restarts"):
                counters[f"scheduler.{key}"] = telemetry.get(key, 0)
        return render_prometheus(
            counters=counters, gauges=self._gauges(), histograms=histograms
        )

    def events(self, since: int = 0, level: str | None = None) -> list[dict]:
        """The daemon's structured event ring (``GET /events``)."""
        if self._collector is None:
            return []
        return self._collector.events_since(since, level=level)


# ---------------------------------------------------------------------------
# HTTP plumbing


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def app(self) -> VerificationServer:
        return self.server.app

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.app.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    # -- helpers ---------------------------------------------------------

    def _send_json(self, code: int, doc: dict) -> None:
        payload = json.dumps(doc).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        try:
            self.wfile.write(payload)
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-reply

    def _send_raw(
        self,
        code: int,
        payload: bytes,
        ctype: str,
        headers: dict,
        send_body: bool = True,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(payload)))
        for key, value in headers.items():
            self.send_header(key, value)
        self.end_headers()
        if send_body and payload:
            try:
                self.wfile.write(payload)
            except (BrokenPipeError, ConnectionResetError):
                pass  # client went away mid-reply

    def _route_store(self, method: str, path: str) -> None:
        """Forward a /store/... request to the object-store protocol
        handler shared with the standalone store server."""
        body = None
        length = int(self.headers.get("Content-Length") or 0)
        if length > 64 * 1024 * 1024:
            raise ApiError(413, "request body too large")
        if length > 0:
            body = self.rfile.read(length)
        status, payload, ctype, headers = self.app.store_api.handle(
            method,
            path,
            body,
            accept=self.headers.get("Accept", ""),
            trace=self.headers.get(TRACE_HEADER),
        )
        self._send_raw(status, payload, ctype, headers, send_body=(method != "HEAD"))

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ApiError(400, "request body required")
        if length > 64 * 1024 * 1024:
            raise ApiError(413, "request body too large")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ApiError(400, f"invalid JSON body: {exc}")

    def _query(self) -> dict:
        from urllib.parse import parse_qs, urlsplit

        return {k: v[-1] for k, v in parse_qs(urlsplit(self.path).query).items()}

    def _job_or_404(self, job_id: str):
        job = self.app.registry.get(job_id)
        if job is None:
            raise ApiError(404, f"no such job {job_id!r}")
        return job

    def _route(self, method: str) -> None:
        from ..obs import count

        count("serve.http.requests")
        try:
            path = self.path.split("?", 1)[0]
            if path == "/store" or path.startswith("/store/"):
                self._route_store(method, path)
                return
            match = _JOB_PATH.match(path)
            if method == "GET" and path == "/healthz":
                self._send_json(200, self.app.healthz())
            elif method == "GET" and path == "/metrics":
                if "text/plain" in (self.headers.get("Accept") or ""):
                    from ..obs.prom import CONTENT_TYPE

                    self._send_raw(
                        200, self.app.prometheus_metrics().encode(), CONTENT_TYPE, {}
                    )
                else:
                    self._send_json(200, self.app.metrics())
            elif method == "GET" and path == "/events":
                self._get_events()
            elif method == "GET" and path == "/jobs":
                self._send_json(
                    200, {"jobs": [job.snapshot() for job in self.app.registry.jobs()]}
                )
            elif method == "POST" and path == "/jobs":
                trace_id, _ = parse_trace_header(self.headers.get(TRACE_HEADER))
                job = self.app.submit(self._read_body(), trace_id=trace_id)
                self._send_json(
                    201,
                    {"id": job.id, "state": job.state, "kind": job.kind,
                     "trace_id": job.trace_id, "location": f"/jobs/{job.id}"},
                )
            elif match and method == "GET" and match.group(2) is None:
                job = self._job_or_404(match.group(1))
                self._send_json(200, job.snapshot())
            elif match and method == "GET" and match.group(2) == "/verdicts":
                self._get_verdicts(self._job_or_404(match.group(1)))
            elif match and method == "GET" and match.group(2) == "/certificates":
                self._get_certificates(self._job_or_404(match.group(1)))
            elif match and method == "POST" and match.group(2) == "/cancel":
                job = self._job_or_404(match.group(1))
                accepted = self.app.cancel(job)
                self._send_json(
                    202 if accepted else 409,
                    {"id": job.id, "state": job.state, "cancelling": accepted},
                )
            else:
                raise ApiError(404, f"no route for {method} {path}")
        except ApiError as exc:
            self._send_json(exc.code, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - handler isolation boundary
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    def _get_events(self) -> None:
        """``GET /events?since=N&level=L`` — the daemon's structured
        event ring, paged by sequence number."""
        query = self._query()
        try:
            since = int(query.get("since", 0))
        except ValueError:
            raise ApiError(400, "since must be an integer")
        level = query.get("level")
        records = self.app.events(since=since, level=level)
        self._send_json(
            200,
            {
                "since": since,
                "next": records[-1]["seq"] if records else since,
                "events": records,
            },
        )

    def _record_certificate(self, record) -> dict | None:
        """The stored proof certificate behind a verdict record, if the
        record names a query digest and the store holds one.  Grid-job
        records carry no digest (their verdicts aggregate many queries)
        — those get None, as do legacy cert-less store entries."""
        digest = None
        if isinstance(record, dict):
            stats = record.get("stats")
            if isinstance(stats, dict):
                digest = stats.get("digest")
        if not isinstance(digest, str):
            return None
        return self.app.store.load_certificate(digest)

    def _get_verdicts(self, job) -> None:
        query = self._query()
        try:
            since = int(query.get("since", 0))
            wait_s = min(float(query.get("wait_s", 0)), MAX_WAIT_S)
        except ValueError:
            raise ApiError(400, "since must be an integer, wait_s a number")
        if since < 0:
            raise ApiError(400, "since must be >= 0")
        with_certs = query.get("certs") in ("1", "true")
        deadline = time.monotonic() + wait_s
        with job.cond:
            while (
                len(job.verdicts) <= since
                and not job.is_terminal()
                and (remaining := deadline - time.monotonic()) > 0
            ):
                job.cond.wait(min(remaining, 1.0))
            records = list(job.verdicts[since:])
            state = job.state
        if with_certs:
            # Store reads happen outside the job lock: certificates can
            # be large and the store is shared with running jobs.
            records = [
                dict(record, certificate=self._record_certificate(record))
                if isinstance(record, dict)
                else record
                for record in records
            ]
        self._send_json(
            200,
            {
                "id": job.id,
                "state": state,
                "since": since,
                "next": since + len(records),
                "verdicts": records,
            },
        )

    def _get_certificates(self, job) -> None:
        """Certificates for every verdict the job has produced so far.

        One row per verdict record: ``{index, name, digest,
        certificate}``.  ``certificate`` is null when the record has no
        digest (grid jobs) or the store has no certificate for it —
        callers feed the non-null ones to ``repro.smt.checkproof``.
        """
        with job.cond:
            records = list(job.verdicts)
            state = job.state
        rows = []
        for pos, record in enumerate(records):
            if not isinstance(record, dict):
                continue
            stats = record.get("stats")
            digest = stats.get("digest") if isinstance(stats, dict) else None
            rows.append(
                {
                    "index": record.get("index", pos),
                    "name": record.get("name"),
                    "digest": digest if isinstance(digest, str) else None,
                    "certificate": self._record_certificate(record),
                }
            )
        self._send_json(
            200,
            {
                "id": job.id,
                "state": state,
                "count": len(rows),
                "certificates": rows,
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._route("GET")

    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        self._route("POST")

    def do_PUT(self) -> None:  # noqa: N802 - stdlib naming
        self._route("PUT")

    def do_HEAD(self) -> None:  # noqa: N802 - stdlib naming
        self._route("HEAD")
