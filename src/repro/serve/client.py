"""Minimal stdlib client for the verification daemon.

Everything rides ``urllib.request`` — one connection per call, no
state — so the client is trivially safe to share across threads (the
load driver runs eight of them against one daemon).

Every client carries a ``trace_id`` (generated at construction or
passed in) and sends it as ``X-Repro-Trace`` on every request, so one
submission can be followed through the daemon's spans, a worker's
solve, and the remote store's request log (``docs/OBSERVABILITY.md``).

Usage::

    from repro.serve import ServeClient

    client = ServeClient("http://127.0.0.1:8631")
    job_id = client.submit_grid("fig11-quick")["id"]
    final = client.wait(job_id)
    assert final["state"] == "done"
    print(client.verdict_map(job_id))
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from ..core.runner import Obligation
from ..obs.events import TRACE_HEADER, new_trace_id

__all__ = ["ServeClient", "ServeError"]


class ServeError(RuntimeError):
    """Daemon-side error reply (carries the HTTP status code)."""

    def __init__(self, code: int, message: str):
        super().__init__(f"HTTP {code}: {message}")
        self.code = code


class ServeClient:
    def __init__(self, base_url: str, timeout_s: float = 60.0, trace_id: str | None = None):
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s
        self.trace_id = trace_id or new_trace_id()

    # -- plumbing --------------------------------------------------------

    def _request(
        self, method: str, path: str, body: dict | None = None, accept: str | None = None
    ) -> dict | str:
        data = json.dumps(body).encode() if body is not None else None
        headers = {TRACE_HEADER: self.trace_id}
        if data:
            headers["Content-Type"] = "application/json"
        if accept:
            headers["Accept"] = accept
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout_s) as reply:
                raw = reply.read()
                ctype = reply.headers.get("Content-Type", "")
                if accept and "text/plain" in ctype:
                    return raw.decode()
                return json.loads(raw)
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read()).get("error", str(exc))
            except ValueError:
                message = str(exc)
            raise ServeError(exc.code, message) from None

    # -- endpoints -------------------------------------------------------

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def version(self) -> str | None:
        """The daemon's package version (from ``/healthz``)."""
        return self.healthz().get("version")

    def metrics(self) -> dict:
        return self._request("GET", "/metrics")

    def metrics_text(self) -> str:
        """The Prometheus 0.0.4 exposition of ``/metrics``."""
        return self._request("GET", "/metrics", accept="text/plain")

    def events(self, since: int = 0, level: str | None = None) -> dict:
        """The daemon's structured event ring, paged by ``since``."""
        query = f"?since={since}" + (f"&level={level}" if level else "")
        return self._request("GET", f"/events{query}")

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def submit_grid(self, grid: str = "fig11-quick", opt: int = 1, **knobs) -> dict:
        return self._request(
            "POST", "/jobs", {"kind": "grid", "grid": grid, "opt": opt, **knobs}
        )

    def submit_obligations(self, obligations, **knobs) -> dict:
        docs = [
            ob.to_json() if isinstance(ob, Obligation) else ob for ob in obligations
        ]
        return self._request(
            "POST", "/jobs", {"kind": "obligations", "obligations": docs, **knobs}
        )

    def verdicts(self, job_id: str, since: int = 0, wait_s: float = 0) -> dict:
        query = f"?since={since}" + (f"&wait_s={wait_s}" if wait_s else "")
        return self._request("GET", f"/jobs/{job_id}/verdicts{query}")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    # -- conveniences ----------------------------------------------------

    def stream(self, job_id: str, poll_wait_s: float = 10.0):
        """Yield verdict records as they land, until the job is terminal."""
        cursor = 0
        while True:
            page = self.verdicts(job_id, since=cursor, wait_s=poll_wait_s)
            yield from page["verdicts"]
            cursor = page["next"]
            if page["state"] in ("done", "failed", "cancelled", "interrupted"):
                # Drain anything that landed between the last wait and
                # the terminal transition.
                tail = self.verdicts(job_id, since=cursor)
                yield from tail["verdicts"]
                return

    def wait(self, job_id: str, timeout_s: float = 600.0) -> dict:
        """Block until the job is terminal; returns its final snapshot."""
        deadline = time.monotonic() + timeout_s
        cursor = 0
        while True:
            page = self.verdicts(
                job_id, since=cursor, wait_s=min(10.0, max(0.0, deadline - time.monotonic()))
            )
            cursor = page["next"]
            if page["state"] in ("done", "failed", "cancelled", "interrupted"):
                return self.job(job_id)
            if time.monotonic() > deadline:
                raise TimeoutError(f"job {job_id} still {page['state']} after {timeout_s}s")

    def results(self, job_id: str) -> list[dict]:
        """All verdict records in submission-index order (the
        deterministic reduction order, whatever order they landed in)."""
        records = self.verdicts(job_id)["verdicts"]
        return sorted(records, key=lambda r: r.get("index", 0))

    def verdict_map(self, job_id: str) -> dict:
        """``{name: proved}`` — for grid jobs, byte-identical to the
        bench CLI's ``summary["verdicts"]`` map."""
        return {
            r["name"]: r.get("proved", r.get("status") == "proved")
            for r in self.results(job_id)
        }
