"""Named verifier runs the daemon can execute by name.

The grid names mirror the Figure 11 benchmark's obligation sets
(``benchmarks/bench_fig11_verify.py``), so a daemon grid job and the
standalone CLI produce the *same verdict map keys* — ``monitor.op`` —
and CI can diff them byte-for-byte.

Symbolic evaluation builds terms in the global hash-consing
``TermManager``, which is not safe under concurrent mutation from
multiple daemon threads; ``_EVAL_LOCK`` therefore serializes the
*evaluation* of each operation.  Solving still overlaps: every op's
proof obligations fan out to the process-wide work-stealing pool, and
all concurrent jobs share the one content-addressed verdict store —
which is exactly why a warm daemon answers the same grid an order of
magnitude faster.
"""

from __future__ import annotations

import threading
import time

__all__ = ["GRIDS", "grid_ops", "run_grid"]

# Representative subsets first (the bench's defaults), full interfaces
# after — same ops, same order, same names.
_CERTIKOS_QUICK = ["get_quota", "yield"]
_CERTIKOS_FULL = _CERTIKOS_QUICK + ["spawn", "invalid"]
_KOMODO_QUICK = [
    "init_addrspace", "init_thread", "map_secure", "enter", "exit", "stop", "remove",
]
_KOMODO_FULL = _KOMODO_QUICK + [
    "init_l2ptable", "init_l3ptable", "map_insecure", "finalize", "resume", "invalid",
]

GRIDS: dict[str, list[tuple[str, str]]] = {
    "fig11-quick": [("certikos", op) for op in _CERTIKOS_QUICK],
    "fig11": [("certikos", op) for op in _CERTIKOS_QUICK]
    + [("komodo", op) for op in _KOMODO_QUICK],
    "fig11-full": [("certikos", op) for op in _CERTIKOS_FULL]
    + [("komodo", op) for op in _KOMODO_FULL],
}

_EVAL_LOCK = threading.Lock()


def grid_ops(name: str) -> list[tuple[str, str]]:
    """The ``(monitor, op)`` list for a named grid (KeyError if unknown)."""
    return list(GRIDS[name])


def _make_verifier(monitor: str, opt: int, jobs: int, cache_dir: str | None):
    if monitor == "certikos":
        from ..certikos import CertikosVerifier as Verifier
    elif monitor == "komodo":
        from ..komodo import KomodoVerifier as Verifier
    else:
        raise ValueError(f"unknown monitor {monitor!r}")
    return Verifier(opt=opt, jobs=jobs, cache_dir=cache_dir)


def run_grid(
    name: str,
    opt: int = 1,
    jobs: int = 2,
    cache_dir: str | None = None,
    max_conflicts: int | None = None,
    timeout_s: float | None = None,
    on_verdict=None,
    should_stop=None,
) -> tuple[dict[str, bool], dict]:
    """Run a named grid; returns ``(verdict_map, aggregate_stats)``.

    ``verdict_map`` is ``{"monitor.op": proved}`` in grid order — the
    exact map the bench CLI writes under ``summary["verdicts"]``.
    ``on_verdict(label, result)`` fires after each op;  ``should_stop()``
    is polled between ops so a cancel lands at the next op boundary.
    """
    ops = grid_ops(name)
    verdicts: dict[str, bool] = {}
    totals = {
        "ops": 0,
        "obligations": 0,
        "cache_queries": 0,
        "cache_hits": 0,
        "eval_wall_s": 0.0,
    }
    for monitor, op in ops:
        if should_stop is not None and should_stop():
            break
        start = time.perf_counter()
        with _EVAL_LOCK:
            verifier = _make_verifier(monitor, opt, jobs, cache_dir)
            if max_conflicts is not None:
                verifier.max_conflicts = max_conflicts
            if timeout_s is not None:
                verifier.timeout_s = timeout_s
            result = verifier.prove_op(op)
        label = f"{monitor}.{op}"
        verdicts[label] = bool(result.proved)
        totals["ops"] += 1
        stats = result.stats or {}
        totals["obligations"] += int(
            stats.get("obligations", stats.get("num_vcs", 0)) or 0
        )
        totals["cache_queries"] += int(stats.get("cache_queries", 0) or 0)
        totals["cache_hits"] += int(stats.get("cache_hits", 0) or 0)
        totals["eval_wall_s"] += time.perf_counter() - start
        if on_verdict is not None:
            on_verdict(label, result)
    return verdicts, totals
