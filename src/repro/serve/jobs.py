"""Job lifecycle for the verification daemon.

A *job* is one client submission — a named verifier grid or a batch of
serialized proof obligations — tracked from ``queued`` through
``running`` to a terminal state.  The registry is the daemon's only
mutable state: everything else (verdicts, the solver cache) lives in
the content-addressed store shared with the CLI path.

Durability: every state change is spooled to ``<spool>/<id>.json``
(atomic tempfile + rename, same discipline as store entries).  On
startup the registry replays the spool; any job that was ``queued`` or
``running`` when the previous daemon died is marked ``interrupted`` —
its verdicts-so-far are preserved, it is just no longer being driven.
That is the crash contract the KVerus-style fleet scheduling needs: a
restart never silently loses a job, it reports it resumable-by-
resubmission.

States::

    queued -> running -> done
                      -> failed       (job raised; error recorded)
                      -> cancelled    (client asked; partial verdicts kept)
    queued|running -> interrupted     (daemon restarted mid-job)
"""

from __future__ import annotations

import itertools
import json
import os
import secrets
import tempfile
import threading
import time

__all__ = ["Job", "JobRegistry", "STATES", "TERMINAL_STATES"]

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
INTERRUPTED = "interrupted"

STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, INTERRUPTED)
TERMINAL_STATES = (DONE, FAILED, CANCELLED, INTERRUPTED)


class Job:
    """One tracked submission.

    ``verdicts`` is append-only and index-ordered as records land —
    the streaming endpoint pages through it with ``since=N`` cursors.
    ``cond`` guards every mutable field and is notified on each append
    and on every state change, which is what makes long-polling cheap.
    """

    def __init__(self, job_id: str, kind: str, params: dict, trace_id: str | None = None):
        self.id = job_id
        self.kind = kind  # "grid" | "obligations"
        self.params = params
        # Correlation id for fleet-wide observability: client-supplied
        # via X-Repro-Trace or daemon-generated at submit.
        self.trace_id = trace_id
        self.state = QUEUED
        self.created_t = time.time()
        self.started_t: float | None = None
        self.finished_t: float | None = None
        self.verdicts: list[dict] = []
        self.total: int | None = None  # obligations expected, once known
        self.stats: dict = {}
        self.error: str | None = None
        self.cancel_requested = False
        self.cond = threading.Condition()
        # Runtime-only handles (never serialized): the scheduler ticket
        # for obligation jobs, so cancel() can reach it.
        self.ticket = None

    # -- state transitions (registry persists after each) ---------------

    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def add_verdict(self, record: dict) -> None:
        with self.cond:
            self.verdicts.append(record)
            self.cond.notify_all()

    def finish(self, state: str, error: str | None = None) -> None:
        with self.cond:
            self.state = state
            self.error = error
            self.finished_t = time.time()
            self.cond.notify_all()

    # -- serialization ---------------------------------------------------

    def snapshot(self, with_verdicts: bool = False) -> dict:
        """JSON view of the job; the spool record and the API payload."""
        with self.cond:
            doc = {
                "id": self.id,
                "kind": self.kind,
                "state": self.state,
                "trace_id": self.trace_id,
                "params": self.params,
                "created_t": self.created_t,
                "started_t": self.started_t,
                "finished_t": self.finished_t,
                "progress": {
                    "total": self.total,
                    "done": len(self.verdicts),
                },
                "stats": dict(self.stats),
                "error": self.error,
            }
            if with_verdicts:
                doc["verdicts"] = list(self.verdicts)
            return doc

    @classmethod
    def from_snapshot(cls, doc: dict) -> "Job":
        job = cls(
            doc["id"], doc.get("kind", "?"), doc.get("params", {}),
            trace_id=doc.get("trace_id"),
        )
        job.state = doc.get("state", QUEUED)
        job.created_t = doc.get("created_t", 0.0)
        job.started_t = doc.get("started_t")
        job.finished_t = doc.get("finished_t")
        job.verdicts = list(doc.get("verdicts", []))
        job.total = (doc.get("progress") or {}).get("total")
        job.stats = dict(doc.get("stats", {}))
        job.error = doc.get("error")
        return job


class JobRegistry:
    """Thread-safe job table with spool-backed durability."""

    def __init__(self, spool_dir: str | None = None):
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._serial = itertools.count(1)
        self.spool_dir = spool_dir
        self.recovered: list[str] = []
        if spool_dir:
            os.makedirs(spool_dir, exist_ok=True)
            self._recover()

    def _recover(self) -> None:
        """Replay the spool: live-at-crash jobs become ``interrupted``."""
        for name in sorted(os.listdir(self.spool_dir)):
            if not name.endswith(".json"):
                continue
            try:
                with open(os.path.join(self.spool_dir, name)) as handle:
                    doc = json.load(handle)
                job = Job.from_snapshot(doc)
            except (OSError, ValueError, KeyError):
                continue  # torn spool record: drop, never crash startup
            if job.state in (QUEUED, RUNNING):
                job.state = INTERRUPTED
                job.error = "daemon restarted while the job was live"
                job.finished_t = time.time()
                self.recovered.append(job.id)
                self.persist(job)
            self._jobs[job.id] = job

    # -- CRUD ------------------------------------------------------------

    def create(self, kind: str, params: dict, trace_id: str | None = None) -> Job:
        with self._lock:
            job_id = f"j{next(self._serial):04d}-{secrets.token_hex(4)}"
            job = Job(job_id, kind, params, trace_id=trace_id)
            self._jobs[job_id] = job
        self.persist(job)
        return job

    def get(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[Job]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda j: j.created_t)

    def counts(self) -> dict:
        out = {state: 0 for state in STATES}
        with self._lock:
            for job in self._jobs.values():
                out[job.state] = out.get(job.state, 0) + 1
        return out

    # -- durability ------------------------------------------------------

    def persist(self, job: Job) -> None:
        """Spool the job snapshot atomically; a no-op without a spool."""
        if not self.spool_dir:
            return
        doc = job.snapshot(with_verdicts=True)
        try:
            fd, tmp = tempfile.mkstemp(dir=self.spool_dir, suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump(doc, handle)
            os.replace(tmp, os.path.join(self.spool_dir, f"{job.id}.json"))
        except OSError:
            pass  # a lost spool write degrades durability, not service
