"""SMT substrate: terms, bit-blasting, and a CDCL SAT core.

This package replaces Z3 in the paper's verification stack (Figure 1).
It decides the QF_BV + UF fragment by bit-blasting to CNF and running
a from-scratch CDCL solver.  See DESIGN.md, substitution (1).

Imports are lazy (PEP 562): ``import repro.smt.checkproof`` — the
standalone certificate checker — must not drag the solver stack into
the process, or "independent checker" would be a fiction.  Attribute
access on the package resolves through the table below on first use,
so ``from repro.smt import mk_and, Solver`` works exactly as before.
"""

from __future__ import annotations

import importlib

_EXPORTS = {
    "evaluator": ("EvalError", "eval_term"),
    "model": ("Model",),
    "solver": (
        "CheckResult",
        "SAT",
        "Solver",
        "SolverCache",
        "SolverTimeout",
        "UNKNOWN",
        "UNSAT",
        "check_sat",
    ),
    "sorts": ("BOOL", "BitVecSort", "Sort", "bv_sort", "is_bool", "is_bv"),
    "terms": (
        "Term",
        "TermManager",
        "canonicalize_nodes",
        "canonicalize_query",
        "deserialize_terms",
        "fresh_var",
        "manager",
        "mk_and",
        "mk_apply",
        "mk_bool",
        "mk_bv",
        "mk_bvadd",
        "mk_bvand",
        "mk_bvashr",
        "mk_bvlshr",
        "mk_bvmul",
        "mk_bvneg",
        "mk_bvnot",
        "mk_bvor",
        "mk_bvsdiv",
        "mk_bvshl",
        "mk_bvsrem",
        "mk_bvsub",
        "mk_bvudiv",
        "mk_bvurem",
        "mk_bvxor",
        "mk_concat",
        "mk_distinct",
        "mk_eq",
        "mk_extract",
        "mk_false",
        "mk_implies",
        "mk_ite",
        "mk_not",
        "mk_or",
        "mk_sext",
        "mk_sle",
        "mk_slt",
        "mk_true",
        "mk_ule",
        "mk_ult",
        "mk_var",
        "mk_xor",
        "mk_zext",
        "query_digest",
        "serialize_terms",
        "to_signed",
        "to_unsigned",
    ),
}

_NAME_TO_MODULE = {name: mod for mod, names in _EXPORTS.items() for name in names}

__all__ = sorted(_NAME_TO_MODULE)


def __getattr__(name: str):
    mod = _NAME_TO_MODULE.get(name)
    if mod is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(f".{mod}", __name__), name)
    globals()[name] = value  # cache: next access skips this hook
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
