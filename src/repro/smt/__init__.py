"""SMT substrate: terms, bit-blasting, and a CDCL SAT core.

This package replaces Z3 in the paper's verification stack (Figure 1).
It decides the QF_BV + UF fragment by bit-blasting to CNF and running
a from-scratch CDCL solver.  See DESIGN.md, substitution (1).
"""

from .evaluator import EvalError, eval_term
from .model import Model
from .solver import CheckResult, SAT, Solver, SolverCache, SolverTimeout, UNKNOWN, UNSAT, check_sat
from .sorts import BOOL, BitVecSort, Sort, bv_sort, is_bool, is_bv
from .terms import (
    Term,
    TermManager,
    canonicalize_query,
    deserialize_terms,
    fresh_var,
    manager,
    mk_and,
    mk_apply,
    mk_bool,
    mk_bv,
    mk_bvadd,
    mk_bvand,
    mk_bvashr,
    mk_bvlshr,
    mk_bvmul,
    mk_bvneg,
    mk_bvnot,
    mk_bvor,
    mk_bvsdiv,
    mk_bvshl,
    mk_bvsrem,
    mk_bvsub,
    mk_bvudiv,
    mk_bvurem,
    mk_bvxor,
    mk_concat,
    mk_distinct,
    mk_eq,
    mk_extract,
    mk_false,
    mk_implies,
    mk_ite,
    mk_not,
    mk_or,
    mk_sext,
    mk_sle,
    mk_slt,
    mk_true,
    mk_ule,
    mk_ult,
    mk_var,
    mk_xor,
    mk_zext,
    query_digest,
    serialize_terms,
    to_signed,
    to_unsigned,
)

__all__ = [name for name in dir() if not name.startswith("_")]
