"""Bit-blasting QF_BV terms to CNF (Tseitin encoding).

The solver frontend reduces every verification condition to a boolean
circuit: each boolean term becomes a literal, each bitvector term a
list of literals (LSB first).  Gates are encoded with the standard
Tseitin clauses and cached per term node, so the DAG sharing of the
term layer carries through to CNF sharing.

Uninterpreted functions are eliminated by Ackermann expansion at the
blasting boundary: each application gets fresh output bits, plus
pairwise functional-consistency constraints between applications of
the same symbol.
"""

from __future__ import annotations

from ..obs import enabled as _obs_enabled
from .sat import new_solver
from .sorts import BOOL
from .terms import Term


class CnfBuilder:
    """Tseitin gate encodings over a SAT solver.

    Literal 'TRUE' is a dedicated variable asserted at level 0, so
    constants flow through gate constructors without special cases.
    """

    def __init__(self, sat):
        self.sat = sat
        self.TRUE = sat.new_var()
        sat.add_clause([self.TRUE])
        self.FALSE = -self.TRUE
        self._and_cache: dict[tuple[int, int], int] = {}
        self._xor_cache: dict[tuple[int, int], int] = {}

    def new_lit(self) -> int:
        return self.sat.new_var()

    def mk_and(self, a: int, b: int) -> int:
        if a == self.FALSE or b == self.FALSE or a == -b:
            return self.FALSE
        if a == self.TRUE or a == b:
            return b
        if b == self.TRUE:
            return a
        key = (a, b) if a < b else (b, a)
        out = self._and_cache.get(key)
        if out is None:
            out = self.new_lit()
            add = self.sat.add_clause
            add([-out, a])
            add([-out, b])
            add([out, -a, -b])
            self._and_cache[key] = out
        return out

    def mk_or(self, a: int, b: int) -> int:
        return -self.mk_and(-a, -b)

    def mk_xor(self, a: int, b: int) -> int:
        if a == self.TRUE:
            return -b
        if a == self.FALSE:
            return b
        if b == self.TRUE:
            return -a
        if b == self.FALSE:
            return a
        if a == b:
            return self.FALSE
        if a == -b:
            return self.TRUE
        key = (a, b) if abs(a) < abs(b) else (b, a)
        out = self._xor_cache.get(key)
        if out is None:
            out = self.new_lit()
            add = self.sat.add_clause
            add([-out, a, b])
            add([-out, -a, -b])
            add([out, -a, b])
            add([out, a, -b])
            self._xor_cache[key] = out
        return out

    def mk_iff(self, a: int, b: int) -> int:
        return -self.mk_xor(a, b)

    def mk_ite(self, c: int, t: int, e: int) -> int:
        if c == self.TRUE:
            return t
        if c == self.FALSE:
            return e
        if t == e:
            return t
        if t == self.TRUE:
            return self.mk_or(c, e)
        if t == self.FALSE:
            return self.mk_and(-c, e)
        if e == self.TRUE:
            return self.mk_or(-c, t)
        if e == self.FALSE:
            return self.mk_and(c, t)
        out = self.new_lit()
        add = self.sat.add_clause
        add([-out, -c, t])
        add([-out, c, e])
        add([out, -c, -t])
        add([out, c, -e])
        return out

    def mk_and_many(self, lits: list[int]) -> int:
        out = self.TRUE
        for lit in lits:
            out = self.mk_and(out, lit)
        return out

    def mk_or_many(self, lits: list[int]) -> int:
        out = self.FALSE
        for lit in lits:
            out = self.mk_or(out, lit)
        return out

    # Full adder: returns (sum, carry_out).
    def full_adder(self, a: int, b: int, c: int) -> tuple[int, int]:
        axb = self.mk_xor(a, b)
        s = self.mk_xor(axb, c)
        cout = self.mk_or(self.mk_and(a, b), self.mk_and(c, axb))
        return s, cout


class BitBlaster:
    """Lowers term DAGs to CNF over a shared SAT solver.

    Besides the CNF itself, the blaster keeps an always-on record of
    which solver variables and how many clauses each term node's blast
    emitted (exclusive of children).  The incremental session in
    ``repro.smt.solver`` unions those per-tid variable ranges over a
    query's DAG to obtain the query's *cone* — the set of variables a
    relevancy-restricted solve is allowed to decide — and uses the
    clause counts to report how much CNF a query reused from earlier
    blasts.
    """

    def __init__(self, sat=None):
        self.sat = sat if sat is not None else new_solver()
        self.cnf = CnfBuilder(self.sat)
        self._bool_cache: dict[int, int] = {}
        self._bv_cache: dict[int, list[int]] = {}
        # variable name -> bit literals, for model extraction
        self.var_bits: dict[str, list[int] | int] = {}
        # UF name -> list of (arg bit lists, result bits)
        self._uf_apps: dict[str, list[tuple[list[list[int]], list[int] | int]]] = {}
        # Per-sort emission profile, populated only while repro.obs
        # tracing is enabled: sort label -> [aux vars, clauses] emitted
        # while blasting nodes of that sort (exclusive of children, so
        # the per-sort numbers sum to the totals).
        self.emitted: dict[str, list[int]] = {}
        # term tid -> flat [lo, hi, ...] pairs: solver vars lo+1..hi
        # were allocated exclusively while blasting that node.
        self._tid_segs: dict[int, list[int]] = {}
        # term tid -> clauses emitted exclusively by that node's blast.
        self._tid_clauses: dict[int, int] = {}
        self._frames: list[list] = []

    # -- public API ----------------------------------------------------------

    def assert_term(self, term: Term) -> None:
        if term.sort is not BOOL:
            raise TypeError("assertions must be boolean terms")
        lit = self.bool_lit(term)
        self.sat.add_clause([lit])

    def bool_lit(self, term: Term) -> int:
        lit = self._bool_cache.get(term.tid)
        if lit is None:
            lit = self._tracked(term.tid, "bool", self._blast_bool, term)
            self._bool_cache[term.tid] = lit
        return lit

    def bv_bits(self, term: Term) -> list[int]:
        bits = self._bv_cache.get(term.tid)
        if bits is None:
            bits = self._tracked(term.tid, f"bv{term.width}", self._blast_bv, term)
            assert len(bits) == term.width, f"{term.op}: {len(bits)} != {term.width}"
            self._bv_cache[term.tid] = bits
        return bits

    def cone_vars(self, tids) -> set[int]:
        """Union of the solver variables blasted for ``tids``."""
        segs_by_tid = self._tid_segs
        cone: set[int] = set()
        for tid in tids:
            segs = segs_by_tid.get(tid)
            if segs:
                for i in range(0, len(segs), 2):
                    cone.update(range(segs[i] + 1, segs[i + 1] + 1))
        return cone

    def clauses_for(self, tids) -> int:
        """Total clauses emitted (exclusively) by the blasts of ``tids``."""
        counts = self._tid_clauses
        return sum(counts.get(tid, 0) for tid in tids)

    def _charge(self, label: str, aux_vars: int, clauses: int) -> None:
        cell = self.emitted.get(label)
        if cell is None:
            cell = self.emitted[label] = [0, 0]
        cell[0] += aux_vars
        cell[1] += clauses

    def _record(self, frame, num_vars: int, added_clauses: int) -> None:
        """Close the open emission segment of ``frame`` and advance its
        marks to the current solver state."""
        tid, label, v0, c0 = frame
        if num_vars > v0:
            segs = self._tid_segs.get(tid)
            if segs is None:
                segs = self._tid_segs[tid] = []
            segs.append(v0)
            segs.append(num_vars)
        if (num_vars > v0 or added_clauses > c0) and _obs_enabled():
            self._charge(label, num_vars - v0, added_clauses - c0)
        if added_clauses > c0:
            self._tid_clauses[tid] = self._tid_clauses.get(tid, 0) + (added_clauses - c0)
        frame[2] = num_vars
        frame[3] = added_clauses

    def _tracked(self, tid: int, label: str, blast, term: Term):
        """Run one node's blast, recording its *exclusive* variable
        ranges and clause emission (nested child blasts record their
        own — the same resume-mark trick the symbolic profiler uses
        for exclusive time)."""
        sat = self.sat
        stack = self._frames
        if stack:
            self._record(stack[-1], sat.num_vars, sat.added_clauses)
        frame = [tid, label, sat.num_vars, sat.added_clauses]
        stack.append(frame)
        try:
            out = blast(term)
        finally:
            stack.pop()
            self._record(frame, sat.num_vars, sat.added_clauses)
            if stack:
                parent = stack[-1]
                parent[2] = sat.num_vars
                parent[3] = sat.added_clauses
        return out

    # -- boolean terms ---------------------------------------------------------

    def _blast_bool(self, t: Term) -> int:
        cnf = self.cnf
        op = t.op
        if op == "boolconst":
            return cnf.TRUE if t.payload else cnf.FALSE
        if op == "var":
            lit = cnf.new_lit()
            self.var_bits[t.payload] = lit
            return lit
        if op == "not":
            return -self.bool_lit(t.args[0])
        if op == "and":
            return cnf.mk_and_many([self.bool_lit(a) for a in t.args])
        if op == "or":
            return cnf.mk_or_many([self.bool_lit(a) for a in t.args])
        if op == "xor":
            return cnf.mk_xor(self.bool_lit(t.args[0]), self.bool_lit(t.args[1]))
        if op == "ite":
            return cnf.mk_ite(*(self.bool_lit(a) for a in t.args))
        if op == "eq":
            a, b = t.args
            if a.sort is BOOL:
                return cnf.mk_iff(self.bool_lit(a), self.bool_lit(b))
            abits, bbits = self.bv_bits(a), self.bv_bits(b)
            return cnf.mk_and_many([cnf.mk_iff(x, y) for x, y in zip(abits, bbits)])
        if op in ("ult", "ule", "slt", "sle"):
            return self._blast_compare(t)
        if op == "apply":
            return self._blast_apply(t)
        raise ValueError(f"cannot blast boolean op {op!r}")

    def _blast_compare(self, t: Term) -> int:
        cnf = self.cnf
        a, b = t.args
        abits = list(self.bv_bits(a))
        bbits = list(self.bv_bits(b))
        signed = t.op in ("slt", "sle")
        if signed:
            abits[-1] = -abits[-1]
            bbits[-1] = -bbits[-1]
        # LSB-to-MSB scan: lt := ite(a_i == b_i, lt, ~a_i & b_i)
        lt = cnf.FALSE
        eq = cnf.TRUE
        for x, y in zip(abits, bbits):
            bit_lt = cnf.mk_and(-x, y)
            bit_eq = cnf.mk_iff(x, y)
            lt = cnf.mk_ite(bit_eq, lt, bit_lt)
            if t.op in ("ule", "sle"):
                eq = cnf.mk_and(eq, bit_eq)
        if t.op in ("ule", "sle"):
            return cnf.mk_or(lt, eq)
        return lt

    # -- bitvector terms ----------------------------------------------------------

    def _blast_bv(self, t: Term) -> list[int]:
        cnf = self.cnf
        op = t.op
        w = t.width
        if op == "bvconst":
            return [cnf.TRUE if (t.payload >> i) & 1 else cnf.FALSE for i in range(w)]
        if op == "var":
            bits = [cnf.new_lit() for _ in range(w)]
            self.var_bits[t.payload] = bits
            return bits
        if op == "ite":
            c = self.bool_lit(t.args[0])
            tb = self.bv_bits(t.args[1])
            eb = self.bv_bits(t.args[2])
            return [cnf.mk_ite(c, x, y) for x, y in zip(tb, eb)]
        if op == "bvnot":
            return [-x for x in self.bv_bits(t.args[0])]
        if op in ("bvand", "bvor", "bvxor"):
            ab = self.bv_bits(t.args[0])
            bb = self.bv_bits(t.args[1])
            gate = {"bvand": cnf.mk_and, "bvor": cnf.mk_or, "bvxor": cnf.mk_xor}[op]
            return [gate(x, y) for x, y in zip(ab, bb)]
        if op == "bvadd":
            return self._adder(self.bv_bits(t.args[0]), self.bv_bits(t.args[1]), cnf.FALSE)
        if op == "bvsub":
            bb = [-x for x in self.bv_bits(t.args[1])]
            return self._adder(self.bv_bits(t.args[0]), bb, cnf.TRUE)
        if op == "bvneg":
            ab = [-x for x in self.bv_bits(t.args[0])]
            zero = [cnf.FALSE] * w
            return self._adder(zero, ab, cnf.TRUE)
        if op == "bvmul":
            return self._multiplier(self.bv_bits(t.args[0]), self.bv_bits(t.args[1]))
        if op in ("bvudiv", "bvurem"):
            q, r = self._divider(self.bv_bits(t.args[0]), self.bv_bits(t.args[1]))
            return q if op == "bvudiv" else r
        if op in ("bvsdiv", "bvsrem"):
            return self._signed_div(t)
        if op in ("bvshl", "bvlshr", "bvashr"):
            return self._shifter(t)
        if op == "concat":
            hi = self.bv_bits(t.args[0])
            lo = self.bv_bits(t.args[1])
            return lo + hi
        if op == "extract":
            hi, lo = t.payload
            return self.bv_bits(t.args[0])[lo : hi + 1]
        if op == "zext":
            inner = self.bv_bits(t.args[0])
            return inner + [cnf.FALSE] * (w - len(inner))
        if op == "sext":
            inner = self.bv_bits(t.args[0])
            return inner + [inner[-1]] * (w - len(inner))
        if op == "apply":
            return self._blast_apply(t)
        raise ValueError(f"cannot blast bitvector op {op!r}")

    # -- circuits -------------------------------------------------------------

    def _adder(self, a: list[int], b: list[int], carry: int) -> list[int]:
        out = []
        for x, y in zip(a, b):
            s, carry = self.cnf.full_adder(x, y, carry)
            out.append(s)
        return out

    def _multiplier(self, a: list[int], b: list[int]) -> list[int]:
        cnf = self.cnf
        w = len(a)
        acc = [cnf.FALSE] * w
        for i in range(w):
            addend = [cnf.FALSE] * i + [cnf.mk_and(a[i], y) for y in b[: w - i]]
            acc = self._adder(acc, addend, cnf.FALSE)
        return acc

    def _divider(self, a: list[int], b: list[int]) -> tuple[list[int], list[int]]:
        """Restoring division; returns (quotient, remainder).

        SMT-LIB semantics on zero divisor: quotient all-ones, remainder
        = dividend.
        """
        cnf = self.cnf
        w = len(a)
        # Remainder register, one bit wider to hold the compare.
        r = [cnf.FALSE] * (w + 1)
        bext = b + [cnf.FALSE]
        q = [cnf.FALSE] * w
        for i in range(w - 1, -1, -1):
            r = [a[i]] + r[:-1]
            # ge = r >= bext  (unsigned, w+1 bits)
            lt = cnf.FALSE
            for x, y in zip(r, bext):
                lt = cnf.mk_ite(cnf.mk_iff(x, y), lt, cnf.mk_and(-x, y))
            ge = -lt
            diff = self._adder(r, [-x for x in bext], cnf.TRUE)
            r = [cnf.mk_ite(ge, d, x) for d, x in zip(diff, r)]
            q[i] = ge
        bzero = cnf.mk_and_many([-x for x in b])
        quot = [cnf.mk_ite(bzero, cnf.TRUE, x) for x in q]
        rem = [cnf.mk_ite(bzero, x, y) for x, y in zip(a, r[:w])]
        return quot, rem

    def _signed_div(self, t: Term) -> list[int]:
        cnf = self.cnf
        a = self.bv_bits(t.args[0])
        b = self.bv_bits(t.args[1])
        w = len(a)
        sa, sb = a[-1], b[-1]

        def negate(bits: list[int]) -> list[int]:
            return self._adder([cnf.FALSE] * w, [-x for x in bits], cnf.TRUE)

        abs_a = [cnf.mk_ite(sa, n, x) for n, x in zip(negate(a), a)]
        abs_b = [cnf.mk_ite(sb, n, x) for n, x in zip(negate(b), b)]
        q, r = self._divider(abs_a, abs_b)
        if t.op == "bvsdiv":
            neg_result = cnf.mk_xor(sa, sb)
            nq = negate(q)
            out = [cnf.mk_ite(neg_result, n, x) for n, x in zip(nq, q)]
            # Division by zero: all-ones if dividend >= 0 else 1.
            bzero = cnf.mk_and_many([-x for x in b])
            one = [cnf.TRUE] + [cnf.FALSE] * (w - 1)
            ones = [cnf.TRUE] * w
            dz = [cnf.mk_ite(sa, o, al) for o, al in zip(one, ones)]
            return [cnf.mk_ite(bzero, d, x) for d, x in zip(dz, out)]
        # bvsrem: sign follows the dividend.
        nr = negate(r)
        out = [cnf.mk_ite(sa, n, x) for n, x in zip(nr, r)]
        bzero = cnf.mk_and_many([-x for x in b])
        return [cnf.mk_ite(bzero, x, y) for x, y in zip(a, out)]

    def _shifter(self, t: Term) -> list[int]:
        cnf = self.cnf
        a = list(self.bv_bits(t.args[0]))
        b = self.bv_bits(t.args[1])
        w = len(a)
        left = t.op == "bvshl"
        fill_overshift = a[-1] if t.op == "bvashr" else cnf.FALSE
        stages = max(1, (w - 1).bit_length())
        # Overshift if any amount bit at position >= stages is set, or
        # the in-range amount >= w (only when w is not a power of two).
        over = cnf.mk_or_many(b[stages:])
        if w & (w - 1) != 0:
            amt_ge_w = self._compare_const_ge(b[:stages], w)
            over = cnf.mk_or(over, amt_ge_w)
        bits = a
        for s in range(stages):
            k = 1 << s
            sel = b[s]
            if left:
                shifted = [cnf.FALSE] * min(k, w) + bits[: max(w - k, 0)]
            else:
                shifted = bits[k:] + [fill_overshift] * min(k, w)
            bits = [cnf.mk_ite(sel, sh, x) for sh, x in zip(shifted, bits)]
        fill = fill_overshift
        return [cnf.mk_ite(over, fill, x) for x in bits]

    def _compare_const_ge(self, bits: list[int], const: int) -> int:
        """Literal for (unsigned value of bits) >= const."""
        cnf = self.cnf
        ge = cnf.TRUE
        for i, x in enumerate(bits):
            c = (const >> i) & 1
            if c:
                ge = cnf.mk_and(x, ge)
            else:
                ge = cnf.mk_or(x, ge)
        return ge

    # -- uninterpreted functions ------------------------------------------------

    def _blast_apply(self, t: Term) -> int | list[int]:
        cnf = self.cnf
        arg_bits: list[list[int]] = []
        for a in t.args:
            if a.sort is BOOL:
                arg_bits.append([self.bool_lit(a)])
            else:
                arg_bits.append(list(self.bv_bits(a)))
        if t.sort is BOOL:
            result: int | list[int] = cnf.new_lit()
        else:
            result = [cnf.new_lit() for _ in range(t.width)]
        prior = self._uf_apps.setdefault(t.payload, [])
        for other_args, other_result in prior:
            same = cnf.TRUE
            for mine, theirs in zip(arg_bits, other_args):
                for x, y in zip(mine, theirs):
                    same = cnf.mk_and(same, cnf.mk_iff(x, y))
            if isinstance(result, int):
                eq_out = cnf.mk_iff(result, other_result)  # type: ignore[arg-type]
            else:
                eq_out = cnf.mk_and_many(
                    [cnf.mk_iff(x, y) for x, y in zip(result, other_result)]  # type: ignore[arg-type]
                )
            self.sat.add_clause([-same, eq_out])
        prior.append((arg_bits, result))
        return result

    # -- model extraction ----------------------------------------------------------

    def extract_model(self, names=None) -> dict[str, int | bool]:
        """Read variable values out of a satisfying assignment.

        ``names`` restricts the model to those variables; a shared
        incremental blaster passes the current query's variable set so
        the model does not leak bindings from unrelated queries (whose
        bits are unconstrained — possibly unassigned — here).
        """
        model: dict[str, int | bool] = {}
        for name, bits in self.var_bits.items():
            if names is not None and name not in names:
                continue
            if isinstance(bits, int):
                model[name] = bool(self.sat.value(bits))
            else:
                value = 0
                for i, lit in enumerate(bits):
                    if self.sat.value(lit):
                        value |= 1 << i
                model[name] = value
        return model
