"""Standalone proof-certificate checker — the trust anchor for shared
verdict stores.

``python -m repro.smt.checkproof cert.json [...]`` verifies individual
certificates; ``python -m repro.smt.checkproof --store DIR`` audits an
entire verdict store (every ``<digest>.json`` entry, flat or sharded
layout, with its ``<digest>.cert.json[.gz]`` sibling).

This module is deliberately self-contained: it imports **nothing** from
the solver stack (``repro.smt.sat``, ``repro.smt.solver``,
``repro.smt.terms``, ...), only the standard library.  A certificate
produced by a machine you do not control is checked by code that shares
no line with the code that produced it; the wire format is the contract
(docs/CERTIFICATES.md) and this file plus the format spec are the whole
trusted base.  Three mirrors of solver-side logic therefore live here
on purpose and must stay in semantic lockstep with their originals:

  * :func:`canonical_digest` mirrors ``terms.canonicalize_nodes`` (the
    alpha-blind query digest — the binding between a certificate and
    its store entry);
  * :func:`eval_nodes` mirrors ``evaluator.eval_term`` over the
    serialized ``[op, sort_tag, arg_idxs, payload]`` node schema
    (model replay for ``sat`` verdicts);
  * :func:`rup_conflict` implements reverse unit propagation (clause
    proof checking for ``unsat`` verdicts: every proof line must be a
    RUP consequence of the clauses before it, and the assumptions must
    propagate to a conflict at the end).

Exit codes: 0 all certificates valid, 1 any invalid (including a
tampered digest), 2 usage/IO errors.  Missing certificates are
tolerated in ``--store`` mode (legacy cert-less entries are a supported
state) unless ``--require-certs`` is given.
"""

from __future__ import annotations

import argparse
import gzip
import hashlib
import json
import os
import re
import sys

CERT_FORMAT = "repro-cert"
CERT_VERSION = 1

_DIGEST_RE = re.compile(r"^[0-9a-f]{16,64}$")

_COMMUTATIVE = frozenset(
    {"and", "or", "xor", "eq", "distinct", "bvadd", "bvmul", "bvand", "bvor", "bvxor"}
)


class CheckFailure(Exception):
    """A certificate failed verification (reason in ``str()``)."""


# ---------------------------------------------------------------------------
# Canonical digest (mirror of repro.smt.terms.canonicalize_nodes)


def canonical_digest(data: dict) -> str:
    """Alpha-blind canonical digest of a serialized query node list."""
    nodes = data["nodes"]

    shape: list[str] = []
    for op, sort_tag, arg_idxs, payload in nodes:
        child = [shape[j] for j in arg_idxs]
        if op in _COMMUTATIVE:
            child = sorted(child)
        tag = "VAR" if op == "var" else repr(payload)
        shape.append(hashlib.sha256(f"{op}|{sort_tag}|{tag}|{child}".encode()).hexdigest())

    def child_order(op: str, arg_idxs: list[int]) -> list[int]:
        if op in _COMMUTATIVE:
            return sorted(arg_idxs, key=lambda j: shape[j])
        return list(arg_idxs)

    var_map: dict[str, str] = {}
    visited: set[int] = set()
    for r in data["roots"]:
        stack = [r]
        while stack:
            i = stack.pop()
            if i in visited:
                continue
            visited.add(i)
            op, _sort_tag, arg_idxs, payload = nodes[i]
            if op == "var":
                name = str(payload)
                if name not in var_map:
                    var_map[name] = f"v{len(var_map)}"
            for j in reversed(child_order(op, arg_idxs)):
                stack.append(j)

    enc: list[str] = []
    for op, sort_tag, arg_idxs, payload in nodes:
        if op == "var":
            tag = var_map[str(payload)]
        else:
            tag = repr(payload)
        child = [enc[j] for j in child_order(op, arg_idxs)]
        enc.append(hashlib.sha256(f"{op}|{sort_tag}|{tag}|{child}".encode()).hexdigest())

    hasher = hashlib.sha256()
    for r in data["roots"]:
        hasher.update(enc[r].encode())
        hasher.update(b"\n")
    return hasher.hexdigest()


# ---------------------------------------------------------------------------
# Model replay (mirror of repro.smt.evaluator over the node schema)


def _to_signed(value: int, width: int) -> int:
    sign_bit = 1 << (width - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def _to_unsigned(value: int, width: int) -> int:
    return value & ((1 << width) - 1)


def eval_nodes(data: dict, env: dict, funs: dict) -> list:
    """Evaluate every root of a serialized query under a model.

    ``env`` maps variable payload names to ints/bools; ``funs`` maps
    uninterpreted function names to ``{arg_tuple: value}`` tables.
    Variables or applications the model does not pin default to zero —
    the same default the solver-side evaluator uses for unconstrained
    symbols, and conservative here: a wrong default can only make a
    bogus certificate fail, never pass.

    The node list is post-order (arguments precede users), so a single
    forward sweep evaluates the whole DAG.
    """
    nodes = data["nodes"]
    vals: list = [None] * len(nodes)
    for i, (op, sort_tag, arg_idxs, payload) in enumerate(nodes):
        a = [vals[j] for j in arg_idxs]
        width = None if sort_tag == "b" else int(sort_tag)

        if op in ("boolconst", "bvconst"):
            v = payload
        elif op == "var":
            v = env.get(str(payload), 0)
            v = bool(v) if width is None else _to_unsigned(int(v), width)
        elif op == "apply":
            table = funs.get(str(payload), {})
            v = table.get(tuple(int(x) for x in a), 0)
            v = bool(v) if width is None else _to_unsigned(int(v), width)
        elif op == "not":
            v = not a[0]
        elif op == "and":
            v = all(a)
        elif op == "or":
            v = any(a)
        elif op == "xor":
            v = bool(a[0]) != bool(a[1])
        elif op == "ite":
            v = a[1] if a[0] else a[2]
        elif op == "eq":
            v = a[0] == a[1]
        elif op == "bvnot":
            v = _to_unsigned(~a[0], width)
        elif op == "bvneg":
            v = _to_unsigned(-a[0], width)
        elif op == "zext":
            v = a[0]
        elif op == "sext":
            src_w = int(nodes[arg_idxs[0]][1])
            v = _to_unsigned(_to_signed(a[0], src_w), width)
        elif op == "extract":
            hi, lo = payload
            v = (a[0] >> lo) & ((1 << (hi - lo + 1)) - 1)
        elif op == "concat":
            v = (a[0] << int(nodes[arg_idxs[1]][1])) | a[1]
        elif op in ("ult", "ule", "slt", "sle"):
            w = int(nodes[arg_idxs[0]][1])
            x, y = a
            if op[0] == "s":
                x, y = _to_signed(x, w), _to_signed(y, w)
            v = (x < y) if op.endswith("lt") else (x <= y)
        elif op in (
            "bvadd",
            "bvsub",
            "bvmul",
            "bvudiv",
            "bvurem",
            "bvsdiv",
            "bvsrem",
            "bvand",
            "bvor",
            "bvxor",
            "bvshl",
            "bvlshr",
            "bvashr",
        ):
            x, y = a
            if op == "bvadd":
                v = _to_unsigned(x + y, width)
            elif op == "bvsub":
                v = _to_unsigned(x - y, width)
            elif op == "bvmul":
                v = _to_unsigned(x * y, width)
            elif op == "bvudiv":
                v = (1 << width) - 1 if y == 0 else x // y
            elif op == "bvurem":
                v = x if y == 0 else x % y
            elif op == "bvsdiv":
                sx, sy = _to_signed(x, width), _to_signed(y, width)
                if sy == 0:
                    v = (1 << width) - 1 if sx >= 0 else 1
                else:
                    q = abs(sx) // abs(sy)
                    v = _to_unsigned(-q if (sx < 0) != (sy < 0) else q, width)
            elif op == "bvsrem":
                sx, sy = _to_signed(x, width), _to_signed(y, width)
                if sy == 0:
                    v = x
                else:
                    r = abs(sx) % abs(sy)
                    v = _to_unsigned(-r if sx < 0 else r, width)
            elif op == "bvand":
                v = x & y
            elif op == "bvor":
                v = x | y
            elif op == "bvxor":
                v = x ^ y
            elif op == "bvshl":
                v = 0 if y >= width else _to_unsigned(x << y, width)
            elif op == "bvlshr":
                v = 0 if y >= width else x >> y
            else:  # bvashr
                v = _to_unsigned(_to_signed(x, width) >> min(y, width - 1), width)
        else:
            raise CheckFailure(f"query uses unknown operator {op!r}")
        vals[i] = v
    return [vals[r] for r in data["roots"]]


# ---------------------------------------------------------------------------
# RUP clause-proof checking


class _Propagator:
    """Unit propagation over a growable clause database.

    Clauses are appended once (CNF manifest, then each accepted proof
    line); per-query state — the assignment and propagation queue of a
    single RUP check — is transient.  Occurrence lists index clauses by
    literal, so each check touches only clauses containing a literal it
    falsified.
    """

    def __init__(self) -> None:
        self.clauses: list[list[int]] = []
        self.occ: dict[int, list[int]] = {}
        self.units: list[int] = []

    def add(self, clause: list[int]) -> None:
        idx = len(self.clauses)
        self.clauses.append(clause)
        for lit in clause:
            self.occ.setdefault(lit, []).append(idx)
        if len(clause) == 1:
            self.units.append(clause[0])

    def propagates_to_conflict(self, units: list[int]) -> bool:
        """Assert the database's unit clauses plus ``units`` and run
        unit propagation; True on conflict."""
        assign: dict[int, bool] = {}
        queue: list[int] = []
        for lit in self.units + list(units):
            var, val = abs(lit), lit > 0
            prev = assign.get(var)
            if prev is None:
                assign[var] = val
                queue.append(lit)
            elif prev != val:
                return True
        head = 0
        clauses, occ = self.clauses, self.occ
        while head < len(queue):
            lit = queue[head]
            head += 1
            # Clauses containing -lit just lost a literal.
            for ci in occ.get(-lit, ()):  # noqa: B905 - plain iteration
                clause = clauses[ci]
                unassigned = 0
                satisfied = False
                for q in clause:
                    val = assign.get(abs(q))
                    if val is None:
                        if unassigned == 0:
                            unassigned = q
                        else:
                            unassigned = None  # two or more free literals
                            break
                    elif val == (q > 0):
                        satisfied = True
                        break
                if satisfied or unassigned is None:
                    continue
                if unassigned == 0:
                    return True  # every literal false
                var, val = abs(unassigned), unassigned > 0
                prev = assign.get(var)
                if prev is None:
                    assign[var] = val
                    queue.append(unassigned)
                elif prev != val:
                    return True
        return False

    def rup(self, clause: list[int]) -> bool:
        """Is ``clause`` a reverse-unit-propagation consequence?"""
        return self.propagates_to_conflict([-lit for lit in clause])


# ---------------------------------------------------------------------------
# Certificate checks


def _check_common(cert: dict) -> None:
    if not isinstance(cert, dict):
        raise CheckFailure("certificate is not a JSON object")
    if cert.get("format") != CERT_FORMAT:
        raise CheckFailure(f"unknown format {cert.get('format')!r}")
    if cert.get("version") != CERT_VERSION:
        raise CheckFailure(f"unsupported version {cert.get('version')!r}")
    query = cert.get("query")
    if not isinstance(query, dict) or "nodes" not in query or "roots" not in query:
        raise CheckFailure("certificate carries no query payload")
    try:
        recomputed = canonical_digest(query)
    except (KeyError, IndexError, TypeError, ValueError) as exc:
        raise CheckFailure(f"malformed query payload: {exc}") from None
    if recomputed != cert.get("digest"):
        raise CheckFailure(
            f"digest binding broken: certificate claims {cert.get('digest')!r}, "
            f"query hashes to {recomputed!r}"
        )


def check_drat(cert: dict) -> dict:
    """Verify an ``unsat`` certificate.  Returns summary counters."""
    _check_common(cert)
    if cert.get("kind") != "drat":
        raise CheckFailure(f"expected kind 'drat', got {cert.get('kind')!r}")
    cnf = cert.get("cnf")
    proof = cert.get("proof")
    assumptions = cert.get("assumptions", [])
    if not isinstance(cnf, list) or not isinstance(proof, list):
        raise CheckFailure("drat certificate needs 'cnf' and 'proof' arrays")

    prop = _Propagator()
    for clause in cnf:
        if not clause or not all(isinstance(q, int) and q != 0 for q in clause):
            raise CheckFailure(f"malformed CNF clause {clause!r}")
        prop.add(list(clause))
    for n, line in enumerate(proof):
        if not all(isinstance(q, int) and q != 0 for q in line):
            raise CheckFailure(f"malformed proof line {n}: {line!r}")
        if not prop.rup(list(line)):
            raise CheckFailure(f"proof line {n} ({line}) is not a RUP consequence")
        prop.add(list(line))
    if not prop.propagates_to_conflict(list(assumptions)):
        raise CheckFailure(
            "final check failed: assumptions + derived clauses do not "
            "propagate to a conflict"
        )
    return {"cnf_clauses": len(cnf), "proof_lines": len(proof)}


def check_model(cert: dict) -> dict:
    """Verify a ``sat`` certificate by replaying the model.  Returns
    summary counters."""
    _check_common(cert)
    if cert.get("kind") != "model":
        raise CheckFailure(f"expected kind 'model', got {cert.get('kind')!r}")
    model = cert.get("model")
    if not isinstance(model, dict):
        raise CheckFailure("model certificate needs a 'model' object")
    funs_raw = cert.get("funs", {})
    funs: dict[str, dict] = {}
    try:
        for name, rows in funs_raw.items():
            funs[name] = {tuple(int(x) for x in args): value for args, value in rows}
    except (TypeError, ValueError) as exc:
        raise CheckFailure(f"malformed 'funs' tables: {exc}") from None

    try:
        root_values = eval_nodes(cert["query"], model, funs)
    except (IndexError, KeyError, TypeError, ValueError) as exc:
        raise CheckFailure(f"model replay crashed: {exc}") from None
    for k, value in enumerate(root_values):
        if not value:
            raise CheckFailure(f"model does not satisfy query root {k}")
    return {"roots": len(root_values), "model_vars": len(model), "funs": len(funs)}


def check_certificate(cert: dict) -> dict:
    """Verify either kind.  Returns summary counters; raises
    :class:`CheckFailure` on any problem."""
    kind = cert.get("kind") if isinstance(cert, dict) else None
    if kind == "drat":
        return check_drat(cert)
    if kind == "model":
        return check_model(cert)
    raise CheckFailure(f"unknown certificate kind {kind!r}")


# ---------------------------------------------------------------------------
# Store audit


def _load_json(path: str):
    with open(path, "rb") as handle:
        raw = handle.read()
    if path.endswith(".gz"):
        raw = gzip.decompress(raw)
    return json.loads(raw.decode())


def iter_store_entries(store_dir: str):
    """Yield ``(digest, entry_path)`` for every verdict in a store,
    covering both the flat and the two-hex-shard layouts."""
    try:
        names = sorted(os.listdir(store_dir))
    except OSError as exc:
        raise CheckFailure(f"cannot list store {store_dir}: {exc}") from None
    for name in names:
        full = os.path.join(store_dir, name)
        if os.path.isdir(full) and len(name) == 2:
            for sub in sorted(os.listdir(full)):
                stem, ext = os.path.splitext(sub)
                if ext == ".json" and _DIGEST_RE.match(stem):
                    yield stem, os.path.join(full, sub)
        else:
            stem, ext = os.path.splitext(name)
            if ext == ".json" and _DIGEST_RE.match(stem):
                yield stem, full


def find_certificate(entry_path: str, digest: str) -> str | None:
    """Path of the certificate sibling of a verdict entry, if any."""
    base = os.path.join(os.path.dirname(entry_path), f"{digest}.cert.json")
    for candidate in (base, base + ".gz"):
        if os.path.exists(candidate):
            return candidate
    return None


def audit_store(store_dir: str, require_certs: bool = False, verbose: bool = False) -> dict:
    """Check every certificate in a verdict store.

    Returns a summary dict; ``summary['failures']`` lists
    ``(digest, reason)`` pairs.  A verdict whose certificate is absent
    counts in ``missing`` (a failure only under ``require_certs``); a
    certificate whose kind contradicts the stored verdict fails.
    """
    checked = missing = 0
    failures: list[tuple[str, str]] = []
    kinds = {"drat": 0, "model": 0}
    for digest, entry_path in iter_store_entries(store_dir):
        try:
            entry = _load_json(entry_path)
        except (OSError, ValueError):
            # Torn verdict writes are tolerated by the cache; tolerate
            # them here too (there is no verdict to certify).
            continue
        cert_path = find_certificate(entry_path, digest)
        if cert_path is None:
            missing += 1
            if require_certs:
                failures.append((digest, "no certificate stored"))
            continue
        try:
            cert = _load_json(cert_path)
        except (OSError, ValueError) as exc:
            failures.append((digest, f"unreadable certificate: {exc}"))
            continue
        status = entry.get("status") if isinstance(entry, dict) else None
        expected_kind = {"sat": "model", "unsat": "drat"}.get(status)
        try:
            if isinstance(cert, dict) and cert.get("digest") != digest:
                raise CheckFailure(
                    f"certificate is for digest {cert.get('digest')!r}, "
                    f"stored under {digest!r}"
                )
            if expected_kind is not None and cert.get("kind") != expected_kind:
                raise CheckFailure(
                    f"verdict {status!r} needs a {expected_kind!r} certificate, "
                    f"found {cert.get('kind')!r}"
                )
            check_certificate(cert)
        except CheckFailure as exc:
            failures.append((digest, str(exc)))
            continue
        checked += 1
        kinds[cert["kind"]] += 1
        if verbose:
            print(f"ok {digest} ({cert['kind']})")
    return {
        "checked": checked,
        "missing": missing,
        "drat": kinds["drat"],
        "model": kinds["model"],
        "failures": failures,
    }


# ---------------------------------------------------------------------------
# CLI


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.smt.checkproof",
        description="Verify proof certificates (DRAT refutations and model replays).",
    )
    parser.add_argument("certs", nargs="*", help="certificate files (.cert.json[.gz])")
    parser.add_argument("--store", help="audit every verdict in this store directory")
    parser.add_argument(
        "--require-certs",
        action="store_true",
        help="with --store: a verdict without a certificate is a failure",
    )
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)

    if not args.store and not args.certs:
        parser.error("give certificate files or --store DIR")

    rc = 0
    for path in args.certs:
        try:
            cert = _load_json(path)
        except (OSError, ValueError) as exc:
            print(f"ERROR: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        try:
            info = check_certificate(cert)
        except CheckFailure as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            rc = 1
            continue
        detail = ", ".join(f"{k}={v}" for k, v in info.items())
        print(f"ok {path} ({cert.get('kind')}: {detail})")

    if args.store:
        try:
            summary = audit_store(args.store, require_certs=args.require_certs, verbose=args.verbose)
        except CheckFailure as exc:
            print(f"ERROR: {exc}", file=sys.stderr)
            return 2
        print(
            f"store {args.store}: {summary['checked']} certificates ok "
            f"({summary['drat']} drat, {summary['model']} model), "
            f"{summary['missing']} verdicts without certificates, "
            f"{len(summary['failures'])} failures"
        )
        for digest, reason in summary["failures"]:
            print(f"FAIL {digest}: {reason}", file=sys.stderr)
        if summary["failures"]:
            rc = 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
