"""Concrete evaluation of terms under an environment.

Used for three things: validating models returned by the solver,
rendering counterexamples (§3.1 "visualized for debugging"), and
differential testing of the bit-blaster (every gate-level encoding is
checked against this reference semantics in the test suite).
"""

from __future__ import annotations

from .sorts import BOOL
from .terms import Term, _sdiv_concrete, _srem_concrete, to_signed, to_unsigned


class EvalError(Exception):
    """Raised when a term mentions a variable missing from the environment."""


def eval_term(term: Term, env: dict) -> int | bool:
    """Evaluate ``term`` under ``env``.

    ``env`` maps variable names to Python ints/bools and uninterpreted
    function names to callables (or dicts keyed by argument tuples).
    Bitvector results are unsigned Python ints.
    """
    cache: dict[int, int | bool] = {}

    def ev(t: Term):
        hit = cache.get(t.tid)
        if hit is not None or t.tid in cache:
            return hit
        result = _eval_node(t, env, ev)
        cache[t.tid] = result
        return result

    return ev(term)


def _eval_node(t: Term, env: dict, ev):
    op = t.op
    if op == "boolconst" or op == "bvconst":
        return t.payload
    if op == "var":
        try:
            value = env[t.payload]
        except KeyError:
            raise EvalError(f"variable {t.payload!r} not in environment") from None
        if t.sort is BOOL:
            return bool(value)
        return to_unsigned(int(value), t.width)
    if op == "apply":
        func = env.get(t.payload)
        argv = tuple(ev(a) for a in t.args)
        if func is None:
            # Unconstrained uninterpreted function: default to zero.
            return False if t.sort is BOOL else 0
        if callable(func):
            value = func(*argv)
        else:
            value = func.get(argv, 0)
        return bool(value) if t.sort is BOOL else to_unsigned(int(value), t.width)

    args = t.args
    if op == "not":
        return not ev(args[0])
    if op == "and":
        return all(ev(a) for a in args)
    if op == "or":
        return any(ev(a) for a in args)
    if op == "xor":
        return bool(ev(args[0])) != bool(ev(args[1]))
    if op == "ite":
        return ev(args[1]) if ev(args[0]) else ev(args[2])
    if op == "eq":
        return ev(args[0]) == ev(args[1])

    a = ev(args[0])
    if op == "bvnot":
        return to_unsigned(~a, t.width)
    if op == "bvneg":
        return to_unsigned(-a, t.width)
    if op == "zext":
        return a
    if op == "sext":
        return to_unsigned(to_signed(a, args[0].width), t.width)
    if op == "extract":
        hi, lo = t.payload
        return (a >> lo) & ((1 << (hi - lo + 1)) - 1)

    b = ev(args[1])
    w = args[0].width
    if op == "ult":
        return a < b
    if op == "ule":
        return a <= b
    if op == "slt":
        return to_signed(a, w) < to_signed(b, w)
    if op == "sle":
        return to_signed(a, w) <= to_signed(b, w)
    if op == "bvadd":
        return to_unsigned(a + b, w)
    if op == "bvsub":
        return to_unsigned(a - b, w)
    if op == "bvmul":
        return to_unsigned(a * b, w)
    if op == "bvudiv":
        return (1 << w) - 1 if b == 0 else a // b
    if op == "bvurem":
        return a if b == 0 else a % b
    if op == "bvsdiv":
        return _sdiv_concrete(a, b, w)
    if op == "bvsrem":
        return _srem_concrete(a, b, w)
    if op == "bvand":
        return a & b
    if op == "bvor":
        return a | b
    if op == "bvxor":
        return a ^ b
    if op == "bvshl":
        return 0 if b >= w else to_unsigned(a << b, w)
    if op == "bvlshr":
        return 0 if b >= w else a >> b
    if op == "bvashr":
        return to_unsigned(to_signed(a, w) >> min(b, w - 1), w)
    if op == "concat":
        return (a << args[1].width) | b
    raise EvalError(f"unknown operator {op!r}")
