"""Models (satisfying assignments) returned by the solver frontend."""

from __future__ import annotations

from .evaluator import eval_term
from .terms import Term, to_signed


class Model:
    """A satisfying assignment: variable name -> Python int/bool.

    Unassigned variables evaluate to 0/False (any completion of a
    partial model of a satisfiable formula is still a model of it only
    when the variable is unconstrained, which is exactly when the
    blaster never saw it).
    """

    def __init__(self, values: dict[str, int | bool]):
        self._values = dict(values)

    def __getitem__(self, name: str) -> int | bool:
        return self._values.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def get(self, name: str, default=0):
        return self._values.get(name, default)

    def items(self):
        return self._values.items()

    def evaluate(self, term: Term) -> int | bool:
        """Evaluate a term under this model (bitvectors as unsigned)."""
        return eval_term(term, self._values)

    def evaluate_signed(self, term: Term) -> int:
        return to_signed(int(self.evaluate(term)), term.width)

    def __repr__(self) -> str:
        parts = ", ".join(f"{k}={v:#x}" if isinstance(v, int) and not isinstance(v, bool) else f"{k}={v}" for k, v in sorted(self._values.items()))
        return f"Model({parts})"
