"""Proof-certificate production for the SAT core and solver frontend.

Verdicts become *checkable evidence* here (ROADMAP: "Proof
certificates for trust at scale"):

  * :class:`ProofLog` is the optional sink a SAT solver drives while it
    searches.  When no log is attached the hot loop pays one attribute
    read per conflict; with one attached the solver records, per
    learned clause, the clauses it was resolved from (LRAT-style
    antecedent hints), the input unit clauses, deletions, and — at the
    moment an UNSAT answer is decided, before backtracking destroys the
    assignment — the *final core*: the conflict clause plus the reason
    chain that grounds it in assumptions and root-level units.
  * :func:`build_unsat_certificate` trims that session-long log to one
    query's refutation: the transitive antecedent closure of the final
    core, topologically ordered so every proof line is RUP (reverse
    unit propagation) with respect to the lines before it.  The
    certificate carries the blasted-clause manifest (exactly the
    problem clauses the refutation touches), the assumption literals,
    and the canonically-renamed query DAG the digest binds to.
  * :func:`build_model_certificate` packages a SAT answer as a
    bit-level model under canonical variable names plus the
    uninterpreted-function tables the assignment induces, so a
    solver-free evaluator can replay it against the query DAG.

The independent checker (``python -m repro.smt.checkproof``) consumes
these documents with zero imports from this package; the wire format is
specified in docs/CERTIFICATES.md.

Soundness sketch for the trimmed DRAT trace: a first-UIP learned clause
(minimization included) is derivable by input resolution from its
recorded antecedents plus the root-level units justifying any literal
the analysis silently dropped, and input resolution implies RUP.  The
emission closure includes those units (with their own derivations,
recursively), and the dependency graph is acyclic because every
recorded justification predates the event that uses it — so a
topological order exists and each emitted line checks against its
predecessors.  Deletions are logged but never emitted: a checker over a
monotone clause database is sound, since adds are only ever verified
against consequences.
"""

from __future__ import annotations

from .terms import serialize_terms

__all__ = [
    "ProofLog",
    "CertificateError",
    "build_unsat_certificate",
    "build_model_certificate",
    "canonical_query_payload",
]

CERT_FORMAT = "repro-cert"
CERT_VERSION = 1


class CertificateError(RuntimeError):
    """Raised when a certificate cannot be assembled from the log."""


class ProofLog:
    """Clause-proof sink for one SAT solver (one per session/solve).

    The solver drives it through five hooks, all O(clause) and only on
    the cold paths (clause addition, conflict analysis, deletion,
    UNSAT exit):

    ``input_unit(lit)``
        an input clause reduced to a unit and asserted at level 0;
    ``learned(lits, ants, zeros, key=None)``
        a learned clause with the keys of the clauses its resolution
        consumed (``key`` identifies stored clauses — the arena offset
        or ``id()`` of the clause object — units pass ``None``) and
        ``zeros``, the root-level-false literals the analysis silently
        dropped (their negations are the unit clauses the RUP check of
        this line relies on; recording them *at learn time* keeps the
        dependency graph acyclic — a unit derived later from this very
        clause must never become its prerequisite);
    ``deleted_clause(key)``
        a learned clause detached by DB reduction;
    ``capture_final(sat, lits=None, key=None)``
        the UNSAT moment: walk the conflict's reason chain *now*,
        before backtracking unassigns it (level-0 justifications are
        permanent and stay deferred to emission time);
    ``note_clause(key, clause)``
        (legacy solver only) pin a clause object so its ``id()`` stays
        a stable key for the session.
    """

    __slots__ = ("events", "key2event", "input_units", "deleted", "final", "pinned")

    def __init__(self) -> None:
        self.events: list[tuple[tuple[int, ...], tuple, tuple[int, ...], int | None]] = []
        self.key2event: dict = {}
        self.input_units: set[int] = set()
        self.deleted: list = []
        self.final: dict | None = None
        self.pinned: dict = {}

    # -- recording hooks (called by the solvers) -------------------------

    def input_unit(self, lit: int) -> None:
        self.input_units.add(lit)

    def learned(self, lits, ants, zeros=(), key=None) -> int:
        idx = len(self.events)
        self.events.append((tuple(lits), tuple(ants), tuple(zeros), key))
        if key is not None:
            self.key2event[key] = idx
        elif len(lits) == 1:
            # Learned unit: permanent level-0 fact, keyed by its literal
            # so emission-time justification walks can find the event.
            self.key2event[("u", lits[0])] = idx
        return idx

    def deleted_clause(self, key) -> None:
        self.deleted.append(key)

    def note_clause(self, key, clause) -> None:
        self.pinned.setdefault(key, clause)

    def capture_final(self, sat, lits=None, key=None) -> None:
        """Record the refutation's support at the UNSAT decision point.

        Walks falsified literals back through their reason clauses while
        the trail is still intact.  Variables assigned at level 0 are
        skipped (their justifications are permanent — emission resolves
        them later); decisions/assumptions terminate the walk (the
        checker asserts the assumption literals itself).
        """
        if key is not None:
            lits = sat.proof_clause(key)
        keys: list = [key] if key is not None else []
        seen_keys = set(keys)
        seen_vars: set[int] = set()
        level = sat._level
        stack = list(lits)
        while stack:
            q = stack.pop()
            var = q if q > 0 else -q
            if var in seen_vars:
                continue
            seen_vars.add(var)
            if level[var] == 0:
                continue
            rk = sat.proof_reason(var)
            if rk is None:
                continue
            if rk not in seen_keys:
                seen_keys.add(rk)
                keys.append(rk)
                stack.extend(sat.proof_clause(rk))
        self.final = {"lits": list(lits), "keys": keys, "from_key": key}

    def capture_add_conflict(self, lits) -> None:
        """An ``add_clause`` whose every literal was already false at
        level 0: the rejected clause is the conflict, and since it never
        reached storage it must ride the certificate's CNF manifest
        explicitly (all its justifications are level-0, hence resolved
        at emission time)."""
        self.final = {"lits": list(lits), "keys": [], "from_key": None, "add_clause": list(lits)}


# ---------------------------------------------------------------------------
# Emission


def canonical_query_payload(terms, var_map: dict[str, str], data: dict | None = None) -> dict:
    """Serialize query terms with variables alpha-renamed canonically.

    The renaming is digest-preserving (``canonicalize_query`` is
    alpha-blind), so the checker can recompute the canonical digest
    from the payload alone and compare it to the certificate's claim —
    the digest binding that ties a certificate to its store entry.
    ``data`` may carry an already-serialized node list for ``terms``
    (the frontend serializes once for the digest and reuses it here).
    """
    if data is None:
        data = serialize_terms(terms)
    nodes = [
        [op, sort_tag, args, var_map.get(str(payload), str(payload)) if op == "var" else payload]
        for op, sort_tag, args, payload in data["nodes"]
    ]
    return {"nodes": nodes, "roots": list(data["roots"])}


def build_unsat_certificate(sat, terms, digest, var_map, assumptions, mode, serialized=None) -> dict:
    """Trim the session proof log to this query's refutation.

    ``assumptions`` are the query's root literals on the incremental
    path (empty on the fresh path, where roots were asserted as input
    units).  Raises :class:`CertificateError` when the log carries no
    final core — an UNSAT answer the hooks did not see.
    """
    p = sat.proof
    if p is None or p.final is None:
        raise CertificateError("solver returned unsat but the proof log has no final core")

    # Hot path (runs once per cache-miss UNSAT, gated in CI at <10% of
    # grid wall): keep the per-literal work free of attribute lookups.
    key2event = p.key2event
    input_units = p.input_units
    level = sat._level
    assign = sat._assign

    # Dependency nodes: ("cls", key) = learned-clause event.  Problem
    # clauses go to the CNF manifest; so does every *root-level unit
    # fact* a derivation leans on, emitted as a unit clause rather than
    # re-derived through its reason chain.  The manifest is trusted
    # wholesale by the checker (it cannot re-blast the query), so
    # deriving those units would add manifest bulk — often the majority
    # of it — without adding a single checked step to the refutation
    # skeleton, which stays fully RUP-checked.
    cnf_keys: list = []
    cnf_key_set = set()
    cnf_units: set[int] = set()
    deps: dict[tuple, list[tuple]] = {}
    order: list[tuple] = []  # discovery order, for deterministic output
    pending: list[tuple] = []

    def need_clause(key) -> tuple | None:
        """Route a clause key to the proof (learned) or the CNF."""
        if key in key2event:
            node = ("cls", key)
            if node not in deps:
                pending.append(node)
            return node
        if key not in cnf_key_set:
            cnf_key_set.add(key)
            cnf_keys.append(key)
        return None

    def clause_unit_deps(lits) -> None:
        # Inlined root-false test: this scans every literal of every
        # clause the cone touches.
        for q in lits:
            var = q if q > 0 else -q
            if level[var] != 0:
                continue
            a = assign[var]
            if a == 0 or (a > 0) == (q > 0):
                continue
            cnf_units.add(-q)

    # Seed: the final core's clauses, plus a unit fact for every
    # root-level-false literal they mention, so the final
    # unit-propagation check sees those literals falsified.  The final
    # core is captured at the UNSAT moment and the
    # certificate is built before the solver moves on, so reading the
    # root-level assignment here is reading the state the answer was
    # decided under.
    for key in p.final["keys"]:
        need_clause(key)
        clause_unit_deps(sat.proof_clause(key))
    clause_unit_deps(p.final["lits"])
    if p.final["from_key"] is None and not p.final.get("add_clause"):
        # A final core with no conflict clause of its own: a single
        # literal that is both required and refuted.  When the literal
        # is itself a root-level unit (an input unit or a learned unit
        # the root level then contradicted), state it as a unit fact;
        # when it is an assumption, the checker asserts it directly.
        for lit in p.final["lits"]:
            if lit in input_units or ("u", lit) in key2event:
                cnf_units.add(lit)

    events = p.events
    while pending:
        node = pending.pop()
        if node in deps:
            continue
        _lits, ants, zeros, _key = events[key2event[node[1]]]
        node_deps: list[tuple] = []
        for ant in ants:
            dep = need_clause(ant)
            if dep is not None:
                node_deps.append(dep)
        # The units standing in for literals the analysis dropped:
        # recorded at learn time, so they predate this clause.
        for q in zeros:
            cnf_units.add(-q)
        deps[node] = node_deps
        order.append(node)

    # Topological order (dependencies first).  The graph is acyclic by
    # construction — every justification predates its user — so a cycle
    # here means the log is corrupt.
    emitted: list[tuple] = []
    state: dict[tuple, int] = {}  # 1 = on stack, 2 = done

    def visit(root: tuple) -> None:
        stack = [(root, iter(deps[root]))]
        state[root] = 1
        while stack:
            node, it = stack[-1]
            advanced = False
            for dep in it:
                mark = state.get(dep)
                if mark == 2:
                    continue
                if mark == 1:
                    raise CertificateError("cycle in proof dependencies")
                state[dep] = 1
                stack.append((dep, iter(deps[dep])))
                advanced = True
                break
            if not advanced:
                stack.pop()
                state[node] = 2
                emitted.append(node)

    for node in order:
        if state.get(node) != 2:
            visit(node)

    proof_lines: list[list[int]] = [list(events[key2event[node[1]]][0]) for node in emitted]

    cnf: list[list[int]] = [[lit] for lit in sorted(cnf_units)]
    # proof_clause already returns a fresh list per call; no extra copy.
    cnf.extend(sat.proof_clause(key) for key in cnf_keys)
    extra = p.final.get("add_clause")
    if extra:
        cnf.append(list(extra))

    num_vars = max(
        max((abs(q) for clause in cnf for q in clause), default=0),
        max((abs(q) for clause in proof_lines for q in clause), default=0),
        max((abs(q) for q in assumptions), default=0),
    )

    return {
        "format": CERT_FORMAT,
        "version": CERT_VERSION,
        "kind": "drat",
        "digest": digest,
        "mode": mode,
        "num_vars": num_vars,
        "query": canonical_query_payload(terms, var_map, serialized),
        "assumptions": list(assumptions),
        "cnf": cnf,
        "proof": proof_lines,
    }


def build_model_certificate(
    sat, blaster, terms, digest, var_map, model_values, mode, serialized=None
) -> dict:
    """Package a SAT answer as a replayable bit-level model.

    ``model_values`` maps the query's own variable names to values (the
    frontend already extracted them); the certificate stores them under
    canonical names so alpha-equivalent cache hits replay unchanged.
    Uninterpreted-function applications get explicit tables: argument
    values are evaluated bottom-up over the query DAG (inner applies
    first, so nested applications read tables already built) and result
    values are read off the blaster's per-node bit caches.
    """
    from .evaluator import eval_term

    funs: dict[str, list] = {}
    env: dict = dict(model_values)

    # Post-order over the query DAG so argument applies precede users.
    post: list = []
    seen: set[int] = set()
    stack = [(t, False) for t in terms]
    while stack:
        t, expanded = stack.pop()
        if expanded:
            post.append(t)
            continue
        if t.tid in seen:
            continue
        seen.add(t.tid)
        stack.append((t, True))
        for a in t.args:
            stack.append((a, False))

    for t in post:
        if t.op != "apply":
            continue
        argv = tuple(eval_term(a, env) for a in t.args)
        bits = blaster._bool_cache.get(t.tid)
        if bits is not None:
            value: int | bool = bool(sat.value(bits))
        else:
            bv = blaster._bv_cache[t.tid]
            value = 0
            for i, lit in enumerate(bv):
                if sat.value(lit):
                    value |= 1 << i
        table = funs.setdefault(t.payload, [])
        key = [int(v) for v in argv]
        if not any(row[0] == key for row in table):
            table.append([key, int(value)])
        env.setdefault(t.payload, {})
        env[t.payload][argv] = value

    return {
        "format": CERT_FORMAT,
        "version": CERT_VERSION,
        "kind": "model",
        "digest": digest,
        "mode": mode,
        "query": canonical_query_payload(terms, var_map, serialized),
        "model": {
            var_map[name]: (int(value) if not isinstance(value, bool) else bool(value))
            for name, value in model_values.items()
            if name in var_map
        },
        "funs": funs,
    }
