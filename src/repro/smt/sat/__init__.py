"""CDCL SAT solver core.

Two interchangeable implementations live here:

* :class:`ArenaSolver` (default) — flat clause arena, flat watch
  lists, indexed VSIDS heap; the fast path.
* :class:`SatSolver` — the reference implementation with per-clause
  Python lists; kept as the semantic oracle and selectable with
  ``REPRO_SAT_IMPL=legacy``.

Use :func:`new_solver` to construct whichever the environment asks
for; both expose the same API (``new_var``/``add_clause``/``solve``/
``solve_with``/``value``/``model``/``stats``/``iter_problem_clauses``).
"""

import os

from .arena import ArenaSolver
from .solver import SAT, SatSolver, UNKNOWN, UNSAT, luby, to_dimacs

__all__ = [
    "ArenaSolver",
    "SatSolver",
    "SAT",
    "UNSAT",
    "UNKNOWN",
    "luby",
    "to_dimacs",
    "new_solver",
]


def new_solver():
    """Construct a SAT solver per ``REPRO_SAT_IMPL``.

    ``REPRO_SAT_IMPL=legacy`` selects the reference list-of-lists
    solver (which also disables incremental sessions upstream — see
    ``repro.smt.solver``); anything else gets the arena solver.
    """
    if os.environ.get("REPRO_SAT_IMPL", "").lower() == "legacy":
        return SatSolver()
    return ArenaSolver()
