"""CDCL SAT solver core."""

from .solver import SAT, SatSolver, UNKNOWN, UNSAT, luby, to_dimacs

__all__ = ["SatSolver", "SAT", "UNSAT", "UNKNOWN", "luby", "to_dimacs"]
