"""CDCL SAT solver core."""

from .solver import SAT, UNKNOWN, UNSAT, SatSolver, luby, to_dimacs

__all__ = ["SatSolver", "SAT", "UNSAT", "UNKNOWN", "luby", "to_dimacs"]
