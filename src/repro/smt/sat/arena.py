"""CDCL on a flat clause arena — the fast path of the SAT core.

The reference solver (``repro.smt.sat.solver.SatSolver``) stores every
clause as its own Python list and keeps watch lists in a
``dict[int, list[list[int]]]``; at Figure-11 scale the propagation loop
spends most of its time chasing those per-clause objects.  This module
rebuilds the hot loop on flat integer buffers:

  * **clause arena** — one flat int buffer holding every clause as
    ``[size, lit0, lit1, ...]``; a clause is identified by the integer
    offset of its size slot, so propagation, conflict analysis, and
    clause deletion never touch a per-clause Python object.  (A plain
    ``list`` backs the buffer rather than ``array('i')``: CPython list
    indexing avoids re-boxing the int on every read and measures ~30%
    faster on the propagation loop; the layout is identical.);
  * **flat watch lists** — per-literal lists of clause offsets,
    indexed by ``(var << 1) | sign`` instead of a dict keyed by the
    literal; one int read per watcher visit and no per-clause object
    in sight (blocker literals were measured and dropped: the extra
    assignment lookup costs more than it saves under CPython);
  * **two-tier VSIDS order** — decisions split into a "hot" heap
    holding only variables with bumped activity (C ``heapq``, entries
    invalidated by value so decay never rewrites the heap) and a
    "cold" pointer that sweeps the remaining variables in index order;
    tie-dominated blasted instances decide in O(1) per decision
    instead of paying a heap operation for every zero-activity pop;
  * **cone-restricted search** — ``solve(..., relevant=...)`` limits
    decisions to a caller-supplied variable set, which is what lets one
    long-lived solver discharge many obligations incrementally without
    re-deciding every variable the session ever blasted (see
    ``repro.smt.solver`` for the soundness argument: everything outside
    the cone is definitional and extendable).

The external contract is identical to :class:`SatSolver` (same methods,
same counters, same assumption semantics), so the bit-blaster and the
solver frontend can swap implementations via ``repro.smt.sat.new_solver``
(``REPRO_SAT_IMPL=legacy`` restores the reference solver).

Literals are non-zero ints in the DIMACS convention throughout.
"""

from __future__ import annotations

import time
from heapq import heapify, heappop, heappush

from .solver import SAT, UNKNOWN, UNSAT, luby

__all__ = ["ArenaSolver"]


class ArenaSolver:
    """CDCL over int literals, clauses in one flat ``array('i')``.

    Drop-in replacement for :class:`repro.smt.sat.solver.SatSolver`::

        s = ArenaSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a])
        assert s.solve() == "sat"
        assert s.value(b) is True
    """

    def __init__(self) -> None:
        self.num_vars = 0
        # Clause storage: [size, lit0, .., litN-1] per clause; watched
        # literals live at offset+1 and offset+2.
        self._arena: list[int] = []
        self._clause_offs: list[int] = []  # problem clauses (DIMACS export)
        self._learned: list[int] = []  # learned clause offsets
        self._cla_act: dict[int, float] = {}
        # Watch lists, indexed by (var << 1) | (lit < 0): flat lists of
        # alternating (blocker literal, clause offset) ints.
        self._watch: list[list[int]] = [[], []]
        # Indexed by variable (1-based). assign: 0 unassigned, 1 true, -1 false.
        self._assign = [0]
        self._level = [0]
        self._reason = [-1]  # clause offset, or -1 (decision/assumption/unit)
        self._activity = [0.0]
        self._phase = [False]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        # VSIDS order, two tiers.  Hot: (-activity, var) entries for
        # variables touched by a bump or a backtrack; stale entries are
        # detected on pop by comparing against the live activity.
        # Cold: index-ordered sweep over the decidable variables (the
        # cone during relevancy-restricted solves), rebuilt per solve.
        self._hot: list[tuple[float, int]] = []
        self._cold: list[int] | None = None
        self._cold_head = 0
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._ok = True
        # Per-solve search counters (reset at each solve() entry).
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.conflict_literals = 0
        self.max_decision_level = 0
        # Problem-size counter (monotone, never reset).
        self.added_clauses = 0
        self.timed_out = False
        self.max_learned = 4000
        # Chronological backtracking: when a conflict's backjump would
        # unwind more than this many levels, back off a single level
        # instead, keeping the (still consistent) assignment prefix.
        # The learned clause stays asserting — every non-UIP literal
        # lives at or below the backjump level, so it is unit at the
        # shallower level too.  On circuit-shaped UNSAT queries whose
        # conflicts arrive ~1000 decisions deep this avoids re-deciding
        # (and re-propagating) hundreds of variables per conflict.
        # None disables (always use the non-chronological backjump).
        self.chrono_threshold: int | None = 64
        self._assumed_count = 0
        # Cone restriction for the current solve: None = all variables.
        self._rel: set[int] | None = None
        # Optional proof sink (repro.smt.proof.ProofLog).  None keeps
        # the hot loop hook-free: every recording site guards on it.
        self.proof = None
        self._last_ants: list[int] = []
        self._last_zeros: list[int] = []

    # -- variable / clause management --------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(-1)
        self._activity.append(0.0)
        self._phase.append(False)
        self._watch.append([])
        self._watch.append([])
        return self.num_vars

    def ensure_vars(self, n: int) -> None:
        while self.num_vars < n:
            self.new_var()

    def add_clause(self, lits: list[int]) -> bool:
        """Add a clause at decision level 0.  Returns False on conflict."""
        if not self._ok:
            return False
        self._backtrack(0)  # clauses are asserted at the root level
        proof = self.proof
        seen = set()
        clause = []
        falsified = []
        for lit in lits:
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self._value(lit)
            if val is True:
                return True
            if val is False:
                falsified.append(lit)
                continue  # falsified at level 0; drop
            seen.add(lit)
            clause.append(lit)
        if not clause:
            # Every literal already false at level 0: the input clause
            # itself is the refutation's conflict.
            if proof is not None:
                proof.capture_add_conflict(falsified)
            self._ok = False
            return False
        self.added_clauses += 1
        if len(clause) == 1:
            if proof is not None:
                proof.input_unit(clause[0])
            self._enqueue(clause[0], -1)
            confl = self._propagate()
            if confl >= 0:
                if proof is not None:
                    proof.capture_final(self, key=confl)
                self._ok = False
            return self._ok
        off = self._store(clause)
        self._clause_offs.append(off)
        return True

    def _store(self, clause: list[int]) -> int:
        """Append ``clause`` to the arena and watch its first two
        literals.  Returns the clause offset."""
        arena = self._arena
        off = len(arena)
        arena.append(len(clause))
        arena.extend(clause)
        w0, w1 = clause[0], clause[1]
        self._watch[(w0 << 1) if w0 > 0 else (1 - (w0 << 1))].append(off)
        self._watch[(w1 << 1) if w1 > 0 else (1 - (w1 << 1))].append(off)
        return off

    def _detach(self, off: int) -> None:
        arena = self._arena
        for lit in (arena[off + 1], arena[off + 2]):
            wl = self._watch[(lit << 1) if lit > 0 else (1 - (lit << 1))]
            wl.remove(off)

    # -- assignment ---------------------------------------------------------

    def _value(self, lit: int) -> bool | None:
        a = self._assign[lit if lit > 0 else -lit]
        if a == 0:
            return None
        return (a > 0) == (lit > 0)

    def value(self, lit: int) -> bool | None:
        """Model value of ``lit`` after a SAT answer."""
        return self._value(lit)

    def _enqueue(self, lit: int, reason: int, level: int | None = None) -> None:
        """Assign ``lit``.  ``level`` overrides the recorded (semantic)
        decision level — chronological backtracking asserts a learned
        literal at its backjump level while the trail stays deeper."""
        var = lit if lit > 0 else -lit
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = len(self._trail_lim) if level is None else level
        self._reason[var] = reason
        self._trail.append(lit)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _backtrack(self, level: int) -> None:
        """Unassign everything whose *semantic* level exceeds ``level``.

        With chronological backtracking a literal's recorded level can
        sit below its physical position on the trail (an out-of-order
        assignment).  Such literals are still implied at ``level``, so
        popping them would forget sound propagations and silently leave
        their (unit) reasons unwatched; instead they are reinserted at
        the end of the trail and re-propagated from there, which also
        rediscovers any of their implications that did get popped.
        """
        if len(self._trail_lim) <= level:
            return
        limit = self._trail_lim[level]
        assign, phase, reason = self._assign, self._phase, self._reason
        lvl = self._level
        act = self._activity
        hot = self._hot
        rel = self._rel
        trail = self._trail
        keep: list[int] = []
        for i in range(len(trail) - 1, limit - 1, -1):
            lit = trail[i]
            var = lit if lit > 0 else -lit
            if lvl[var] <= level:
                keep.append(lit)
                continue
            phase[var] = lit > 0
            assign[var] = 0
            reason[var] = -1
            # Re-offer the variable to the decision order; the cold
            # pointer never rewinds, so backtracked variables ride the
            # hot heap even at zero activity.
            if rel is None or var in rel:
                heappush(hot, (-act[var], var))
        del trail[limit:]
        del self._trail_lim[level:]
        if keep:
            keep.reverse()  # restore assignment order
            trail.extend(keep)
        self._qhead = len(trail) - len(keep)

    def _conflict_level(self, confl: int) -> int:
        """Highest semantic level among a conflicting clause's literals."""
        arena, level = self._arena, self._level
        c = 0
        for k in range(confl + 1, confl + 1 + arena[confl]):
            q = arena[k]
            lv = level[q if q > 0 else -q]
            if lv > c:
                c = lv
        return c

    # -- VSIDS order ---------------------------------------------------------

    def _rebuild_order(self) -> None:
        """Deterministic per-solve decision order.

        Cold tier: the decidable variables (current cone, or every
        variable) in index order.  Hot tier: variables that already
        carry activity.  Relevancy-restricted solves reset cone
        activity first (see ``solve``), so their decision sequence —
        and hence their counters — depend only on the query's own
        structure, never on what the session solved before it.
        """
        assign, act = self._assign, self._activity
        if self._rel is None:
            self._cold = None
            self._cold_head = 1
            self._hot = [
                (-act[v], v) for v in range(1, self.num_vars + 1) if act[v] > 0.0 and assign[v] == 0
            ]
            heapify(self._hot)
        else:
            self._cold = sorted(self._rel)
            self._cold_head = 0
            self._hot = []

    # -- propagation ---------------------------------------------------------

    def _propagate(self) -> int:
        """Unit propagation.  Returns a conflicting clause offset, or -1."""
        arena = self._arena
        assign = self._assign
        level = self._level
        reason = self._reason
        trail = self._trail
        watch = self._watch
        qhead = self._qhead
        props = 0
        dl = len(self._trail_lim)
        while qhead < len(trail):
            lit = trail[qhead]
            qhead += 1
            props += 1
            false_lit = -lit
            # watch index of false_lit:
            wl = watch[(false_lit << 1) if false_lit > 0 else (1 - (false_lit << 1))]
            i = j = 0
            n = len(wl)
            while i < n:
                off = wl[i]
                i += 1
                # Make sure the false literal is in slot 2.
                first = arena[off + 1]
                if first == false_lit:
                    first = arena[off + 2]
                    arena[off + 1] = first
                    arena[off + 2] = false_lit
                # Signed read: +assign for positive lits, -assign for
                # negative, so `> 0` means "literal is true".
                fv = assign[first] if first > 0 else -assign[-first]
                if fv > 0:
                    wl[j] = off
                    j += 1
                    continue
                # Look for a new literal to watch.
                end = off + 1 + arena[off]
                found = False
                for k in range(off + 3, end):
                    lk = arena[k]
                    av = assign[lk] if lk > 0 else -assign[-lk]
                    if av >= 0:
                        arena[off + 2] = lk
                        arena[k] = false_lit
                        watch[(lk << 1) if lk > 0 else (1 - (lk << 1))].append(off)
                        found = True
                        break
                if found:
                    continue
                wl[j] = off
                j += 1
                if fv < 0:
                    # Conflict: copy remaining watchers back.
                    while i < n:
                        wl[j] = wl[i]
                        j += 1
                        i += 1
                    del wl[j:]
                    self._qhead = len(trail)
                    self.propagations += props
                    return off
                # Unit: enqueue `first` (enqueue inlined for the hot path).
                var = first if first > 0 else -first
                assign[var] = 1 if first > 0 else -1
                level[var] = dl
                reason[var] = off
                trail.append(first)
            del wl[j:]
        self._qhead = qhead
        self.propagations += props
        return -1

    # -- conflict analysis ----------------------------------------------------

    def _bump_var(self, var: int) -> None:
        act = self._activity
        act[var] += self._var_inc
        if act[var] > 1e100:
            inv = 1e-100
            for v in range(1, self.num_vars + 1):
                act[v] *= inv
            self._var_inc *= inv
            # Hot entries now hold pre-rescale keys; they die as stale
            # pops and the end-of-solve sweep in _pick_branch catches
            # any variable the heap loses track of.
        rel = self._rel
        if rel is None or var in rel:
            heappush(self._hot, (-act[var], var))

    def _analyze(self, confl: int) -> tuple[list[int], int]:
        """First-UIP learning.  Returns (learned clause, backjump level)."""
        arena = self._arena
        level = self._level
        trail = self._trail
        learned = [0]  # placeholder for the asserting literal
        seen = bytearray(self.num_vars + 1)
        counter = 0
        lit = 0  # 0 on the conflict clause; the resolved literal after
        off = confl
        index = len(trail) - 1
        cur_level = len(self._trail_lim)
        # Proof recording (cold path, only with a sink attached): the
        # clauses this resolution consumes and the root-level-false
        # literals it silently drops.
        proof = self.proof
        ants: list[int] | None = [] if proof is not None else None
        zeros: set[int] | None = set() if proof is not None else None
        while True:
            if off >= 0:  # a decision has no reason clause to scan
                if ants is not None:
                    ants.append(off)
                end = off + 1 + arena[off]
                for k in range(off + 1, end):
                    q = arena[k]
                    if q == lit:
                        continue  # the implied literal of a reason clause
                    var = q if q > 0 else -q
                    if not seen[var] and level[var] > 0:
                        seen[var] = 1
                        self._bump_var(var)
                        if level[var] >= cur_level:
                            counter += 1
                        else:
                            learned.append(q)
                    elif zeros is not None and level[var] == 0:
                        zeros.add(q)
            # Pick the next literal on the trail to resolve on.  Skip
            # seen literals below the conflict level: out-of-order
            # (chronologically kept) assignments can sit physically
            # above conflict-level ones on the trail, but only
            # conflict-level literals are resolution candidates.
            while True:
                t = trail[index]
                var = t if t > 0 else -t
                if seen[var] and level[var] >= cur_level:
                    break
                index -= 1
            lit = trail[index]
            index -= 1
            var = lit if lit > 0 else -lit
            seen[var] = 0
            counter -= 1
            if counter == 0:
                learned[0] = -lit
                break
            off = self._reason[var]

        # Clause minimization: drop literals implied by the rest.
        reason = self._reason
        marked = {q if q > 0 else -q for q in learned[1:]}
        minimized = [learned[0]]
        for q in learned[1:]:
            qvar = q if q > 0 else -q
            roff = reason[qvar]
            if roff < 0:
                minimized.append(q)
                continue
            redundant = True
            for k in range(roff + 1, roff + 1 + arena[roff]):
                r = arena[k]
                rvar = r if r > 0 else -r
                if rvar == qvar:
                    continue
                if rvar not in marked and level[rvar] != 0:
                    redundant = False
                    break
            if not redundant:
                minimized.append(q)
            elif ants is not None:
                # Self-subsuming resolution with the reason clause: the
                # proof needs that clause and the units covering its
                # root-level literals.
                ants.append(roff)
                for k in range(roff + 1, roff + 1 + arena[roff]):
                    r = arena[k]
                    if level[r if r > 0 else -r] == 0:
                        zeros.add(r)
        learned = minimized
        if ants is not None:
            self._last_ants = ants
            self._last_zeros = sorted(zeros)

        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        bj = max(level[q if q > 0 else -q] for q in learned[1:])
        # Move a literal of the backjump level into watch position 1.
        for i in range(1, len(learned)):
            if level[learned[i] if learned[i] > 0 else -learned[i]] == bj:
                learned[1], learned[i] = learned[i], learned[1]
                break
        return learned, bj

    # -- main search -----------------------------------------------------------

    def _pick_branch(self) -> int:
        assign, act = self._assign, self._activity
        hot = self._hot
        while hot:
            nact, var = hot[0]
            if assign[var] != 0 or act[var] != -nact:
                heappop(hot)  # assigned or stale entry
                continue
            heappop(hot)
            return var if self._phase[var] else -var
        cold = self._cold
        if cold is None:
            i = self._cold_head
            n = self.num_vars
            while i <= n:
                if assign[i] == 0 and act[i] == 0.0:
                    self._cold_head = i + 1
                    return i if self._phase[i] else -i
                i += 1
            self._cold_head = i
        else:
            i = self._cold_head
            n = len(cold)
            while i < n:
                v = cold[i]
                if assign[v] == 0 and act[v] == 0.0:
                    self._cold_head = i + 1
                    return v if self._phase[v] else -v
                i += 1
            self._cold_head = i
        # Safety sweep: an activity rescale can orphan hot entries
        # (their keys no longer match), so never trust an empty heap
        # alone to mean "fully assigned".
        if self._rel is None:
            for v in range(1, self.num_vars + 1):
                if assign[v] == 0:
                    return v if self._phase[v] else -v
        else:
            for v in sorted(self._rel):
                if assign[v] == 0:
                    return v if self._phase[v] else -v
        return 0

    def _reduce_learned(self) -> None:
        if len(self._learned) <= self.max_learned:
            return
        act = self._cla_act
        self._learned.sort(key=lambda off: act.get(off, 0.0))
        keep_from = len(self._learned) // 2
        arena = self._arena
        reason = self._reason
        locked = {reason[lit if lit > 0 else -lit] for lit in self._trail}
        kept_front = []
        proof = self.proof
        for off in self._learned[:keep_from]:
            if off in locked or arena[off] <= 2:
                kept_front.append(off)
                continue
            self._detach(off)
            act.pop(off, None)
            if proof is not None:
                proof.deleted_clause(off)
        self._learned = kept_front + self._learned[keep_from:]

    def solve(
        self,
        assumptions: list[int] = (),
        max_conflicts: int | None = None,
        timeout_s: float | None = None,
        relevant: set[int] | None = None,
    ) -> str:
        """Search for a model consistent with ``assumptions``.

        Returns "sat", "unsat", or "unknown" (budget exhausted).  After
        "sat", use :meth:`value` to read the model.  ``max_conflicts``
        and ``timeout_s`` bound the search exactly as in the reference
        solver; ``self.timed_out`` records which budget fired.

        ``relevant`` restricts decisions to a variable cone: with it,
        "sat" means the cone is fully assigned and propagation
        converged, which is a satisfiability witness whenever every
        clause outside the cone is definitional (Tseitin gates /
        Ackermann constraints over variables the cone does not touch —
        see ``repro.smt.solver``).  Pass ``None`` (the default) for
        classic full-assignment CDCL.
        """
        self.timed_out = False
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.conflict_literals = 0
        self.max_decision_level = 0
        if not self._ok:
            # The root conflict that cleared _ok was captured when it
            # happened; keep that final core for re-asked queries.
            return UNSAT
        if self.proof is not None:
            # Drop any stale final core so a missed hook can never leak
            # a previous query's refutation into this one's certificate.
            self.proof.final = None
        self._rel = relevant
        if relevant is not None:
            # History independence: a cone-restricted solve starts from
            # zero activity and a fresh increment so its decision
            # sequence (and counters) depend only on the query itself.
            act = self._activity
            for v in relevant:
                act[v] = 0.0
            self._var_inc = 1.0
        try:
            return self._search(list(assumptions), max_conflicts, timeout_s)
        finally:
            self._rel = None

    def _search(
        self,
        assumptions: list[int],
        max_conflicts: int | None,
        timeout_s: float | None,
    ) -> str:
        self._backtrack(0)
        confl = self._propagate()
        if confl >= 0:
            if self.proof is not None:
                self.proof.capture_final(self, key=confl)
            self._ok = False
            return UNSAT
        self._rebuild_order()

        num_assumed = self._assumed_count
        restart_idx = 0
        conflicts_until_restart = 100 * luby(restart_idx)
        budget_left = max_conflicts
        deadline = time.monotonic() + timeout_s if timeout_s is not None else None
        deadline_check = 0

        while True:
            confl = self._propagate()
            if confl >= 0:
                self.conflicts += 1
                if deadline is not None:
                    deadline_check += 1
                    if deadline_check >= 32:
                        deadline_check = 0
                        if time.monotonic() > deadline:
                            self._backtrack(0)
                            self.timed_out = True
                            return UNKNOWN
                if budget_left is not None:
                    budget_left -= 1
                    if budget_left <= 0:
                        self._backtrack(0)
                        return UNKNOWN
                # With chronological backtracking the conflict can
                # involve only literals below the current decision
                # level; analysis must run at the conflict's own level.
                clevel = self._conflict_level(confl)
                if clevel == 0:
                    if self.proof is not None:
                        self.proof.capture_final(self, key=confl)
                    self._ok = False
                    self._backtrack(0)
                    return UNSAT
                if clevel <= num_assumed:
                    # Conflict depends only on assumptions.  Capture the
                    # reason chain before backtracking destroys it.
                    if self.proof is not None:
                        self.proof.capture_final(self, key=confl)
                    self._backtrack(0)
                    return UNSAT
                if clevel < len(self._trail_lim):
                    self._backtrack(clevel)
                learned, bj = self._analyze(confl)
                self.learned_clauses += 1
                self.conflict_literals += len(learned)
                target = max(bj, num_assumed)
                chrono = self.chrono_threshold
                if chrono is not None and clevel - 1 - target > chrono:
                    # Far backjump: back off one level instead and keep
                    # the assignment prefix.  The learned literal is
                    # still asserted at its semantic level ``bj`` below.
                    target = clevel - 1
                self._backtrack(target)
                if len(learned) == 1:
                    # Asserting unit; learned[0] is unassigned here
                    # because its variable sat above the backjump level.
                    if self.proof is not None:
                        self.proof.learned(learned, self._last_ants, self._last_zeros)
                    self._enqueue(learned[0], -1, level=bj)
                else:
                    off = self._store(learned)
                    if self.proof is not None:
                        self.proof.learned(learned, self._last_ants, self._last_zeros, key=off)
                    self._learned.append(off)
                    self._cla_act[off] = self._cla_inc
                    self._cla_inc *= 1.001
                    self._enqueue(learned[0], off, level=bj)
                self._var_inc *= self._var_decay
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    restart_idx += 1
                    self.restarts += 1
                    conflicts_until_restart = 100 * luby(restart_idx)
                    self._backtrack(num_assumed)
                    if self._rel is None:
                        # Cone-restricted solves defer clause-DB
                        # trimming to maintain() between queries, so a
                        # query's search never depends on the global
                        # learned count.
                        self._reduce_learned()
                continue

            # No conflict: decide.
            if len(self._trail_lim) < num_assumed:
                lit = assumptions[len(self._trail_lim)]
                val = self._value(lit)
                if val is False:
                    # An assumption literal is already falsified (by the
                    # root level or by earlier assumptions): record its
                    # reason chain before it unwinds.
                    if self.proof is not None:
                        self.proof.capture_final(self, lits=[lit])
                    self._backtrack(0)
                    return UNSAT
                self._trail_lim.append(len(self._trail))
                if val is None:
                    self._enqueue(lit, -1)
                continue
            lit = self._pick_branch()
            if lit == 0:
                return SAT
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            if len(self._trail_lim) > self.max_decision_level:
                self.max_decision_level = len(self._trail_lim)
            self._enqueue(lit, -1)

    def solve_with(
        self,
        assumptions: list[int],
        max_conflicts: int | None = None,
        timeout_s: float | None = None,
        relevant: set[int] | None = None,
    ) -> str:
        """Solve under assumptions (kept as pseudo-decisions)."""
        self._assumed_count = len(assumptions)
        try:
            return self.solve(
                list(assumptions),
                max_conflicts=max_conflicts,
                timeout_s=timeout_s,
                relevant=relevant,
            )
        finally:
            self._assumed_count = 0

    def maintain(self) -> None:
        """Between-solve housekeeping for long-lived (session) solvers:
        backtrack to the root level and trim the learned-clause DB.
        Cone-restricted solves skip mid-search reduction so that their
        counters stay history-independent; call this after each query
        to keep the DB bounded instead."""
        self._backtrack(0)
        self._reduce_learned()

    def stats(self) -> dict:
        """Counters for the most recent ``solve()`` call (same keys and
        semantics as the reference solver's)."""
        return {
            "vars": self.num_vars,
            "clauses": self.added_clauses,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "learned_kept": len(self._learned),
            "conflict_literals": self.conflict_literals,
            "max_decision_level": self.max_decision_level,
            "avg_learned_len": (
                self.conflict_literals / self.learned_clauses if self.learned_clauses else 0.0
            ),
        }

    def model(self) -> dict[int, bool]:
        """The satisfying assignment, as {var: bool}."""
        return {
            v: self._assign[v] > 0
            for v in range(1, self.num_vars + 1)
            if self._assign[v] != 0
        }

    def iter_problem_clauses(self):
        """Yield the problem (non-learned) clauses as literal lists."""
        arena = self._arena
        for off in self._clause_offs:
            yield list(arena[off + 1 : off + 1 + arena[off]])

    # -- proof-log adapters --------------------------------------------------
    # Arena offsets are stable clause keys for the whole session: the
    # arena only ever appends, and a detached clause's cells are never
    # reused, so certificate emission can read clause content long after
    # the search moved on.

    def proof_clause(self, key: int) -> list[int]:
        """Clause content for a proof key (an arena offset)."""
        arena = self._arena
        return list(arena[key + 1 : key + 1 + arena[key]])

    def proof_reason(self, var: int):
        """Proof key of ``var``'s reason clause, or None for a
        decision/assumption/learned-unit assignment."""
        off = self._reason[var]
        return off if off >= 0 else None
