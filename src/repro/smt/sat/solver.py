"""A CDCL SAT solver (the bottom of the verification stack, Figure 1).

The paper discharges verification conditions with Z3; offline we
substitute a from-scratch conflict-driven clause-learning solver:

  * two-watched-literal unit propagation,
  * first-UIP conflict analysis with clause minimization,
  * EVSIDS decision heuristic with phase saving,
  * Luby restarts,
  * activity-based learned-clause deletion,
  * incremental solving under assumptions (used by push/pop).

Literals are non-zero Python ints (DIMACS convention): ``v`` for the
positive literal of variable ``v`` and ``-v`` for its negation.
"""

from __future__ import annotations

import heapq
import time

SAT = "sat"
UNSAT = "unsat"
UNKNOWN = "unknown"


def luby(i: int) -> int:
    """The Luby restart sequence (0-indexed): 1 1 2 1 1 2 4 1 1 2 ...

    MiniSat's formulation: find the finite subsequence containing
    index ``i`` and recurse into it.
    """
    if i < 0:
        raise ValueError("luby sequence is 0-indexed")
    size, seq = 1, 0
    while size < i + 1:
        seq += 1
        size = 2 * size + 1
    while size - 1 != i:
        size = (size - 1) >> 1
        seq -= 1
        i = i % size
    return 1 << seq


class SatSolver:
    """CDCL solver over int literals.

    Typical use::

        s = SatSolver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([a, b])
        s.add_clause([-a])
        assert s.solve() == "sat"
        assert s.value(b) is True
    """

    def __init__(self) -> None:
        self.num_vars = 0
        # Indexed by variable (1-based). assign: 0 unassigned, 1 true, -1 false.
        self._assign = [0]
        self._level = [0]
        self._reason: list[list[int] | None] = [None]
        self._activity = [0.0]
        self._phase = [False]
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        # Watches: dict literal -> list of clauses watching it.
        self._watches: dict[int, list[list[int]]] = {}
        self._clauses: list[list[int]] = []
        self._learned: list[list[int]] = []
        self._clause_act: dict[int, float] = {}
        self._var_inc = 1.0
        self._var_decay = 1.0 / 0.95
        self._cla_inc = 1.0
        self._ok = True
        # VSIDS order: lazy max-heap of (-activity, var); stale entries
        # (assigned vars or outdated activities) are skipped on pop.
        self._order_heap: list[tuple[float, int]] = []
        # Per-solve search counters: reset at each solve() entry so the
        # numbers describe one query, not the solver's lifetime (the
        # stats feed per-obligation telemetry; cross-solve accumulation
        # would make them meaningless).  stats() packages them.
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.conflict_literals = 0
        self.max_decision_level = 0
        # Problem-size counter: clauses actually recorded by add_clause
        # (monotone, never reset — it measures the CNF, not a search).
        self.added_clauses = 0
        self.timed_out = False
        self.max_learned = 4000
        # Optional proof sink (repro.smt.proof.ProofLog).  None keeps
        # the hot loop hook-free: every recording site guards on it.
        self.proof = None
        self._last_ants: list[int] = []
        self._last_zeros: list[int] = []

    # -- proof-log adapters --------------------------------------------------
    # Clauses here are plain Python lists, so ``id(clause)`` is the
    # session-stable key — provided the log pins a reference (via
    # ``note_clause``) so the id is never recycled by the allocator.

    def _proof_key(self, clause: list[int]) -> int:
        key = id(clause)
        self.proof.note_clause(key, clause)
        return key

    def proof_clause(self, key: int) -> list[int]:
        """Clause content for a proof key (a pinned ``id()``)."""
        return list(self.proof.pinned[key])

    def proof_reason(self, var: int):
        """Proof key of ``var``'s reason clause, or None for a
        decision/assumption/learned-unit assignment."""
        clause = self._reason[var]
        return None if clause is None else self._proof_key(clause)

    # -- variable / clause management --------------------------------------

    def new_var(self) -> int:
        self.num_vars += 1
        self._assign.append(0)
        self._level.append(0)
        self._reason.append(None)
        self._activity.append(0.0)
        self._phase.append(False)
        v = self.num_vars
        self._watches[v] = []
        self._watches[-v] = []
        heapq.heappush(self._order_heap, (0.0, v))
        return v

    def ensure_vars(self, n: int) -> None:
        while self.num_vars < n:
            self.new_var()

    def add_clause(self, lits: list[int]) -> bool:
        """Add a clause at decision level 0.  Returns False on conflict."""
        if not self._ok:
            return False
        assert not self._trail_lim, "add_clause only at decision level 0"
        proof = self.proof
        seen = set()
        clause = []
        falsified = []
        for lit in lits:
            self.ensure_vars(abs(lit))
            if -lit in seen:
                return True  # tautology
            if lit in seen:
                continue
            val = self._value(lit)
            if val is True:
                return True
            if val is False:
                falsified.append(lit)
                continue  # falsified at level 0; drop
            seen.add(lit)
            clause.append(lit)
        if not clause:
            # Every literal already false at level 0: the input clause
            # itself is the refutation's conflict.
            if proof is not None:
                proof.capture_add_conflict(falsified)
            self._ok = False
            return False
        self.added_clauses += 1
        if len(clause) == 1:
            if proof is not None:
                proof.input_unit(clause[0])
            self._enqueue(clause[0], None)
            conflict = self._propagate()
            if conflict is not None:
                if proof is not None:
                    proof.capture_final(self, key=self._proof_key(conflict))
                self._ok = False
            return self._ok
        self._attach(clause)
        self._clauses.append(clause)
        return True

    def _attach(self, clause: list[int]) -> None:
        self._watches[clause[0]].append(clause)
        self._watches[clause[1]].append(clause)

    # -- assignment ---------------------------------------------------------

    def _value(self, lit: int) -> bool | None:
        a = self._assign[abs(lit)]
        if a == 0:
            return None
        return (a > 0) == (lit > 0)

    def value(self, lit: int) -> bool | None:
        """Model value of ``lit`` after a SAT answer."""
        return self._value(lit)

    def _enqueue(self, lit: int, reason: list[int] | None) -> None:
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _backtrack(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        limit = self._trail_lim[level]
        assign, phase = self._assign, self._phase
        heap = self._order_heap
        act = self._activity
        for i in range(len(self._trail) - 1, limit - 1, -1):
            lit = self._trail[i]
            var = abs(lit)
            phase[var] = lit > 0
            assign[var] = 0
            self._reason[var] = None
            heapq.heappush(heap, (-act[var], var))
        del self._trail[limit:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # -- propagation ---------------------------------------------------------

    def _propagate(self) -> list[int] | None:
        """Unit propagation.  Returns a conflicting clause or None."""
        watches = self._watches
        assign = self._assign
        trail = self._trail
        while self._qhead < len(trail):
            lit = trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            false_lit = -lit
            watchers = watches[false_lit]
            i = j = 0
            n = len(watchers)
            while i < n:
                clause = watchers[i]
                i += 1
                # Make sure the false literal is in position 1.
                if clause[0] == false_lit:
                    clause[0], clause[1] = clause[1], false_lit
                first = clause[0]
                a0 = assign[abs(first)]
                if a0 != 0 and (a0 > 0) == (first > 0):
                    watchers[j] = clause
                    j += 1
                    continue
                # Look for a new literal to watch.
                found = False
                for k in range(2, len(clause)):
                    lk = clause[k]
                    ak = assign[abs(lk)]
                    if ak == 0 or (ak > 0) == (lk > 0):
                        clause[1], clause[k] = lk, false_lit
                        watches[lk].append(clause)
                        found = True
                        break
                if found:
                    continue
                watchers[j] = clause
                j += 1
                if a0 != 0:
                    # Conflict: copy remaining watchers back.
                    while i < n:
                        watchers[j] = watchers[i]
                        j += 1
                        i += 1
                    del watchers[j:]
                    self._qhead = len(trail)
                    return clause
                self._enqueue(first, clause)
            del watchers[j:]
        return None

    # -- conflict analysis ----------------------------------------------------

    def _bump_var(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > 1e100:
            inv = 1e-100
            act = self._activity
            for v in range(1, self.num_vars + 1):
                act[v] *= inv
            self._var_inc *= inv
            self._order_heap = [(-act[v], v) for v in range(1, self.num_vars + 1)]
            heapq.heapify(self._order_heap)
        else:
            heapq.heappush(self._order_heap, (-self._activity[var], var))

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """First-UIP learning.  Returns (learned clause, backjump level)."""
        learned = [0]  # placeholder for the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        clause = conflict
        index = len(self._trail) - 1
        cur_level = self._decision_level()
        # Proof recording (cold path, only with a sink attached): the
        # clauses this resolution consumes and the root-level-false
        # literals it silently drops.
        proof = self.proof
        ants: list[int] | None = [] if proof is not None else None
        zeros: set[int] | None = set() if proof is not None else None
        while True:
            if ants is not None and clause:
                ants.append(self._proof_key(clause))
            for q in clause if lit is None else clause[1:]:
                var = abs(q)
                if not seen[var] and self._level[var] > 0:
                    seen[var] = True
                    self._bump_var(var)
                    if self._level[var] >= cur_level:
                        counter += 1
                    else:
                        learned.append(q)
                elif zeros is not None and self._level[var] == 0:
                    zeros.add(q)
            # Pick the next literal on the trail to resolve on.
            while not seen[abs(self._trail[index])]:
                index -= 1
            lit = self._trail[index]
            index -= 1
            var = abs(lit)
            seen[var] = False
            counter -= 1
            if counter == 0:
                learned[0] = -lit
                break
            clause = self._reason[var]
            clause = clause if clause is not None else []
            if clause and clause[0] != lit:
                # Normalize: reason clause's first literal is the implied one.
                idx = clause.index(lit)
                clause[0], clause[idx] = clause[idx], clause[0]

        # Clause minimization: drop literals implied by the rest.
        marked = {abs(q) for q in learned[1:]}
        minimized = [learned[0]]
        for q in learned[1:]:
            reason = self._reason[abs(q)]
            if reason is None:
                minimized.append(q)
                continue
            if all(abs(r) in marked or self._level[abs(r)] == 0 for r in reason[1:]):
                # Self-subsuming resolution with the reason clause: the
                # proof needs that clause and the units covering its
                # root-level literals.
                if ants is not None:
                    ants.append(self._proof_key(reason))
                    for r in reason[1:]:
                        if self._level[abs(r)] == 0:
                            zeros.add(r)
                continue
            minimized.append(q)
        learned = minimized
        if ants is not None:
            self._last_ants = ants
            self._last_zeros = sorted(zeros)

        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest level in the clause.
        levels = sorted((self._level[abs(q)] for q in learned[1:]), reverse=True)
        bj = levels[0]
        # Move a literal of the backjump level into watch position 1.
        for i in range(1, len(learned)):
            if self._level[abs(learned[i])] == bj:
                learned[1], learned[i] = learned[i], learned[1]
                break
        return learned, bj

    # -- main search -----------------------------------------------------------

    def _pick_branch(self) -> int:
        assign = self._assign
        act = self._activity
        heap = self._order_heap
        while heap:
            _, var = heapq.heappop(heap)
            if assign[var] != 0:
                continue
            # Entries may be stale (the activity was bumped after the
            # push) — an unassigned var from near the top is still a
            # good pick, and fresher duplicates are skipped later.
            return var if self._phase[var] else -var
        # Heap exhausted: fall back to a scan for any unassigned var.
        for v in range(1, self.num_vars + 1):
            if assign[v] == 0:
                return v if self._phase[v] else -v
        return 0

    def _reduce_learned(self) -> None:
        if len(self._learned) <= self.max_learned:
            return
        self._learned.sort(key=lambda c: self._clause_act.get(id(c), 0.0))
        keep_from = len(self._learned) // 2
        dropped = self._learned[:keep_from]
        locked = {id(self._reason[abs(lit)]) for lit in self._trail if self._reason[abs(lit)] is not None}
        kept_front = []
        proof = self.proof
        for clause in dropped:
            if id(clause) in locked or len(clause) <= 2:
                kept_front.append(clause)
                continue
            for w in (clause[0], clause[1]):
                try:
                    self._watches[w].remove(clause)
                except ValueError:
                    pass
            self._clause_act.pop(id(clause), None)
            if proof is not None:
                proof.deleted_clause(id(clause))
        self._learned = kept_front + self._learned[keep_from:]

    def solve(
        self,
        assumptions: list[int] = (),
        max_conflicts: int | None = None,
        timeout_s: float | None = None,
    ) -> str:
        """Search for a model consistent with ``assumptions``.

        Returns "sat", "unsat", or "unknown" (budget exhausted).  After
        "sat", use :meth:`value` to read the model.  Two budgets bound
        the search: ``max_conflicts`` (deterministic) and ``timeout_s``,
        a wall-clock deadline checked every few conflicts so a hung
        obligation returns to its scheduler instead of pinning a worker
        forever.  ``self.timed_out`` records which budget fired.
        """
        self.timed_out = False
        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.restarts = 0
        self.learned_clauses = 0
        self.conflict_literals = 0
        self.max_decision_level = 0
        if not self._ok:
            # The root conflict that cleared _ok was captured when it
            # happened; keep that final core for re-asked queries.
            return UNSAT
        if self.proof is not None:
            # Drop any stale final core so a missed hook can never leak
            # a previous query's refutation into this one's certificate.
            self.proof.final = None
        self._backtrack(0)
        conflict = self._propagate()
        if conflict is not None:
            if self.proof is not None:
                self.proof.capture_final(self, key=self._proof_key(conflict))
            self._ok = False
            return UNSAT

        restart_idx = 0
        conflicts_until_restart = 100 * luby(restart_idx)
        budget_left = max_conflicts
        deadline = time.monotonic() + timeout_s if timeout_s is not None else None
        deadline_check = 0

        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if deadline is not None:
                    deadline_check += 1
                    if deadline_check >= 32:
                        deadline_check = 0
                        if time.monotonic() > deadline:
                            self._backtrack(0)
                            self.timed_out = True
                            return UNKNOWN
                if budget_left is not None:
                    budget_left -= 1
                    if budget_left <= 0:
                        self._backtrack(0)
                        return UNKNOWN
                if self._decision_level() == 0:
                    if self.proof is not None:
                        self.proof.capture_final(self, key=self._proof_key(conflict))
                    self._ok = False
                    return UNSAT
                if self._decision_level() <= self._num_assumed:
                    # Conflict depends only on assumptions.  Capture the
                    # reason chain before backtracking destroys it.
                    if self.proof is not None:
                        self.proof.capture_final(self, key=self._proof_key(conflict))
                    self._backtrack(0)
                    return UNSAT
                learned, bj = self._analyze(conflict)
                self.learned_clauses += 1
                self.conflict_literals += len(learned)
                self._backtrack(max(bj, self._num_assumed))
                if len(learned) == 1:
                    if self.proof is not None:
                        self.proof.learned(learned, self._last_ants, self._last_zeros)
                    if self._value(learned[0]) is False:
                        self._backtrack(0)
                        if self._value(learned[0]) is False:
                            # The derived unit is refuted by the root
                            # level itself: the final core is the unit
                            # plus whatever justifies its negation.
                            if self.proof is not None:
                                self.proof.capture_final(self, lits=[learned[0]])
                            self._ok = False
                            return UNSAT
                    if self._value(learned[0]) is None:
                        self._enqueue(learned[0], None)
                else:
                    self._attach(learned)
                    if self.proof is not None:
                        self.proof.learned(
                            learned, self._last_ants, self._last_zeros, key=self._proof_key(learned)
                        )
                    self._learned.append(learned)
                    self._clause_act[id(learned)] = self._cla_inc
                    self._cla_inc *= 1.001
                    self._enqueue(learned[0], learned)
                self._var_inc *= self._var_decay
                conflicts_until_restart -= 1
                if conflicts_until_restart <= 0:
                    restart_idx += 1
                    self.restarts += 1
                    conflicts_until_restart = 100 * luby(restart_idx)
                    self._backtrack(self._num_assumed)
                    self._reduce_learned()
                continue

            # No conflict: decide.
            if self._decision_level() < self._num_assumed:
                lit = assumptions[self._decision_level()]
                val = self._value(lit)
                if val is False:
                    # An assumption literal is already falsified (by the
                    # root level or by earlier assumptions): record its
                    # reason chain before it unwinds.
                    if self.proof is not None:
                        self.proof.capture_final(self, lits=[lit])
                    self._backtrack(0)
                    return UNSAT
                if val is True:
                    self._trail_lim.append(len(self._trail))
                    continue
                self._trail_lim.append(len(self._trail))
                self._enqueue(lit, None)
                continue
            lit = self._pick_branch()
            if lit == 0:
                return SAT
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            if len(self._trail_lim) > self.max_decision_level:
                self.max_decision_level = len(self._trail_lim)
            self._enqueue(lit, None)

    @property
    def _num_assumed(self) -> int:
        return getattr(self, "_assumed_count", 0)

    def solve_with(
        self,
        assumptions: list[int],
        max_conflicts: int | None = None,
        timeout_s: float | None = None,
    ) -> str:
        """Solve under assumptions (kept as pseudo-decisions)."""
        self._assumed_count = len(assumptions)
        try:
            return self.solve(list(assumptions), max_conflicts=max_conflicts, timeout_s=timeout_s)
        finally:
            self._assumed_count = 0

    def stats(self) -> dict:
        """Counters for the most recent ``solve()`` call.

        Search counters (conflicts, decisions, propagations, restarts,
        learned clauses, conflict literals, max decision level) are
        per-solve; ``vars``/``clauses`` describe the loaded problem.
        ``avg_learned_len`` is the conflict-literal rate — long learned
        clauses are the classic symptom of a poorly decomposed query.
        """
        return {
            "vars": self.num_vars,
            "clauses": self.added_clauses,
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "learned_clauses": self.learned_clauses,
            "learned_kept": len(self._learned),
            "conflict_literals": self.conflict_literals,
            "max_decision_level": self.max_decision_level,
            "avg_learned_len": (
                self.conflict_literals / self.learned_clauses if self.learned_clauses else 0.0
            ),
        }

    def model(self) -> dict[int, bool]:
        """The satisfying assignment, as {var: bool}."""
        return {
            v: self._assign[v] > 0
            for v in range(1, self.num_vars + 1)
            if self._assign[v] != 0
        }

    def iter_problem_clauses(self):
        """Yield the problem (non-learned) clauses as literal lists."""
        for clause in self._clauses:
            yield list(clause)


def to_dimacs(solver) -> str:
    """Render the problem clauses in DIMACS CNF format.

    Lets the CNF be cross-checked with an external SAT solver when one
    is available; learned clauses are excluded (they are implied).
    Works with any solver implementation exposing
    ``iter_problem_clauses()`` (both :class:`SatSolver` and the arena
    solver do).
    """
    clauses = list(solver.iter_problem_clauses())
    lines = [f"p cnf {solver.num_vars} {len(clauses)}"]
    for clause in clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"
