"""SMT-LIB2 printing of term DAGs.

Useful for debugging and for dumping verification conditions so they
can be cross-checked with an external solver when one is available.
"""

from __future__ import annotations

from io import StringIO

from .sorts import BOOL, BitVecSort
from .terms import Term

_OP_NAMES = {
    "not": "not",
    "and": "and",
    "or": "or",
    "xor": "xor",
    "ite": "ite",
    "eq": "=",
    "ult": "bvult",
    "ule": "bvule",
    "slt": "bvslt",
    "sle": "bvsle",
    "bvadd": "bvadd",
    "bvsub": "bvsub",
    "bvmul": "bvmul",
    "bvudiv": "bvudiv",
    "bvurem": "bvurem",
    "bvsdiv": "bvsdiv",
    "bvsrem": "bvsrem",
    "bvand": "bvand",
    "bvor": "bvor",
    "bvxor": "bvxor",
    "bvnot": "bvnot",
    "bvneg": "bvneg",
    "bvshl": "bvshl",
    "bvlshr": "bvlshr",
    "bvashr": "bvashr",
    "concat": "concat",
}


def sort_to_smtlib(sort) -> str:
    if sort is BOOL:
        return "Bool"
    if isinstance(sort, BitVecSort):
        return f"(_ BitVec {sort.width})"
    raise TypeError(f"unknown sort {sort!r}")


def term_to_smtlib(term: Term, defs: dict[int, str] | None = None) -> str:
    """Render a single term as an SMT-LIB2 s-expression."""
    if defs is not None and term.tid in defs:
        return defs[term.tid]
    op = term.op
    if op == "boolconst":
        return "true" if term.payload else "false"
    if op == "bvconst":
        return f"(_ bv{term.payload} {term.width})"
    if op == "var":
        return _sanitize(term.payload)
    if op == "extract":
        hi, lo = term.payload
        return f"((_ extract {hi} {lo}) {term_to_smtlib(term.args[0], defs)})"
    if op == "zext":
        extra = term.width - term.args[0].width
        return f"((_ zero_extend {extra}) {term_to_smtlib(term.args[0], defs)})"
    if op == "sext":
        extra = term.width - term.args[0].width
        return f"((_ sign_extend {extra}) {term_to_smtlib(term.args[0], defs)})"
    if op == "apply":
        inner = " ".join(term_to_smtlib(a, defs) for a in term.args)
        return f"({_sanitize(term.payload)} {inner})"
    name = _OP_NAMES.get(op)
    if name is None:
        raise ValueError(f"cannot print op {op!r}")
    inner = " ".join(term_to_smtlib(a, defs) for a in term.args)
    return f"({name} {inner})"


def _sanitize(name: str) -> str:
    out = "".join(c if c.isalnum() or c in "_.$" else "_" for c in str(name))
    return out if out and not out[0].isdigit() else f"v_{out}"


def script_for(assertions: list[Term]) -> str:
    """Emit a full (set-logic ...) .. (check-sat) script.

    Shared subterms are bound with let-free auxiliary definitions via
    ``define-fun`` so the output stays linear in DAG size.
    """
    buf = StringIO()
    buf.write("(set-logic QF_UFBV)\n")

    variables: dict[str, Term] = {}
    functions: dict[str, Term] = {}
    seen: set[int] = set()
    order: list[Term] = []

    def walk(t: Term) -> None:
        if t.tid in seen:
            return
        seen.add(t.tid)
        for a in t.args:
            walk(a)
        if t.op == "var":
            variables[t.payload] = t
        elif t.op == "apply":
            functions.setdefault(t.payload, t)
        order.append(t)

    for a in assertions:
        walk(a)

    for name, t in sorted(variables.items()):
        buf.write(f"(declare-const {_sanitize(name)} {sort_to_smtlib(t.sort)})\n")
    for name, t in sorted(functions.items()):
        argsorts = " ".join(sort_to_smtlib(a.sort) for a in t.args)
        buf.write(f"(declare-fun {_sanitize(name)} ({argsorts}) {sort_to_smtlib(t.sort)})\n")

    # Name shared interior nodes to keep the printed tree small.
    defs: dict[int, str] = {}
    refcount: dict[int, int] = {}
    for t in order:
        for a in t.args:
            refcount[a.tid] = refcount.get(a.tid, 0) + 1
    idx = 0
    for t in order:
        if refcount.get(t.tid, 0) > 1 and t.args:
            body = term_to_smtlib(t, defs)
            name = f"aux!{idx}"
            idx += 1
            buf.write(f"(define-fun {name} () {sort_to_smtlib(t.sort)} {body})\n")
            defs[t.tid] = name

    for a in assertions:
        buf.write(f"(assert {term_to_smtlib(a, defs)})\n")
    buf.write("(check-sat)\n")
    return buf.getvalue()
