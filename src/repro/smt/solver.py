"""Solver frontend: assertion stack, check-sat, models.

This is the stack's substitute for Z3 (Figure 1, bottom box):
"constraint solving, counterexample generation".  Each ``check`` call
simplification-folds the assertion set (the term constructors already
did most of the work), bit-blasts it, and runs the CDCL core.

``SolverCache`` adds a persistent memo over the check-sat boundary:
queries are keyed by the canonical (alpha-renamed) digest of their
term DAG, so re-running a verification — or running an equivalent
obligation produced by a different harness — replays the verdict and
counterexample from disk instead of re-solving.

Checks are incremental by default: one long-lived arena solver plus
bit-blaster pair per process (the :class:`IncrementalSession`) absorbs
every query.  Tseitin definitions and Ackermann constraints blast once
per term node and stay loaded; each obligation is discharged under
assumptions (the query's root literals) with decisions restricted to
the query's variable *cone*, so learned clauses survive from one
obligation to the next while verdicts, models, and per-query counters
stay exactly what a standalone solve would produce.  Why this is sound:

* permanent clauses are only Tseitin gate definitions, Ackermann
  consistency constraints, and learned clauses (pure resolution
  consequences of the former two — assumption literals are never
  resolved away, they surface as literals of the learned clause), so
  the clause database is satisfiable and semantically equivalent to
  "definitions + Ackermann" no matter how many queries it absorbed;
* every variable blasted for a node of the query's DAG is in the cone
  (the blaster records per-tid variable ranges), so when the cone is
  fully assigned and propagation is at fixpoint every definition
  clause of the query is checked — the cone assignment restricted to
  the query's own variables is a genuine model;
* any model of the query alone extends to a model of the whole
  database (other queries' inputs are free; pick uninterpreted
  function values consistently), so no resolution proof can refute a
  satisfiable query: UNSAT answers are never an artifact of sharing.

``REPRO_NO_INCREMENTAL=1`` restores a fresh solver per check, and
``REPRO_SAT_IMPL=legacy`` additionally swaps in the reference SAT
core (which has no assumption-cone support).  Crash recovery: callers
that catch a worker-level failure should call
:func:`reset_incremental_session` so a possibly-inconsistent session
is rebuilt rather than reused.
"""

from __future__ import annotations

import gzip
import json
import os
import tempfile
import time

from ..obs import (
    count as obs_count,
    enabled as _obs_enabled,
    observe as obs_observe,
    span as obs_span,
)
from .bitblast import BitBlaster
from .model import Model
from .proof import CertificateError, ProofLog, build_model_certificate, build_unsat_certificate
from .sat import new_solver
from .sat.solver import SAT, UNKNOWN, UNSAT
from .sorts import BOOL
from .terms import Term, canonicalize_nodes, mk_bool, serialize_terms

__all__ = [
    "Solver",
    "CheckResult",
    "SolverCache",
    "SolverTimeout",
    "IncrementalSession",
    "get_incremental_session",
    "reset_incremental_session",
    "incremental_enabled",
    "certs_enabled",
    "SAT",
    "UNSAT",
    "UNKNOWN",
]


def certs_enabled() -> bool:
    """Whether cached checks also produce proof certificates.

    On by default; ``REPRO_NO_CERTS=1`` opts out (the escape hatch when
    cert emission overhead matters more than store trustworthiness).
    Certificates are only assembled for cache-backed checks — the
    digest is the storage key — so without a cache this flag only
    controls whether the incremental session carries a proof log.  Read
    per call so tests can flip the environment without reimporting.
    """
    return os.environ.get("REPRO_NO_CERTS", "") != "1"


def incremental_enabled() -> bool:
    """Whether checks share the per-process incremental session.

    ``REPRO_NO_INCREMENTAL=1`` opts out; ``REPRO_SAT_IMPL=legacy``
    opts out implicitly because the reference solver cannot restrict
    decisions to a cone.  Read per call so tests can flip the
    environment without reimporting.
    """
    if os.environ.get("REPRO_NO_INCREMENTAL", "") == "1":
        return False
    return os.environ.get("REPRO_SAT_IMPL", "").lower() != "legacy"


class IncrementalSession:
    """A long-lived solver + blaster pair shared by all checks in a
    process (one per scheduler worker, since workers are processes)."""

    def __init__(self) -> None:
        self.sat = new_solver()
        if certs_enabled():
            # Attached before the first clause so input units are never
            # missed; must be present from session birth because any
            # later query's refutation may lean on clauses blasted now.
            self.sat.proof = ProofLog()
        self.blaster = BitBlaster(self.sat)
        self.checks = 0


_session: IncrementalSession | None = None


def _session_max_vars() -> int:
    try:
        return int(os.environ.get("REPRO_INCREMENTAL_MAX_VARS", "500000"))
    except ValueError:
        return 500_000


def get_incremental_session() -> IncrementalSession:
    """The process-wide session, created on first use and recycled when
    it outgrows ``REPRO_INCREMENTAL_MAX_VARS`` solver variables."""
    global _session
    if _session is not None and _session.sat.num_vars > _session_max_vars():
        _session = None
    if _session is None:
        _session = IncrementalSession()
    return _session


def reset_incremental_session() -> None:
    """Drop the process-wide session.

    Call after a crash mid-check (worker resilience handlers do): a
    half-blasted or interrupted session might hold inconsistent solver
    state, and rebuilding it only costs re-blasting on the next query.
    """
    global _session
    _session = None


def _walk_query(terms: list[Term]) -> tuple[set[int], set[str]]:
    """Collect every term id in the query DAG plus its variable names."""
    seen: set[int] = set()
    names: set[str] = set()
    stack = list(terms)
    while stack:
        t = stack.pop()
        if t.tid in seen:
            continue
        seen.add(t.tid)
        if t.op == "var":
            names.add(t.payload)
        stack.extend(t.args)
    return seen, names


class SolverTimeout(Exception):
    """Raised when a check exceeds its conflict or wall-clock budget."""


class CheckResult:
    """Outcome of a satisfiability check."""

    def __init__(self, status: str, model: Model | None = None, stats: dict | None = None):
        self.status = status
        self.model = model
        self.stats = stats or {}

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT

    def __repr__(self) -> str:
        return f"CheckResult({self.status})"


class SolverCache:
    """Persistent memo of solver verdicts, keyed by canonical digest.

    Entries live one-file-per-digest under ``path`` and are written
    atomically (tempfile + rename), so concurrent worker processes can
    share a cache directory without locking: the worst race is two
    workers solving the same query and storing identical entries.

    Models are stored under canonical variable names (the alpha
    renaming from ``canonicalize_query``) and remapped to the hitting
    query's own variable names on load — this is what makes
    alpha-equivalent queries share counterexamples, not just verdicts.
    ``unknown`` verdicts are budget-dependent and are never cached.
    """

    def __init__(self, path: str):
        self.path = path
        os.makedirs(path, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # Certificates above this size gzip to a fraction of it; below it
    # the gzip header overhead is not worth a second file format.
    CERT_GZIP_THRESHOLD = 32768

    def _entry_path(self, digest: str) -> str:
        return os.path.join(self.path, f"{digest}.json")

    def _cert_path(self, digest: str) -> str:
        """Base certificate path (without the optional ``.gz``)."""
        return os.path.join(self.path, f"{digest}.cert.json")

    def store_certificate(self, digest: str, cert: dict) -> None:
        """Persist a certificate next to its verdict entry (atomic
        write; large documents are gzipped)."""
        data = json.dumps(cert, separators=(",", ":")).encode()
        base = self._cert_path(digest)
        target, stale = base, base + ".gz"
        if len(data) >= self.CERT_GZIP_THRESHOLD:
            # Level 1: these documents are short-lived cache siblings,
            # and emission sits on the solve path — speed over ratio.
            data = gzip.compress(data, 1)
            target, stale = base + ".gz", base
        os.makedirs(os.path.dirname(target), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(target), suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        # Two runs of the same digest may disagree on compression (the
        # certificate is mode-dependent); never leave both variants.
        try:
            os.unlink(stale)
        except OSError:
            pass

    def load_certificate(self, digest: str) -> dict | None:
        """The stored certificate for ``digest``, or None (absent or
        corrupt — cert-less entries are a supported legacy state)."""
        base = self._cert_path(digest)
        try:
            with open(base, "rb") as handle:
                return json.loads(handle.read().decode())
        except (OSError, ValueError):
            pass
        try:
            with open(base + ".gz", "rb") as handle:
                return json.loads(gzip.decompress(handle.read()).decode())
        except (OSError, ValueError):
            return None

    def _read_entry(self, digest: str) -> dict | None:
        """Load the raw JSON entry for ``digest``, or None if absent or
        corrupt (a torn write loses one memo, never a verdict)."""
        try:
            with open(self._entry_path(digest)) as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def lookup(self, digest: str, var_map: dict[str, str]) -> "CheckResult | None":
        """Return the cached result for ``digest``, or None on a miss."""
        entry = self._read_entry(digest)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        return self._entry_to_result(entry, var_map)

    @staticmethod
    def _entry_to_result(entry: dict, var_map: dict[str, str]) -> "CheckResult":
        """Materialize a stored entry as a :class:`CheckResult` for the
        hitting query: models come back from canonical variable names to
        the query's own names via ``var_map``.  Shared with the remote
        read-through tier, which adopts entries from other machines and
        must replay them identically."""
        stats = {"cache_hit": True, "time_s": 0.0}
        if entry["status"] == SAT:
            canon_to_name = {canon: name for name, canon in var_map.items()}
            values = {
                canon_to_name[canon]: value
                for canon, value in entry["model"].items()
                if canon in canon_to_name
            }
            return CheckResult(SAT, Model(values), stats=stats)
        return CheckResult(UNSAT, stats=stats)

    def store(self, digest: str, var_map: dict[str, str], result: "CheckResult") -> None:
        if result.status not in (SAT, UNSAT):
            return
        entry: dict = {"status": result.status}
        if result.status == SAT:
            entry["model"] = {
                var_map[name]: value
                for name, value in result.model.items()
                if name in var_map
            }
        target = self._entry_path(digest)
        os.makedirs(os.path.dirname(target), exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=os.path.dirname(target), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(entry, handle)
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self.stores += 1

    def stats(self) -> dict:
        queries = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "hit_rate": self.hits / queries if queries else 0.0,
        }

    def clear(self) -> None:
        # Walks one shard level so clearing works for both the flat
        # PR 2 layout and the sharded VerdictStore layout.
        for name in os.listdir(self.path):
            full = os.path.join(self.path, name)
            if os.path.isdir(full) and len(name) == 2:
                for sub in os.listdir(full):
                    if sub.endswith((".json", ".json.gz")):
                        try:
                            os.unlink(os.path.join(full, sub))
                        except OSError:
                            pass
            elif name.endswith((".json", ".json.gz")):
                try:
                    os.unlink(full)
                except OSError:
                    pass


class Solver:
    """Assertion stack plus check-sat.

    By default each ``check`` discharges into the process-wide
    incremental session (see module docstring): the query's roots
    become assumption literals over a shared clause arena, so CNF for
    shared structure is emitted once and learned clauses survive
    across checks.  ``REPRO_NO_INCREMENTAL=1`` (or
    ``REPRO_SAT_IMPL=legacy``) restores the one-shot path — a fresh
    CNF per check.  An optional ``cache`` memoizes verdicts across
    checks, processes, and runs.
    """

    def __init__(
        self,
        max_conflicts: int | None = None,
        timeout_s: float | None = None,
        cache: SolverCache | None = None,
    ):
        self._assertions: list[Term] = []
        self._scopes: list[int] = []
        self.max_conflicts = max_conflicts
        self.timeout_s = timeout_s
        self.cache = cache
        self.last_stats: dict = {}
        # Set per check(): the serialized node list behind the digest,
        # reused by certificate emission to avoid a second traversal.
        self._serialized_query: dict | None = None

    def add(self, *terms: Term) -> None:
        for t in terms:
            if t.sort is not BOOL:
                raise TypeError(f"assertion must be boolean, got {t.sort!r}")
            self._assertions.append(t)

    def push(self) -> None:
        self._scopes.append(len(self._assertions))

    def pop(self) -> None:
        if not self._scopes:
            raise RuntimeError("pop without matching push")
        del self._assertions[self._scopes.pop() :]

    @property
    def assertions(self) -> tuple[Term, ...]:
        return tuple(self._assertions)

    def check(self, *extra: Term) -> CheckResult:
        """Check satisfiability of the asserted formulas plus ``extra``."""
        start = time.perf_counter()
        obs_count("solver.queries")
        terms = list(self._assertions) + list(extra)
        # Fast path: syntactic trivialities.
        if any(t is mk_bool(False) for t in terms):
            obs_count("solver.trivial")
            return CheckResult(UNSAT, stats={"trivial": True, "time_s": 0.0})
        terms = [t for t in terms if t is not mk_bool(True)]
        if not terms:
            obs_count("solver.trivial")
            return CheckResult(SAT, Model({}), stats={"trivial": True, "time_s": 0.0})

        digest = var_map = None
        if self.cache is not None:
            with obs_span("canonicalize", cat="solver-cache") as cargs:
                # Serialize once: the node list feeds both the digest
                # and (on a miss) the certificate's query payload.
                self._serialized_query = serialize_terms(terms)
                digest, var_map = canonicalize_nodes(self._serialized_query)
            if cargs is not None:
                cargs["vars"] = len(var_map)
            with obs_span("cache.lookup", cat="solver-cache") as largs:
                cached = self.cache.lookup(digest, var_map)
            if largs is not None:
                largs["hit"] = cached is not None
            if cached is not None:
                obs_count("solver.cache.hits")
                self.last_stats = dict(cached.stats)
                self.last_stats["digest"] = digest
                cached.stats["digest"] = digest
                return cached
            obs_count("solver.cache.misses")

        if incremental_enabled():
            try:
                return self._check_incremental(terms, digest, var_map, start)
            except SolverTimeout:
                raise  # the session is backtracked and still consistent
            except BaseException:
                # Anything else may have interrupted the session mid
                # mutation; rebuild it on the next query.
                reset_incremental_session()
                raise
        return self._check_fresh(terms, digest, var_map, start)

    def _emit_certificate(
        self, sat, blaster, terms, digest, var_map, status, model_values, assumptions, mode
    ) -> None:
        """Assemble and store this query's certificate (cache-backed
        checks only).  Must run while the solver still holds the
        answer's assignment — before any maintain()/backtrack."""
        if digest is None or self.cache is None or sat.proof is None or not certs_enabled():
            return
        serialized = getattr(self, "_serialized_query", None)
        # CPU time, not wall: with more workers than cores, wall inside
        # this window counts the *other* workers' preemption as cert cost.
        emit_start = time.process_time()
        try:
            with obs_span("cert.build", cat="solver-cache"):
                if status == UNSAT:
                    cert = build_unsat_certificate(
                        sat, terms, digest, var_map, assumptions, mode, serialized
                    )
                elif status == SAT:
                    cert = build_model_certificate(
                        sat, blaster, terms, digest, var_map, model_values, mode, serialized
                    )
                else:
                    return
            self.cache.store_certificate(digest, cert)
            obs_count("solver.certs")
            # Emission seconds, accumulated as a float counter: the CI
            # overhead gate divides this by the run's wall clock, which
            # is immune to run-to-run wall noise in a two-run A/B.
            obs_count("solver.cert_build_s", time.process_time() - emit_start)
            self.last_stats["cert"] = True
        except CertificateError:
            # A cert we cannot assemble must never turn a sound verdict
            # into a failure; the store audit surfaces the gap instead.
            obs_count("solver.cert_errors")
            self.last_stats["cert_error"] = True

    def _check_fresh(self, terms, digest, var_map, start) -> CheckResult:
        """One-shot path: fresh solver and blaster for this query."""
        sat = new_solver()
        if digest is not None and certs_enabled():
            sat.proof = ProofLog()
        blaster = BitBlaster(sat)
        with obs_span("bitblast", cat="bitblast") as bargs:
            for t in terms:
                blaster.assert_term(t)
        blast_time = time.perf_counter() - start
        if bargs is not None:
            bargs.update(vars=sat.num_vars, clauses=sat.added_clauses)
            obs_count("bitblast.queries")
            obs_count("bitblast.vars", sat.num_vars)
            obs_count("bitblast.clauses", sat.added_clauses)
            for label, (aux_vars, clauses) in sorted(blaster.emitted.items()):
                obs_count(f"bitblast.aux_vars.{label}", aux_vars)
                obs_count(f"bitblast.clauses.{label}", clauses)

        sat_budget_s = None
        if self.timeout_s is not None:
            # Hand the SAT core whatever wall-clock budget blasting left
            # over, so a hung search stops *during* the solve.
            sat_budget_s = max(self.timeout_s - blast_time, 0.0)
        with obs_span("sat.solve", cat="sat") as sargs:
            status = sat.solve(max_conflicts=self.max_conflicts, timeout_s=sat_budget_s)
        elapsed = time.perf_counter() - start
        obs_observe("bitblast.seconds", blast_time)
        obs_observe("sat.solve_seconds", max(0.0, elapsed - blast_time))
        sat_stats = sat.stats()
        if sargs is not None:
            sargs["status"] = status
            sargs.update(sat_stats)
        self._note_sat_counters(sat_stats)
        self.last_stats = {
            "time_s": elapsed,
            "blast_time_s": blast_time,
            "sat_vars": sat.num_vars,
            "sat_clauses": sat.added_clauses,
            "conflicts": sat.conflicts,
            "decisions": sat.decisions,
            "propagations": sat.propagations,
            "restarts": sat.restarts,
            "learned_clauses": sat.learned_clauses,
            "conflict_literals": sat.conflict_literals,
            "max_decision_level": sat.max_decision_level,
        }
        if digest is not None:
            self.last_stats["digest"] = digest
        if sat.timed_out or (self.timeout_s is not None and elapsed > self.timeout_s):
            self.last_stats["timed_out"] = True
            raise SolverTimeout(f"check exceeded {self.timeout_s}s (took {elapsed:.2f}s)")
        model_values = blaster.extract_model() if status == SAT else None
        self._emit_certificate(
            sat, blaster, terms, digest, var_map, status, model_values, [], "fresh"
        )
        if status == SAT:
            result = CheckResult(SAT, Model(model_values), stats=self.last_stats)
        elif status == UNSAT:
            result = CheckResult(UNSAT, stats=self.last_stats)
        else:
            result = CheckResult(UNKNOWN, stats=self.last_stats)
        if self.cache is not None:
            self.cache.store(digest, var_map, result)
        return result

    def _check_incremental(self, terms, digest, var_map, start) -> CheckResult:
        """Session path: blast into the shared context, solve the query
        under assumptions with decisions restricted to its cone."""
        session = get_incremental_session()
        sat, blaster = session.sat, session.blaster
        session.checks += 1
        obs_count("sat.incremental_hits")

        tids, names = _walk_query(terms)
        prior_tids = [
            tid for tid in tids if tid in blaster._bool_cache or tid in blaster._bv_cache
        ]
        emit_before = (
            {label: tuple(cell) for label, cell in blaster.emitted.items()}
            if _obs_enabled()
            else None
        )
        vars_before = sat.num_vars
        clauses_before = sat.added_clauses
        with obs_span("bitblast", cat="bitblast") as bargs:
            # Roots become assumptions, not unit clauses: nothing this
            # query asserts outlives it in the shared clause database.
            roots = [blaster.bool_lit(t) for t in terms]
        blast_time = time.perf_counter() - start
        new_vars = sat.num_vars - vars_before
        new_clauses = sat.added_clauses - clauses_before
        reused_clauses = blaster.clauses_for(prior_tids)
        obs_count("sat.reused_clauses", reused_clauses)
        if bargs is not None:
            bargs.update(vars=new_vars, clauses=new_clauses, reused_clauses=reused_clauses)
            obs_count("bitblast.queries")
            obs_count("bitblast.vars", new_vars)
            obs_count("bitblast.clauses", new_clauses)
            for label, (aux_vars, clauses) in sorted(blaster.emitted.items()):
                prev = emit_before.get(label, (0, 0)) if emit_before else (0, 0)
                d_vars, d_clauses = aux_vars - prev[0], clauses - prev[1]
                if d_vars or d_clauses:
                    obs_count(f"bitblast.aux_vars.{label}", d_vars)
                    obs_count(f"bitblast.clauses.{label}", d_clauses)

        cone = blaster.cone_vars(tids)
        sat_budget_s = None
        if self.timeout_s is not None:
            sat_budget_s = max(self.timeout_s - blast_time, 0.0)
        with obs_span("sat.solve", cat="sat") as sargs:
            status = sat.solve_with(
                roots,
                max_conflicts=self.max_conflicts,
                timeout_s=sat_budget_s,
                relevant=cone,
            )
        elapsed = time.perf_counter() - start
        obs_observe("bitblast.seconds", blast_time)
        obs_observe("sat.solve_seconds", max(0.0, elapsed - blast_time))
        sat_stats = sat.stats()
        if sargs is not None:
            sargs["status"] = status
            sargs.update(sat_stats)
            sargs["cone_vars"] = len(cone)
        self._note_sat_counters(sat_stats)
        self.last_stats = {
            "time_s": elapsed,
            "blast_time_s": blast_time,
            "incremental": True,
            "sat_vars": sat.num_vars,
            "sat_clauses": sat.added_clauses,
            "blasted_vars": new_vars,
            "blasted_clauses": new_clauses,
            "reused_clauses": reused_clauses,
            "cone_vars": len(cone),
            "conflicts": sat.conflicts,
            "decisions": sat.decisions,
            "propagations": sat.propagations,
            "restarts": sat.restarts,
            "learned_clauses": sat.learned_clauses,
            "conflict_literals": sat.conflict_literals,
            "max_decision_level": sat.max_decision_level,
        }
        if digest is not None:
            self.last_stats["digest"] = digest
        if sat.timed_out or (self.timeout_s is not None and elapsed > self.timeout_s):
            self.last_stats["timed_out"] = True
            raise SolverTimeout(f"check exceeded {self.timeout_s}s (took {elapsed:.2f}s)")
        model_values = blaster.extract_model(names) if status == SAT else None
        # Certificates read the live assignment (model bits) and the
        # root-level trail (unit justifications), so they must be built
        # before maintain() backtracks the session.
        self._emit_certificate(
            sat, blaster, terms, digest, var_map, status, model_values, roots, "incremental"
        )
        if status == SAT:
            result = CheckResult(SAT, Model(model_values), stats=self.last_stats)
        elif status == UNSAT:
            result = CheckResult(UNSAT, stats=self.last_stats)
        else:
            result = CheckResult(UNKNOWN, stats=self.last_stats)
        # Between-query housekeeping: trim the learned DB outside the
        # solve so per-query counters never depend on session history.
        sat.maintain()
        if self.cache is not None:
            self.cache.store(digest, var_map, result)
        return result

    @staticmethod
    def _note_sat_counters(sat_stats: dict) -> None:
        for key in (
            "conflicts",
            "decisions",
            "propagations",
            "restarts",
            "learned_clauses",
            "conflict_literals",
        ):
            obs_count(f"sat.{key}", sat_stats[key])


def check_sat(*terms: Term, max_conflicts: int | None = None) -> CheckResult:
    """One-shot satisfiability check of a conjunction of terms."""
    solver = Solver(max_conflicts=max_conflicts)
    solver.add(*terms)
    return solver.check()
