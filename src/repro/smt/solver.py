"""Solver frontend: assertion stack, check-sat, models.

This is the stack's substitute for Z3 (Figure 1, bottom box):
"constraint solving, counterexample generation".  Each ``check`` call
simplification-folds the assertion set (the term constructors already
did most of the work), bit-blasts it, and runs the CDCL core.
"""

from __future__ import annotations

import time

from .bitblast import BitBlaster
from .model import Model
from .sat.solver import SAT, UNKNOWN, UNSAT, SatSolver
from .sorts import BOOL
from .terms import Term, mk_bool

__all__ = ["Solver", "CheckResult", "SolverTimeout", "SAT", "UNSAT", "UNKNOWN"]


class SolverTimeout(Exception):
    """Raised when a check exceeds its conflict or wall-clock budget."""


class CheckResult:
    """Outcome of a satisfiability check."""

    def __init__(self, status: str, model: Model | None = None, stats: dict | None = None):
        self.status = status
        self.model = model
        self.stats = stats or {}

    @property
    def is_sat(self) -> bool:
        return self.status == SAT

    @property
    def is_unsat(self) -> bool:
        return self.status == UNSAT

    def __repr__(self) -> str:
        return f"CheckResult({self.status})"


class Solver:
    """Assertion stack plus check-sat.

    Checks are one-shot: each ``check`` builds a fresh CNF.  That
    matches how the Serval pipeline uses the solver — one verification
    condition per theorem — and keeps the blaster stateless across
    pushes.
    """

    def __init__(self, max_conflicts: int | None = None, timeout_s: float | None = None):
        self._assertions: list[Term] = []
        self._scopes: list[int] = []
        self.max_conflicts = max_conflicts
        self.timeout_s = timeout_s
        self.last_stats: dict = {}

    def add(self, *terms: Term) -> None:
        for t in terms:
            if t.sort is not BOOL:
                raise TypeError(f"assertion must be boolean, got {t.sort!r}")
            self._assertions.append(t)

    def push(self) -> None:
        self._scopes.append(len(self._assertions))

    def pop(self) -> None:
        if not self._scopes:
            raise RuntimeError("pop without matching push")
        del self._assertions[self._scopes.pop() :]

    @property
    def assertions(self) -> tuple[Term, ...]:
        return tuple(self._assertions)

    def check(self, *extra: Term) -> CheckResult:
        """Check satisfiability of the asserted formulas plus ``extra``."""
        start = time.perf_counter()
        terms = list(self._assertions) + list(extra)
        # Fast path: syntactic trivialities.
        if any(t is mk_bool(False) for t in terms):
            return CheckResult(UNSAT, stats={"trivial": True, "time_s": 0.0})
        terms = [t for t in terms if t is not mk_bool(True)]
        if not terms:
            return CheckResult(SAT, Model({}), stats={"trivial": True, "time_s": 0.0})

        sat = SatSolver()
        blaster = BitBlaster(sat)
        for t in terms:
            blaster.assert_term(t)
        blast_time = time.perf_counter() - start

        status = sat.solve(max_conflicts=self.max_conflicts)
        elapsed = time.perf_counter() - start
        self.last_stats = {
            "time_s": elapsed,
            "blast_time_s": blast_time,
            "sat_vars": sat.num_vars,
            "sat_clauses": len(sat._clauses),
            "conflicts": sat.conflicts,
            "decisions": sat.decisions,
            "propagations": sat.propagations,
        }
        if self.timeout_s is not None and elapsed > self.timeout_s:
            raise SolverTimeout(f"check exceeded {self.timeout_s}s (took {elapsed:.2f}s)")
        if status == SAT:
            return CheckResult(SAT, Model(blaster.extract_model()), stats=self.last_stats)
        if status == UNSAT:
            return CheckResult(UNSAT, stats=self.last_stats)
        return CheckResult(UNKNOWN, stats=self.last_stats)


def check_sat(*terms: Term, max_conflicts: int | None = None) -> CheckResult:
    """One-shot satisfiability check of a conjunction of terms."""
    solver = Solver(max_conflicts=max_conflicts)
    solver.add(*terms)
    return solver.check()
