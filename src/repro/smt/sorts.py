"""Sorts for the QF_BV + UF fragment used by the verifier stack.

The paper's specification language (§3.1) is a decidable fragment of
first-order logic: booleans, bitvectors, uninterpreted functions, and
quantifiers over finite domains.  These sorts are the value-level part
of that fragment; quantifiers are finitized by the spec library.
"""

from __future__ import annotations


class Sort:
    """Base class for sorts.  Sorts are interned: compare with ``is``."""

    __slots__ = ()


class BoolSortT(Sort):
    __slots__ = ()

    def __repr__(self) -> str:
        return "Bool"


class BitVecSort(Sort):
    """Fixed-width bitvector sort.  Widths are interned via ``bv_sort``."""

    __slots__ = ("width",)

    def __init__(self, width: int):
        if width <= 0:
            raise ValueError(f"bitvector width must be positive, got {width}")
        self.width = width

    def __repr__(self) -> str:
        return f"BitVec({self.width})"


BOOL = BoolSortT()

_BV_CACHE: dict[int, BitVecSort] = {}


def bv_sort(width: int) -> BitVecSort:
    """Return the interned bitvector sort of the given width."""
    sort = _BV_CACHE.get(width)
    if sort is None:
        sort = BitVecSort(width)
        _BV_CACHE[width] = sort
    return sort


def is_bv(sort: Sort) -> bool:
    """True if ``sort`` is a bitvector sort."""
    return isinstance(sort, BitVecSort)


def is_bool(sort: Sort) -> bool:
    """True if ``sort`` is the boolean sort."""
    return sort is BOOL
