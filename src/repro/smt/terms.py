"""Hash-consed term DAG with constant folding.

Every symbolic value in the stack bottoms out in one of these terms.
Terms are immutable and interned, so structural equality is pointer
equality and DAG sharing is maximal — this is what makes Rosette-style
state merging produce compact encodings (§3.2), and what lets the
symbolic profiler count distinct terms cheaply.

Constructor functions (``mk_and``, ``mk_bvadd``, ...) perform constant
folding and local identity rewrites.  These rewrites play the role of
Rosette's partial evaluation: after a symbolic optimization such as
``split-pc`` concretizes a value, folding collapses the downstream
expressions to constants.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Iterable

from .sorts import BOOL, BitVecSort, Sort, bv_sort, is_bv

__all__ = [
    "Term",
    "TermManager",
    "manager",
    "serialize_terms",
    "deserialize_terms",
    "canonicalize_query",
    "query_digest",
    "mk_true",
    "mk_false",
    "mk_bool",
    "mk_bv",
    "mk_var",
    "mk_not",
    "mk_and",
    "mk_or",
    "mk_xor",
    "mk_implies",
    "mk_ite",
    "mk_eq",
    "mk_distinct",
    "mk_ult",
    "mk_ule",
    "mk_slt",
    "mk_sle",
    "mk_bvadd",
    "mk_bvsub",
    "mk_bvmul",
    "mk_bvudiv",
    "mk_bvurem",
    "mk_bvsdiv",
    "mk_bvsrem",
    "mk_bvand",
    "mk_bvor",
    "mk_bvxor",
    "mk_bvnot",
    "mk_bvneg",
    "mk_bvshl",
    "mk_bvlshr",
    "mk_bvashr",
    "mk_concat",
    "mk_extract",
    "mk_zext",
    "mk_sext",
    "mk_apply",
    "to_signed",
    "to_unsigned",
]


def to_signed(value: int, width: int) -> int:
    """Interpret an unsigned ``width``-bit value as two's complement."""
    sign_bit = 1 << (width - 1)
    return (value & (sign_bit - 1)) - (value & sign_bit)


def to_unsigned(value: int, width: int) -> int:
    """Truncate a Python int to an unsigned ``width``-bit value."""
    return value & ((1 << width) - 1)


class Term:
    """A node in the interned term DAG.

    Fields:
      op      -- operator tag ('bvconst', 'var', 'and', 'bvadd', ...)
      sort    -- the term's sort
      args    -- tuple of child terms
      payload -- op-specific data: constant value, variable name,
                 (hi, lo) for extract, function name for apply
    """

    __slots__ = ("op", "sort", "args", "payload", "_hash", "tid")

    def __init__(self, op: str, sort: Sort, args: tuple["Term", ...], payload, tid: int):
        self.op = op
        self.sort = sort
        self.args = args
        self.payload = payload
        self.tid = tid
        self._hash = hash((op, id(sort), tuple(a.tid for a in args), payload))

    def __hash__(self) -> int:
        return self._hash

    # Interning guarantees structural equality == identity.
    def __eq__(self, other) -> bool:
        return self is other

    def __ne__(self, other) -> bool:
        return self is not other

    @property
    def width(self) -> int:
        sort = self.sort
        if not isinstance(sort, BitVecSort):
            raise TypeError(f"term {self!r} is not a bitvector")
        return sort.width

    def is_const(self) -> bool:
        return self.op in ("bvconst", "boolconst")

    def const_value(self):
        if not self.is_const():
            raise ValueError(f"term {self!r} is not a constant")
        return self.payload

    def __repr__(self) -> str:
        if self.op == "bvconst":
            return f"bv{self.width}({self.payload:#x})"
        if self.op == "boolconst":
            return "true" if self.payload else "false"
        if self.op == "var":
            return str(self.payload)
        if self.op == "extract":
            hi, lo = self.payload
            return f"(extract {hi} {lo} {self.args[0]!r})"
        if self.op == "apply":
            inner = " ".join(repr(a) for a in self.args)
            return f"({self.payload} {inner})"
        inner = " ".join(repr(a) for a in self.args)
        return f"({self.op} {inner})"


class TermManager:
    """Interning table plus fresh-variable supply.

    A single global manager (``manager``) is used by the whole stack;
    tests may instantiate private managers for isolation.
    """

    def __init__(self) -> None:
        self._table: dict[tuple, Term] = {}
        self._next_tid = 0
        self._fresh_counter = 0
        # Hook for the symbolic profiler: called with each newly
        # interned term.  ``None`` when profiling is off.
        self.on_new_term: Callable[[Term], None] | None = None

    def intern(self, op: str, sort: Sort, args: tuple[Term, ...], payload=None) -> Term:
        key = (op, id(sort), tuple(a.tid for a in args), payload)
        term = self._table.get(key)
        if term is None:
            term = Term(op, sort, args, payload, self._next_tid)
            self._next_tid += 1
            self._table[key] = term
            if self.on_new_term is not None:
                self.on_new_term(term)
        return term

    def fresh_name(self, prefix: str) -> str:
        self._fresh_counter += 1
        return f"{prefix}!{self._fresh_counter}"

    def num_terms(self) -> int:
        return len(self._table)


manager = TermManager()

# ---------------------------------------------------------------------------
# Leaf constructors


def mk_bool(value: bool) -> Term:
    """The boolean constant ``value``."""
    return manager.intern("boolconst", BOOL, (), bool(value))


def mk_true() -> Term:
    """The constant ``true``."""
    return mk_bool(True)


def mk_false() -> Term:
    """The constant ``false``."""
    return mk_bool(False)


def mk_bv(value: int, width: int) -> Term:
    """The bitvector constant ``value`` (masked) of the given width."""
    return manager.intern("bvconst", bv_sort(width), (), to_unsigned(value, width))


def mk_var(name: str, sort: Sort) -> Term:
    """A symbolic constant of the given sort (interned by name)."""
    return manager.intern("var", sort, (), name)


def fresh_var(prefix: str, sort: Sort) -> Term:
    """A symbolic constant with a globally uniquified name."""
    return mk_var(manager.fresh_name(prefix), sort)


# ---------------------------------------------------------------------------
# Boolean connectives


def _is_true(t: Term) -> bool:
    return t.op == "boolconst" and t.payload is True


def _is_false(t: Term) -> bool:
    return t.op == "boolconst" and t.payload is False


def mk_not(a: Term) -> Term:
    """Boolean negation (double negation folds)."""
    if a.op == "boolconst":
        return mk_bool(not a.payload)
    if a.op == "not":
        return a.args[0]
    return manager.intern("not", BOOL, (a,))


def mk_and(*args: Term) -> Term:
    """N-ary conjunction (flattens, dedups, folds constants)."""
    flat: list[Term] = []
    seen: set[int] = set()
    for a in args:
        if _is_false(a):
            return mk_false()
        if _is_true(a):
            continue
        # Flatten nested conjunctions for sharing and smaller CNF.
        children = a.args if a.op == "and" else (a,)
        for c in children:
            if _is_false(c):
                return mk_false()
            if _is_true(c) or c.tid in seen:
                continue
            seen.add(c.tid)
            flat.append(c)
    for c in flat:
        if c.op == "not" and c.args[0].tid in seen:
            return mk_false()
    # Self-subsuming resolution: inside a conjunction, a disjunct whose
    # negation is already asserted can be dropped from an 'or' child:
    # and(a, or(not a, x), ...) == and(a, x, ...).
    changed = False
    for i, c in enumerate(flat):
        if c.op != "or":
            continue
        kept = [
            d
            for d in c.args
            if not (d.op == "not" and d.args[0].tid in seen)
            and not (d.op != "not" and mk_not(d).tid in seen)
        ]
        if len(kept) != len(c.args):
            flat[i] = mk_or(*kept)
            changed = True
    if changed:
        return mk_and(*flat)
    if not flat:
        return mk_true()
    if len(flat) == 1:
        return flat[0]
    flat.sort(key=lambda t: t.tid)
    return manager.intern("and", BOOL, tuple(flat))


def mk_or(*args: Term) -> Term:
    """N-ary disjunction (flattens, dedups, folds constants)."""
    flat: list[Term] = []
    seen: set[int] = set()
    for a in args:
        if _is_true(a):
            return mk_true()
        if _is_false(a):
            continue
        children = a.args if a.op == "or" else (a,)
        for c in children:
            if _is_true(c):
                return mk_true()
            if _is_false(c) or c.tid in seen:
                continue
            seen.add(c.tid)
            flat.append(c)
    for c in flat:
        if c.op == "not" and c.args[0].tid in seen:
            return mk_true()
    # Self-subsuming resolution: or(not a, and(a, x), ...) drops 'a'
    # from the conjunction.
    changed = False
    for i, c in enumerate(flat):
        if c.op != "and":
            continue
        kept = [
            d
            for d in c.args
            if not (d.op == "not" and d.args[0].tid in seen)
            and not (d.op != "not" and mk_not(d).tid in seen)
        ]
        if len(kept) != len(c.args):
            flat[i] = mk_and(*kept)
            changed = True
    if changed:
        return mk_or(*flat)
    if not flat:
        return mk_false()
    if len(flat) == 1:
        return flat[0]
    # De Morgan canonicalization (one direction only, so it cannot
    # ping-pong with mk_and): a disjunction of negations is stored as
    # the negated conjunction.  Together with the ite condition flip,
    # branch-merged updates then intern identically to functional
    # specs' positively-guarded updates.
    if all(c.op == "not" for c in flat):
        return mk_not(mk_and(*(c.args[0] for c in flat)))
    flat.sort(key=lambda t: t.tid)
    return manager.intern("or", BOOL, tuple(flat))


def mk_xor(a: Term, b: Term) -> Term:
    """Boolean exclusive-or."""
    if a.op == "boolconst":
        return mk_not(b) if a.payload else b
    if b.op == "boolconst":
        return mk_not(a) if b.payload else a
    if a is b:
        return mk_false()
    if a.tid > b.tid:
        a, b = b, a
    return manager.intern("xor", BOOL, (a, b))


def mk_implies(a: Term, b: Term) -> Term:
    """Implication ``a -> b``, built as ``not a or b``."""
    return mk_or(mk_not(a), b)


def mk_ite(cond: Term, then: Term, els: Term) -> Term:
    """If-then-else over booleans or same-width bitvectors."""
    if then.sort is not els.sort:
        raise TypeError(f"ite branch sorts differ: {then.sort!r} vs {els.sort!r}")
    if cond.op == "boolconst":
        return then if cond.payload else els
    if then is els:
        return then
    if then.sort is BOOL:
        if _is_true(then) and _is_false(els):
            return cond
        if _is_false(then) and _is_true(els):
            return mk_not(cond)
        if _is_true(then):
            return mk_or(cond, els)
        if _is_false(then):
            return mk_and(mk_not(cond), els)
        if _is_true(els):
            return mk_or(mk_not(cond), then)
        if _is_false(els):
            return mk_and(cond, then)
    if cond.op == "not":
        return mk_ite(cond.args[0], els, then)
    # Collapse ite(c, ite(c, a, _), b) and ite(c, a, ite(c, _, b)).
    if then.op == "ite" and then.args[0] is cond:
        then = then.args[1]
    if els.op == "ite" and els.args[0] is cond:
        els = els.args[2]
    if then is els:
        return then
    # Absorption: ite(c, ite(d, v, e), e) == ite(c & d, v, e) and
    # ite(c, t, ite(d, t, e)) == ite(c | d, t, e).  Normalizes guarded
    # updates produced by branch merging to the shape functional specs
    # write directly.
    if then.op == "ite" and then.args[2] is els:
        return mk_ite(mk_and(cond, then.args[0]), then.args[1], els)
    if els.op == "ite" and els.args[1] is then:
        return mk_ite(mk_or(cond, els.args[0]), then, els.args[2])
    return manager.intern("ite", then.sort, (cond, then, els))


def mk_eq(a: Term, b: Term) -> Term:
    """Equality over bitvectors or booleans (same sort required)."""
    if a.sort is not b.sort:
        raise TypeError(f"eq sorts differ: {a.sort!r} vs {b.sort!r}")
    if a is b:
        return mk_true()
    if a.is_const() and b.is_const():
        return mk_bool(a.payload == b.payload)
    if a.sort is BOOL:
        if a.op == "boolconst":
            return b if a.payload else mk_not(b)
        if b.op == "boolconst":
            return a if b.payload else mk_not(a)
    # eq distributes over ite with a constant on the other side; this
    # is the folding that makes split-cases effective (§4).
    if a.op == "ite" and b.is_const():
        return mk_ite(a.args[0], mk_eq(a.args[1], b), mk_eq(a.args[2], b))
    if b.op == "ite" and a.is_const():
        return mk_ite(b.args[0], mk_eq(b.args[1], a), mk_eq(b.args[2], a))
    # Two ites guarded by the *same* (interned) condition compare
    # branch-wise.  Refinement VCs are equalities between abstraction
    # trees and spec trees built from identical guards (e.g.
    # current == p), so this decomposition collapses most of the VC
    # at construction time.
    if a.op == "ite" and b.op == "ite" and a.args[0] is b.args[0]:
        return mk_ite(a.args[0], mk_eq(a.args[1], b.args[1]), mk_eq(a.args[2], b.args[2]))
    # ite equal to one of its own branches: only the guard (or the
    # other branch's equality) remains.
    if a.op == "ite":
        if a.args[1] is b:
            return mk_or(a.args[0], mk_eq(a.args[2], b))
        if a.args[2] is b:
            return mk_or(mk_not(a.args[0]), mk_eq(a.args[1], b))
    if b.op == "ite":
        if b.args[1] is a:
            return mk_or(b.args[0], mk_eq(b.args[2], a))
        if b.args[2] is a:
            return mk_or(mk_not(b.args[0]), mk_eq(b.args[1], a))
    if a.tid > b.tid:
        a, b = b, a
    return manager.intern("eq", BOOL, (a, b))


def mk_distinct(a: Term, b: Term) -> Term:
    """Disequality, built as ``not (a = b)``."""
    return mk_not(mk_eq(a, b))


# ---------------------------------------------------------------------------
# Bitvector comparisons


def _bv_binpred(op: str, a: Term, b: Term, concrete) -> Term:
    if a.sort is not b.sort or not is_bv(a.sort):
        raise TypeError(f"{op}: bad operand sorts {a.sort!r}, {b.sort!r}")
    if a.is_const() and b.is_const():
        return mk_bool(concrete(a.payload, b.payload, a.width))
    if a is b:
        return mk_bool(concrete(0, 0, a.width))
    return manager.intern(op, BOOL, (a, b))


def mk_ult(a: Term, b: Term) -> Term:
    """Unsigned less-than over bitvectors."""
    if b.is_const() and b.payload == 0:
        return mk_false()
    if a.is_const() and a.payload == 0:
        return mk_not(mk_eq(a, b))
    if b.is_const() and b.payload == 1:
        # x < 1 unsigned iff x == 0 (folds the seqz idiom to a boolean).
        return mk_eq(a, mk_bv(0, a.width))
    return _bv_binpred("ult", a, b, lambda x, y, w: x < y)


def mk_ule(a: Term, b: Term) -> Term:
    """Unsigned less-or-equal over bitvectors."""
    if a.is_const() and a.payload == 0:
        return mk_true()
    # Canonicalize to not(b < a) so <= and < intern to the same
    # underlying predicate (maximizing DAG sharing between the
    # specification's and the lowered implementation's conditions).
    return mk_not(mk_ult(b, a))


def mk_slt(a: Term, b: Term) -> Term:
    """Signed less-than over bitvectors."""
    return _bv_binpred("slt", a, b, lambda x, y, w: to_signed(x, w) < to_signed(y, w))


def mk_sle(a: Term, b: Term) -> Term:
    """Signed less-or-equal over bitvectors."""
    return mk_not(mk_slt(b, a))


# ---------------------------------------------------------------------------
# Bitvector arithmetic / logic


def _check_same_bv(op: str, a: Term, b: Term) -> int:
    if a.sort is not b.sort or not is_bv(a.sort):
        raise TypeError(f"{op}: bad operand sorts {a.sort!r}, {b.sort!r}")
    return a.width


def mk_bvadd(a: Term, b: Term) -> Term:
    """Bitvector addition (modular)."""
    w = _check_same_bv("bvadd", a, b)
    if a.is_const() and b.is_const():
        return mk_bv(a.payload + b.payload, w)
    if a.is_const() and a.payload == 0:
        return b
    if b.is_const() and b.payload == 0:
        return a
    # Re-associate (x + c1) + c2 -> x + (c1+c2); crucial for address
    # arithmetic produced by the memory model.
    if b.is_const() and a.op == "bvadd" and a.args[1].is_const():
        return mk_bvadd(a.args[0], mk_bv(a.args[1].payload + b.payload, w))
    if a.is_const() and b.op == "bvadd" and b.args[1].is_const():
        return mk_bvadd(b.args[0], mk_bv(b.args[1].payload + a.payload, w))
    if a.is_const():
        a, b = b, a  # canonical: constant on the right
    return manager.intern("bvadd", a.sort, (a, b))


def mk_bvsub(a: Term, b: Term) -> Term:
    """Bitvector subtraction (modular)."""
    w = _check_same_bv("bvsub", a, b)
    if b.is_const():
        return mk_bvadd(a, mk_bv(-b.payload, w))
    if a.is_const() and b.op == "bvadd" and b.args[1].is_const():
        # c - (x + c2) == (c - c2) - x
        return mk_bvsub(mk_bv(a.payload - b.args[1].payload, w), b.args[0])
    if a is b:
        return mk_bv(0, w)
    return manager.intern("bvsub", a.sort, (a, b))


def mk_bvmul(a: Term, b: Term) -> Term:
    """Bitvector multiplication (modular)."""
    w = _check_same_bv("bvmul", a, b)
    if a.is_const() and b.is_const():
        return mk_bv(a.payload * b.payload, w)
    for x, y in ((a, b), (b, a)):
        if x.is_const():
            if x.payload == 0:
                return mk_bv(0, w)
            if x.payload == 1:
                return y
            if x.payload & (x.payload - 1) == 0:
                # Strength-reduce multiplication by a power of two.
                return mk_bvshl(y, mk_bv(x.payload.bit_length() - 1, w))
    if a.tid > b.tid:
        a, b = b, a
    return manager.intern("bvmul", a.sort, (a, b))


def mk_bvudiv(a: Term, b: Term) -> Term:
    """Unsigned division; division by zero yields all-ones (SMT-LIB)."""
    w = _check_same_bv("bvudiv", a, b)
    if b.is_const():
        if b.payload == 0:
            # SMT-LIB: division by zero yields all-ones.
            return mk_bv((1 << w) - 1, w) if a.is_const() else manager.intern("bvudiv", a.sort, (a, b))
        if a.is_const():
            return mk_bv(a.payload // b.payload, w)
        if b.payload == 1:
            return a
        if b.payload & (b.payload - 1) == 0:
            return mk_bvlshr(a, mk_bv(b.payload.bit_length() - 1, w))
    return manager.intern("bvudiv", a.sort, (a, b))


def mk_bvurem(a: Term, b: Term) -> Term:
    """Unsigned remainder; remainder by zero yields ``a`` (SMT-LIB)."""
    w = _check_same_bv("bvurem", a, b)
    if b.is_const():
        if b.payload == 0:
            return a if a.is_const() else manager.intern("bvurem", a.sort, (a, b))
        if a.is_const():
            return mk_bv(a.payload % b.payload, w)
        if b.payload == 1:
            return mk_bv(0, w)
        if b.payload & (b.payload - 1) == 0:
            return mk_bvand(a, mk_bv(b.payload - 1, w))
    return manager.intern("bvurem", a.sort, (a, b))


def _sdiv_concrete(x: int, y: int, w: int) -> int:
    sx, sy = to_signed(x, w), to_signed(y, w)
    if sy == 0:
        return (1 << w) - 1 if sx >= 0 else 1
    q = abs(sx) // abs(sy)
    if (sx < 0) != (sy < 0):
        q = -q
    return to_unsigned(q, w)


def _srem_concrete(x: int, y: int, w: int) -> int:
    sx, sy = to_signed(x, w), to_signed(y, w)
    if sy == 0:
        return x
    r = abs(sx) % abs(sy)
    if sx < 0:
        r = -r
    return to_unsigned(r, w)


def mk_bvsdiv(a: Term, b: Term) -> Term:
    """Signed division, truncating (SMT-LIB semantics)."""
    w = _check_same_bv("bvsdiv", a, b)
    if a.is_const() and b.is_const():
        return mk_bv(_sdiv_concrete(a.payload, b.payload, w), w)
    return manager.intern("bvsdiv", a.sort, (a, b))


def mk_bvsrem(a: Term, b: Term) -> Term:
    """Signed remainder, sign follows the dividend (SMT-LIB)."""
    w = _check_same_bv("bvsrem", a, b)
    if a.is_const() and b.is_const():
        return mk_bv(_srem_concrete(a.payload, b.payload, w), w)
    return manager.intern("bvsrem", a.sort, (a, b))




def _bool_shaped(t: Term, depth: int = 3) -> bool:
    """An ite tree with constant leaves (a 0/1 flag or small select).

    Bounded depth keeps the distribution from exploding on data ites.
    """
    if t.is_const():
        return depth < 3  # a bare constant only counts as a sub-tree
    if t.op != "ite" or depth == 0:
        return False
    return _bool_shaped(t.args[1], depth - 1) and _bool_shaped(t.args[2], depth - 1)


def _distribute_flags(fn, a: Term, b: Term) -> Term | None:
    """Distribute a bitwise op over boolean-shaped ites.

    Lowered code computes flags as ``ite(c, 1, 0)`` values and combines
    them with bvand/bvor/bvxor; distributing re-exposes the underlying
    boolean structure so that e.g. the spec's ``c1 and c2`` and the
    implementation's ``(c1 ? 1 : 0) & (c2 ? 1 : 0) != 0`` intern to the
    same term.  Bounded: at most 4 constant leaves.
    """
    a_flag = not a.is_const() and _bool_shaped(a)
    b_flag = not b.is_const() and _bool_shaped(b)
    if a_flag and (b.is_const() or b_flag):
        return mk_ite(a.args[0], fn(a.args[1], b), fn(a.args[2], b))
    if b_flag and a.is_const():
        return mk_ite(b.args[0], fn(a, b.args[1]), fn(a, b.args[2]))
    return None


def mk_bvand(a: Term, b: Term) -> Term:
    """Bitwise and."""
    w = _check_same_bv("bvand", a, b)
    if a.is_const() and b.is_const():
        return mk_bv(a.payload & b.payload, w)
    ones = (1 << w) - 1
    for x, y in ((a, b), (b, a)):
        if x.is_const():
            if x.payload == 0:
                return mk_bv(0, w)
            if x.payload == ones:
                return y
    if a is b:
        return a
    dist = _distribute_flags(mk_bvand, a, b)
    if dist is not None:
        return dist
    if a.tid > b.tid:
        a, b = b, a
    return manager.intern("bvand", a.sort, (a, b))


def mk_bvor(a: Term, b: Term) -> Term:
    """Bitwise or."""
    w = _check_same_bv("bvor", a, b)
    if a.is_const() and b.is_const():
        return mk_bv(a.payload | b.payload, w)
    ones = (1 << w) - 1
    for x, y in ((a, b), (b, a)):
        if x.is_const():
            if x.payload == 0:
                return y
            if x.payload == ones:
                return mk_bv(ones, w)
    if a is b:
        return a
    dist = _distribute_flags(mk_bvor, a, b)
    if dist is not None:
        return dist
    if a.tid > b.tid:
        a, b = b, a
    return manager.intern("bvor", a.sort, (a, b))


def mk_bvxor(a: Term, b: Term) -> Term:
    """Bitwise exclusive-or."""
    w = _check_same_bv("bvxor", a, b)
    if a.is_const() and b.is_const():
        return mk_bv(a.payload ^ b.payload, w)
    for x, y in ((a, b), (b, a)):
        if x.is_const() and x.payload == 0:
            return y
    if a is b:
        return mk_bv(0, w)
    dist = _distribute_flags(mk_bvxor, a, b)
    if dist is not None:
        return dist
    if a.tid > b.tid:
        a, b = b, a
    return manager.intern("bvxor", a.sort, (a, b))


def mk_bvnot(a: Term) -> Term:
    """Bitwise complement."""
    if a.is_const():
        return mk_bv(~a.payload, a.width)
    if a.op == "bvnot":
        return a.args[0]
    return manager.intern("bvnot", a.sort, (a,))


def mk_bvneg(a: Term) -> Term:
    """Two's-complement negation."""
    if a.is_const():
        return mk_bv(-a.payload, a.width)
    return manager.intern("bvneg", a.sort, (a,))


def _shift_amount(b: Term, w: int) -> int | None:
    """Concrete shift amount, clamped to the SMT-LIB >=width semantics."""
    if b.is_const():
        return min(b.payload, w)
    return None


def mk_bvshl(a: Term, b: Term) -> Term:
    """Shift left; shifts >= width yield zero (SMT-LIB)."""
    w = _check_same_bv("bvshl", a, b)
    amt = _shift_amount(b, w)
    if amt is not None:
        if amt == 0:
            return a
        if amt >= w:
            return mk_bv(0, w)
        if a.is_const():
            return mk_bv(a.payload << amt, w)
    return manager.intern("bvshl", a.sort, (a, b))


def mk_bvlshr(a: Term, b: Term) -> Term:
    """Logical shift right; shifts >= width yield zero (SMT-LIB)."""
    w = _check_same_bv("bvlshr", a, b)
    amt = _shift_amount(b, w)
    if amt is not None:
        if amt == 0:
            return a
        if amt >= w:
            return mk_bv(0, w)
        if a.is_const():
            return mk_bv(a.payload >> amt, w)
    return manager.intern("bvlshr", a.sort, (a, b))


def mk_bvashr(a: Term, b: Term) -> Term:
    """Arithmetic shift right (sign-filling)."""
    w = _check_same_bv("bvashr", a, b)
    amt = _shift_amount(b, w)
    if amt is not None:
        if amt == 0:
            return a
        if a.is_const():
            return mk_bv(to_signed(a.payload, w) >> min(amt, w - 1), w)
        if amt >= w:
            amt = w - 1
            b = mk_bv(amt, w)
    return manager.intern("bvashr", a.sort, (a, b))


# ---------------------------------------------------------------------------
# Structural bitvector ops


def mk_concat(hi: Term, lo: Term) -> Term:
    """Concatenation: ``hi`` becomes the high-order bits."""
    if not (is_bv(hi.sort) and is_bv(lo.sort)):
        raise TypeError("concat expects bitvectors")
    w = hi.width + lo.width
    if hi.is_const() and lo.is_const():
        return mk_bv((hi.payload << lo.width) | lo.payload, w)
    return manager.intern("concat", bv_sort(w), (hi, lo))


def mk_extract(hi: int, lo: int, a: Term) -> Term:
    """Bit slice ``a[hi:lo]`` inclusive, yielding ``hi-lo+1`` bits."""
    if not is_bv(a.sort):
        raise TypeError("extract expects a bitvector")
    if not (0 <= lo <= hi < a.width):
        raise ValueError(f"bad extract range [{hi}:{lo}] on width {a.width}")
    w = hi - lo + 1
    if w == a.width:
        return a
    if a.is_const():
        return mk_bv(a.payload >> lo, w)
    if a.op == "extract":
        ihi, ilo = a.payload
        return mk_extract(ilo + hi, ilo + lo, a.args[0])
    if a.op == "concat":
        hterm, lterm = a.args
        if hi < lterm.width:
            return mk_extract(hi, lo, lterm)
        if lo >= lterm.width:
            return mk_extract(hi - lterm.width, lo - lterm.width, hterm)
    if a.op in ("zext", "sext"):
        inner = a.args[0]
        if hi < inner.width:
            return mk_extract(hi, lo, inner)
        if a.op == "zext" and lo >= inner.width:
            return mk_bv(0, w)
    if a.op == "ite":
        cond, t, e = a.args
        if t.is_const() or e.is_const():
            return mk_ite(cond, mk_extract(hi, lo, t), mk_extract(hi, lo, e))
    return manager.intern("extract", bv_sort(w), (a,), (hi, lo))


def mk_zext(a: Term, extra: int) -> Term:
    """Zero-extend by ``extra`` bits."""
    if extra < 0:
        raise ValueError("zext amount must be non-negative")
    if extra == 0:
        return a
    if a.is_const():
        return mk_bv(a.payload, a.width + extra)
    if a.op == "zext":
        return mk_zext(a.args[0], extra + a.width - a.args[0].width)
    return manager.intern("zext", bv_sort(a.width + extra), (a,))


def mk_sext(a: Term, extra: int) -> Term:
    """Sign-extend by ``extra`` bits."""
    if extra < 0:
        raise ValueError("sext amount must be non-negative")
    if extra == 0:
        return a
    if a.is_const():
        return mk_bv(to_signed(a.payload, a.width), a.width + extra)
    return manager.intern("sext", bv_sort(a.width + extra), (a,))


# ---------------------------------------------------------------------------
# Uninterpreted functions


def mk_apply(name: str, result_sort: Sort, args: Iterable[Term]) -> Term:
    """Application of an uninterpreted function (Ackermannized later)."""
    return manager.intern("apply", result_sort, tuple(args), name)


# ---------------------------------------------------------------------------
# Generic reconstruction (used by symbolic reflection)

_BINARY_CONSTRUCTORS = {}
_UNARY_CONSTRUCTORS = {}


def _register_constructors() -> None:
    _BINARY_CONSTRUCTORS.update(
        {
            "eq": mk_eq,
            "ult": mk_ult,
            "ule": mk_ule,
            "slt": mk_slt,
            "sle": mk_sle,
            "bvadd": mk_bvadd,
            "bvsub": mk_bvsub,
            "bvmul": mk_bvmul,
            "bvudiv": mk_bvudiv,
            "bvurem": mk_bvurem,
            "bvsdiv": mk_bvsdiv,
            "bvsrem": mk_bvsrem,
            "bvand": mk_bvand,
            "bvor": mk_bvor,
            "bvxor": mk_bvxor,
            "bvshl": mk_bvshl,
            "bvlshr": mk_bvlshr,
            "bvashr": mk_bvashr,
            "concat": mk_concat,
            "xor": mk_xor,
        }
    )
    _UNARY_CONSTRUCTORS.update({"bvnot": mk_bvnot, "bvneg": mk_bvneg, "not": mk_not})


_register_constructors()


def rebuild_with_args(term: Term, new_args: tuple[Term, ...]) -> Term:
    """Re-apply ``term``'s operator to replacement arguments.

    Goes through the folding constructors, so substituting a constant
    child triggers partial evaluation.  Used by symbolic reflection to
    distribute operators over ite branches (e.g. pc arithmetic)."""
    op = term.op
    if op in _BINARY_CONSTRUCTORS:
        return _BINARY_CONSTRUCTORS[op](new_args[0], new_args[1])
    if op in _UNARY_CONSTRUCTORS:
        return _UNARY_CONSTRUCTORS[op](new_args[0])
    if op == "ite":
        return mk_ite(new_args[0], new_args[1], new_args[2])
    if op == "and":
        return mk_and(*new_args)
    if op == "or":
        return mk_or(*new_args)
    if op == "extract":
        hi, lo = term.payload
        return mk_extract(hi, lo, new_args[0])
    if op == "zext":
        return mk_zext(new_args[0], term.width - new_args[0].width)
    if op == "sext":
        return mk_sext(new_args[0], term.width - new_args[0].width)
    if op == "apply":
        return mk_apply(term.payload, term.sort, new_args)
    raise ValueError(f"cannot rebuild op {op!r}")


# ---------------------------------------------------------------------------
# Serialization and canonical query digests
#
# The proof-obligation runner (repro.core.runner) ships queries to
# worker processes and memoizes solver verdicts on disk.  Both need a
# portable view of the interned DAG:
#
#   * ``serialize_terms``/``deserialize_terms`` give a JSON-able
#     post-order node list that round-trips through ``intern`` (so a
#     worker process rebuilds pointer-identical structure in its own
#     manager without re-running the folding constructors);
#   * ``canonicalize_query`` alpha-renames variables by first
#     occurrence and hashes the DAG, so two runs (or two harnesses)
#     that build the same query with different fresh-name counters
#     produce the same cache key.


def _sort_tag(sort: Sort):
    return "b" if sort is BOOL else sort.width


def _sort_from_tag(tag) -> Sort:
    return BOOL if tag == "b" else bv_sort(int(tag))


def serialize_terms(roots: Iterable[Term]) -> dict:
    """Flatten a set of root terms into a portable node list.

    The result is JSON/pickle friendly: ``nodes`` is a post-order list
    of ``[op, sort_tag, arg_indices, payload]`` entries and ``roots``
    indexes into it.  Payloads are restricted to what terms carry:
    ints, bools, strings, and (hi, lo) pairs for extract.
    """
    nodes: list[list] = []
    index: dict[int, int] = {}

    def walk(root: Term) -> int:
        # Iterative post-order: VC DAGs can be deeper than the
        # interpreter recursion limit.
        stack: list[tuple[Term, bool]] = [(root, False)]
        while stack:
            t, expanded = stack.pop()
            if t.tid in index:
                continue
            if expanded:
                args = [index[a.tid] for a in t.args]
                payload = list(t.payload) if isinstance(t.payload, tuple) else t.payload
                nodes.append([t.op, _sort_tag(t.sort), args, payload])
                index[t.tid] = len(nodes) - 1
            else:
                stack.append((t, True))
                for a in t.args:
                    stack.append((a, False))
        return index[root.tid]

    return {"nodes": nodes, "roots": [walk(r) for r in roots]}


def deserialize_terms(data: dict, mgr: TermManager | None = None) -> list[Term]:
    """Rebuild serialized terms in ``mgr`` (the global manager by default).

    Nodes are re-interned directly rather than re-run through the
    folding constructors: the source terms were already folded, and a
    byte-identical rebuild keeps obligation results reproducible across
    worker processes.
    """
    mgr = mgr or manager
    built: list[Term] = []
    for op, sort_tag, arg_idxs, payload in data["nodes"]:
        if isinstance(payload, list):
            payload = tuple(payload)
        args = tuple(built[i] for i in arg_idxs)
        built.append(mgr.intern(op, _sort_from_tag(sort_tag), args, payload))
    return [built[i] for i in data["roots"]]


# Operators whose argument order carries no meaning.  The folding
# constructors order their operands by interning id (tid), which is an
# artifact of construction order — two alpha-equivalent queries built
# at different times can disagree on it, so canonicalization re-sorts
# these children by a variable-blind structural key.
_COMMUTATIVE = frozenset(
    {"and", "or", "xor", "eq", "distinct", "bvadd", "bvmul", "bvand", "bvor", "bvxor"}
)


def canonicalize_query(roots: Iterable[Term]) -> tuple[str, dict[str, str]]:
    """Canonical digest of a query, plus the variable renaming used.

    Variables are alpha-renamed ``v0, v1, ...`` in canonical traversal
    order, so queries that differ only in fresh-name counters — e.g.
    the same verification condition rebuilt in a new process, where
    ``state.x!17`` became ``state.x!3`` — hash to the same key.
    Children of commutative operators are ordered by a variable-blind
    shape key first, making the digest independent of the tid ordering
    the constructors bake in.  Returns ``(hex_digest,
    {original_name: canonical_name})`` so cached models can be stored
    and replayed under canonical names.
    """
    return canonicalize_nodes(serialize_terms(roots))


def canonicalize_nodes(data: dict) -> tuple[str, dict[str, str]]:
    """:func:`canonicalize_query` over an already-serialized node list.

    Split out so anything holding a portable query payload — proof
    certificates bind their digest to one — can recompute the canonical
    digest without rebuilding terms.  The standalone certificate
    checker (``repro.smt.checkproof``) reimplements exactly this
    function over the same ``[op, sort_tag, arg_idxs, payload]`` node
    schema; the two must stay in lockstep.
    """
    nodes = data["nodes"]

    # Pass 1 (bottom-up): variable-blind shape key per node.  Children
    # of commutative ops are sorted by shape so the key is stable
    # across construction orders; ties fall back to stored order.
    shape: list[str] = []
    for op, sort_tag, arg_idxs, payload in nodes:
        child = [shape[j] for j in arg_idxs]
        if op in _COMMUTATIVE:
            child = sorted(child)
        tag = "VAR" if op == "var" else repr(payload)
        shape.append(hashlib.sha256(f"{op}|{sort_tag}|{tag}|{child}".encode()).hexdigest())

    def child_order(op: str, arg_idxs: list[int]) -> list[int]:
        if op in _COMMUTATIVE:
            return sorted(arg_idxs, key=lambda j: shape[j])
        return list(arg_idxs)

    # Pass 2: assign variable indices by first occurrence along a DFS
    # that visits children in canonical order.
    var_map: dict[str, str] = {}
    visited: set[int] = set()
    for r in data["roots"]:
        stack = [r]
        while stack:
            i = stack.pop()
            if i in visited:
                continue
            visited.add(i)
            op, _sort_tag, arg_idxs, payload = nodes[i]
            if op == "var":
                name = str(payload)
                if name not in var_map:
                    var_map[name] = f"v{len(var_map)}"
            # Reversed so the canonical-first child is visited first.
            for j in reversed(child_order(op, arg_idxs)):
                stack.append(j)

    # Pass 3 (bottom-up): final per-node digests with variables
    # replaced by their canonical indices.
    enc: list[str] = []
    for op, sort_tag, arg_idxs, payload in nodes:
        if op == "var":
            tag = var_map[str(payload)]
        else:
            tag = repr(payload)
        child = [enc[j] for j in child_order(op, arg_idxs)]
        enc.append(hashlib.sha256(f"{op}|{sort_tag}|{tag}|{child}".encode()).hexdigest())

    hasher = hashlib.sha256()
    for r in data["roots"]:
        hasher.update(enc[r].encode())
        hasher.update(b"\n")
    return hasher.hexdigest(), var_map


def query_digest(roots: Iterable[Term]) -> str:
    """Just the canonical hash of ``canonicalize_query``."""
    return canonicalize_query(roots)[0]
