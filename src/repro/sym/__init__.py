"""Symbolic evaluation layer (the Rosette substitute, Figure 1).

Provides symbolic values with Python operator overloading, guarded
unions and state merging, an assertion store with path conditions,
verify/solve queries with counterexamples, the symbolic profiler, and
symbolic reflection.
"""

from .context import Context, VC, assert_prop, bug_on, current, new_context, path_condition
from .merge import Union, merge, merge_states
from .profiler import SymProfiler, active_profiler, note_split, profile, region
from .reflect import (
    concrete_leaves,
    destruct_ite,
    destruct_linear,
    is_ite,
    ite_leaves,
    term_depth,
    term_size,
)
from .solverapi import ProofResult, VerificationError, check_batch, prove, solve, verify_vcs
from .value import (
    SymBV,
    SymBool,
    SymbolicBranchError,
    bv,
    bv_val,
    fresh_bool,
    fresh_bv,
    ite,
    named_bool,
    named_bv,
    sym_and,
    sym_eq,
    sym_false,
    sym_implies,
    sym_not,
    sym_or,
    sym_true,
)

__all__ = [name for name in dir() if not name.startswith("_")]
