"""Evaluation context: path conditions and the assertion store.

Rosette keeps a global assertion store populated during symbolic
evaluation; verification then asks whether any store entry can be
falsified.  Our context records verification conditions (VCs) of two
flavors:

  * assertions  -- properties that must hold on every path,
  * bug_on      -- undefined-behaviour conditions that must be *false*
                   under the current path condition (§3.3).

Contexts nest: ``with ctx.under(guard)`` scopes a path-condition
conjunct, which is how branch exploration communicates feasibility to
the VCs below it.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from ..smt import Term, mk_and, mk_bool, mk_implies, mk_not
from .value import SymBool, _coerce_bool

__all__ = ["VC", "Context", "current", "new_context", "assert_prop", "bug_on", "path_condition"]


@dataclass
class VC:
    """A verification condition collected during evaluation."""

    formula: Term  # must be valid (i.e. its negation unsat)
    message: str
    kind: str = "assert"  # "assert" | "bug-on"
    info: dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"VC({self.kind}: {self.message})"


class Context:
    """Collects path condition and verification conditions."""

    def __init__(self) -> None:
        self._path: list[Term] = []
        self.vcs: list[VC] = []

    # -- path condition ----------------------------------------------------

    @property
    def path(self) -> Term:
        return mk_and(*self._path) if self._path else mk_bool(True)

    @contextmanager
    def under(self, guard):
        """Scope a path-condition conjunct."""
        guard = _coerce_bool(guard)
        self._path.append(guard.term)
        try:
            yield
        finally:
            self._path.pop()

    def path_is_infeasible(self) -> bool:
        """Cheap syntactic feasibility check (False constant only)."""
        return self.path is mk_bool(False)

    # -- verification conditions ----------------------------------------------

    def assert_prop(self, cond, message: str = "assertion", **info) -> None:
        """Record that ``cond`` must hold under the current path."""
        cond = _coerce_bool(cond)
        formula = mk_implies(self.path, cond.term)
        if formula is mk_bool(True):
            return
        self.vcs.append(VC(formula, message, "assert", info))

    def bug_on(self, cond, message: str = "undefined behavior", **info) -> None:
        """Record that ``cond`` must be false under the current path (§3.3).

        This is Serval's ``bug-on``: interpreters call it for UB such
        as out-of-bounds program counters (Figure 4, lines 27-28).
        """
        cond = _coerce_bool(cond)
        formula = mk_implies(self.path, mk_not(cond.term))
        if formula is mk_bool(True):
            return
        self.vcs.append(VC(formula, message, "bug-on", info))

    def guard_bool(self, cond) -> SymBool:
        """``cond`` strengthened with the current path condition."""
        cond = _coerce_bool(cond)
        return SymBool(mk_and(self.path, cond.term))


# ---------------------------------------------------------------------------
# Context stack

_stack: list[Context] = [Context()]


def current() -> Context:
    """The innermost active evaluation context."""
    return _stack[-1]


@contextmanager
def new_context():
    """Run evaluation in a fresh context; yields it for VC inspection."""
    ctx = Context()
    _stack.append(ctx)
    try:
        yield ctx
    finally:
        _stack.pop()


def assert_prop(cond, message: str = "assertion", **info) -> None:
    """Record ``cond`` as a VC in the current context (Rosette's ``assert``)."""
    current().assert_prop(cond, message, **info)


def bug_on(cond, message: str = "undefined behavior", **info) -> None:
    """Record ``not cond`` as a VC: a bug reachable when ``cond`` holds (§4)."""
    current().bug_on(cond, message, **info)


def path_condition() -> Term:
    """The current path condition (conjunction of branch guards taken)."""
    return current().path
