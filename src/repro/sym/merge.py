"""State merging (Rosette's hybrid symbolic evaluation strategy, §3.2).

``merge(guard, a, b)`` combines two values into one guarded value:
bitvectors and booleans become ``ite`` terms; structures merge
field-wise; values that cannot merge symbolically become guarded
:class:`Union` values.  Merging at control-flow joins is what keeps
encodings polynomial in program size — and over-merging (e.g. of the
program counter) is exactly the bottleneck ``split_pc`` repairs.
"""

from __future__ import annotations

import copy
from typing import Any

from .value import SymBV, SymBool, sym_false

# Set by the profiler / repro.obs when active; counts merge operations.
_merge_hook = None


def set_merge_hook(hook) -> None:
    global _merge_hook
    _merge_hook = hook


def get_merge_hook():
    """The installed merge hook, so observers can chain rather than
    clobber each other (profiler inside an obs tracing block)."""
    return _merge_hook


def merge(guard: SymBool, a: Any, b: Any) -> Any:
    """Merge two values under ``guard`` (guard true selects ``a``)."""
    if _merge_hook is not None:
        _merge_hook(guard, a, b)
    if guard.is_concrete:
        return a if guard.as_bool() else b
    if a is b:
        return a
    if isinstance(a, SymBV):
        return a.__sym_merge__(guard, b)
    if isinstance(b, SymBV):
        return b.__sym_merge__(~guard, a)
    if isinstance(a, SymBool) or isinstance(a, bool):
        if isinstance(b, (SymBool, bool)):
            av = a if isinstance(a, SymBool) else (sym_false() if not a else ~sym_false())
            return av.__sym_merge__(guard, b)
    if isinstance(a, int) and isinstance(b, int):
        if a == b:
            return a
        raise TypeError(
            f"cannot merge distinct concrete ints {a} and {b}; wrap them in SymBV "
            "with an explicit width"
        )
    if hasattr(a, "__sym_merge__"):
        return a.__sym_merge__(guard, b)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)) and len(a) == len(b):
        merged = [merge(guard, x, y) for x, y in zip(a, b)]
        return type(a)(merged) if isinstance(a, tuple) else merged
    if isinstance(a, dict) and isinstance(b, dict) and a.keys() == b.keys():
        return {k: merge(guard, a[k], b[k]) for k in a}
    if a == b:
        return a
    return Union.of(guard, a, b)


class Union:
    """A guarded union: a list of (guard, value) alternatives.

    This is Rosette's symbolic union, used when values cannot merge
    into a single term (e.g. two different decoded instructions under
    a symbolic pc — the Figure 5 bottleneck).
    """

    __slots__ = ("alternatives",)

    def __init__(self, alternatives: list[tuple[SymBool, Any]]):
        self.alternatives = alternatives

    @classmethod
    def of(cls, guard: SymBool, a: Any, b: Any) -> "Union":
        alts: list[tuple[SymBool, Any]] = []
        for g, v in cls._explode(guard, a):
            alts.append((g, v))
        for g, v in cls._explode(~guard, b):
            alts.append((g, v))
        return cls(alts)

    @staticmethod
    def _explode(guard: SymBool, value: Any):
        if isinstance(value, Union):
            for g, v in value.alternatives:
                yield guard & g, v
        else:
            yield guard, value

    def __len__(self) -> int:
        return len(self.alternatives)

    def map(self, fn) -> Any:
        """Apply ``fn`` to each alternative and re-merge the results."""
        result = None
        first = True
        for g, v in reversed(self.alternatives):
            out = fn(v)
            if first:
                result = out
                first = False
            else:
                result = merge(g, out, result)
        return result

    def __repr__(self) -> str:
        inner = ", ".join(f"[{g.term!r} -> {v!r}]" for g, v in self.alternatives)
        return f"Union({inner})"


def merge_states(guard: SymBool, a: Any, b: Any) -> Any:
    """Field-wise merge of two machine-state objects of the same type.

    States must expose ``__dict__``-style or dataclass-style fields or
    implement ``__sym_merge__``; a deep copy of ``a`` receives merged
    fields (states are treated as mutable records, like the ``cpu``
    struct in Figure 4).
    """
    if hasattr(a, "__sym_merge__"):
        return a.__sym_merge__(guard, b)
    if type(a) is not type(b):
        raise TypeError(f"cannot merge states of types {type(a)} and {type(b)}")
    out = copy.copy(a)
    if hasattr(a, "__slots__"):
        names = a.__slots__
    else:
        names = list(vars(a).keys())
    for name in names:
        setattr(out, name, merge(guard, getattr(a, name), getattr(b, name)))
    return out
