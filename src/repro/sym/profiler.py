"""Symbolic profiling (Bornholt & Torlak, OOPSLA'18; paper §3.2).

Common profiling metrics (time, memory) cannot identify the root
causes of performance problems in symbolic code.  The symbolic
profiler instead tracks, per labeled region:

  * terms        -- symbolic values created,
  * merges       -- state-merge operations,
  * splits       -- path splits (forced by split-pc / branch forks),
  * union size   -- the largest guarded union observed.

and ranks regions by a score computed from these statistics.  In the
ToyRISC walkthrough this is what flags ``fetch``'s ``vector-ref``
exploding under a symbolic pc.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
import time

from ..smt import manager
from .merge import set_merge_hook

__all__ = ["RegionStats", "SymProfiler", "profile", "active_profiler"]


@dataclass
class RegionStats:
    name: str
    calls: int = 0
    terms: int = 0
    merges: int = 0
    splits: int = 0
    max_union: int = 0
    time_s: float = 0.0

    @property
    def score(self) -> float:
        """Bottleneck heuristic: splits and merges dominate term churn."""
        return self.terms + 20.0 * self.merges + 100.0 * self.splits + 50.0 * self.max_union


class SymProfiler:
    """Collects per-region statistics during symbolic evaluation."""

    def __init__(self) -> None:
        self.regions: dict[str, RegionStats] = {}
        self._active: list[tuple[str, float]] = []

    # -- region scoping --------------------------------------------------------

    @contextmanager
    def region(self, name: str):
        stats = self.regions.setdefault(name, RegionStats(name))
        stats.calls += 1
        self._active.append((name, time.perf_counter()))
        try:
            yield stats
        finally:
            _, start = self._active.pop()
            stats.time_s += time.perf_counter() - start

    def _each_active(self):
        for name, _ in self._active:
            yield self.regions[name]

    # -- event hooks ----------------------------------------------------------

    def on_new_term(self, term) -> None:
        for stats in self._each_active():
            stats.terms += 1

    def on_merge(self, guard, a, b) -> None:
        from .merge import Union

        size = 0
        if isinstance(a, Union):
            size = max(size, len(a))
        if isinstance(b, Union):
            size = max(size, len(b))
        for stats in self._each_active():
            stats.merges += 1
            stats.max_union = max(stats.max_union, size)

    def on_split(self, n: int = 1) -> None:
        for stats in self._each_active():
            stats.splits += n

    # -- reporting ----------------------------------------------------------------

    def ranking(self) -> list[RegionStats]:
        return sorted(self.regions.values(), key=lambda s: s.score, reverse=True)

    def report(self, top: int = 10) -> str:
        lines = [
            f"{'region':<28} {'calls':>7} {'terms':>9} {'merges':>8} "
            f"{'splits':>7} {'maxU':>5} {'time(s)':>8} {'score':>10}"
        ]
        for stats in self.ranking()[:top]:
            lines.append(
                f"{stats.name:<28} {stats.calls:>7} {stats.terms:>9} {stats.merges:>8} "
                f"{stats.splits:>7} {stats.max_union:>5} {stats.time_s:>8.3f} {stats.score:>10.0f}"
            )
        return "\n".join(lines)


_active: SymProfiler | None = None


def active_profiler() -> SymProfiler | None:
    """The profiler enabled by the innermost ``profile()`` block, if any."""
    return _active


@contextmanager
def profile():
    """Enable symbolic profiling for a ``with`` block; yields the profiler."""
    global _active
    previous = _active
    profiler = SymProfiler()
    _active = profiler
    old_term_hook = manager.on_new_term
    manager.on_new_term = profiler.on_new_term
    set_merge_hook(profiler.on_merge)
    try:
        yield profiler
    finally:
        _active = previous
        manager.on_new_term = old_term_hook
        set_merge_hook(None)


@contextmanager
def region(name: str):
    """Attribute enclosed work to ``name`` if a profiler is active."""
    if _active is None:
        yield None
    else:
        with _active.region(name) as stats:
            yield stats


def note_split(n: int = 1) -> None:
    """Charge ``n`` path splits to the active profiler region, if any."""
    if _active is not None:
        _active.on_split(n)
