"""Symbolic profiling (Bornholt & Torlak, OOPSLA'18; paper §3.2).

Common profiling metrics (time, memory) cannot identify the root
causes of performance problems in symbolic code.  The symbolic
profiler instead tracks, per labeled region:

  * terms        -- symbolic values created,
  * merges       -- state-merge operations,
  * splits       -- path splits (forced by split-pc / branch forks),
  * union size   -- the largest guarded union observed.

and ranks regions by a score computed from these statistics.  In the
ToyRISC walkthrough this is what flags ``fetch``'s ``vector-ref``
exploding under a symbolic pc.

Since the observability PR the profiler is unified with ``repro.obs``:
each region entry/exit also emits a ``sym``-category span (with the
region's per-call term/merge/split deltas as span args) into the
active tracing session, region time is reported both *inclusive* and
*exclusive* of nested regions, and worker processes ship their region
statistics back to the parent through the result envelope
(:meth:`SymProfiler.snapshot` / :meth:`SymProfiler.merge_from`), which
is what keeps :func:`active_profiler` meaningful when the actual
evaluation runs inside scheduler workers.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
import time

from .. import obs
from ..smt import manager
from .merge import get_merge_hook, set_merge_hook

__all__ = ["RegionStats", "SymProfiler", "profile", "active_profiler"]


@dataclass
class RegionStats:
    name: str
    calls: int = 0
    terms: int = 0
    merges: int = 0
    splits: int = 0
    max_union: int = 0
    time_s: float = 0.0
    # Time spent in this region *excluding* nested regions — the
    # inclusive time_s double-counts children toward parents, which
    # skews "where is the time actually going" rankings.
    excl_s: float = 0.0

    @property
    def score(self) -> float:
        """Bottleneck heuristic: splits and merges dominate term churn."""
        return self.terms + 20.0 * self.merges + 100.0 * self.splits + 50.0 * self.max_union

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "calls": self.calls,
            "terms": self.terms,
            "merges": self.merges,
            "splits": self.splits,
            "max_union": self.max_union,
            "time_s": self.time_s,
            "excl_s": self.excl_s,
        }


class SymProfiler:
    """Collects per-region statistics during symbolic evaluation."""

    def __init__(self) -> None:
        self.regions: dict[str, RegionStats] = {}
        # Active-region stack entries are mutable frames:
        # [name, start, last_resume, terms0, merges0, splits0].
        self._active: list[list] = []

    # -- region scoping --------------------------------------------------------

    @contextmanager
    def region(self, name: str):
        stats = self.regions.setdefault(name, RegionStats(name))
        stats.calls += 1
        span = obs.span(name, cat="sym")
        span_args = span.__enter__()
        now = time.perf_counter()
        if self._active:
            parent = self._active[-1]
            self.regions[parent[0]].excl_s += now - parent[2]
        frame = [name, now, now, stats.terms, stats.merges, stats.splits]
        self._active.append(frame)
        try:
            yield stats
        finally:
            end = time.perf_counter()
            self._active.pop()
            stats.time_s += end - frame[1]
            stats.excl_s += end - frame[2]
            if self._active:
                # Parent's exclusive clock resumes where the child ended.
                self._active[-1][2] = end
            if span_args is not None:
                span_args.update(
                    terms=stats.terms - frame[3],
                    merges=stats.merges - frame[4],
                    splits=stats.splits - frame[5],
                )
            span.__exit__(None, None, None)

    def _each_active(self):
        for frame in self._active:
            yield self.regions[frame[0]]

    # -- event hooks ----------------------------------------------------------

    def on_new_term(self, term) -> None:
        for stats in self._each_active():
            stats.terms += 1

    def on_merge(self, guard, a, b) -> None:
        from .merge import Union

        size = 0
        if isinstance(a, Union):
            size = max(size, len(a))
        if isinstance(b, Union):
            size = max(size, len(b))
        for stats in self._each_active():
            stats.merges += 1
            stats.max_union = max(stats.max_union, size)

    def on_split(self, n: int = 1) -> None:
        for stats in self._each_active():
            stats.splits += n

    # -- worker reassembly ----------------------------------------------------

    def snapshot(self) -> dict[str, dict]:
        """Serializable region statistics (the worker->parent envelope)."""
        return {name: stats.as_dict() for name, stats in self.regions.items()}

    def merge_from(self, regions: dict[str, dict]) -> None:
        """Fold a snapshot from another profiler (typically a scheduler
        worker's) into this one: counts and times add, max-union maxes."""
        for name, incoming in regions.items():
            stats = self.regions.setdefault(name, RegionStats(name))
            stats.calls += incoming.get("calls", 0)
            stats.terms += incoming.get("terms", 0)
            stats.merges += incoming.get("merges", 0)
            stats.splits += incoming.get("splits", 0)
            stats.max_union = max(stats.max_union, incoming.get("max_union", 0))
            stats.time_s += incoming.get("time_s", 0.0)
            stats.excl_s += incoming.get("excl_s", 0.0)

    # -- reporting ----------------------------------------------------------------

    def ranking(self) -> list[RegionStats]:
        return sorted(self.regions.values(), key=lambda s: s.score, reverse=True)

    def report(self, top: int = 10) -> str:
        lines = [
            f"{'region':<28} {'calls':>7} {'terms':>9} {'merges':>8} "
            f"{'splits':>7} {'maxU':>5} {'incl(s)':>8} {'excl(s)':>8} {'score':>10}"
        ]
        for stats in self.ranking()[:top]:
            lines.append(
                f"{stats.name:<28} {stats.calls:>7} {stats.terms:>9} {stats.merges:>8} "
                f"{stats.splits:>7} {stats.max_union:>5} {stats.time_s:>8.3f} "
                f"{stats.excl_s:>8.3f} {stats.score:>10.0f}"
            )
        return "\n".join(lines)


_active: SymProfiler | None = None


def active_profiler() -> SymProfiler | None:
    """The profiler enabled by the innermost ``profile()`` block, if any."""
    return _active


@contextmanager
def profile():
    """Enable symbolic profiling for a ``with`` block; yields the profiler.

    Hooks are *chained*, not replaced: a profiler inside an obs tracing
    session feeds both its regions and the session's ``sym.*``
    counters.
    """
    global _active
    previous = _active
    profiler = SymProfiler()
    _active = profiler
    old_term_hook = manager.on_new_term
    old_merge_hook = get_merge_hook()

    def term_hook(term):
        profiler.on_new_term(term)
        if old_term_hook is not None:
            old_term_hook(term)

    def merge_hook(guard, a, b):
        profiler.on_merge(guard, a, b)
        if old_merge_hook is not None:
            old_merge_hook(guard, a, b)

    manager.on_new_term = term_hook
    set_merge_hook(merge_hook)
    try:
        yield profiler
    finally:
        _active = previous
        manager.on_new_term = old_term_hook
        set_merge_hook(old_merge_hook)


@contextmanager
def region(name: str):
    """Attribute enclosed work to ``name`` if a profiler is active.

    With no profiler but an active obs tracing session, the region
    still emits its ``sym`` span, so traces of unprofiled runs keep
    their symbolic-evaluation timeline.
    """
    if _active is not None:
        with _active.region(name) as stats:
            yield stats
    elif obs.enabled():
        with obs.span(name, cat="sym"):
            yield None
    else:
        yield None


def note_split(n: int = 1) -> None:
    """Charge ``n`` path splits to the active profiler region, if any."""
    if _active is not None:
        _active.on_split(n)
    obs.count("sym.splits", n)
