"""Symbolic reflection: inspecting the structure of symbolic values.

Rosette's symbolic reflection (§2.3 of the Rosette paper; used in §4
of Serval) lets symbolic optimizations examine and rewrite the term
DAGs behind symbolic values.  The pattern helpers here are what
``split_pc``, ``split_cases``, and the memory-offset concretization
build on.
"""

from __future__ import annotations

from typing import Iterator

from ..smt import Term
from .value import SymBV

__all__ = [
    "ite_leaves",
    "concrete_leaves",
    "destruct_ite",
    "destruct_linear",
    "is_ite",
    "term_size",
    "term_depth",
]


def is_ite(value: SymBV | Term) -> bool:
    """True if the underlying term is an if-then-else node."""
    term = value.term if isinstance(value, SymBV) else value
    return term.op == "ite"


def destruct_ite(value: SymBV | Term):
    """Return (cond, then, else) terms of an ite, or None."""
    term = value.term if isinstance(value, SymBV) else value
    if term.op != "ite":
        return None
    return term.args[0], term.args[1], term.args[2]


def ite_leaves(value: SymBV | Term, limit: int = 4096) -> Iterator[tuple[list[Term], Term]]:
    """Iterate (path-guards, leaf-term) pairs of a nested ite tree.

    This is how ``split_pc`` recursively breaks an ite value (§4,
    "Symbolic program counters") to evaluate each branch with a
    concrete value.
    """
    term = value.term if isinstance(value, SymBV) else value
    stack: list[tuple[list[Term], Term]] = [([], term)]
    count = 0
    while stack:
        guards, t = stack.pop()
        if t.op == "ite":
            cond, then, els = t.args
            stack.append((guards + [cond], then))
            from ..smt import mk_not

            stack.append((guards + [mk_not(cond)], els))
        else:
            count += 1
            if count > limit:
                raise ValueError(f"ite tree has more than {limit} leaves")
            yield guards, t


class NotConcretizable(Exception):
    """Raised when a term cannot be split into concrete leaves."""


def split_concrete(value: SymBV | Term, limit: int = 4096) -> list[tuple[list[Term], int]]:
    """Split a term into (guards, concrete value) leaves — ``split-pc``.

    Beyond plain ite trees, this distributes operators over an ite
    child (e.g. ``ite(c, 4, 2) + 1`` becomes leaves 5 and 3): the
    constructors' partial evaluation collapses each branch.  Raises
    :class:`NotConcretizable` for opaque symbolic values — for a pc,
    that is the "jump to unchecked untrusted address" case of §4.
    """
    from ..smt import mk_not
    from ..smt.terms import rebuild_with_args

    term = value.term if isinstance(value, SymBV) else value
    out: list[tuple[list[Term], int]] = []

    def go(t: Term, guards: list[Term]) -> None:
        if len(out) > limit:
            raise NotConcretizable(f"more than {limit} pc leaves")
        if t.op == "bvconst":
            out.append((guards, t.payload))
            return
        if t.op == "ite":
            cond, then, els = t.args
            go(then, guards + [cond])
            go(els, guards + [mk_not(cond)])
            return
        # Distribute over a unique ite child (pc arithmetic like
        # ``ite(...) + 1`` or ``ite(...) & ~1``).
        ite_children = [i for i, a in enumerate(t.args) if a.op == "ite"]
        symbolic_children = [i for i, a in enumerate(t.args) if not a.is_const()]
        if len(ite_children) == 1 and symbolic_children == ite_children:
            i = ite_children[0]
            cond, then, els = t.args[i].args
            then_args = t.args[:i] + (then,) + t.args[i + 1 :]
            els_args = t.args[:i] + (els,) + t.args[i + 1 :]
            go(rebuild_with_args(t, then_args), guards + [cond])
            go(rebuild_with_args(t, els_args), guards + [mk_not(cond)])
            return
        raise NotConcretizable(f"opaque symbolic value: {t!r}")

    go(term, [])
    return out


def concrete_leaves(value: SymBV | Term) -> list[int] | None:
    """The set of concrete values an ite tree can take, or None if any
    leaf is non-constant (an opaque symbolic value, §4)."""
    leaves = []
    for _, leaf in ite_leaves(value):
        if leaf.op != "bvconst":
            return None
        leaves.append(leaf.payload)
    return leaves


def destruct_linear(term: Term, width: int) -> tuple[Term | None, int, int]:
    """Destructure ``a*scale + offset`` with concrete scale/offset.

    Returns (index_term, scale, offset); index_term is None when the
    whole term is constant.  Recognizes the shapes produced by array
    indexing in lowered code: ``bvadd(bvmul/bvshl(idx, c), c2)``.
    This is the matcher behind the symbolic-memory-address
    optimization: ``(C0 * pid + C1) mod C0  ->  C1`` (§4).
    """
    offset = 0
    if term.op == "bvadd" and term.args[1].op == "bvconst":
        offset = term.args[1].payload
        term = term.args[0]
    if term.op == "bvconst":
        return None, 0, (term.payload + offset) & ((1 << width) - 1)
    scale = 1
    if term.op == "bvmul" and term.args[1].op == "bvconst":
        scale = term.args[1].payload
        term = term.args[0]
    elif term.op == "bvmul" and term.args[0].op == "bvconst":
        scale = term.args[0].payload
        term = term.args[1]
    elif term.op == "bvshl" and term.args[1].op == "bvconst":
        scale = 1 << term.args[1].payload
        term = term.args[0]
    return term, scale, offset


def term_size(term: Term) -> int:
    """Number of distinct DAG nodes reachable from ``term``."""
    seen: set[int] = set()
    stack = [term]
    while stack:
        t = stack.pop()
        if t.tid in seen:
            continue
        seen.add(t.tid)
        stack.extend(t.args)
    return len(seen)


def term_depth(term: Term) -> int:
    """Height of the term DAG (a leaf has depth 1)."""
    depth: dict[int, int] = {}

    def walk(t: Term) -> int:
        if t.tid in depth:
            return depth[t.tid]
        d = 1 + max((walk(a) for a in t.args), default=0)
        depth[t.tid] = d
        return d

    return walk(term)
