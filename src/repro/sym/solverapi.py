"""Verification entry points: prove, refute, and counterexamples.

These mirror Rosette's ``verify``/``solve`` queries (§3.1): a property
is proved by showing its negation unsatisfiable; a failed proof comes
back with a counterexample model for debugging specifications and
implementations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..smt import Model, Solver, SolverTimeout, Term, mk_and, mk_bool, mk_not
from .context import VC, Context
from .value import SymBool, _coerce_bool

__all__ = ["ProofResult", "prove", "solve", "verify_vcs", "VerificationError"]


class VerificationError(Exception):
    """Raised by ``check_*`` helpers when a proof fails."""

    def __init__(self, message: str, result: "ProofResult"):
        super().__init__(message)
        self.result = result


@dataclass
class ProofResult:
    """Outcome of a proof attempt."""

    proved: bool
    counterexample: Model | None = None
    failed_vc: VC | None = None
    unknown: bool = False
    stats: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.proved

    def describe(self) -> str:
        if self.proved:
            return "proved"
        if self.unknown:
            return "unknown (budget exhausted)"
        what = self.failed_vc.message if self.failed_vc else "property"
        return f"failed: {what}; counterexample: {self.counterexample!r}"


def prove(
    prop,
    assumptions: list | tuple = (),
    max_conflicts: int | None = None,
    timeout_s: float | None = None,
) -> ProofResult:
    """Prove a single property under assumptions."""
    prop = _coerce_bool(prop)
    assume = mk_and(*(_coerce_bool(a).term for a in assumptions)) if assumptions else mk_bool(True)
    solver = Solver(max_conflicts=max_conflicts, timeout_s=timeout_s)
    solver.add(assume)
    result = solver.check(mk_not(prop.term))
    if result.is_unsat:
        return ProofResult(True, stats=solver.last_stats)
    if result.is_sat:
        return ProofResult(False, counterexample=result.model, stats=solver.last_stats)
    return ProofResult(False, unknown=True, stats=solver.last_stats)


def solve(*constraints, max_conflicts: int | None = None) -> Model | None:
    """Find a model of the conjunction, or None (Rosette's ``solve``)."""
    solver = Solver(max_conflicts=max_conflicts)
    solver.add(*(_coerce_bool(c).term for c in constraints))
    result = solver.check()
    return result.model if result.is_sat else None


def verify_vcs(
    ctx: Context,
    assumptions: list | tuple = (),
    max_conflicts: int | None = None,
    timeout_s: float | None = None,
    batch: bool = True,
) -> ProofResult:
    """Discharge every VC collected in a context.

    With ``batch=True`` all VCs are checked as one conjunction first
    (the common fast path: a single unsat query proves everything);
    on failure each VC is re-checked individually to identify the
    failing condition and produce its counterexample.
    """
    if not ctx.vcs:
        return ProofResult(True)
    assume_terms = [_coerce_bool(a).term for a in assumptions]
    start = time.perf_counter()

    def check_formulas(formulas: list[Term]) -> tuple[str, Model | None, dict]:
        solver = Solver(max_conflicts=max_conflicts, timeout_s=timeout_s)
        for t in assume_terms:
            solver.add(t)
        negated = mk_not(mk_and(*formulas))
        try:
            result = solver.check(negated)
        except SolverTimeout:
            return "unknown", None, solver.last_stats
        return result.status, result.model, solver.last_stats

    if batch:
        status, model, stats = check_formulas([vc.formula for vc in ctx.vcs])
        stats = dict(stats, total_time_s=time.perf_counter() - start, num_vcs=len(ctx.vcs))
        if status == "unsat":
            return ProofResult(True, stats=stats)
        if status == "unknown":
            return ProofResult(False, unknown=True, stats=stats)

    # Re-check VCs one by one to find the first failure.
    for vc in ctx.vcs:
        status, model, stats = check_formulas([vc.formula])
        if status == "unsat":
            continue
        stats = dict(stats, total_time_s=time.perf_counter() - start, num_vcs=len(ctx.vcs))
        if status == "unknown":
            return ProofResult(False, unknown=True, failed_vc=vc, stats=stats)
        return ProofResult(False, counterexample=model, failed_vc=vc, stats=stats)
    return ProofResult(True, stats={"total_time_s": time.perf_counter() - start, "num_vcs": len(ctx.vcs)})
