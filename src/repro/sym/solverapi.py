"""Verification entry points: prove, refute, and counterexamples.

These mirror Rosette's ``verify``/``solve`` queries (§3.1): a property
is proved by showing its negation unsatisfiable; a failed proof comes
back with a counterexample model for debugging specifications and
implementations.

``check_batch`` is the scaling entry point: it hands a set of
independent proof obligations to ``repro.core.runner``, which
dispatches them onto the process-wide work-stealing scheduler
(``repro.core.scheduler``) and memoizes verdicts in the shared
content-addressed store (``repro.core.store``).  ``verify_vcs`` routes
through it whenever the caller asks for parallelism or caching.
"""

from __future__ import annotations

from dataclasses import dataclass, field
import time

from ..smt import Model, Solver, SolverTimeout, Term, mk_and, mk_bool, mk_not
from .context import Context, VC
from .value import _coerce_bool

__all__ = ["ProofResult", "prove", "solve", "check_batch", "verify_vcs", "VerificationError"]


class VerificationError(Exception):
    """Raised by ``check_*`` helpers when a proof fails."""

    def __init__(self, message: str, result: "ProofResult"):
        super().__init__(message)
        self.result = result


@dataclass
class ProofResult:
    """Outcome of a proof attempt."""

    proved: bool
    counterexample: Model | None = None
    failed_vc: VC | None = None
    unknown: bool = False
    stats: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.proved

    def describe(self) -> str:
        if self.proved:
            return "proved"
        if self.unknown:
            return "unknown (budget exhausted)"
        what = self.failed_vc.message if self.failed_vc else "property"
        return f"failed: {what}; counterexample: {self.counterexample!r}"


def prove(
    prop,
    assumptions: list | tuple = (),
    max_conflicts: int | None = None,
    timeout_s: float | None = None,
) -> ProofResult:
    """Prove a single property under assumptions."""
    prop = _coerce_bool(prop)
    assume = mk_and(*(_coerce_bool(a).term for a in assumptions)) if assumptions else mk_bool(True)
    solver = Solver(max_conflicts=max_conflicts, timeout_s=timeout_s)
    solver.add(assume)
    result = solver.check(mk_not(prop.term))
    if result.is_unsat:
        return ProofResult(True, stats=solver.last_stats)
    if result.is_sat:
        return ProofResult(False, counterexample=result.model, stats=solver.last_stats)
    return ProofResult(False, unknown=True, stats=solver.last_stats)


def solve(*constraints, max_conflicts: int | None = None) -> Model | None:
    """Find a model of the conjunction, or None (Rosette's ``solve``)."""
    solver = Solver(max_conflicts=max_conflicts)
    solver.add(*(_coerce_bool(c).term for c in constraints))
    result = solver.check()
    return result.model if result.is_sat else None


def check_batch(
    obligations,
    jobs: int = 1,
    cache_dir: str | None = None,
    max_conflicts: int | None = None,
    timeout_s: float | None = None,
) -> list[ProofResult]:
    """Discharge a batch of independent proof obligations.

    ``obligations`` is a list of ``core.runner.Obligation`` objects, or
    ``(name, prop, assumptions)`` triples of symbolic booleans which are
    converted on the fly.  Returns one :class:`ProofResult` per
    obligation, in input order (the runner's reduction is deterministic
    regardless of worker scheduling).
    """
    from ..core.runner import Obligation, run_obligations

    converted = []
    for ob in obligations:
        if isinstance(ob, Obligation):
            converted.append(ob)
        else:
            name, prop, assume = ob
            converted.append(
                Obligation.from_terms(
                    name,
                    [_coerce_bool(prop).term],
                    [_coerce_bool(a).term for a in assume],
                )
            )
    results, stats = run_obligations(
        converted,
        jobs=jobs,
        cache_dir=cache_dir,
        max_conflicts=max_conflicts,
        timeout_s=timeout_s,
    )
    out = []
    for result in results:
        proof_stats = dict(result.stats, runner=stats.as_dict())
        if result.proved:
            out.append(ProofResult(True, stats=proof_stats))
        elif result.status == "failed":
            out.append(
                ProofResult(False, counterexample=Model(result.model_values or {}), stats=proof_stats)
            )
        else:
            out.append(ProofResult(False, unknown=True, stats=proof_stats))
    return out


def _verify_vcs_runner(
    ctx: Context,
    assume_terms: list[Term],
    jobs: int,
    cache_dir: str | None,
    max_conflicts: int | None,
    timeout_s: float | None,
) -> ProofResult:
    """Decomposed path: one obligation per VC, via the runner."""
    from ..core.runner import obligations_from_context, run_obligations

    start = time.perf_counter()
    obligations = obligations_from_context(ctx, assume_terms)
    results, run_stats = run_obligations(
        obligations,
        jobs=jobs,
        cache_dir=cache_dir,
        max_conflicts=max_conflicts,
        timeout_s=timeout_s,
    )
    stats = dict(
        run_stats.as_dict(),
        total_time_s=time.perf_counter() - start,
        num_vcs=len(ctx.vcs),
    )
    for result, vc in zip(results, ctx.vcs):
        if result.proved:
            continue
        if result.status == "unknown":
            return ProofResult(False, unknown=True, failed_vc=vc, stats=stats)
        return ProofResult(
            False, counterexample=Model(result.model_values or {}), failed_vc=vc, stats=stats
        )
    return ProofResult(True, stats=stats)


def verify_vcs(
    ctx: Context,
    assumptions: list | tuple = (),
    max_conflicts: int | None = None,
    timeout_s: float | None = None,
    batch: bool = True,
    jobs: int = 1,
    cache_dir: str | None = None,
) -> ProofResult:
    """Discharge every VC collected in a context.

    With ``batch=True`` all VCs are checked as one conjunction first
    (the common fast path: a single unsat query proves everything);
    on failure each VC is re-checked individually to identify the
    failing condition and produce its counterexample.

    With ``jobs > 1`` or a ``cache_dir``, VCs are instead discharged
    as independent obligations through ``repro.core.runner`` — in
    parallel across worker processes, with verdicts memoized in the
    persistent solver cache.  Results are deterministic: identical
    verdicts (and the same "first failing VC") as the sequential path.
    """
    if not ctx.vcs:
        return ProofResult(True)
    assume_terms = [_coerce_bool(a).term for a in assumptions]
    if jobs != 1 or cache_dir is not None:
        return _verify_vcs_runner(ctx, assume_terms, jobs, cache_dir, max_conflicts, timeout_s)
    start = time.perf_counter()

    def check_formulas(formulas: list[Term]) -> tuple[str, Model | None, dict]:
        solver = Solver(max_conflicts=max_conflicts, timeout_s=timeout_s)
        for t in assume_terms:
            solver.add(t)
        negated = mk_not(mk_and(*formulas))
        try:
            result = solver.check(negated)
        except SolverTimeout:
            return "unknown", None, solver.last_stats
        return result.status, result.model, solver.last_stats

    if batch:
        status, model, stats = check_formulas([vc.formula for vc in ctx.vcs])
        stats = dict(stats, total_time_s=time.perf_counter() - start, num_vcs=len(ctx.vcs))
        if status == "unsat":
            return ProofResult(True, stats=stats)
        if status == "unknown":
            return ProofResult(False, unknown=True, stats=stats)

    # Re-check VCs one by one to find the first failure.
    for vc in ctx.vcs:
        status, model, stats = check_formulas([vc.formula])
        if status == "unsat":
            continue
        stats = dict(stats, total_time_s=time.perf_counter() - start, num_vcs=len(ctx.vcs))
        if status == "unknown":
            return ProofResult(False, unknown=True, failed_vc=vc, stats=stats)
        return ProofResult(False, counterexample=model, failed_vc=vc, stats=stats)
    return ProofResult(True, stats={"total_time_s": time.perf_counter() - start, "num_vcs": len(ctx.vcs)})
