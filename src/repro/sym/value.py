"""Symbolic values: the Rosette-substitute surface API.

``SymBV`` and ``SymBool`` wrap SMT terms with Python operator
overloading, so interpreters read like ordinary emulators (Figure 4)
and are "lifted" simply by being run on symbolic inputs.  Attempting
to branch on a symbolic boolean raises :class:`SymbolicBranchError`
instead of silently concretizing — interpreters must use ``ite``/
``merge`` or the engine's path splitting, mirroring how Rosette
intercepts control flow.
"""

from __future__ import annotations

from ..smt import (
    BOOL,
    Term,
    bv_sort,
    manager,
    mk_and,
    mk_bool,
    mk_bv,
    mk_bvadd,
    mk_bvand,
    mk_bvashr,
    mk_bvlshr,
    mk_bvmul,
    mk_bvneg,
    mk_bvnot,
    mk_bvor,
    mk_bvsdiv,
    mk_bvshl,
    mk_bvsrem,
    mk_bvsub,
    mk_bvudiv,
    mk_bvurem,
    mk_bvxor,
    mk_concat,
    mk_eq,
    mk_extract,
    mk_ite,
    mk_not,
    mk_or,
    mk_sext,
    mk_sle,
    mk_slt,
    mk_ule,
    mk_ult,
    mk_var,
    mk_xor,
    mk_zext,
    to_signed,
)

__all__ = [
    "SymBool",
    "SymBV",
    "SymbolicBranchError",
    "bv",
    "bv_val",
    "fresh_bv",
    "fresh_bool",
    "sym_true",
    "sym_false",
    "ite",
    "sym_and",
    "sym_or",
    "sym_not",
    "sym_implies",
    "sym_eq",
]


class SymbolicBranchError(Exception):
    """Raised when Python control flow branches on a symbolic value.

    This is the same failure mode the paper's §3.2 profiling example
    warns about: an interpreter accidentally forcing a symbolic value
    through host-language control flow.  Use ``ite``, ``merge``, or a
    symbolic optimization like ``split_pc``/``split_cases``.
    """


class SymBool:
    """A symbolic boolean value."""

    __slots__ = ("term",)

    def __init__(self, term: Term):
        if term.sort is not BOOL:
            raise TypeError(f"SymBool needs a boolean term, got {term.sort!r}")
        self.term = term

    # -- concreteness ---------------------------------------------------------

    @property
    def is_concrete(self) -> bool:
        return self.term.op == "boolconst"

    def as_bool(self) -> bool:
        if not self.is_concrete:
            raise SymbolicBranchError(f"symbolic boolean has no concrete value: {self.term!r}")
        return self.term.payload

    def __bool__(self) -> bool:
        if self.is_concrete:
            return self.term.payload
        raise SymbolicBranchError(
            "cannot branch on a symbolic boolean; use ite()/merge() or a "
            f"symbolic optimization (term: {self.term!r})"
        )

    # -- connectives ---------------------------------------------------------

    def __and__(self, other) -> "SymBool":
        return SymBool(mk_and(self.term, _coerce_bool(other).term))

    __rand__ = __and__

    def __or__(self, other) -> "SymBool":
        return SymBool(mk_or(self.term, _coerce_bool(other).term))

    __ror__ = __or__

    def __xor__(self, other) -> "SymBool":
        return SymBool(mk_xor(self.term, _coerce_bool(other).term))

    __rxor__ = __xor__

    def __invert__(self) -> "SymBool":
        return SymBool(mk_not(self.term))

    def implies(self, other) -> "SymBool":
        return ~self | _coerce_bool(other)

    def __eq__(self, other) -> "SymBool":  # type: ignore[override]
        return SymBool(mk_eq(self.term, _coerce_bool(other).term))

    def __ne__(self, other) -> "SymBool":  # type: ignore[override]
        return ~(self == other)

    def __hash__(self):
        return hash(self.term)

    def __repr__(self) -> str:
        return f"SymBool({self.term!r})"

    def __sym_merge__(self, guard: "SymBool", other) -> "SymBool":
        return SymBool(mk_ite(guard.term, self.term, _coerce_bool(other).term))


def _coerce_bool(value) -> SymBool:
    if isinstance(value, SymBool):
        return value
    if isinstance(value, bool):
        return SymBool(mk_bool(value))
    if isinstance(value, Term) and value.sort is BOOL:
        return SymBool(value)
    raise TypeError(f"cannot coerce {value!r} to SymBool")


class SymBV:
    """A symbolic fixed-width bitvector.

    Arithmetic follows machine semantics (wraparound); comparison
    operators are unsigned by default with ``scmp`` variants for
    signed comparisons, matching the instruction sets we interpret.
    """

    __slots__ = ("term",)

    def __init__(self, term: Term):
        self.term = term

    @property
    def width(self) -> int:
        return self.term.width

    # -- concreteness ---------------------------------------------------------

    @property
    def is_concrete(self) -> bool:
        return self.term.op == "bvconst"

    def as_int(self) -> int:
        if not self.is_concrete:
            raise SymbolicBranchError(f"symbolic bitvector has no concrete value: {self.term!r}")
        return self.term.payload

    def as_signed_int(self) -> int:
        return to_signed(self.as_int(), self.width)

    def __bool__(self) -> bool:
        raise SymbolicBranchError(
            "cannot use a bitvector as a branch condition; compare explicitly "
            f"(term: {self.term!r})"
        )

    def __index__(self) -> int:
        return self.as_int()

    # -- arithmetic -------------------------------------------------------------

    def _bin(self, other, mk) -> "SymBV":
        return SymBV(mk(self.term, self._coerce(other).term))

    def _rbin(self, other, mk) -> "SymBV":
        return SymBV(mk(self._coerce(other).term, self.term))

    def _coerce(self, other) -> "SymBV":
        return bv(other, self.width)

    def __add__(self, other):
        return self._bin(other, mk_bvadd)

    __radd__ = __add__

    def __sub__(self, other):
        return self._bin(other, mk_bvsub)

    def __rsub__(self, other):
        return self._rbin(other, mk_bvsub)

    def __mul__(self, other):
        return self._bin(other, mk_bvmul)

    __rmul__ = __mul__

    def __and__(self, other):
        return self._bin(other, mk_bvand)

    __rand__ = __and__

    def __or__(self, other):
        return self._bin(other, mk_bvor)

    __ror__ = __or__

    def __xor__(self, other):
        return self._bin(other, mk_bvxor)

    __rxor__ = __xor__

    def __lshift__(self, other):
        return self._bin(other, mk_bvshl)

    def __rshift__(self, other):
        """Logical right shift (use :meth:`ashr` for arithmetic)."""
        return self._bin(other, mk_bvlshr)

    def __invert__(self):
        return SymBV(mk_bvnot(self.term))

    def __neg__(self):
        return SymBV(mk_bvneg(self.term))

    def ashr(self, other):
        return self._bin(other, mk_bvashr)

    def udiv(self, other):
        return self._bin(other, mk_bvudiv)

    def urem(self, other):
        return self._bin(other, mk_bvurem)

    def sdiv(self, other):
        return self._bin(other, mk_bvsdiv)

    def srem(self, other):
        return self._bin(other, mk_bvsrem)

    # -- comparisons (unsigned by default) ----------------------------------------

    def __eq__(self, other) -> SymBool:  # type: ignore[override]
        return SymBool(mk_eq(self.term, self._coerce(other).term))

    def __ne__(self, other) -> SymBool:  # type: ignore[override]
        return SymBool(mk_not(mk_eq(self.term, self._coerce(other).term)))

    def __lt__(self, other) -> SymBool:
        return SymBool(mk_ult(self.term, self._coerce(other).term))

    def __le__(self, other) -> SymBool:
        return SymBool(mk_ule(self.term, self._coerce(other).term))

    def __gt__(self, other) -> SymBool:
        return SymBool(mk_ult(self._coerce(other).term, self.term))

    def __ge__(self, other) -> SymBool:
        return SymBool(mk_ule(self._coerce(other).term, self.term))

    def slt(self, other) -> SymBool:
        return SymBool(mk_slt(self.term, self._coerce(other).term))

    def sle(self, other) -> SymBool:
        return SymBool(mk_sle(self.term, self._coerce(other).term))

    def sgt(self, other) -> SymBool:
        return SymBool(mk_slt(self._coerce(other).term, self.term))

    def sge(self, other) -> SymBool:
        return SymBool(mk_sle(self._coerce(other).term, self.term))

    def __hash__(self):
        return hash(self.term)

    # -- width changes -----------------------------------------------------------

    def zext(self, new_width: int) -> "SymBV":
        return SymBV(mk_zext(self.term, new_width - self.width))

    def sext(self, new_width: int) -> "SymBV":
        return SymBV(mk_sext(self.term, new_width - self.width))

    def trunc(self, new_width: int) -> "SymBV":
        return SymBV(mk_extract(new_width - 1, 0, self.term))

    def extract(self, hi: int, lo: int) -> "SymBV":
        return SymBV(mk_extract(hi, lo, self.term))

    def concat(self, low: "SymBV") -> "SymBV":
        return SymBV(mk_concat(self.term, low.term))

    def resize(self, new_width: int, signed: bool = False) -> "SymBV":
        if new_width == self.width:
            return self
        if new_width < self.width:
            return self.trunc(new_width)
        return self.sext(new_width) if signed else self.zext(new_width)

    def __repr__(self) -> str:
        if self.is_concrete:
            return f"bv{self.width}({self.as_int():#x})"
        return f"SymBV({self.term!r})"

    def __sym_merge__(self, guard: SymBool, other) -> "SymBV":
        other = self._coerce(other)
        return SymBV(mk_ite(guard.term, self.term, other.term))


# ---------------------------------------------------------------------------
# Constructors


def bv(value, width: int) -> SymBV:
    """Coerce an int/Term/SymBV to a SymBV of the given width."""
    if isinstance(value, SymBV):
        if value.width != width:
            raise TypeError(f"width mismatch: have {value.width}, want {width}")
        return value
    if isinstance(value, int):
        return SymBV(mk_bv(value, width))
    if isinstance(value, Term):
        if value.width != width:
            raise TypeError(f"width mismatch: have {value.width}, want {width}")
        return SymBV(value)
    raise TypeError(f"cannot coerce {value!r} to SymBV")


def bv_val(value: int, width: int) -> SymBV:
    """A concrete bitvector value of the given width."""
    return SymBV(mk_bv(value, width))


def fresh_bv(name: str, width: int) -> SymBV:
    """A fresh symbolic bitvector (Rosette's ``define-symbolic``)."""
    return SymBV(mk_var(manager.fresh_name(name), bv_sort(width)))


def named_bv(name: str, width: int) -> SymBV:
    """A named symbolic bitvector; same name yields the same variable."""
    return SymBV(mk_var(name, bv_sort(width)))


def fresh_bool(name: str) -> SymBool:
    """A fresh symbolic boolean (the name is uniquified)."""
    return SymBool(mk_var(manager.fresh_name(name), BOOL))


def named_bool(name: str) -> SymBool:
    """A named symbolic boolean; same name yields the same variable."""
    return SymBool(mk_var(name, BOOL))


def sym_true() -> SymBool:
    """The concrete true boolean."""
    return SymBool(mk_bool(True))


def sym_false() -> SymBool:
    """The concrete false boolean."""
    return SymBool(mk_bool(False))


def ite(cond, then, els):
    """Symbolic if-then-else over SymBV/SymBool/int leaves."""
    cond = _coerce_bool(cond)
    if cond.is_concrete:
        return then if cond.as_bool() else els
    from .merge import merge

    return merge(cond, then, els)


def sym_and(*conds) -> SymBool:
    """Symbolic conjunction over booleans (coercing ints/bools)."""
    return SymBool(mk_and(*(_coerce_bool(c).term for c in conds)))


def sym_or(*conds) -> SymBool:
    """Symbolic disjunction over booleans (coercing ints/bools)."""
    return SymBool(mk_or(*(_coerce_bool(c).term for c in conds)))


def sym_not(cond) -> SymBool:
    """Symbolic negation of a boolean."""
    return ~_coerce_bool(cond)


def sym_implies(a, b) -> SymBool:
    """Symbolic implication ``a -> b``."""
    return _coerce_bool(a).implies(b)


def sym_eq(a, b) -> SymBool:
    """Structural symbolic equality over values, tuples, and lists."""
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        if len(a) != len(b):
            return sym_false()
        out = sym_true()
        for x, y in zip(a, b):
            out = out & sym_eq(x, y)
        return out
    if isinstance(a, SymBool) or isinstance(b, SymBool) or isinstance(a, bool) or isinstance(b, bool):
        ab, bb = _coerce_bool(a), _coerce_bool(b)
        return SymBool(mk_eq(ab.term, bb.term))
    if isinstance(a, SymBV):
        return a == b
    if isinstance(b, SymBV):
        return b == a
    if isinstance(a, int) and isinstance(b, int):
        return sym_true() if a == b else sym_false()
    raise TypeError(f"cannot compare {a!r} and {b!r} symbolically")
