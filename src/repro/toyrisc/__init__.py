"""ToyRISC: the paper's worked example (§3.2-§3.3, Figures 2-5)."""

from .interp import Insn, ToyCpu, ToyRISC, bnez, li, ret, sgtz, sign_program, sltz
from .spec import (
    abstract,
    make_state_type,
    prove_sign_refinement,
    rep_invariant,
    sign_refinement,
    spec_sign,
    step_consistency_holds,
)

__all__ = [name for name in dir() if not name.startswith("_")]
