"""The ToyRISC interpreter (paper §3.2, Figures 2-4).

Five instructions over a machine with a program counter and two
registers::

    ret            pc <- 0; halt
    bnez rs, imm   branch to imm if rs != 0
    sgtz rd, rs    rd <- 1 if rs > 0 else 0   (signed)
    sltz rd, rs    rd <- 1 if rs < 0 else 0   (signed)
    li   rd, imm   rd <- imm

Instructions are (opcode, rd, rs, imm) tuples, as in the paper, with
``None`` for don't-care fields.  Running the interpreter on concrete
state emulates; running it on symbolic state under the engine lifts
it into a verifier.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import Interpreter
from ..sym import SymBV, SymBool, Union, bug_on, bv_val, fresh_bv, ite, merge, region, sym_false

__all__ = ["Insn", "ToyCpu", "ToyRISC", "sign_program", "REG_NAMES"]

REG_NAMES = {"a0": 0, "a1": 1}


@dataclass(frozen=True)
class Insn:
    """A decoded ToyRISC instruction: (opcode, rd, rs, imm)."""

    op: str
    rd: int | None = None
    rs: int | None = None
    imm: int | None = None


def _reg(name_or_idx) -> int:
    if isinstance(name_or_idx, str):
        return REG_NAMES[name_or_idx]
    return name_or_idx


def ret() -> Insn:
    return Insn("ret")


def bnez(rs, imm: int) -> Insn:
    return Insn("bnez", rs=_reg(rs), imm=imm)


def sgtz(rd, rs) -> Insn:
    return Insn("sgtz", rd=_reg(rd), rs=_reg(rs))


def sltz(rd, rs) -> Insn:
    return Insn("sltz", rd=_reg(rd), rs=_reg(rs))


def li(rd, imm: int) -> Insn:
    return Insn("li", rd=_reg(rd), imm=imm)


class ToyCpu:
    """CPU state: pc and two registers (Figure 4's ``struct cpu``)."""

    __slots__ = ("pc", "regs", "halted")

    def __init__(self, pc: SymBV, regs: list[SymBV], halted: SymBool | None = None):
        self.pc = pc
        self.regs = regs
        self.halted = halted if halted is not None else sym_false()

    @classmethod
    def symbolic(cls, width: int = 32, pc: int = 0) -> "ToyCpu":
        """A fully symbolic register state at a concrete pc."""
        return cls(bv_val(pc, width), [fresh_bv("a0", width), fresh_bv("a1", width)])

    @property
    def width(self) -> int:
        return self.pc.width

    def reg(self, idx: int) -> SymBV:
        return self.regs[idx]

    def copy(self) -> "ToyCpu":
        return ToyCpu(self.pc, list(self.regs), self.halted)

    def __sym_merge__(self, guard: SymBool, other: "ToyCpu") -> "ToyCpu":
        return ToyCpu(
            merge(guard, self.pc, other.pc),
            [merge(guard, a, b) for a, b in zip(self.regs, other.regs)],
            merge(guard, self.halted, other.halted),
        )

    def __repr__(self) -> str:
        return f"ToyCpu(pc={self.pc!r}, a0={self.regs[0]!r}, a1={self.regs[1]!r})"


class ToyRISC(Interpreter):
    """The liftable ToyRISC interpreter.

    With the engine's ``split_pc`` on, ``fetch`` always sees a concrete
    pc.  With it off, ``fetch`` returns a guarded union over every
    instruction the symbolic pc may address — the Figure 5 blow-up.
    """

    def __init__(self, program: list[Insn]):
        self.program = program

    # -- engine protocol ----------------------------------------------------

    def pc_of(self, state: ToyCpu) -> SymBV:
        return state.pc

    def set_pc(self, state: ToyCpu, pc_val: int) -> None:
        state.pc = bv_val(pc_val, state.width)

    def is_halted(self, state: ToyCpu) -> bool:
        return state.halted.is_concrete and state.halted.as_bool()

    def copy_state(self, state: ToyCpu) -> ToyCpu:
        return state.copy()

    def merge_key(self, state: ToyCpu):
        return state.halted.is_concrete and state.halted.as_bool()

    def fetch(self, state: ToyCpu):
        with region("toyrisc.fetch"):
            pc = state.pc
            # The behavior is undefined if pc is out of bounds
            # (Figure 4, lines 26-28).
            bug_on(pc >= len(self.program), "pc out of bounds")
            if pc.is_concrete:
                return self.program[pc.as_int()]
            # Symbolic pc: a union over every feasible instruction.
            alts = [(pc == i, insn) for i, insn in enumerate(self.program)]
            return Union([(g, v) for g, v in alts])

    def execute(self, state: ToyCpu, insn) -> None:
        with region("toyrisc.execute"):
            if isinstance(insn, Union):
                merged = insn.map(lambda single: self._exec_copy(state, single))
                state.pc = merged.pc
                state.regs = merged.regs
                state.halted = merged.halted
                return
            self._exec_one(state, insn)

    def _exec_copy(self, state: ToyCpu, insn: Insn) -> ToyCpu:
        fresh = state.copy()
        self._exec_one(fresh, insn)
        return fresh

    def _exec_one(self, state: ToyCpu, insn: Insn) -> None:
        w = state.width
        was_halted = state.halted

        def set_pc(value):
            state.pc = ite(was_halted, state.pc, value)

        def set_reg(idx, value):
            state.regs[idx] = ite(was_halted, state.regs[idx], value)

        next_pc = state.pc + 1
        if insn.op == "ret":
            set_pc(bv_val(0, w))
            state.halted = ite(was_halted, was_halted, ~was_halted)  # halted := true
        elif insn.op == "bnez":
            taken = state.reg(insn.rs) != 0
            set_pc(ite(taken, bv_val(insn.imm, w), next_pc))
        elif insn.op == "sgtz":
            set_pc(next_pc)
            set_reg(insn.rd, ite(state.reg(insn.rs).sgt(0), bv_val(1, w), bv_val(0, w)))
        elif insn.op == "sltz":
            set_pc(next_pc)
            set_reg(insn.rd, ite(state.reg(insn.rs).slt(0), bv_val(1, w), bv_val(0, w)))
        elif insn.op == "li":
            set_pc(next_pc)
            set_reg(insn.rd, bv_val(insn.imm, w))
        else:
            raise ValueError(f"unknown opcode {insn.op!r}")


def sign_program() -> list[Insn]:
    """Figure 3: compute the sign of a0 into a0, using a1 as scratch."""
    return [
        sltz("a1", "a0"),  # 0: a1 <- (a0 < 0)
        bnez("a1", 4),     # 1: branch to 4 if a1 != 0
        sgtz("a0", "a0"),  # 2: a0 <- (a0 > 0)
        ret(),             # 3
        li("a0", -1),      # 4: a0 <- -1
        ret(),             # 5
    ]
