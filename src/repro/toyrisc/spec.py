"""Specification and proofs for the ToyRISC sign program (§3.3).

The three specification inputs from the paper: spec state, functional
specification, abstraction function, and representation invariant —
plus the step-consistency noninterference property over the spec.
"""

from __future__ import annotations

from ..core import EngineOptions, Refinement, run_interpreter, spec_struct
from ..sym import ProofResult, SymBool, bv_val, ite, sym_eq
from .interp import ToyCpu, ToyRISC, sign_program

__all__ = [
    "make_state_type",
    "spec_sign",
    "abstract",
    "rep_invariant",
    "sign_refinement",
    "prove_sign_refinement",
    "step_consistency_holds",
]

_state_cache: dict[int, type] = {}


def make_state_type(width: int = 32):
    """Specification state: ``(struct state (a0 a1))``."""
    if width not in _state_cache:
        _state_cache[width] = spec_struct(f"toystate{width}", a0=width, a1=width)
    return _state_cache[width]


def spec_sign(s):
    """Functional specification of the sign program (§3.3)."""
    cls = type(s)
    sign = ite(
        s.a0.sgt(0),
        bv_val(1, s.a0.width),
        ite(s.a0.slt(0), bv_val(-1, s.a0.width), bv_val(0, s.a0.width)),
    )
    scratch = ite(s.a0.slt(0), bv_val(1, s.a0.width), bv_val(0, s.a0.width))
    out = cls.__new__(cls)
    out.a0 = sign
    out.a1 = scratch
    return out


def abstract(c: ToyCpu):
    """AF: implementation cpu state -> specification state."""
    cls = make_state_type(c.width)
    out = cls.__new__(cls)
    out.a0 = c.reg(0)
    out.a1 = c.reg(1)
    return out


def rep_invariant(c: ToyCpu) -> SymBool:
    """RI: execution starts and ends at pc = 0."""
    return c.pc == 0


def sign_refinement(width: int = 32, options: EngineOptions | None = None) -> Refinement:
    """The refinement obligation for the sign program."""
    interp = ToyRISC(sign_program())
    opts = options or EngineOptions()

    def impl_step(state: ToyCpu) -> ToyCpu:
        return run_interpreter(interp, state, opts).merged()

    return Refinement(
        name=f"toyrisc.sign.w{width}",
        make_impl=lambda: ToyCpu.symbolic(width),
        impl_step=impl_step,
        spec_step=spec_sign,
        abstract=abstract,
        rep_invariant=rep_invariant,
    )


def prove_sign_refinement(width: int = 32, options: EngineOptions | None = None) -> ProofResult:
    return sign_refinement(width, options).prove()


def step_consistency_holds(width: int = 32) -> ProofResult:
    """Step consistency (§3.3): the result depends only on a0.

    Unwinding relation ~ filters out a1:
    ``s1 ~ s2  =>  spec-sign(s1) ~ spec-sign(s2)``.
    """
    from ..core import theorem

    cls = make_state_type(width)

    def related(s1, s2) -> SymBool:
        return sym_eq(s1.a0, s2.a0)

    def prop(s1, s2) -> SymBool:
        return related(s1, s2).implies(related(spec_sign(s1), spec_sign(s2)))

    return theorem("toyrisc.step-consistency", prop, cls, cls)
