"""The x86-32 verifier (§5): the BPF-JIT instruction subset."""

from .insn import REGS, X86Insn, mk, reg_index
from .interp import X86Interp, X86State, run_insns

__all__ = [name for name in dir() if not name.startswith("_")]
