"""x86-32 instruction subset (§5).

"The x86-32 verifier models general-purpose registers only and
implements a subset of instructions used by the Linux kernel's BPF
JIT for x86-32": register/immediate moves, the ALU ops with their
carry variants (add/adc, sub/sbb), shifts including the double-shift
pair shld/shrd the 64-bit shift helpers rely on, and conditional
jumps over CF/ZF/SF/OF.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["X86Insn", "REGS", "reg_index"]

REGS = ["eax", "ecx", "edx", "ebx", "esp", "ebp", "esi", "edi"]
_REG_INDEX = {name: i for i, name in enumerate(REGS)}


def reg_index(reg) -> int:
    if isinstance(reg, int):
        return reg
    return _REG_INDEX[reg]


@dataclass(frozen=True)
class X86Insn:
    """One decoded instruction.

    ``mnemonic`` selects semantics; operands are register indices,
    immediates, or (for memory forms) an (base_reg, displacement)
    pair encoded as ``mem``.
    """

    mnemonic: str
    dst: int | None = None
    src: int | None = None
    imm: int | None = None
    mem: tuple[int, int] | None = None  # (base register, displacement)
    target: int | None = None  # branch target (instruction index)

    def __repr__(self) -> str:
        parts = [self.mnemonic]
        ops = []
        if self.dst is not None:
            ops.append(REGS[self.dst])
        if self.mem is not None:
            base, disp = self.mem
            ops.append(f"[{REGS[base]}{disp:+#x}]")
        if self.src is not None:
            ops.append(REGS[self.src])
        if self.imm is not None:
            ops.append(f"{self.imm:#x}")
        if self.target is not None:
            ops.append(f"-> {self.target}")
        return f"{parts[0]} " + ", ".join(ops)


def mk(mnemonic: str, **kw) -> X86Insn:
    if "dst" in kw and kw["dst"] is not None:
        kw["dst"] = reg_index(kw["dst"])
    if "src" in kw and kw["src"] is not None:
        kw["src"] = reg_index(kw["src"])
    if "mem" in kw and kw["mem"] is not None:
        base, disp = kw["mem"]
        kw["mem"] = (reg_index(base), disp)
    return X86Insn(mnemonic, **kw)
