"""x86-32 interpreter (the BPF-JIT subset), liftable by the engine.

State: the eight 32-bit GPRs, the four arithmetic flags, and a small
stack (the x86-32 BPF JIT keeps most BPF registers in stack slots off
EBP).  Control flow uses instruction indices as the pc.
"""

from __future__ import annotations

from ..core.engine import Interpreter
from ..sym import SymBV, SymBool, bv_val, fresh_bv, ite, merge, sym_false
from .insn import X86Insn

__all__ = ["X86State", "X86Interp", "run_insns"]

STACK_SLOTS = 32


class X86State:
    """GPRs + flags + EBP-relative stack slots."""

    __slots__ = ("pc", "regs", "cf", "zf", "sf", "of", "stack", "exited")

    def __init__(self, pc, regs, cf, zf, sf, of, stack):
        self.pc = pc
        self.regs = regs
        self.cf = cf
        self.zf = zf
        self.sf = sf
        self.of = of
        self.stack = stack  # list of 32-bit slots, index = disp//4
        self.exited = False

    @classmethod
    def symbolic(cls, prefix: str = "x86") -> "X86State":
        return cls(
            bv_val(0, 32),
            [fresh_bv(f"{prefix}.{i}", 32) for i in range(8)],
            sym_false(),
            sym_false(),
            sym_false(),
            sym_false(),
            [fresh_bv(f"{prefix}.stk{i}", 32) for i in range(STACK_SLOTS)],
        )

    def copy(self) -> "X86State":
        out = X86State(self.pc, list(self.regs), self.cf, self.zf, self.sf, self.of, list(self.stack))
        out.exited = self.exited
        return out

    def __sym_merge__(self, guard: SymBool, other: "X86State") -> "X86State":
        out = X86State(
            merge(guard, self.pc, other.pc),
            [merge(guard, a, b) for a, b in zip(self.regs, other.regs)],
            merge(guard, self.cf, other.cf),
            merge(guard, self.zf, other.zf),
            merge(guard, self.sf, other.sf),
            merge(guard, self.of, other.of),
            [merge(guard, a, b) for a, b in zip(self.stack, other.stack)],
        )
        out.exited = self.exited
        return out

    def slot(self, disp: int) -> int:
        index, rem = divmod(disp, 4)
        if rem or not 0 <= index < STACK_SLOTS:
            raise ValueError(f"bad stack displacement {disp}")
        return index


class X86Interp(Interpreter):
    def __init__(self, program: list[X86Insn]):
        self.program = program

    def pc_of(self, state):
        return state.pc

    def set_pc(self, state, pc_val):
        state.pc = bv_val(pc_val, 32)

    def is_halted(self, state):
        return state.exited

    def copy_state(self, state):
        return state.copy()

    def merge_key(self, state):
        return state.exited

    def fetch(self, state):
        pc = state.pc.as_int()
        if pc >= len(self.program):
            state.exited = True
            return X86Insn("ret")
        return self.program[pc]

    # -- execution ----------------------------------------------------------

    def execute(self, state: X86State, insn: X86Insn) -> None:
        name = insn.mnemonic
        handler = getattr(self, f"_exec_{name}", None)
        if handler is None:
            raise NotImplementedError(f"x86 mnemonic {name!r}")
        handler(state, insn)

    def _next(self, state):
        state.pc = state.pc + 1

    def _read_src(self, state, insn) -> SymBV:
        if insn.src is not None:
            return state.regs[insn.src]
        if insn.imm is not None:
            return bv_val(insn.imm, 32)
        if insn.mem is not None:
            return state.stack[state.slot(insn.mem[1])]
        raise ValueError(f"no source operand in {insn!r}")

    def _set_flags_logic(self, state, result: SymBV) -> None:
        state.cf = sym_false()
        state.of = sym_false()
        state.zf = result == 0
        state.sf = result.slt(0)

    def _exec_ret(self, state, insn):
        state.exited = True

    def _exec_mov(self, state, insn):
        state.regs[insn.dst] = self._read_src(state, insn)
        self._next(state)

    def _exec_mov_to_mem(self, state, insn):
        value = state.regs[insn.src] if insn.src is not None else bv_val(insn.imm, 32)
        state.stack[state.slot(insn.mem[1])] = value
        self._next(state)

    def _exec_add(self, state, insn):
        a = state.regs[insn.dst]
        b = self._read_src(state, insn)
        wide = a.zext(33) + b.zext(33)
        result = wide.trunc(32)
        state.cf = wide.extract(32, 32) == 1
        state.zf = result == 0
        state.sf = result.slt(0)
        sa, sb = a.slt(0), b.slt(0)
        state.of = (sa == sb) & (result.slt(0) != sa)
        state.regs[insn.dst] = result
        self._next(state)

    def _exec_adc(self, state, insn):
        a = state.regs[insn.dst]
        b = self._read_src(state, insn)
        carry = ite(state.cf, bv_val(1, 33), bv_val(0, 33))
        wide = a.zext(33) + b.zext(33) + carry
        result = wide.trunc(32)
        state.cf = wide.extract(32, 32) == 1
        state.zf = result == 0
        state.sf = result.slt(0)
        state.regs[insn.dst] = result
        self._next(state)

    def _exec_sub(self, state, insn):
        a = state.regs[insn.dst]
        b = self._read_src(state, insn)
        result = a - b
        state.cf = a < b
        state.zf = result == 0
        state.sf = result.slt(0)
        sa, sb = a.slt(0), b.slt(0)
        state.of = (sa != sb) & (result.slt(0) != sa)
        state.regs[insn.dst] = result
        self._next(state)

    def _exec_sbb(self, state, insn):
        a = state.regs[insn.dst]
        b = self._read_src(state, insn)
        borrow = ite(state.cf, bv_val(1, 32), bv_val(0, 32))
        b_total = b.zext(33) + borrow.zext(33)
        result = a - b - borrow
        state.cf = a.zext(33) < b_total
        state.zf = result == 0
        state.sf = result.slt(0)
        state.regs[insn.dst] = result
        self._next(state)

    def _exec_and(self, state, insn):
        result = state.regs[insn.dst] & self._read_src(state, insn)
        self._set_flags_logic(state, result)
        state.regs[insn.dst] = result
        self._next(state)

    def _exec_or(self, state, insn):
        result = state.regs[insn.dst] | self._read_src(state, insn)
        self._set_flags_logic(state, result)
        state.regs[insn.dst] = result
        self._next(state)

    def _exec_xor(self, state, insn):
        result = state.regs[insn.dst] ^ self._read_src(state, insn)
        self._set_flags_logic(state, result)
        state.regs[insn.dst] = result
        self._next(state)

    def _exec_neg(self, state, insn):
        a = state.regs[insn.dst]
        state.cf = a != 0
        result = -a
        state.zf = result == 0
        state.sf = result.slt(0)
        state.regs[insn.dst] = result
        self._next(state)

    def _exec_not(self, state, insn):
        state.regs[insn.dst] = ~state.regs[insn.dst]
        self._next(state)

    def _exec_cmp(self, state, insn):
        a = state.regs[insn.dst]
        b = self._read_src(state, insn)
        result = a - b
        state.cf = a < b
        state.zf = result == 0
        state.sf = result.slt(0)
        sa, sb = a.slt(0), b.slt(0)
        state.of = (sa != sb) & (result.slt(0) != sa)
        self._next(state)

    def _shift_amount(self, state, insn) -> SymBV:
        if insn.imm is not None:
            return bv_val(insn.imm & 31, 32)
        # cl variant: x86 masks the count to 5 bits.
        return state.regs[1] & 31  # ecx

    def _exec_shl(self, state, insn):
        amt = self._shift_amount(state, insn)
        state.regs[insn.dst] = state.regs[insn.dst] << amt
        self._next(state)

    def _exec_shr(self, state, insn):
        amt = self._shift_amount(state, insn)
        state.regs[insn.dst] = state.regs[insn.dst] >> amt
        self._next(state)

    def _exec_sar(self, state, insn):
        amt = self._shift_amount(state, insn)
        state.regs[insn.dst] = state.regs[insn.dst].ashr(amt)
        self._next(state)

    def _exec_shld(self, state, insn):
        """shld dst, src: shift dst left, filling from src's top bits."""
        amt = self._shift_amount(state, insn)
        dst = state.regs[insn.dst]
        src = state.regs[insn.src]
        filled = ite(amt == 0, dst, (dst << amt) | (src >> (32 - amt)))
        state.regs[insn.dst] = filled
        self._next(state)

    def _exec_shrd(self, state, insn):
        """shrd dst, src: shift dst right, filling from src's low bits."""
        amt = self._shift_amount(state, insn)
        dst = state.regs[insn.dst]
        src = state.regs[insn.src]
        filled = ite(amt == 0, dst, (dst >> amt) | (src << (32 - amt)))
        state.regs[insn.dst] = filled
        self._next(state)

    # -- control flow ---------------------------------------------------------

    def _exec_jmp(self, state, insn):
        state.pc = bv_val(insn.target, 32)

    def _jcc(self, state, insn, cond: SymBool):
        state.pc = ite(cond, bv_val(insn.target, 32), state.pc + 1)

    def _exec_je(self, state, insn):
        self._jcc(state, insn, state.zf)

    def _exec_jne(self, state, insn):
        self._jcc(state, insn, ~state.zf)

    def _exec_jb(self, state, insn):
        self._jcc(state, insn, state.cf)

    def _exec_jae(self, state, insn):
        self._jcc(state, insn, ~state.cf)


def run_insns(program: list[X86Insn], state: X86State) -> X86State:
    """Run a straight-line-with-branches snippet to completion."""
    from ..core import EngineOptions, run_interpreter

    out = state.copy()
    return run_interpreter(X86Interp(program), out, EngineOptions(fuel=2000)).merged()
