"""Test suite for the Serval reproduction (a package so helpers can be
shared between modules; run with ``PYTHONPATH=src python -m pytest``)."""
