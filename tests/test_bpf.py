"""Tests for the BPF verifier: ALU semantics (incl. zero-extension
rules), jumps, and lifting."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bpf import BpfInterp, BpfState, alu, exit_, jmp, run_insn
from repro.core import EngineOptions, run_interpreter
from repro.sym import bv_val, new_context, prove, sym_implies

u64 = st.integers(min_value=0, max_value=2**64 - 1)


def concrete_state(**regs) -> BpfState:
    s = BpfState.symbolic("tb")
    for idx, val in regs.items():
        s.regs[int(idx[1:])] = bv_val(val, 64)
    return s


class TestAlu64:
    def test_add_wraps(self):
        s = concrete_state(r1=2**64 - 1, r2=2)
        t = run_insn(alu("add", 1, ("r", 2)), s)
        assert t.regs[1].as_int() == 1

    def test_imm_sign_extended(self):
        s = concrete_state(r1=0)
        t = run_insn(alu("add", 1, -5), s)
        assert t.regs[1].as_int() == 2**64 - 5

    def test_shift_masks_to_63(self):
        s = concrete_state(r1=1, r2=64 + 3)
        t = run_insn(alu("lsh", 1, ("r", 2)), s)
        assert t.regs[1].as_int() == 8

    def test_arsh(self):
        s = concrete_state(r1=1 << 63, r2=63)
        t = run_insn(alu("arsh", 1, ("r", 2)), s)
        assert t.regs[1].as_int() == 2**64 - 1

    def test_div_by_zero_yields_zero(self):
        s = concrete_state(r1=7, r2=0)
        t = run_insn(alu("div", 1, ("r", 2)), s)
        assert t.regs[1].as_int() == 0

    def test_mod_by_zero_keeps_dst(self):
        s = concrete_state(r1=7, r2=0)
        t = run_insn(alu("mod", 1, ("r", 2)), s)
        assert t.regs[1].as_int() == 7


class TestAlu32ZeroExtension:
    """The semantics the buggy JITs violated (§7)."""

    @given(a=u64, b=u64)
    @settings(max_examples=20, deadline=None)
    def test_alu32_results_zero_extended(self, a, b):
        for op in ("add", "sub", "xor", "or", "and", "mov"):
            s = concrete_state(r1=a, r2=b)
            t = run_insn(alu(op, 1, ("r", 2), alu64=False), s)
            assert t.regs[1].as_int() >> 32 == 0, op

    def test_add32_boundary(self):
        s = concrete_state(r1=0xFFFFFFFF, r2=1)
        t = run_insn(alu("add", 1, ("r", 2), alu64=False), s)
        assert t.regs[1].as_int() == 0  # wraps in 32 bits, zext

    def test_mov32_truncates_and_zero_extends(self):
        s = concrete_state(r1=0, r2=0xAAAABBBBCCCCDDDD)
        t = run_insn(alu("mov", 1, ("r", 2), alu64=False), s)
        assert t.regs[1].as_int() == 0xCCCCDDDD

    def test_arsh32_uses_bit31(self):
        s = concrete_state(r1=0x80000000, r2=31)
        t = run_insn(alu("arsh", 1, ("r", 2), alu64=False), s)
        assert t.regs[1].as_int() == 0xFFFFFFFF  # sign = bit31, zext

    def test_shift32_masks_to_31(self):
        s = concrete_state(r1=1, r2=33)
        t = run_insn(alu("lsh", 1, ("r", 2), alu64=False), s)
        assert t.regs[1].as_int() == 2

    def test_neg32(self):
        s = concrete_state(r1=1)
        t = run_insn(alu("neg", 1, 0, alu64=False), s)
        assert t.regs[1].as_int() == 0xFFFFFFFF


class TestJumps:
    def test_jeq_taken(self):
        s = concrete_state(r1=5, r2=5)
        t = run_insn(jmp("jeq", 1, ("r", 2), off=3), s)
        assert t.pc.as_int() == 4

    def test_jmp32_compares_low_words(self):
        s = concrete_state(r1=0x1_00000005, r2=0x2_00000005)
        t = run_insn(jmp("jeq", 1, ("r", 2), off=3, jmp32=True), s)
        assert t.pc.as_int() == 4  # low words equal
        t = run_insn(jmp("jeq", 1, ("r", 2), off=3, jmp32=False), s)
        assert t.pc.as_int() == 1  # full regs differ

    def test_signed_compare(self):
        s = concrete_state(r1=2**64 - 1, r2=1)  # -1 vs 1
        t = run_insn(jmp("jslt", 1, ("r", 2), off=2), s)
        assert t.pc.as_int() == 3

    def test_jset(self):
        s = concrete_state(r1=0b1010, r2=0b0010)
        t = run_insn(jmp("jset", 1, ("r", 2), off=1), s)
        assert t.pc.as_int() == 2


class TestLifting:
    def test_program_with_branch_verifies(self):
        prog = [
            jmp("jeq", 1, 0, off=1),  # if r1 == 0 skip
            alu("mov", 0, 1),         # r0 = 1
            exit_(),
        ]
        with new_context():
            s = BpfState.symbolic("tl")
            r1 = s.regs[1]
            final = run_interpreter(BpfInterp(prog), s, EngineOptions(fuel=100)).merged()
            assert prove(sym_implies(r1 != 0, final.regs[0] == 1)).proved
            assert prove(sym_implies(r1 == 0, final.regs[0] == s.regs[0])).proved
