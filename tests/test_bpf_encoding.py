"""Tests for the kernel's 8-byte eBPF instruction encoding."""

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.bpf import alu, exit_, jmp
from repro.bpf.encoding import (
    BpfDecodeError,
    decode,
    decode_program,
    decode_validated,
    encode,
    encode_program,
)

regs = st.integers(min_value=0, max_value=10)
imms = st.integers(min_value=-(2**31), max_value=2**31 - 1)
offs = st.integers(min_value=-(2**15), max_value=2**15 - 1)


class TestRoundTrip:
    @given(dst=regs, src=regs, imm=imms)
    @settings(max_examples=40, deadline=None)
    def test_alu(self, dst, src, imm):
        for op in ("add", "sub", "and", "or", "xor", "mov", "lsh", "rsh", "arsh"):
            for alu64 in (True, False):
                for insn in (alu(op, dst, ("r", src), alu64=alu64), alu(op, dst, imm, alu64=alu64)):
                    assert decode_validated(encode(insn)) == insn

    @given(dst=regs, src=regs, off=offs, imm=imms)
    @settings(max_examples=40, deadline=None)
    def test_jumps(self, dst, src, off, imm):
        for op in ("jeq", "jne", "jlt", "jge", "jsgt", "jset"):
            for jmp32 in (True, False):
                for insn in (
                    jmp(op, dst, ("r", src), off=off, jmp32=jmp32),
                    jmp(op, dst, imm, off=off, jmp32=jmp32),
                ):
                    assert decode_validated(encode(insn)) == insn

    def test_exit(self):
        assert decode_validated(encode(exit_())) == exit_()

    def test_program_roundtrip(self):
        prog = [alu("mov", 0, 1), alu("add", 0, ("r", 1)), exit_()]
        raw = encode_program(prog)
        assert len(raw) == 24
        assert decode_program(raw) == prog


class TestValidation:
    def test_wrong_length(self):
        with pytest.raises(BpfDecodeError):
            decode(b"\x00" * 7)
        with pytest.raises(BpfDecodeError):
            decode_program(b"\x00" * 12)

    def test_unknown_class(self):
        with pytest.raises(BpfDecodeError):
            decode(bytes([0x00, 0, 0, 0, 0, 0, 0, 0]))  # LD class unsupported

    def test_unknown_op(self):
        with pytest.raises(BpfDecodeError):
            decode(bytes([0xE7, 0, 0, 0, 0, 0, 0, 0]))  # bogus ALU64 op

    def test_decoded_program_drives_interpreter(self):
        """Raw bytes -> decode -> interpret: the loader path."""
        from repro.bpf import BpfInterp, BpfState
        from repro.core import EngineOptions, run_interpreter
        from repro.sym import new_context

        raw = encode_program([alu("mov", 0, 41), alu("add", 0, 1), exit_()])
        prog = decode_program(raw)
        with new_context():
            state = BpfState.symbolic("enc")
            final = run_interpreter(BpfInterp(prog), state, EngineOptions(fuel=10)).merged()
            assert final.regs[0].as_int() == 42
