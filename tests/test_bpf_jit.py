"""Tests for the BPF JIT checker (§7): fixed JITs verify; every
cataloged bug is found on its witness instruction."""

import pytest

from repro.bpf.insn import alu, jmp
from repro.bpf_jit import RV_BUGS, RvJit, X86Jit, X86_BUGS, check_rv_insn, check_x86_insn

# The full monitor/JIT suites take minutes; CI runs them in a
# separate job after the fast tier passes.
pytestmark = pytest.mark.slow


class TestFixedRvJit:
    @pytest.mark.parametrize("op", ["add", "sub", "and", "or", "xor", "mov", "neg"])
    @pytest.mark.parametrize("alu64", [True, False])
    def test_alu_reg(self, op, alu64):
        assert check_rv_insn(alu(op, 1, ("r", 2), alu64=alu64), RvJit()).ok

    @pytest.mark.parametrize("op", ["lsh", "rsh", "arsh"])
    @pytest.mark.parametrize("alu64", [True, False])
    def test_shift_reg(self, op, alu64):
        assert check_rv_insn(alu(op, 1, ("r", 2), alu64=alu64), RvJit()).ok

    @pytest.mark.parametrize("imm", [0, 1, 31])
    def test_shift32_imm(self, imm):
        for op in ("lsh", "rsh", "arsh"):
            assert check_rv_insn(alu(op, 1, imm, alu64=False), RvJit()).ok

    @pytest.mark.parametrize("imm", [0, 1, 31, 32, 63])
    def test_shift64_imm(self, imm):
        for op in ("lsh", "rsh", "arsh"):
            assert check_rv_insn(alu(op, 1, imm, alu64=True), RvJit()).ok

    @pytest.mark.parametrize("imm", [-1, -2048, 2047, 12345])
    def test_imm_operands(self, imm):
        assert check_rv_insn(alu("add", 1, imm, alu64=True), RvJit()).ok
        assert check_rv_insn(alu("mov", 1, imm, alu64=False), RvJit()).ok

    @pytest.mark.parametrize("op", ["jeq", "jlt", "jge"])
    def test_jmp32(self, op):
        assert check_rv_insn(jmp(op, 1, ("r", 2), off=3, jmp32=True), RvJit()).ok


class TestFixedX86Jit:
    @pytest.mark.parametrize("op", ["add", "sub", "and", "or", "xor", "mov", "neg"])
    def test_alu64_reg(self, op):
        assert check_x86_insn(alu(op, 1, ("r", 2), alu64=True), X86Jit()).ok

    @pytest.mark.parametrize("op", ["add", "sub", "and", "or", "xor", "mov"])
    def test_alu32_reg(self, op):
        assert check_x86_insn(alu(op, 1, ("r", 2), alu64=False), X86Jit()).ok

    @pytest.mark.parametrize("imm", [0, 1, 31, 32, 33, 63])
    @pytest.mark.parametrize("op", ["lsh", "rsh", "arsh"])
    def test_shift64_imm(self, op, imm):
        assert check_x86_insn(alu(op, 1, imm, alu64=True), X86Jit()).ok

    def test_mov32_imm(self):
        assert check_x86_insn(alu("mov", 1, 5, alu64=False), X86Jit()).ok
        assert check_x86_insn(alu("mov", 1, -1, alu64=False), X86Jit()).ok


class TestBugCatalog:
    """Each of the 15 cataloged bugs is observable on its witness (§7:
    9 RISC-V + 6 x86-32)."""

    @pytest.mark.parametrize("bug", RV_BUGS, ids=lambda b: b.id)
    def test_rv_bug_found(self, bug):
        result = check_rv_insn(bug.witness, RvJit(bugs={bug.id}))
        assert not result.ok, f"{bug.id} not detected"
        assert result.counterexample is not None

    @pytest.mark.parametrize("bug", X86_BUGS, ids=lambda b: b.id)
    def test_x86_bug_found(self, bug):
        result = check_x86_insn(bug.witness, X86Jit(bugs={bug.id}))
        assert not result.ok, f"{bug.id} not detected"
        assert result.counterexample is not None

    def test_catalog_size_matches_paper(self):
        assert len(RV_BUGS) == 9
        assert len(X86_BUGS) == 6

    def test_fixed_jits_pass_all_witnesses(self):
        for bug in RV_BUGS:
            assert check_rv_insn(bug.witness, RvJit()).ok, bug.id
        for bug in X86_BUGS:
            assert check_x86_insn(bug.witness, X86Jit()).ok, bug.id

    def test_counterexample_is_actionable(self):
        """Counterexamples seed regression tests (as the kernel patches
        did): the model gives concrete register values."""
        bug = RV_BUGS[0]
        result = check_rv_insn(bug.witness, RvJit(bugs={bug.id}))
        model = result.counterexample
        # The witness operates on r1/r2; the model binds their symbols.
        assert any("r1" in name or "r2" in name for name, _ in model.items())
