"""Tests for the mini-C compiler: differential execution across -O0/-O1/-O2."""

import pytest

from repro.cc import (
    Arg,
    Assign,
    BinOp,
    Call,
    Cmp,
    CompileError,
    Const,
    CsrRead,
    CsrWrite,
    Func,
    If,
    Program,
    Return,
    Var,
    While,
    compile_program,
)
from repro.core import run_interpreter
from repro.core.image import build_memory
from repro.riscv import Assembler, CpuState, RiscvInterp
from repro.sym import bv_val, new_context, prove, verify_vcs

XLEN = 32
STACK = ("stack", 0x9000, 256, ("array", 64, ("cell", 4)))


def run_func(func: Func, args: list[int], opt: int, data=(), symbolic_args=False):
    prog = Program(funcs=[func], data=list(data) + [STACK])
    asm = Assembler(base=0x1000, xlen=XLEN)
    asm.data_symbol(*STACK)
    asm.label("entry")
    asm.li("sp", 0x9000 + 256)
    asm.call(func.name)
    asm.mret()
    compile_program(prog, asm, opt)
    image = asm.assemble()
    with new_context() as ctx:
        cpu = CpuState.symbolic(XLEN, 0x1000, build_memory(image, addr_width=XLEN))
        arg_values = []
        for i, a in enumerate(args):
            if not symbolic_args:
                cpu.set_reg(10 + i, bv_val(a, XLEN))
            arg_values.append(cpu.reg(10 + i))
        final = run_interpreter(RiscvInterp(image, xlen=XLEN), cpu).merged()
        return final, arg_values, ctx


ABS = Func(
    "abs",
    1,
    (
        If(Cmp("<s", Arg(0), Const(0)), (Return(BinOp("-", Const(0), Arg(0))),)),
        Return(Arg(0)),
    ),
    locals=(),
)

SUM3 = Func(
    "sum3",
    3,
    (
        Assign("t", BinOp("+", Arg(0), Arg(1))),
        Return(BinOp("+", Var("t"), Arg(2))),
    ),
    locals=("t",),
)

LOOP = Func(
    "tri",
    1,
    (
        Assign("acc", Const(0)),
        Assign("i", Const(0)),
        While(
            Cmp("<u", Var("i"), Const(5)),
            (
                Assign("acc", BinOp("+", Var("acc"), Var("i"))),
                Assign("i", BinOp("+", Var("i"), Const(1))),
            ),
        ),
        Return(Var("acc")),
    ),
    locals=("acc", "i"),
)


@pytest.mark.parametrize("opt", [0, 1, 2])
class TestConcreteExecution:
    def test_abs(self, opt):
        final, _, _ = run_func(ABS, [(-7) & 0xFFFFFFFF], opt)
        assert final.reg(10).as_int() == 7
        final, _, _ = run_func(ABS, [9], opt)
        assert final.reg(10).as_int() == 9

    def test_sum3(self, opt):
        final, _, _ = run_func(SUM3, [1, 2, 3], opt)
        assert final.reg(10).as_int() == 6

    def test_loop(self, opt):
        final, _, _ = run_func(LOOP, [0], opt)
        assert final.reg(10).as_int() == 10

    def test_csr_access(self, opt):
        f = Func(
            "swapcsr",
            1,
            (CsrWrite("mscratch", Arg(0)), Return(CsrRead("mscratch"))),
            locals=(),
        )
        final, _, _ = run_func(f, [0xABCD], opt)
        assert final.reg(10).as_int() == 0xABCD


@pytest.mark.parametrize("opt", [0, 1, 2])
def test_symbolic_equivalence_to_spec(opt):
    """abs() compiled at any level refines its mathematical spec."""
    final, args, ctx = run_func(ABS, [0], opt, symbolic_args=True)
    x = args[0]
    from repro.sym import ite

    spec = ite(x.slt(0), -x, x)
    assert prove(final.reg(10) == spec).proved
    assert verify_vcs(ctx).proved


def test_opt_levels_reduce_code_size():
    sizes = {}
    for opt in (0, 1, 2):
        prog = Program(funcs=[SUM3, ABS], data=[STACK])
        asm = Assembler(base=0x1000, xlen=XLEN)
        compile_program(prog, asm, opt)
        sizes[opt] = len(asm.assemble().words)
    assert sizes[0] > sizes[1] >= sizes[2]


def test_constant_folding_at_o1():
    f = Func("k", 0, (Return(BinOp("+", BinOp("*", Const(6), Const(7)), Const(0))),), locals=())
    for opt in (1, 2):
        final, _, _ = run_func(f, [], opt)
        assert final.reg(10).as_int() == 42


class TestCompilerErrors:
    def test_too_many_locals_at_o1(self):
        f = Func("big", 0, (Return(Const(0)),), locals=tuple(f"l{i}" for i in range(20)))
        asm = Assembler(base=0x1000, xlen=XLEN)
        with pytest.raises(CompileError):
            compile_program(Program(funcs=[f]), asm, 1)

    def test_unknown_local(self):
        f = Func("bad", 0, (Assign("nope", Const(1)), Return(Const(0))), locals=())
        asm = Assembler(base=0x1000, xlen=XLEN)
        with pytest.raises(CompileError):
            compile_program(Program(funcs=[f]), asm, 1)

    def test_bad_opt_level(self):
        asm = Assembler(base=0x1000, xlen=XLEN)
        with pytest.raises(CompileError):
            compile_program(Program(funcs=[]), asm, 3)


def test_function_calls_preserve_callee_saved():
    callee = Func("double", 1, (Return(BinOp("+", Arg(0), Arg(0))),), locals=())
    caller = Func(
        "caller",
        1,
        (
            Assign("saved", Arg(0)),
            Assign("r", Call("double", (Arg(0),))),
            Return(BinOp("+", Var("r"), Var("saved"))),
        ),
        locals=("saved", "r"),
    )
    for opt in (0, 1, 2):
        prog = Program(funcs=[caller, callee], data=[STACK])
        asm = Assembler(base=0x1000, xlen=XLEN)
        asm.data_symbol(*STACK)
        asm.label("entry")
        asm.li("sp", 0x9000 + 256)
        asm.call("caller")
        asm.mret()
        compile_program(prog, asm, opt)
        image = asm.assemble()
        with new_context():
            cpu = CpuState.symbolic(XLEN, 0x1000, build_memory(image, addr_width=XLEN))
            cpu.set_reg(10, bv_val(21, XLEN))
            final = run_interpreter(RiscvInterp(image, xlen=XLEN), cpu).merged()
        assert final.reg(10).as_int() == 63, f"O{opt}"
