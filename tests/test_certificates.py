"""Proof certificates: emission through the solver stack, storage next
to verdicts, and verification by the standalone checker.

The property under test is the trust chain of docs/CERTIFICATES.md:
every cache-backed verdict ships a certificate that an *independent*
checker (``repro.smt.checkproof``, importing nothing from the solver
package) accepts, and any tampering — with the certificate or with the
digest binding it to its query — makes that checker fail loudly.
"""

import copy
import json
import os
import subprocess
import sys

import pytest

from repro.core.store import VerdictStore
from repro.smt import (
    Solver,
    SolverCache,
    bv_sort,
    mk_and,
    mk_apply,
    mk_bv,
    mk_bvadd,
    mk_bvmul,
    mk_bvxor,
    mk_eq,
    mk_not,
    mk_ult,
    mk_var,
)
from repro.smt.checkproof import (
    CheckFailure,
    audit_store,
    check_certificate,
    main as checkproof_main,
)


def _unsat_query(prefix: str = "cq"):
    x = mk_var(f"{prefix}_x", bv_sort(8))
    return [mk_ult(x, mk_bv(5, 8)), mk_ult(mk_bv(10, 8), x)]


def _hard_unsat_query(prefix: str = "cq"):
    """UNSAT only after real search (x*y = 97 with y = -x needs an odd
    square ≡ 7 mod 8), so the refutation learns clauses — tampering
    tests need a non-empty proof to empty."""
    x = mk_var(f"{prefix}_x", bv_sort(8))
    y = mk_var(f"{prefix}_y", bv_sort(8))
    return [
        mk_eq(mk_bvmul(x, y), mk_bv(97, 8)),
        mk_eq(mk_bvadd(x, y), mk_bv(0, 8)),
    ]


def _sat_query(prefix: str = "cq"):
    x = mk_var(f"{prefix}_x", bv_sort(8))
    y = mk_var(f"{prefix}_y", bv_sort(8))
    return [
        mk_eq(mk_bvadd(x, y), mk_bv(100, 8)),
        mk_ult(x, mk_bv(5, 8)),
        mk_not(mk_eq(mk_bvmul(x, y), mk_bv(0, 8))),
    ]


def _check(solver, terms):
    result = solver.check(*terms)
    digest = solver.last_stats.get("digest")
    assert digest, "cache-backed check must record its digest"
    return result, digest


@pytest.fixture
def cached_solver(tmp_path):
    return Solver(cache=SolverCache(str(tmp_path / "cache")))


class TestEmission:
    def test_unsat_emits_drat_certificate(self, cached_solver):
        result, digest = _check(cached_solver, _unsat_query("em_u"))
        assert result.is_unsat
        cert = cached_solver.cache.load_certificate(digest)
        assert cert is not None
        assert cert["kind"] == "drat"
        assert cert["digest"] == digest
        assert cert["cnf"] and isinstance(cert["proof"], list)

    def test_sat_emits_model_certificate(self, cached_solver):
        result, digest = _check(cached_solver, _sat_query("em_s"))
        assert result.is_sat
        cert = cached_solver.cache.load_certificate(digest)
        assert cert is not None
        assert cert["kind"] == "model"
        assert cert["digest"] == digest
        assert cert["model"]

    def test_no_certs_env_disables_emission(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CERTS", "1")
        solver = Solver(cache=SolverCache(str(tmp_path / "nc")))
        _, digest = _check(solver, _unsat_query("em_nc"))
        assert solver.cache.load_certificate(digest) is None
        assert "cert" not in solver.last_stats

    def test_uncached_solver_emits_nothing(self, tmp_path):
        solver = Solver()
        assert solver.check(*_unsat_query("em_plain")).is_unsat
        assert "cert" not in solver.last_stats


class TestCheckerAccepts:
    def test_unsat_certificate_checks(self, cached_solver):
        _, digest = _check(cached_solver, _unsat_query("ok_u"))
        info = check_certificate(cached_solver.cache.load_certificate(digest))
        assert info["proof_lines"] >= 0 and info["cnf_clauses"] > 0

    def test_sat_certificate_checks(self, cached_solver):
        _, digest = _check(cached_solver, _sat_query("ok_s"))
        info = check_certificate(cached_solver.cache.load_certificate(digest))
        assert info["roots"] == 3

    def test_uf_model_certificate_checks(self, cached_solver):
        x = mk_var("ok_uf_x", bv_sort(8))
        f_x = mk_apply("ok_f", bv_sort(8), [x])
        f_fx = mk_apply("ok_f", bv_sort(8), [f_x])
        _, digest = _check(
            cached_solver, [mk_ult(f_x, mk_bv(10, 8)), mk_eq(f_fx, mk_bvxor(x, x))]
        )
        cert = cached_solver.cache.load_certificate(digest)
        assert cert["kind"] == "model" and cert["funs"]
        check_certificate(cert)

    def test_alpha_equivalent_queries_share_one_certificate(self, cached_solver):
        """The cached copy of an alpha-equivalent query re-checks: the
        certificate is bound to the canonical digest, not the variable
        spelling of whichever run stored it."""
        _, digest_a = _check(cached_solver, _sat_query("alpha_one"))
        _, digest_b = _check(cached_solver, _sat_query("alpha_two"))
        assert digest_a == digest_b
        assert cached_solver.last_stats.get("cache_hit")
        check_certificate(cached_solver.cache.load_certificate(digest_b))

    def test_incremental_and_fresh_certificates_both_check(self, tmp_path, monkeypatch):
        certs = {}
        for mode, env_val in (("incremental", "0"), ("fresh", "1")):
            monkeypatch.setenv("REPRO_NO_INCREMENTAL", env_val)
            solver = Solver(cache=SolverCache(str(tmp_path / mode)))
            for query in (_unsat_query(f"ifc_{mode}_u"), _sat_query(f"ifc_{mode}_s")):
                _, digest = _check(solver, query)
                cert = solver.cache.load_certificate(digest)
                assert cert is not None, f"{mode}: no certificate emitted"
                assert cert["mode"] == mode
                check_certificate(cert)
                certs.setdefault(cert["kind"], []).append(mode)
        # Both kinds seen in both modes.
        assert sorted(certs["drat"]) == ["fresh", "incremental"]
        assert sorted(certs["model"]) == ["fresh", "incremental"]


class TestTampering:
    def _certs(self, solver):
        _, u_digest = _check(solver, _hard_unsat_query("tmp_u"))
        _, s_digest = _check(solver, _sat_query("tmp_s"))
        return (
            solver.cache.load_certificate(u_digest),
            solver.cache.load_certificate(s_digest),
        )

    def test_flipped_digest_rejected(self, cached_solver):
        for cert in self._certs(cached_solver):
            bad = copy.deepcopy(cert)
            first = bad["digest"][0]
            bad["digest"] = ("0" if first != "0" else "1") + bad["digest"][1:]
            with pytest.raises(CheckFailure, match="digest binding"):
                check_certificate(bad)

    def test_tampered_query_rejected(self, cached_solver):
        """Swapping the query under a certificate breaks the digest
        binding — a store can't relabel a proof for query A as covering
        query B."""
        drat, model = self._certs(cached_solver)
        bad = copy.deepcopy(drat)
        bad["query"] = model["query"]
        with pytest.raises(CheckFailure, match="digest binding"):
            check_certificate(bad)

    def test_emptied_proof_rejected(self, cached_solver):
        drat, _ = self._certs(cached_solver)
        assert drat["proof"], "query too easy: refutation learned nothing"
        bad = copy.deepcopy(drat)
        bad["proof"] = []
        with pytest.raises(CheckFailure, match="final check"):
            check_certificate(bad)

    def test_corrupted_model_rejected(self, cached_solver):
        _, model = self._certs(cached_solver)
        bad = copy.deepcopy(model)
        name, value = next(iter(bad["model"].items()))
        bad["model"][name] = (int(value) + 1) & 0xFF
        with pytest.raises(CheckFailure):
            check_certificate(bad)

    def test_wrong_kind_for_verdict_rejected_in_store_audit(self, tmp_path):
        store_dir = tmp_path / "swap"
        solver = Solver(cache=SolverCache(str(store_dir)))
        _, u_digest = _check(solver, _unsat_query("swap_u"))
        _, s_digest = _check(solver, _sat_query("swap_s"))
        # Overwrite the unsat entry's certificate with the sat one.
        sat_cert = solver.cache.load_certificate(s_digest)
        with open(solver.cache._cert_path(u_digest), "w") as handle:
            json.dump(sat_cert, handle)
        summary = audit_store(str(store_dir))
        assert any(d == u_digest for d, _ in summary["failures"])


class TestStoreIntegration:
    def _populated_store(self, tmp_path):
        store_dir = str(tmp_path / "store")
        solver = Solver(cache=VerdictStore(store_dir))
        _check(solver, _unsat_query("st_u"))
        _check(solver, _sat_query("st_s"))
        return VerdictStore(store_dir)

    def test_verdict_store_shards_certificates(self, tmp_path):
        store = self._populated_store(tmp_path)
        for digest in store.digests():
            cert_file = store._find_cert_file(digest)
            assert cert_file is not None
            assert os.path.basename(os.path.dirname(cert_file)) == digest[:2]
            assert store.load_certificate(digest)["digest"] == digest

    def test_certless_legacy_entries_still_readable(self, tmp_path):
        """Entries written before certificates existed coexist with
        certified ones: lookups, summary, and the audit all tolerate
        the mix."""
        store = self._populated_store(tmp_path)
        legacy = f"{99:016x}"
        from repro.smt import UNSAT, CheckResult

        store.store(legacy, {}, CheckResult(UNSAT))
        assert store.lookup(legacy, {}) is not None
        assert store.load_certificate(legacy) is None
        summary = store.summary()
        assert summary["entries"] == 3
        assert summary["certificates"] == 2
        audit = audit_store(store.path)
        assert audit["missing"] == 1 and not audit["failures"]
        # ...unless the caller demands full coverage.
        strict = audit_store(store.path, require_certs=True)
        assert any(d == legacy for d, _ in strict["failures"])

    def test_export_import_round_trips_certificates(self, tmp_path):
        store = self._populated_store(tmp_path)
        archive = str(tmp_path / "verdicts.tar.gz")
        store.export_archive(archive)
        dest = VerdictStore(str(tmp_path / "dest"))
        imported = dest.import_archive(archive)
        assert imported == len(store.digests())
        for digest in store.digests():
            assert dest.load_certificate(digest) == store.load_certificate(digest)
        audit = audit_store(dest.path, require_certs=True)
        assert audit["checked"] == 2 and not audit["failures"]

    def test_gc_collects_certificates_with_entries(self, tmp_path):
        store = self._populated_store(tmp_path)
        removed = store.gc(keep=0)
        assert removed == 2
        for digest in [d for d in store.digests()]:
            pytest.fail(f"entry {digest} survived gc(keep=0)")
        audit = audit_store(store.path)
        assert audit["checked"] == 0 and audit["missing"] == 0

    def test_index_flags_certificates(self, tmp_path):
        store = self._populated_store(tmp_path)
        index = store.write_index()
        assert all(row["cert"] for row in index["rows"].values())


class TestCheckerCli:
    def test_store_mode_exit_codes(self, tmp_path, capsys):
        store_dir = str(tmp_path / "cli")
        solver = Solver(cache=SolverCache(store_dir))
        _, digest = _check(solver, _unsat_query("cli_u"))
        assert checkproof_main(["--store", store_dir]) == 0
        # Single-bit tamper on disk -> nonzero exit.
        path = solver.cache._cert_path(digest)
        cert = json.load(open(path))
        cert["digest"] = ("0" if cert["digest"][0] != "0" else "1") + cert["digest"][1:]
        json.dump(cert, open(path, "w"))
        assert checkproof_main(["--store", store_dir]) == 1
        capsys.readouterr()

    def test_file_mode_and_usage_errors(self, tmp_path, capsys):
        store_dir = str(tmp_path / "cli2")
        solver = Solver(cache=SolverCache(store_dir))
        _, digest = _check(solver, _sat_query("cli_s"))
        path = solver.cache._cert_path(digest)
        assert checkproof_main([path]) == 0
        assert checkproof_main([str(tmp_path / "missing.cert.json")]) == 2
        with pytest.raises(SystemExit):
            checkproof_main([])
        capsys.readouterr()

    def test_checker_is_independent_of_the_solver_stack(self):
        """``import repro.smt.checkproof`` must not load any module of
        the solver package — the acceptance criterion that makes the
        checker a second implementation rather than a re-export."""
        code = (
            "import sys; import repro.smt.checkproof; "
            "bad = sorted(m for m in sys.modules "
            "     if m.startswith('repro.') and m not in "
            "     ('repro', 'repro.smt', 'repro.smt.checkproof')); "
            "sys.exit(1 if bad else 0)"
        )
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src
        proc = subprocess.run([sys.executable, "-c", code], env=env, capture_output=True, text=True)
        assert proc.returncode == 0, f"checker dragged in solver modules: {proc.stderr}"


class TestReportTolerance:
    def test_report_renders_mixed_and_junk_schemas(self):
        from repro.obs.report import render_report

        # Certificates mentioned only partially, counters with a junk
        # value: the report must render, not crash.
        doc = {
            "wall_s": 1.25,
            "obligations": 3,
            "obs": {
                "counters": {"solver.certs": 2, "solver.cert_errors": 1, "weird": {"a": 1}},
                "obligations": [],
                "regions": [],
            },
            "store": {"entries": 3},  # no 'certificates' key: pre-cert store
        }
        text = render_report(doc)
        assert "certificates: 2 certificates emitted, 1 emission errors" in text
        assert "weird" in text

    def test_report_without_certs_has_no_cert_line(self):
        from repro.obs.report import render_report

        text = render_report({"obs": {"counters": {"sat.propagations": 5}}})
        assert "certificates:" not in text
