"""Tests for the lifting engine: worklist behaviour, merging policy,
fuel, path coverage, and the Paths API."""

import pytest

from repro.core import EngineOptions, run_interpreter
from repro.core.engine import Interpreter, Paths
from repro.core.errors import EngineFuelExhausted, UnconstrainedPc
from repro.smt import mk_bool
from repro.sym import SymBool, bv_val, fresh_bv, ite, merge, new_context, prove


class MiniState:
    """A two-register machine used to probe engine behaviour."""

    __slots__ = ("pc", "x", "halted")

    def __init__(self, pc, x, halted=False):
        self.pc = pc
        self.x = x
        self.halted = halted

    def copy(self):
        return MiniState(self.pc, self.x, self.halted)

    def __sym_merge__(self, guard: SymBool, other: "MiniState"):
        assert self.halted == other.halted
        return MiniState(merge(guard, self.pc, other.pc), merge(guard, self.x, other.x), self.halted)


class MiniInterp(Interpreter):
    """program: list of callables state -> None (set pc/x/halted)."""

    def __init__(self, program):
        self.program = program
        self.executed = []

    def pc_of(self, state):
        return state.pc

    def set_pc(self, state, pc_val):
        state.pc = bv_val(pc_val, 16)

    def is_halted(self, state):
        return state.halted

    def copy_state(self, state):
        return state.copy()

    def fetch(self, state):
        return self.program[state.pc.as_int()]

    def execute(self, state, insn):
        self.executed.append(state.pc.as_int())
        insn(state)


def halt(state):
    state.halted = True


def goto(n):
    def step(state):
        state.pc = bv_val(n, 16)

    return step


def branch_on_x(then_pc, else_pc):
    def step(state):
        state.pc = ite(state.x == 0, bv_val(then_pc, 16), bv_val(else_pc, 16))

    return step


def add_to_x(n, next_pc):
    def step(state):
        state.x = state.x + n
        state.pc = bv_val(next_pc, 16)

    return step


def fresh_state(x=None):
    return MiniState(bv_val(0, 16), x if x is not None else fresh_bv("eng.x", 16))


class TestMergedWorklist:
    def test_diamond_executes_each_block_once(self):
        # 0: branch -> 1 or 2; 1: x+=1 -> 3; 2: x+=2 -> 3; 3: halt
        prog = [branch_on_x(1, 2), add_to_x(1, 3), add_to_x(2, 3), halt]
        interp = MiniInterp(prog)
        with new_context():
            state = fresh_state()
            x0 = state.x
            paths = run_interpreter(interp, state)
        # With merging, block 3 is processed once.
        assert interp.executed.count(3) == 1
        assert paths.steps == 4

    def test_without_merging_paths_duplicate(self):
        prog = [branch_on_x(1, 2), add_to_x(1, 3), add_to_x(2, 3), halt]
        interp = MiniInterp(prog)
        with new_context():
            paths = run_interpreter(
                interp, fresh_state(), EngineOptions(merge_states=False)
            )
        assert interp.executed.count(3) == 2  # path enumeration forks
        assert len(paths.finals) == 2

    def test_results_agree_between_strategies(self):
        prog = [branch_on_x(1, 2), add_to_x(1, 3), add_to_x(2, 3), halt]
        with new_context():
            s1 = fresh_state()
            x0 = s1.x
            merged = run_interpreter(MiniInterp(prog), s1).merged()
            s2 = MiniState(bv_val(0, 16), x0)
            enumerated = run_interpreter(
                MiniInterp(prog), s2, EngineOptions(merge_states=False)
            ).merged()
            assert prove(merged.x == enumerated.x).proved

    def test_coverage_is_total(self):
        prog = [branch_on_x(1, 2), add_to_x(1, 3), add_to_x(2, 3), halt]
        with new_context():
            paths = run_interpreter(MiniInterp(prog), fresh_state())
            assert prove(SymBool(paths.coverage())).proved

    def test_bounded_loop_terminates(self):
        # 0: if x==0 goto 2 else goto 1; 1: x+=(-1) goto 0; 2: halt
        prog = [branch_on_x(2, 1), add_to_x(-1, 0), halt]
        with new_context():
            state = fresh_state(bv_val(3, 16))
            paths = run_interpreter(MiniInterp(prog), state)
            final = paths.merged()
            assert final.x.as_int() == 0

    def test_fuel_exhaustion_on_unbounded_loop(self):
        prog = [goto(0)]
        with new_context():
            with pytest.raises(EngineFuelExhausted):
                run_interpreter(MiniInterp(prog), fresh_state(), EngineOptions(fuel=10))

    def test_unconstrained_pc_rejected(self):
        def wild(state):
            state.pc = fresh_bv("eng.wild", 16)  # jump to untrusted addr

        with new_context():
            with pytest.raises(UnconstrainedPc):
                run_interpreter(MiniInterp([wild, halt]), fresh_state())

    def test_pc_arithmetic_over_ite_splits(self):
        """split-pc handles ite(c, a, b) + const shapes (§4)."""
        def computed(state):
            base = ite(state.x == 0, bv_val(0, 16), bv_val(1, 16))
            state.pc = base + 1

        prog = [computed, halt, halt]
        with new_context():
            paths = run_interpreter(MiniInterp(prog), fresh_state())
            assert len(paths.finals) >= 1


class TestPathsApi:
    def test_merged_requires_finals(self):
        with pytest.raises(ValueError):
            Paths().merged()

    def test_coverage_empty_is_false(self):
        assert Paths().coverage() is mk_bool(False)
