"""Tests for binary images and the validated memory extraction (§3.4)."""

import pytest

from repro.core.errors import MemoryModelError
from repro.core.image import Image, Symbol, build_memory
from repro.sym import bv_val


def image_with(*symbols):
    return Image(base=0x1000, word_size=4, words={}, symbols=list(symbols))


class TestExtraction:
    def test_shapes_extract(self):
        img = image_with(
            Symbol("a", 0x2000, 4, "object", ("cell", 4)),
            Symbol("b", 0x3000, 16, "object", ("array", 4, ("cell", 4))),
            Symbol(
                "c",
                0x4000,
                24,
                "object",
                ("array", 2, ("struct", [("x", ("cell", 4)), ("y", ("cell", 8))])),
            ),
        )
        mem = build_memory(img, addr_width=32)
        assert mem.region("a").block.size() == 4
        assert mem.region("b").block.size() == 16
        assert mem.region("c").block.size() == 24

    def test_symbolic_contents_by_default(self):
        img = image_with(Symbol("a", 0x2000, 4, "object", ("cell", 4)))
        mem = build_memory(img, addr_width=32)
        value = mem.load(bv_val(0x2000, 32), 4)
        assert not value.is_concrete

    def test_concrete_zero_for_boot(self):
        img = image_with(Symbol("a", 0x2000, 4, "object", ("cell", 4)))
        mem = build_memory(img, addr_width=32, symbolic=False)
        assert mem.load(bv_val(0x2000, 32), 4).as_int() == 0

    def test_size_mismatch_rejected(self):
        """The §3.4 validity check: shape must match the symbol size."""
        img = image_with(Symbol("a", 0x2000, 8, "object", ("cell", 4)))
        with pytest.raises(MemoryModelError):
            build_memory(img, addr_width=32)

    def test_misaligned_symbol_rejected(self):
        img = image_with(Symbol("a", 0x2001, 4, "object", ("cell", 4)))
        with pytest.raises(MemoryModelError):
            build_memory(img, addr_width=32)

    def test_overlapping_symbols_rejected(self):
        img = image_with(
            Symbol("a", 0x2000, 8, "object", ("cell", 8)),
            Symbol("b", 0x2004, 4, "object", ("cell", 4)),
        )
        with pytest.raises(MemoryModelError):
            build_memory(img, addr_width=32)

    def test_func_symbols_skipped(self):
        img = image_with(Symbol("handler", 0x1000, 64, "func"))
        mem = build_memory(img, addr_width=32)
        assert mem.regions == []

    def test_default_shape_is_word_array(self):
        img = image_with(Symbol("blob", 0x2000, 16, "object", None))
        mem = build_memory(img, addr_width=32)
        assert mem.region("blob").block.size() == 16

    def test_bad_shape_rejected(self):
        img = image_with(Symbol("a", 0x2000, 4, "object", ("weird", 4)))
        with pytest.raises(MemoryModelError):
            build_memory(img, addr_width=32)


class TestImageApi:
    def test_text_range_empty(self):
        img = Image(base=0x1000, word_size=4, words={})
        assert img.text_range() == (0x1000, 0x1000)

    def test_text_range_spans_words(self):
        img = Image(base=0x1000, word_size=4, words={0x1000: 1, 0x1008: 2})
        assert img.text_range() == (0x1000, 0x100C)
