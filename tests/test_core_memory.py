"""Tests for the Serval memory model (§3.4) and the §4 symbolic-address
optimization."""

import pytest

from repro.core import MCell, MStruct, MUniform, Memory, MemoryOptions, Region
from repro.core.errors import MemoryModelError
from repro.sym import bv_val, fresh_bv, new_context, prove, sym_implies, verify_vcs

OPTS = MemoryOptions()


def make_proc_array(count=4, width=4):
    """An array of struct proc { state; quota; owner; } like CertiKOS."""
    def mk():
        return MStruct(
            [("state", MCell(width)), ("quota", MCell(width)), ("owner", MCell(width))]
        )

    return MUniform([mk() for _ in range(count)])


class TestCells:
    def test_full_cell_roundtrip(self):
        c = MCell(4)
        c.store(bv_val(0, 32), bv_val(0xDEADBEEF, 32), OPTS)
        assert c.load(bv_val(0, 32), 4, OPTS).as_int() == 0xDEADBEEF

    def test_subcell_byte_access(self):
        c = MCell(4, 0x11223344)
        assert c.load(bv_val(0, 32), 1, OPTS).as_int() == 0x44
        assert c.load(bv_val(3, 32), 1, OPTS).as_int() == 0x11
        c.store(bv_val(1, 32), bv_val(0xAB, 8), OPTS)
        assert c.load(bv_val(0, 32), 4, OPTS).as_int() == 0x1122AB44

    def test_subcell_halfword(self):
        c = MCell(8, 0x1122334455667788)
        assert c.load(bv_val(4, 32), 2, OPTS).as_int() == 0x3344
        c.store(bv_val(6, 32), bv_val(0xBEEF, 16), OPTS)
        assert c.load(bv_val(0, 32), 8, OPTS).as_int() == 0xBEEF334455667788

    def test_oversized_access_rejected(self):
        with pytest.raises(MemoryModelError):
            MCell(4).load(bv_val(2, 32), 4, OPTS)

    def test_width_mismatch_rejected(self):
        with pytest.raises(MemoryModelError):
            MCell(4, bv_val(0, 16))


class TestUniformConcrete:
    def test_concrete_index(self):
        arr = make_proc_array()
        # proc[2].quota is at offset 2*12 + 4
        arr.store(bv_val(28, 32), bv_val(7, 32), OPTS)
        assert arr.load(bv_val(28, 32), 4, OPTS).as_int() == 7
        # Other elements untouched.
        assert arr.load(bv_val(16, 32), 4, OPTS).as_int() == 0

    def test_out_of_bounds_concrete(self):
        arr = make_proc_array()
        with pytest.raises(MemoryModelError):
            arr.load(bv_val(48, 32), 4, OPTS)


class TestUniformSymbolicIndex:
    """The §4 optimization: (C0*pid + C1) offsets concretize."""

    def test_symbolic_load_resolves(self):
        with new_context() as ctx:
            arr = make_proc_array()
            arr.store(bv_val(12 * 2 + 4, 32), bv_val(99, 32), OPTS)
            pid = fresh_bv("mm_pid", 32)
            value = arr.load(pid * 12 + 4, 4, OPTS)
            # Under pid==2 the load returns the stored 99.
            assert prove(sym_implies(pid == 2, value == 99)).proved
            # The emitted side condition requires pid < 4.
            assert len(ctx.vcs) == 1
            assert "out of bounds" in ctx.vcs[0].message
            with new_context() as inner:
                with inner.under(pid < 4):
                    arr.load(pid * 12 + 4, 4, OPTS)
                assert verify_vcs(inner).proved

    def test_symbolic_store_hits_only_target(self):
        with new_context():
            arr = make_proc_array()
            for i in range(4):
                arr.store(bv_val(12 * i + 4, 32), bv_val(i, 32), OPTS)
            pid = fresh_bv("mm_pid2", 32)
            arr.store(pid * 12 + 4, bv_val(0xAA, 32), OPTS)
            v3 = arr.load(bv_val(12 * 3 + 4, 32), 4, OPTS)
            # quota[3] changed iff pid == 3.
            assert prove(sym_implies(pid == 3, v3 == 0xAA)).proved
            assert prove(sym_implies(pid == 1, v3 == 3)).proved

    def test_fanout_fallback_when_disabled(self):
        """With concretization off, symbolic access falls back to the
        naive fan-out (the E5 ablation's slow path)."""
        opts = MemoryOptions(concretize_offsets=False)
        with new_context() as ctx:
            arr = MUniform([MCell(4, i * 10) for i in range(4)])
            idx = fresh_bv("mm_idx", 32)
            value = arr.load(idx * 4, 4, opts)
            assert prove(sym_implies(idx == 2, value == 20), assumptions=[idx < 4]).proved

    def test_mismatched_scale_falls_back(self):
        """Offsets that do not match the element stride still work via
        fan-out (soundness of the optimization's applicability test)."""
        with new_context():
            arr = MUniform([MCell(4, i) for i in range(4)])
            idx = fresh_bv("mm_idx2", 32)
            value = arr.load(idx * 8, 4, OPTS)  # stride 8 != elem 4
            assert prove(sym_implies(idx == 1, value == 2), assumptions=[idx < 2]).proved


class TestStruct:
    def test_field_offsets(self):
        s = MStruct([("a", MCell(4)), ("b", MCell(8)), ("c", MCell(4))])
        assert s.field_offset("a") == 0
        assert s.field_offset("b") == 4
        assert s.field_offset("c") == 12
        assert s.size() == 16

    def test_load_store_by_offset(self):
        s = MStruct([("a", MCell(4)), ("b", MCell(4))])
        s.store(bv_val(4, 32), bv_val(5, 32), OPTS)
        assert s.load(bv_val(4, 32), 4, OPTS).as_int() == 5
        assert s.load(bv_val(0, 32), 4, OPTS).as_int() == 0


class TestMemoryRegions:
    def make_memory(self):
        return Memory(
            [
                Region("procs", 0x1000, make_proc_array()),
                Region("stack", 0x2000, MUniform([MCell(4) for _ in range(16)])),
            ],
            OPTS,
        )

    def test_concrete_address(self):
        mem = self.make_memory()
        mem.store(bv_val(0x2004, 32), bv_val(42, 32))
        assert mem.load(bv_val(0x2004, 32), 4).as_int() == 42

    def test_symbolic_address_anchors_to_region(self):
        with new_context() as ctx:
            mem = self.make_memory()
            pid = fresh_bv("mm_pid3", 32)
            addr = pid * 12 + 0x1004  # &procs[pid].quota
            mem.store(addr, bv_val(77, 32))
            got = mem.load(bv_val(0x1000 + 12 + 4, 32), 4)
            assert prove(sym_implies(pid == 1, got == 77)).proved

    def test_unmapped_address_rejected(self):
        mem = self.make_memory()
        with pytest.raises(MemoryModelError):
            mem.load(bv_val(0x9000, 32), 4)

    def test_overlapping_regions_rejected(self):
        with pytest.raises(MemoryModelError):
            Memory(
                [
                    Region("a", 0x1000, MCell(8)),
                    Region("b", 0x1004, MCell(8)),
                ]
            )

    def test_read_only_region(self):
        with new_context() as ctx:
            mem = Memory([Region("rodata", 0x100, MCell(4, 7), writable=False)])
            mem.store(bv_val(0x100, 32), bv_val(9, 32))
            result = verify_vcs(ctx)
        assert not result.proved
        assert "read-only" in result.failed_vc.message

    def test_copy_isolates(self):
        mem = self.make_memory()
        snap = mem.copy()
        mem.store(bv_val(0x2000, 32), bv_val(1, 32))
        assert snap.load(bv_val(0x2000, 32), 4).as_int() == 0
