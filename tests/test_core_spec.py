"""Tests for the specification library: spec structs, theorems,
refinement, safety helpers, and noninterference scaffolding."""

import pytest

from repro.core import (
    Action,
    NIPolicy,
    Refinement,
    count_where,
    prove_invariant_step,
    prove_nickel_ni,
    prove_one_safety,
    prove_step_consistency,
    prove_two_safety,
    reference_count_consistent,
    spec_struct,
    theorem,
)
from repro.sym import SymBool, bv_val, ite, merge, sym_eq, sym_false, sym_implies, sym_true

Counter = spec_struct("counter", value=8, limit=8)
Pair = spec_struct("pair", a=8, b=8, flag=bool)
Vec = spec_struct("vec", items=(8, 3))


class TestSpecStruct:
    def test_fresh_fields_are_symbolic(self):
        s = Counter.fresh()
        assert not s.value.is_concrete

    def test_construct_with_values(self):
        s = Counter(value=bv_val(3, 8))
        assert s.value.as_int() == 3
        assert not s.limit.is_concrete

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeError):
            Counter(bogus=1)

    def test_vector_fields(self):
        v = Vec.fresh()
        assert len(v.items) == 3

    def test_bool_fields(self):
        p = Pair.fresh()
        assert isinstance(p.flag, SymBool)

    def test_eq_is_structural(self):
        s = Counter.fresh()
        t = s.copy()
        from repro.sym import prove

        assert prove(s.eq(t)).proved
        t.value = t.value + 1
        assert not prove(s.eq(t)).proved

    def test_merge(self):
        from repro.sym import fresh_bool, prove

        s, t = Counter.fresh(), Counter.fresh()
        c = fresh_bool("tcs.c")
        m = merge(c, s, t)
        assert prove(sym_implies(c, m.eq(s))).proved


class TestTheorem:
    def test_valid_theorem(self):
        assert theorem("comm", lambda s: sym_eq(s.value + s.limit, s.limit + s.value), Counter).proved

    def test_invalid_theorem_has_model(self):
        result = theorem("bogus", lambda s: s.value == 0, Counter)
        assert not result.proved
        assert result.counterexample is not None

    def test_theorem_with_assumptions(self):
        assert theorem(
            "bounded",
            lambda s: s.value < 16,
            Counter,
            assumptions=lambda s: s.value < 10,
        ).proved


class TestRefinementHarness:
    def make(self, impl_step, rep_invariant=None):
        def spec_step(s):
            out = s.copy()
            out.value = s.value + 2
            return out

        return Refinement(
            name="t",
            make_impl=Counter.fresh,
            impl_step=impl_step,
            spec_step=spec_step,
            # RI must be *inductive*: even values stay even under +2.
            abstract=lambda c: c,
            rep_invariant=rep_invariant or (lambda c: (c.value & 1) == 0),
        )

    def test_correct_impl_refines(self):
        def impl(s):
            out = s.copy()
            out.value = s.value + 1 + 1
            return out

        assert self.make(impl).prove().proved

    def test_wrong_impl_caught(self):
        def impl(s):
            out = s.copy()
            out.value = s.value + 3
            return out

        result = self.make(impl).prove()
        assert not result.proved

    def test_ri_violation_caught(self):
        def impl(s):
            out = s.copy()
            out.value = s.value + 1  # breaks evenness
            return out

        def spec(s):
            out = s.copy()
            out.value = s.value + 1
            return out

        ref = self.make(impl)
        ref.spec_step = spec
        result = ref.prove()
        assert not result.proved
        assert "RI" in result.failed_vc.message


class TestSafetyHelpers:
    def test_invariant_step(self):
        def step(s):
            out = s.copy()
            out.value = ite(s.value < s.limit, s.value + 1, s.value)
            return out

        assert prove_invariant_step(
            "mono", lambda s: s.value <= s.limit, step, Counter
        ).proved

    def test_one_safety(self):
        assert prove_one_safety(
            "low-bit", lambda s: (s.value & 1) <= 1, Counter
        ).proved

    def test_two_safety(self):
        assert prove_two_safety(
            "sym", lambda s1, s2: sym_eq(s1.value, s2.value).implies(sym_eq(s2.value, s1.value)),
            Counter,
        ).proved

    def test_count_where(self):
        items = [bv_val(i, 8) for i in (1, 2, 3, 4)]
        n = count_where(items, lambda x: (x & 1) == 1, 8)
        assert n.as_int() == 2

    def test_reference_count(self):
        owners = [0, 1]
        resources = [bv_val(0, 8), bv_val(1, 8), bv_val(0, 8)]
        declared = {0: bv_val(2, 8), 1: bv_val(1, 8)}
        ok = reference_count_consistent(
            owners, resources, lambda o: declared[o], lambda r, o: r == o, width=8
        )
        from repro.sym import prove

        assert prove(ok).proved


class TestNiScaffolding:
    State = spec_struct("nistate", pub=8, sec=8)

    def test_step_consistency_catches_leak(self):
        def leak(s):
            out = s.copy()
            out.pub = s.pub + s.sec
            return out

        action = Action("leak", leak)
        result = prove_step_consistency(
            "leak",
            action,
            self.State,
            equiv=lambda u, s1, s2: sym_eq(s1.pub, s2.pub),
            observer_values=["low"],
        )
        assert not result.proved

    def test_step_consistency_accepts_clean(self):
        def clean(s):
            out = s.copy()
            out.pub = s.pub + 1
            return out

        result = prove_step_consistency(
            "clean",
            Action("clean", clean),
            self.State,
            equiv=lambda u, s1, s2: sym_eq(s1.pub, s2.pub),
            observer_values=["low"],
        )
        assert result.proved

    def test_nickel_ni_end_to_end(self):
        def bump(s):
            out = s.copy()
            out.pub = s.pub + 1
            return out

        policy = NIPolicy(
            domains=["low", "high"],
            flows_to=lambda d1, d2, s: sym_true() if d1 == d2 else sym_false(),
            dom=lambda name, s, args: "low",
            equiv=lambda u, s1, s2: sym_eq(s1.pub, s2.pub)
            if u == "low"
            else sym_eq(s1.sec, s2.sec),
        )
        results = prove_nickel_ni(policy, [Action("bump", bump)], self.State)
        assert all(r.proved for r in results.values())
