"""Tests for the symbolic-optimization library (§4)."""

from repro.core.symopt import (
    SymOptConfig,
    concretize,
    rewrite_with_invariant,
    split_cases,
    split_cases_value,
)
from repro.sym import bv_val, fresh_bv, ite, new_context, prove, sym_implies, verify_vcs


class TestSplitCasesValue:
    def test_identity_semantics(self):
        x = fresh_bv("so_x", 8)
        rewritten = split_cases_value(x, [1, 2, 3])
        assert prove(rewritten == x).proved

    def test_exposes_concrete_leaves(self):
        x = fresh_bv("so_x2", 8)
        rewritten = split_cases_value(x, [5])
        # shape: ite(x == 5, 5, x): downstream partial evaluation sees 5.
        assert rewritten.term.op == "ite"
        assert rewritten.term.args[1].payload == 5


class TestSplitCasesApply:
    def test_per_case_evaluation(self):
        x = fresh_bv("so_y", 8)
        calls = []

        def handler(value):
            calls.append(value)
            return value + 1

        out = split_cases(x, [0, 1], handler)
        # handler ran once per concrete case plus the residual.
        assert len(calls) == 3
        assert prove(sym_implies(x == 0, out == 1)).proved
        assert prove(sym_implies(x == 1, out == 2)).proved
        assert prove(sym_implies(x == 7, out == 8)).proved

    def test_default_handler_for_residual(self):
        x = fresh_bv("so_z", 8)
        out = split_cases(x, [0], lambda v: v + 1, default=lambda v: bv_val(0xFF, 8))
        assert prove(sym_implies(x == 0, out == 1)).proved
        assert prove(sym_implies(x == 9, out == 0xFF)).proved


class TestConcretize:
    def test_within_candidates_proves(self):
        with new_context() as ctx:
            x = fresh_bv("so_c", 8)
            with ctx.under(x < 2):
                out = concretize(x, [0, 1])
            assert verify_vcs(ctx).proved
            assert prove(sym_implies(x == 1, out == 1)).proved

    def test_outside_candidates_fails(self):
        with new_context() as ctx:
            x = fresh_bv("so_c2", 8)
            concretize(x, [0, 1], "cause register out of range")
            result = verify_vcs(ctx)
        assert not result.proved
        assert result.failed_vc.message == "cause register out of range"


class TestInvariantRewrite:
    def test_unconditional(self):
        reg = fresh_bv("so_r", 32)
        out = rewrite_with_invariant(reg, 0x1000)
        assert out.as_int() == 0x1000

    def test_guarded(self):
        reg = fresh_bv("so_r2", 32)
        ri = reg == 0x1000
        out = rewrite_with_invariant(reg, 0x1000, ri_holds=ri)
        # Under RI the rewrite is exact; outside it degrades to reg.
        assert prove(out == reg).proved


class TestConfig:
    def test_defaults_all_on(self):
        cfg = SymOptConfig()
        assert cfg.split_pc and cfg.split_cases and cfg.concretize_offsets

    def test_none_disables(self):
        cfg = SymOptConfig.none()
        assert not (cfg.split_pc or cfg.split_cases or cfg.concretize_offsets)
