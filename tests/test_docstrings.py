"""Docstring-coverage regression guard for the public API.

CI's lint job runs ruff's pydocstyle rules over the facade packages,
but ruff is not available in every environment this repo runs in (the
development container is offline).  This test enforces the stronger
guarantee locally: every module under ``repro.core``/``repro.smt``/
``repro.sym`` has a module docstring, and every public function and
class those packages export is documented.
"""

import ast
import importlib
import inspect
import os

import pytest

SRC = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
FACADES = ["repro.core", "repro.smt", "repro.sym"]
SUBTREES = ["core", "smt", "sym"]


def _modules(subtree):
    for dirpath, _dirnames, filenames in os.walk(os.path.join(SRC, subtree)):
        for name in sorted(filenames):
            if name.endswith(".py"):
                yield os.path.join(dirpath, name)


@pytest.mark.parametrize("subtree", SUBTREES)
def test_every_module_has_a_docstring(subtree):
    missing = []
    for path in _modules(subtree):
        with open(path) as handle:
            tree = ast.parse(handle.read())
        if ast.get_docstring(tree) is None:
            missing.append(os.path.relpath(path, SRC))
    assert not missing, f"modules without a docstring: {missing}"


@pytest.mark.parametrize("facade", FACADES)
def test_every_exported_name_is_documented(facade):
    mod = importlib.import_module(facade)
    names = getattr(mod, "__all__", None) or dir(mod)
    missing = []
    for name in sorted(names):
        if name.startswith("_"):
            continue
        obj = getattr(mod, name)
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if not inspect.getdoc(obj):
            missing.append(name)
    assert not missing, f"{facade} exports without a docstring: {missing}"
