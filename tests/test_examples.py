"""Smoke tests: the runnable examples exercise the public API.

Only the fast examples run here (the monitor demos re-prove multi-
minute refinement theorems and are exercised by the benchmarks).
"""

from pathlib import Path
import subprocess
import sys

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout=480) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return proc.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "refinement proved: True" in out
    assert "step consistency proved: True" in out
    assert "sign(0x2a) = 0x1" in out


def test_keystone_audit():
    out = run_example("keystone_audit.py")
    assert "enclave independence (create restricted to host): True" in out
    assert "oversized" in out
    assert "UB findings on the fixed monitor: []" in out
