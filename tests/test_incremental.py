"""Incremental solving: per-worker sessions, learned-clause reuse,
crash recovery, determinism, and cache-key hygiene.

These pin the contracts the incremental rebuild must not bend:
verdicts and the first failing obligation match the sequential
baseline, sessions recover from crashes, and the verdict cache never
confuses queries that differ only in their assumption sets.
"""

import random

import pytest

from repro.core.runner import Obligation, reduce_results, run_obligations
from repro.core.scheduler import ObligationScheduler
from repro.smt.sat import SAT, ArenaSolver, UNSAT
from repro.smt.solver import (
    Solver,
    SolverCache,
    get_incremental_session,
    incremental_enabled,
    reset_incremental_session,
)
from repro.smt.terms import fresh_var, mk_bv, mk_bvadd, mk_bvand, mk_bvmul, mk_bvxor, mk_eq, mk_ule, mk_var
from repro.smt.sorts import bv_sort


@pytest.fixture(autouse=True)
def _fresh_session():
    """Each test starts (and leaves) a clean incremental session."""
    reset_incremental_session()
    yield
    reset_incremental_session()


class TestLearnedRetention:
    def test_learned_clauses_survive_assumption_solves(self):
        """A conflict-heavy instance solved under assumptions leaves
        its learned clauses in the database for the next solve."""
        s = ArenaSolver()
        n, m = 6, 5  # pigeonhole: UNSAT, needs real search
        p = {(i, j): s.new_var() for i in range(n) for j in range(m)}
        for i in range(n):
            s.add_clause([p[(i, j)] for j in range(m)])
        for j in range(m):
            for i1 in range(n):
                for i2 in range(i1 + 1, n):
                    s.add_clause([-p[(i1, j)], -p[(i2, j)]])
        gate = s.new_var()  # free selector so the formula stays assumption-relative
        assert s.solve_with([gate]) == UNSAT
        kept = s.stats()["learned_kept"]
        assert kept > 0
        first_conflicts = s.conflicts
        # Re-solving under the flipped selector reuses the learned DB:
        # still UNSAT (the pigeonhole core is selector-independent) and
        # the retained clauses are still there.
        assert s.solve_with([-gate]) == UNSAT
        assert s.stats()["learned_kept"] >= 1
        assert s.conflicts <= first_conflicts

    def test_session_reuses_clauses_across_checks(self):
        x = mk_var("x", bv_sort(16))
        y = mk_var("y", bv_sort(16))
        shared = mk_eq(mk_bvmul(x, y), mk_bv(391, 16))
        s1 = Solver()
        r1 = s1.check(shared, mk_ule(x, mk_bv(100, 16)))
        assert r1.status == SAT
        assert s1.last_stats["incremental"]
        assert s1.last_stats["reused_clauses"] == 0
        s2 = Solver()
        r2 = s2.check(shared, mk_ule(y, mk_bv(100, 16)))
        assert r2.status == SAT
        # The multiplier circuit blasted for the first check is reused.
        assert s2.last_stats["reused_clauses"] > 0
        assert s2.last_stats["blasted_clauses"] < s1.last_stats["blasted_clauses"]


class TestSessionLifecycle:
    def test_session_persists_across_solver_objects(self):
        a = get_incremental_session()
        Solver().check(mk_eq(mk_var("p", bv_sort(4)), mk_bv(3, 4)))
        assert get_incremental_session() is a
        assert a.checks == 1

    def test_reset_on_crash(self, monkeypatch):
        """A check that blows up mid-blast drops the session; the next
        check starts from a fresh, consistent one."""
        before = get_incremental_session()
        from repro.smt import bitblast

        def boom(self, term):
            raise RuntimeError("injected blast failure")

        monkeypatch.setattr(bitblast.BitBlaster, "bool_lit", boom)
        with pytest.raises(RuntimeError, match="injected"):
            Solver().check(mk_eq(mk_var("q", bv_sort(4)), mk_bv(1, 4)))
        monkeypatch.undo()
        after = get_incremental_session()
        assert after is not before
        r = Solver().check(mk_eq(mk_var("q", bv_sort(4)), mk_bv(1, 4)))
        assert r.status == SAT

    def test_session_recycled_past_var_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_INCREMENTAL_MAX_VARS", "8")
        first = get_incremental_session()
        Solver().check(mk_eq(mk_var("r", bv_sort(16)), mk_bv(77, 16)))
        assert first.sat.num_vars > 8
        assert get_incremental_session() is not first

    def test_escape_hatch_disables_incremental(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_INCREMENTAL", "1")
        assert not incremental_enabled()
        s = Solver()
        r = s.check(mk_eq(mk_var("s", bv_sort(8)), mk_bv(9, 8)))
        assert r.status == SAT
        assert "incremental" not in s.last_stats
        sess = get_incremental_session()
        assert sess.checks == 0  # untouched

    def test_legacy_impl_disables_incremental(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAT_IMPL", "legacy")
        assert not incremental_enabled()


class TestDeterminismIncremental:
    def test_verdicts_and_first_failure_stable_across_steal_seeds(self):
        """With incremental solving ON (the default), ten different
        work-stealing interleavings still reproduce the sequential
        verdicts in order, including the same first failure."""
        assert incremental_enabled()
        obligations = []
        for i in range(8):
            x = fresh_var("x", bv_sort(8))
            y = fresh_var("y", bv_sort(8))
            if i in (2, 5):
                goal = mk_eq(x, mk_bv(5, 8))  # not valid
            else:
                goal = mk_eq(
                    mk_bvxor(mk_bvxor(x, y), y),
                    mk_bvand(x, mk_bv(0xFF, 8)),
                )
            obligations.append(Obligation.from_terms(f"inc{i}", [goal]))

        seq_results, _ = run_obligations(obligations, jobs=1)
        seq_verdicts = [r.status for r in seq_results]
        assert seq_verdicts.count("failed") == 2
        seq_first = reduce_results(seq_results)
        assert seq_first is not None and seq_first.name == "inc2"

        for seed in range(10):
            sched = ObligationScheduler(workers=2, steal_seed=seed)
            try:
                results, _ = sched.run(obligations, jobs_hint=2)
            finally:
                sched.shutdown()
            assert [r.status for r in results] == seq_verdicts, f"seed {seed}"
            first = reduce_results(results)
            assert first is not None and first.name == "inc2", f"seed {seed}"

    def test_incremental_matches_fresh_on_random_queries(self, monkeypatch):
        """Property check: every query answers identically with and
        without the shared session."""
        rng = random.Random(4242)
        queries = []
        for i in range(20):
            x = mk_var(f"rx{i % 5}", bv_sort(8))
            y = mk_var(f"ry{i % 3}", bv_sort(8))
            k = mk_bv(rng.randrange(256), 8)
            op = rng.choice([mk_bvadd, mk_bvmul, mk_bvxor, mk_bvand])
            queries.append(mk_eq(op(x, y), k))
        incr = [Solver().check(q).status for q in queries]
        monkeypatch.setenv("REPRO_NO_INCREMENTAL", "1")
        fresh = [Solver().check(q).status for q in queries]
        assert incr == fresh


class TestCacheKeys:
    def test_assumption_sets_distinguish_queries(self, tmp_path):
        """Two checks with the same goal but different assumption sets
        must not share a cache entry."""
        cache = SolverCache(str(tmp_path))
        x = mk_var("x", bv_sort(8))
        goal = mk_eq(x, mk_bv(1, 8))

        s1 = Solver(cache=cache)
        s1.add(mk_eq(x, mk_bv(1, 8)))
        r1 = s1.check(goal)
        assert r1.status == SAT

        s2 = Solver(cache=cache)
        s2.add(mk_eq(x, mk_bv(2, 8)))
        r2 = s2.check(goal)
        assert r2.status == UNSAT  # a key collision would replay SAT
        assert cache.misses == 2 and cache.hits == 0

        # Identical query (goal + assumptions) does hit.
        s3 = Solver(cache=cache)
        s3.add(mk_eq(x, mk_bv(1, 8)))
        r3 = s3.check(goal)
        assert r3.status == SAT
        assert cache.hits == 1
